"""E11 — §5 fault tolerance: 3-Majority under a dynamic adversary.

Paper background: 2-Choices and 3-Majority are self-stabilising consensus
protocols that tolerate an adversary corrupting a bounded set of nodes
every round; [BCN+16] proves 3-Majority (for ``k = o(n^{1/3})``)
tolerates corruption budgets ``O(√n / (k^{5/2} log n))`` while reaching a
stable regime of almost-all *valid* consensus.  Section 5 poses extending
such guarantees through the AC-framework as open.

Regenerated table: 3-Majority from a balanced k-color start against three
adversaries (plant-invalid, boost-runner-up, random noise) at multiples
of the [BCN+16] budget scale: stabilisation rate, rounds, and validity of
the winner.  Since PR 5 the whole grid is one declarative
:class:`repro.StudySpec` — a single ``adversary`` axis of six strategies
— executed by :func:`repro.run_study`; each cell's
:class:`~repro.study.RunRecord` carries the §5 validity masks in
``extras`` and the backend the runtime's cost model resolved, which this
bench asserts is the count-level lock-step fast path
(``ensemble-adversary-counts``: 3-Majority is an AC-process and all three
adversaries have count-level corruption laws).
"""

import numpy as np

from repro import StudySpec, run_study
from repro.adversary import recommended_corruption_budget
from repro.experiments import Table

from conftest import emit

N = 1024
K = 3
REPLICAS = 10
SEED = 20170725

BASE_BUDGET = max(1, recommended_corruption_budget(N, K))

#: The §5 scenario grid as one declarative axis: every strategy at 1× and
#: 4× the [BCN+16] budget scale (explicit budgets, so the spec is
#: self-describing provenance rather than depending on the resolver).
_ADVERSARIES = [
    {"name": name, "budget": BASE_BUDGET * multiplier}
    for multiplier in (1, 4)
    for name in ("plant-invalid", "boost-runner-up", "random-noise")
]

SPEC = StudySpec(
    name="E11  3-Majority vs dynamic adversaries (§5, [BCN+16] tolerance)",
    seed=SEED,
    repetitions=REPLICAS,
    stable_fraction=0.9,
    axes={
        "process": ["3-majority"],
        "workload": [{"name": "balanced", "kwargs": {"k": K}}],
        "n": [N],
        "adversary": _ADVERSARIES,
        "max_rounds": [8000],
        "rng_mode": ["batched"],
    },
)


def _measure():
    store = run_study(SPEC)
    rows = []
    for record in store.records():
        # The registry's cost model must pick the §5 count-level fast path.
        assert record.resolved_backend == "ensemble-adversary-counts", (
            record.resolved_backend
        )
        adversary = record.params["adversary"]
        stabilized = int(np.asarray(record.stopped).sum())
        valid = int(sum(record.extras["valid_almost_all_consensus"]))
        rows.append(
            (
                f"{adversary['name']} F={adversary['budget']}",
                f"{stabilized}/{REPLICAS}",
                f"{valid}/{REPLICAS}",
                float(np.asarray(record.times).mean()),
            )
        )
    return rows


def bench_e11_adversary(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=(
            f"E11  3-Majority vs dynamic adversaries (n={N}, k={K}, "
            f"[BCN+16] budget scale ≈ {BASE_BUDGET})"
        ),
        columns=["adversary", "stabilized", "valid winner", "mean rounds"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        "§5 success criterion: a stable almost-all regime on a VALID color."
    )
    emit(table)

    for label, stabilized, valid, _rounds in rows:
        # 3-Majority must reach a valid stable regime in (almost) every run
        # at these sub-threshold budgets.
        assert stabilized == valid, label  # whenever stable, the winner is valid
        broke = int(stabilized.split("/")[0])
        assert broke >= REPLICAS - 1, label
