"""E11 — §5 fault tolerance: 3-Majority under a dynamic adversary.

Paper background: 2-Choices and 3-Majority are self-stabilising consensus
protocols that tolerate an adversary corrupting a bounded set of nodes
every round; [BCN+16] proves 3-Majority (for ``k = o(n^{1/3})``)
tolerates corruption budgets ``O(√n / (k^{5/2} log n))`` while reaching a
stable regime of almost-all *valid* consensus.  Section 5 poses extending
such guarantees through the AC-framework as open.

Regenerated table: 3-Majority from a balanced k-color start against three
adversaries (plant-invalid, boost-runner-up, random noise) at multiples
of the [BCN+16] budget scale: stabilisation rate, rounds, and validity of
the winner.  Each scenario is one adversarial :class:`SimulationPlan`
executed through the unified runtime, whose cost model resolves the
count-level lock-step fast path (``ensemble-adversary-counts``:
3-Majority is an AC-process and all three adversaries have count-level
corruption laws) — which is what lets this bench afford more replicas
per scenario than the old sequential loop.
"""

import numpy as np

from repro.adversary import (
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
)
from repro.core import Configuration
from repro.engine import SimulationPlan, execute, resolve_backend
from repro.experiments import Table
from repro.processes import ThreeMajority

from conftest import emit

N = 1024
K = 3
REPLICAS = 10
SEED = 20170725


def _measure():
    base_budget = max(1, recommended_corruption_budget(N, K))
    scenarios = []
    for multiplier in (1, 4):
        budget = base_budget * multiplier
        scenarios.extend(
            [
                (f"plant-invalid F={budget}", PlantInvalid(budget, invalid_color=K + 5)),
                (f"boost-runner-up F={budget}", BoostRunnerUp(budget)),
                (f"random-noise F={budget}", RandomNoise(budget, K)),
            ]
        )
    rows = []
    for label, adversary in scenarios:
        plan = SimulationPlan(
            process=ThreeMajority,
            initial=Configuration.balanced(N, K),
            repetitions=REPLICAS,
            adversary=adversary,
            rng=SEED,
            max_rounds=8000,
            stable_fraction=0.9,
        )
        # The registry's cost model must pick the §5 count-level fast path.
        resolved = resolve_backend(plan).spec.name
        assert resolved == "ensemble-adversary-counts", resolved
        result = execute(plan).raw
        stabilized = int(result.stabilized.sum())
        valid = int(result.valid_almost_all_consensus.sum())
        rows.append(
            (
                label,
                f"{stabilized}/{result.repetitions}",
                f"{valid}/{result.repetitions}",
                float(result.rounds.mean()),
            )
        )
    return rows, base_budget


def bench_e11_adversary(benchmark):
    rows, base_budget = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=(
            f"E11  3-Majority vs dynamic adversaries (n={N}, k={K}, "
            f"[BCN+16] budget scale ≈ {base_budget})"
        ),
        columns=["adversary", "stabilized", "valid winner", "mean rounds"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        "§5 success criterion: a stable almost-all regime on a VALID color."
    )
    emit(table)

    for label, stabilized, valid, _rounds in rows:
        # 3-Majority must reach a valid stable regime in (almost) every run
        # at these sub-threshold budgets.
        assert stabilized == valid, label  # whenever stable, the winner is valid
        broke = int(stabilized.split("/")[0])
        assert broke >= REPLICAS - 1, label
