"""E8 — Appendix B: the 7/12 counterexample, exactly.

Paper claim (Equation (24) and surrounding text): for the comparable pair
``(1/2, 1/2, 0, 0) ⪰ (1/2, 1/6, 1/6, 1/6)``, the ``(h+1)``-Majority image
of the upper configuration stays ``(1/2, 1/2, 0, 0)`` by symmetry, while
the 3-Majority image of the *lower* one puts exactly ``7/12`` on its top
color — so the image majorization Lemma 1 would need for the h-Majority
hierarchy (Conjecture 1) fails, by exactly ``1/12`` at prefix one.

Regenerated artifacts: the exact rational α-vectors, the three terms of
Equation (24), the dominance-framework search re-discovering the same
violation from scratch on integer configurations, and a Monte-Carlo
confirmation that the one-round empirical images behave as predicted.
"""

from fractions import Fraction

import numpy as np

from repro.analysis import empirical_mean_next_counts
from repro.core import Configuration
from repro.core.ac_process import HMajorityFunction
from repro.core.dominance import find_dominance_counterexample
from repro.core.hierarchy import appendix_b_counterexample, equation_24_terms
from repro.experiments import Table
from repro.processes import HMajority

from conftest import emit


def _measure():
    report = appendix_b_counterexample(h=3)
    terms = equation_24_terms()
    rediscovered = find_dominance_counterexample(
        HMajorityFunction(4), HMajorityFunction(3), n_values=[12]
    )
    # Monte-Carlo: one agent-level 3-Majority round from (6,2,2,2) (n=12
    # scaled up to n=1200 for tighter concentration) should put about 7/12
    # of the nodes on color 0 in expectation.
    config = Configuration([600, 200, 200, 200])
    rng = np.random.default_rng(8)
    empirical = empirical_mean_next_counts(HMajority(3), config, 2000, rng)
    top_fraction = float(empirical[0] / 1200)
    return report, terms, rediscovered, top_fraction


def bench_e8_counterexample(benchmark):
    report, terms, rediscovered, top_fraction = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table = Table(
        title="E8  Appendix B: Lemma 1 cannot prove the h-Majority hierarchy",
        columns=["quantity", "value"],
    )
    table.add_row("upper x̃ (4-Majority input)", str(report.x_upper))
    table.add_row("lower x (3-Majority input)", str(report.x_lower))
    table.add_row("x̃ ⪰ x (inputs comparable)", report.inputs_comparable)
    table.add_row("α⁴ᴹ(x̃)", str(report.alpha_upper))
    table.add_row("α³ᴹ(x)[0] (Equation 24)", str(report.top_mass_lower))
    table.add_row("Equation-24 terms", " + ".join(str(t) for t in terms))
    table.add_row("α⁴ᴹ(x̃) ⪰ α³ᴹ(x)?", report.images_majorize)
    table.add_row("violation at prefix 1", str(report.top_mass_lower - Fraction(1, 2)))
    table.add_row("rediscovered on n=12 ints", str(rediscovered.lower))
    table.add_row("Monte-Carlo top fraction", top_fraction)
    emit(table)

    assert report.top_mass_lower == Fraction(7, 12)
    assert sum(terms) == Fraction(7, 12)
    assert report.lemma1_hypothesis_fails()
    assert rediscovered is not None and rediscovered.gap > 0
    assert abs(top_fraction - 7 / 12) < 0.01
