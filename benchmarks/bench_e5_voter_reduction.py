"""E5 — Lemma 3 / Equation (18): Voter color reduction and the 20n/k bound.

Paper claims: (a) Voter reduces from ``n`` to ``k`` colors w.h.p. in
``O((n/k) log n)`` rounds; (b) via the coalescence dual and the variable
drift theorem, ``E[T^k_C] = E[T^k_V] ≤ 20 n / k`` — the paper's only
explicit-constant bound.

Regenerated table: for a sweep of ``k`` at fixed ``n``, the measured mean
of ``T^k_V`` and of ``T^k_C`` (independent coalescing-walk runs), the
``20n/k`` bound, and the empirical constant ``mean · k / n`` (≈ 2 in
practice — the paper's 20 is proof slack).
"""

import numpy as np

from repro.analysis import coalescence_expected_upper, fit_power_law
from repro.coalescing import coalescence_reduction_time
from repro.core import Configuration
from repro.engine import ColorsAtMost, repeat_first_passage
from repro.experiments import Table
from repro.graphs import CompleteGraph
from repro.processes import Voter

from conftest import emit

N = 1024
K_VALUES = [2, 4, 8, 16, 32, 64]
REPETITIONS = 12


def _measure():
    graph = CompleteGraph(N)
    config = Configuration.singletons(N)
    rows = []
    for k in K_VALUES:
        voter_times = repeat_first_passage(
            Voter, config, ColorsAtMost(k), REPETITIONS, rng=k, backend="counts"
        )
        walk_times = np.asarray(
            [
                coalescence_reduction_time(graph, k, np.random.default_rng(7000 + 31 * k + s))
                for s in range(REPETITIONS)
            ]
        )
        rows.append(
            (
                k,
                float(voter_times.mean()),
                float(walk_times.mean()),
                coalescence_expected_upper(N, k),
                float(voter_times.mean() * k / N),
            )
        )
    return rows


def bench_e5_voter_reduction(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=f"E5  Voter/coalescence reduction to k colors (n={N})",
        columns=["k", "mean T^k_V", "mean T^k_C", "20n/k bound", "const = mean·k/n"],
    )
    for row in rows:
        table.add_row(*row)
    k_arr = np.asarray(K_VALUES, dtype=float)
    fit = fit_power_law(k_arr, np.asarray([r[1] for r in rows]))
    table.add_footnote(f"T^k_V vs k fit (expect ≈ k^-1): {fit.summary()}")
    emit(table)

    for k, mean_v, mean_c, bound, _const in rows:
        assert mean_v < bound, k          # Equation (19) for Voter
        assert mean_c < bound, k          # Equation (18) for coalescence
        # Duality (Lemma 4): the two means agree up to Monte-Carlo noise.
        assert abs(mean_v - mean_c) < 0.35 * max(mean_v, mean_c) + 2.0, k
    # 1/k scaling.
    assert -1.35 < fit.exponent < -0.65, fit.summary()
