"""E4 — Lemma 2 / Theorem 2: Voter's reduction times dominate 3-Majority's.

Paper claim: there is a coupling under which, started from the same
configuration, 3-Majority never has more remaining colors than Voter;
in particular ``T^κ_{3M} ≤_st T^κ_{V}`` for every κ.

Regenerated table: for several κ, the mean reduction times of both
processes, the Mann-Whitney one-sided p-value for stochastic ordering,
and whether the empirical CDFs are ordered pointwise.  Also re-verifies
the *exact* dominance condition (Definition 2) exhaustively on a small
system — the executable proof obligation of Lemma 2.
"""

import numpy as np

from repro.analysis import mann_whitney_less
from repro.core import Configuration
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.core.dominance import verify_dominance_exhaustive
from repro.engine import ColorsAtMost, cdf_dominates, repeat_first_passage
from repro.experiments import Table
from repro.processes import ThreeMajority, Voter

from conftest import emit

N = 512
KAPPAS = [1, 2, 8, 32]
REPETITIONS = 40


def _measure():
    config = Configuration.singletons(N)
    rows = []
    for kappa in KAPPAS:
        fast = repeat_first_passage(
            ThreeMajority, config, ColorsAtMost(kappa), REPETITIONS, rng=kappa, backend="counts"
        )
        slow = repeat_first_passage(
            Voter, config, ColorsAtMost(kappa), REPETITIONS, rng=10_000 + kappa, backend="counts"
        )
        rows.append(
            (
                kappa,
                float(fast.mean()),
                float(slow.mean()),
                mann_whitney_less(fast, slow),
                cdf_dominates(fast, slow, slack=0.15),
            )
        )
    exact = verify_dominance_exhaustive(ThreeMajorityFunction(), VoterFunction(), n=8)
    return rows, exact


def bench_e4_domination(benchmark):
    rows, exact = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=f"E4  T^κ from {N} distinct colors: 3-Majority (fast) vs Voter (slow)",
        columns=["κ", "mean 3-majority", "mean voter", "p(3M <_st V)", "CDFs ordered"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(exact.summary())
    emit(table)

    assert exact.holds  # Definition 2 verified exhaustively (Lemma 2).
    for kappa, mean_fast, mean_slow, pvalue, ordered in rows:
        assert mean_fast < mean_slow, kappa
        assert pvalue < 1e-3, kappa
        assert ordered, kappa
