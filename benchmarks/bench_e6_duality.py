"""E6 — Lemma 4 / Figure 1: the exact Voter/coalescence duality coupling.

Paper claim: on *any* graph there is a shared-randomness coupling (time
reversal of the pull choices) under which the Voter opinion map after
``T`` rounds equals the coalescing-walk position map after ``T`` steps —
surely, not just in distribution.  Hence ``T^k_V = T^k_C``.

Regenerated table: for several graph families and horizons, the number of
runs (out of many seeds) in which the coupled maps coincided — the paper
predicts all of them — plus the forward-run distributional check on mean
remaining-color / walk-count trajectories.
"""

import numpy as np

from repro.coalescing import (
    coalescence_counts_forward,
    run_duality_coupling,
    voter_opinion_counts_forward,
)
from repro.experiments import Table
from repro.graphs import CompleteGraph, CycleGraph, random_regular_graph

from conftest import emit

SEEDS = 40
HORIZONS = [1, 8, 64]


def _graphs():
    rng = np.random.default_rng(99)
    return [
        ("complete n=64", CompleteGraph(64)),
        ("complete n=64 (no self)", CompleteGraph(64, include_self=False)),
        ("cycle n=48", CycleGraph(48)),
        ("random 3-regular n=48", random_regular_graph(48, 3, rng)),
    ]


def _measure():
    rows = []
    for label, graph in _graphs():
        for horizon in HORIZONS:
            identical = 0
            counts_equal = 0
            for seed in range(SEEDS):
                witness = run_duality_coupling(
                    graph, horizon, np.random.default_rng(seed)
                )
                identical += int(witness.maps_identical)
                counts_equal += int(witness.counts_equal)
            rows.append((label, horizon, f"{identical}/{SEEDS}", f"{counts_equal}/{SEEDS}"))
    # Distributional forward check on the complete graph.
    graph = CompleteGraph(48)
    horizon, reps = 32, 150
    voter_mean = np.zeros(horizon + 1)
    walks_mean = np.zeros(horizon + 1)
    for seed in range(reps):
        voter_mean += voter_opinion_counts_forward(
            graph.pull_matrix(horizon, np.random.default_rng(40_000 + seed))
        )
        walks_mean += coalescence_counts_forward(
            graph.pull_matrix(horizon, np.random.default_rng(80_000 + seed))
        )
    voter_mean /= reps
    walks_mean /= reps
    max_gap = float(np.abs(voter_mean - walks_mean).max())
    return rows, max_gap


def bench_e6_duality(benchmark):
    rows, max_gap = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E6  Lemma-4 coupling: coupled maps identical (surely)?",
        columns=["graph", "horizon T", "maps identical", "|colors|=|walks|"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        f"forward-run mean-trajectory gap (distributional duality): {max_gap:.3f} colors"
    )
    emit(table)

    for label, horizon, identical, counts_equal in rows:
        assert identical == f"{SEEDS}/{SEEDS}", (label, horizon)
        assert counts_equal == f"{SEEDS}/{SEEDS}", (label, horizon)
    assert max_gap < 1.5
