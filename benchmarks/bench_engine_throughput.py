"""Engine throughput: sequential vs ensemble vs sharded execution paths.

The reproducible speedup report behind the engine layer, by section:

* ``scenarios`` — the PR-1 headline: ``repeat_first_passage`` through the
  sequential and vectorized-ensemble paths (3-Majority counts n=10⁴ k=2
  R=100; 2-Choices agent n=2048).  With ``rng_mode="per-replica"`` the
  ensemble engine must reproduce the sequential samples bit-for-bit.
* ``sharded`` — the multicore path: the same ensemble split over a
  ``multiprocessing`` pool (``ShardedEnsembleExecutor``), timed at
  worker counts 1/2/4 on a heavy counts workload (3-Majority, n=10⁴,
  k=1024 balanced, R=200).  ``workers=1`` is bit-for-bit the in-process
  ensemble; the ≥2× multicore target applies on machines with ≥4 cores
  (the report records ``cpu_count`` so single-core CI stays honest).
* ``async`` — the one-node-per-tick scheduler: looping the sequential
  :func:`run_asynchronous` vs the lock-step
  :func:`run_asynchronous_ensemble` over a fixed tick budget.
* ``adversary`` — §5 robust runs: looping :func:`run_with_adversary` vs
  :func:`run_with_adversary_ensemble` (count-level fast path for the
  AC-process; agent-level timing reported alongside).
* ``faults`` — the fault-injection overhead: the same batched
  ensemble-counts workload over a fixed round budget with and without an
  active crash/recovery/loss schedule, reporting the wall-time ratio
  (fault-free plans skip the fault path entirely, so the interesting
  number is the cost of a *live* schedule per round).
* ``study-parallel`` — the study layer's scheduling and caching: the
  shipped ``studies/consensus_scaling.toml`` run sequentially, then with
  ``workers=2`` (asserted ``results_equal`` bit-for-bit), then again
  against the warm content-addressed result cache (asserted 100% hits
  and, in full mode, a ≥5× wall-time reduction).
* ``kernels`` — the fused-kernel layer (:mod:`repro.engine.kernels`):
  the switch-and-redistribute agent kernel vs the sequential and
  lock-step agent paths on the 2-Choices headline (n=2048 k=8 R=50,
  where the plain ensemble only managed ~1×), and the dependency-
  wavefront async kernel vs the per-tick ensemble loop.  Records the
  active kernel mode (``numba``/``numpy``) and, in full mode, a
  ``smoke_reference`` block that ``scripts/check.sh --kernels-check``
  regression-gates fresh smoke runs against (>20% drop fails).

Each section also records which backend the unified runtime's
``resolve_backend`` cost model picks for its representative plan
(``resolved_backend``), so the report documents the registry's decisions
alongside the measured speedups.

Run as a script to (re)generate ``BENCH_engine.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks every section to a ≤30 s sanity check (used by tier-1
via ``tests/test_bench_engine_smoke.py`` and ``scripts/check.sh``; the
sharded smoke runs R=4 over workers=2 so pool plumbing and seed
derivation are exercised on every run) and does not overwrite the
committed full-size report unless asked to.
"""

import argparse
import json
import os
import pathlib
import shutil
import tempfile
import time

import numpy as np

from repro.adversary import PlantInvalid, run_with_adversary, run_with_adversary_ensemble
from repro.core import Configuration
from repro.engine import (
    Consensus,
    MaxSupportAbove,
    ShardedEnsembleExecutor,
    SimulationPlan,
    repeat_first_passage,
    resolve_backend,
    run_agent_ensemble,
    run_asynchronous,
    run_asynchronous_ensemble,
    run_counts_ensemble,
    run_fused_agent_ensemble,
    run_fused_asynchronous_ensemble,
    spawn_generators,
)
from repro.engine.kernels import HAVE_NUMBA, kernel_mode
from repro.faults import build_fault_schedule
from repro.processes import ThreeMajority, TwoChoices
from repro.study import StudySpec, load_spec, run_study


def _resolved(**plan_kwargs) -> str:
    """Which backend the runtime's cost model picks for this section."""
    return resolve_backend(SimulationPlan(backend="auto", **plan_kwargs)).spec.name

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

FULL_SCENARIOS = [
    # (label, process factory, initial, repetitions, sequential backend, ensemble backend)
    {
        "label": "3-majority counts n=10^4 k=2 R=100",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(10_000, 2),
        "repetitions": 100,
        "sequential": "counts",
        "ensemble": "ensemble-counts",
    },
    {
        "label": "2-choices agent n=2048 k=8 R=50",
        "factory": TwoChoices,
        "initial": lambda: Configuration.biased(2048, 8, 64),
        "repetitions": 50,
        "sequential": "agent",
        "ensemble": "ensemble-agent",
    },
]

SMOKE_SCENARIOS = [
    {
        "label": "3-majority counts n=2000 k=2 R=30 (smoke)",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(2000, 2),
        "repetitions": 30,
        "sequential": "counts",
        "ensemble": "ensemble-counts",
    },
]

FULL_SHARDED = {
    "label": "3-majority sharded-counts n=10^4 k=1024 R=200",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(10_000, 1024),
    "repetitions": 200,
    "backend": "counts",
    "workers": (1, 2, 4),
}

SMOKE_SHARDED = {
    "label": "3-majority sharded-counts n=2000 k=2 R=4 workers=2 (smoke)",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(2000, 2),
    "repetitions": 4,
    "backend": "counts",
    "workers": (1, 2),
}

FULL_ASYNC = {
    "label": "3-majority async n=2048 k=2 R=50 T=2n",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(2048, 2),
    "repetitions": 50,
    "tick_budget": lambda n: 2 * n,
}

SMOKE_ASYNC = {
    "label": "3-majority async n=256 k=2 R=8 T=2n (smoke)",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(256, 2),
    "repetitions": 8,
    "tick_budget": lambda n: 2 * n,
}

FULL_ADVERSARY = {
    "label": "3-majority vs plant-invalid n=2048 k=3 F=5 R=50",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(2048, 3),
    "adversary": lambda: PlantInvalid(5, invalid_color=8),
    "repetitions": 50,
    "max_rounds": 4000,
}

SMOKE_ADVERSARY = {
    "label": "3-majority vs plant-invalid n=400 k=3 F=2 R=20 (smoke)",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(400, 3),
    "adversary": lambda: PlantInvalid(2, invalid_color=8),
    "repetitions": 20,
    "max_rounds": 3000,
}

FULL_FAULTS = {
    "label": "3-majority ensemble-counts fault overhead n=10^4 k=2 R=100 T=200",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(10_000, 2),
    "repetitions": 100,
    "max_rounds": 200,
    "faults": {"crash": 0.001, "recover": 0.05, "loss": 0.01},
}

SMOKE_FAULTS = {
    "label": "3-majority ensemble-counts fault overhead n=2000 k=2 R=20 T=100 (smoke)",
    "factory": ThreeMajority,
    "initial": lambda: Configuration.balanced(2000, 2),
    "repetitions": 20,
    "max_rounds": 100,
    "faults": {"crash": 0.001, "recover": 0.05, "loss": 0.01},
}

STUDY_SPEC_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "studies"
    / "consensus_scaling.toml"
)

FULL_STUDY = {
    "label": "consensus-scaling study (9 cells) workers=2 + result cache",
    "spec": lambda: load_spec(str(STUDY_SPEC_PATH)),
    "workers": 2,
}

SMOKE_STUDY = {
    "label": "study 4 cells workers=2 + result cache (smoke)",
    "spec": lambda: StudySpec(
        name="bench study smoke",
        seed=13,
        repetitions=2,
        axes={
            "process": ["3-majority", "voter"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        },
    ),
    "workers": 2,
}

FULL_KERNELS = {
    "sync": {
        # The scenario the plain agent ensemble failed to accelerate
        # (≈1× in the PR-1 report): wide-k 2-Choices first passage.
        "label": "2-choices kernel-agent n=2048 k=8 R=50",
        "factory": TwoChoices,
        "initial": lambda: Configuration.biased(2048, 8, 64),
        "repetitions": 50,
    },
    "async": {
        "label": "3-majority kernel-async n=2048 k=2 R=50 T=2n",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(2048, 2),
        "repetitions": 50,
        "tick_budget": lambda n: 2 * n,
    },
}

SMOKE_KERNELS = {
    "sync": {
        "label": "2-choices kernel-agent n=512 k=4 R=16 (smoke)",
        "factory": TwoChoices,
        "initial": lambda: Configuration.biased(512, 4, 32),
        "repetitions": 16,
    },
    "async": {
        "label": "3-majority kernel-async n=512 k=2 R=16 T=2n (smoke)",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(512, 2),
        "repetitions": 16,
        "tick_budget": lambda n: 2 * n,
    },
}

SEED = 20170725  # PODC'17 presentation date


def _time_backend(scenario, backend: str) -> "tuple[float, np.ndarray]":
    factory = scenario["factory"]
    initial = scenario["initial"]()
    # One warm-up replica keeps allocator/JIT-free numpy setup noise out of
    # the measured section.
    repeat_first_passage(
        lambda: factory(), initial, Consensus(), 1, rng=SEED, backend=backend
    )
    start = time.perf_counter()
    times = repeat_first_passage(
        lambda: factory(),
        initial,
        Consensus(),
        scenario["repetitions"],
        rng=SEED,
        backend=backend,
    )
    return time.perf_counter() - start, times


def _exactness_check(scenario) -> bool:
    """Per-replica ensemble must equal the sequential counts samples."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = min(scenario["repetitions"], 25)
    sequential = repeat_first_passage(
        lambda: factory(), initial, Consensus(), repetitions, rng=SEED, backend="counts"
    )
    ensemble = run_counts_ensemble(
        factory(), initial, repetitions, rng=SEED, rng_mode="per-replica"
    )
    return bool(np.array_equal(sequential, ensemble.times))


def _agent_exactness_check(scenario) -> bool:
    """Per-replica agent ensemble must equal the sequential agent samples.

    This is the exact-stream contract the fused kernel must *not* claim:
    ``rng_mode="per-replica"`` keeps routing through the loop engines, so
    the sequential bit-for-bit guarantee survives the kernel layer.
    """
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = min(scenario["repetitions"], 25)
    sequential = repeat_first_passage(
        lambda: factory(), initial, Consensus(), repetitions, rng=SEED, backend="agent"
    )
    ensemble = run_agent_ensemble(
        factory(), initial, repetitions, rng=SEED, rng_mode="per-replica"
    )
    return bool(np.array_equal(sequential, ensemble.times))


def _best_seconds(fn, repeats: int = 7) -> float:
    """Min-of-N wall time.  The kernel sections are ms-scale, and under
    load (single-core CI, pool workers from earlier sections) any mean or
    median is dominated by interference; the minimum is the run the OS
    left alone, which is the quantity the regression gate can compare
    across sessions."""
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return min(samples)


def _measure_scenarios(scenarios) -> list:
    entries = []
    for scenario in scenarios:
        seq_seconds, seq_times = _time_backend(scenario, scenario["sequential"])
        ens_seconds, ens_times = _time_backend(scenario, scenario["ensemble"])
        entry = {
            "label": scenario["label"],
            "repetitions": scenario["repetitions"],
            "sequential_backend": scenario["sequential"],
            "ensemble_backend": scenario["ensemble"],
            "resolved_backend": _resolved(
                process=scenario["factory"],
                initial=scenario["initial"](),
                stop=Consensus(),
                repetitions=scenario["repetitions"],
                rng=SEED,
            ),
            "sequential_seconds": round(seq_seconds, 4),
            "ensemble_seconds": round(ens_seconds, 4),
            "speedup": round(seq_seconds / ens_seconds, 2),
            "sequential_mean_rounds": round(float(seq_times.mean()), 2),
            "ensemble_mean_rounds": round(float(ens_times.mean()), 2),
        }
        if scenario["sequential"] == "counts":
            entry["per_replica_rng_exact_match"] = _exactness_check(scenario)
        elif scenario["sequential"] == "agent":
            entry["per_replica_rng_exact_match"] = _agent_exactness_check(scenario)
        entries.append(entry)
        print(
            f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
            f"ensemble {entry['ensemble_seconds']}s -> {entry['speedup']}x"
        )
    return entries


def _measure_sharded(scenario) -> dict:
    """Shard-scaling: the same ensemble at increasing worker counts."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = scenario["repetitions"]
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "backend": scenario["backend"],
        "resolved_backend": _resolved(
            process=factory,
            initial=initial,
            stop=Consensus(),
            repetitions=repetitions,
            rng=SEED,
            rng_mode="per-replica",
            workers=max(scenario["workers"]),
        ),
        "workers": [],
    }
    baseline_seconds = None
    baseline_times = None
    for workers in scenario["workers"]:
        executor = ShardedEnsembleExecutor(workers=workers)
        start = time.perf_counter()
        result = executor.run(
            factory(),
            initial,
            repetitions,
            rng=SEED,
            backend=scenario["backend"],
            rng_mode="per-replica",
        )
        elapsed = time.perf_counter() - start
        if baseline_seconds is None:
            baseline_seconds = elapsed
            baseline_times = result.times
        entry["workers"].append(
            {
                "workers": workers,
                "seconds": round(elapsed, 4),
                "speedup_vs_workers1": round(baseline_seconds / elapsed, 2),
                "mean_rounds": round(float(result.times.mean()), 2),
                # Per-replica streams make merged results bit-for-bit
                # invariant to the worker count — verified on every run.
                "times_match_workers1": bool(
                    np.array_equal(result.times, baseline_times)
                ),
            }
        )
        print(
            f"{entry['label']} workers={workers}: {elapsed:.3f}s "
            f"({entry['workers'][-1]['speedup_vs_workers1']}x vs workers=1)"
        )
    return entry


def _measure_async(scenario) -> dict:
    """Fixed-tick-budget throughput: sequential loop vs lock-step ensemble."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = scenario["repetitions"]
    budget = scenario["tick_budget"](initial.num_nodes)
    # Warm-up.
    run_asynchronous(factory(), initial, rng=SEED, max_ticks=16)
    generators = spawn_generators(SEED, repetitions)
    start = time.perf_counter()
    for generator in generators:
        run_asynchronous(factory(), initial, rng=generator, max_ticks=budget)
    seq_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_asynchronous_ensemble(
        factory(), initial, repetitions, rng=SEED, max_ticks=budget
    )
    ens_seconds = time.perf_counter() - start
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "tick_budget": budget,
        "resolved_backend": _resolved(
            process=factory,
            initial=initial,
            stop=Consensus(),
            repetitions=repetitions,
            scheduler="asynchronous",
            rng=SEED,
            max_rounds=budget,
        ),
        "sequential_seconds": round(seq_seconds, 4),
        "ensemble_seconds": round(ens_seconds, 4),
        "speedup": round(seq_seconds / ens_seconds, 2),
    }
    print(
        f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
        f"ensemble {entry['ensemble_seconds']}s -> {entry['speedup']}x"
    )
    return entry


def _measure_adversary(scenario) -> dict:
    """§5 robust runs: sequential loop vs count-level/agent-level ensemble."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    adversary = scenario["adversary"]
    repetitions = scenario["repetitions"]
    max_rounds = scenario["max_rounds"]
    generators = spawn_generators(SEED, repetitions)
    start = time.perf_counter()
    sequential = [
        run_with_adversary(
            factory(), initial, adversary(), rng=generator,
            max_rounds=max_rounds, stable_fraction=0.9,
        )
        for generator in generators
    ]
    seq_seconds = time.perf_counter() - start
    start = time.perf_counter()
    counts_result = run_with_adversary_ensemble(
        factory(), initial, adversary(), repetitions, rng=SEED,
        max_rounds=max_rounds, stable_fraction=0.9, backend="counts",
    )
    counts_seconds = time.perf_counter() - start
    start = time.perf_counter()
    agent_result = run_with_adversary_ensemble(
        factory(), initial, adversary(), repetitions, rng=SEED,
        max_rounds=max_rounds, stable_fraction=0.9, backend="agent",
    )
    agent_seconds = time.perf_counter() - start
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "resolved_backend": _resolved(
            process=factory,
            initial=initial,
            adversary=adversary(),
            repetitions=repetitions,
            rng=SEED,
            max_rounds=max_rounds,
            stable_fraction=0.9,
        ),
        "sequential_seconds": round(seq_seconds, 4),
        "counts_ensemble_seconds": round(counts_seconds, 4),
        "agent_ensemble_seconds": round(agent_seconds, 4),
        "speedup": round(seq_seconds / counts_seconds, 2),
        "agent_speedup": round(seq_seconds / agent_seconds, 2),
        "sequential_stabilized": sum(r.stabilized for r in sequential),
        "counts_stabilized": int(counts_result.stabilized.sum()),
        "agent_stabilized": int(agent_result.stabilized.sum()),
        "counts_all_valid": bool(
            np.all(counts_result.winner_is_valid[counts_result.stabilized])
        ),
    }
    print(
        f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
        f"counts-ensemble {entry['counts_ensemble_seconds']}s -> "
        f"{entry['speedup']}x (agent {entry['agent_speedup']}x)"
    )
    return entry


def _measure_faults(scenario) -> dict:
    """Fault-path overhead on a fixed round budget (never-firing stop).

    Both runs advance exactly ``max_rounds`` rounds — the stopping
    condition cannot fire below ``n+1`` support — so the ratio isolates
    the per-round fault-mask cost from any change in trajectory length.
    """
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = scenario["repetitions"]
    max_rounds = scenario["max_rounds"]
    stop = MaxSupportAbove(initial.num_nodes)
    schedule = build_fault_schedule(scenario["faults"])
    kwargs = dict(rng=SEED, stop=stop, raise_on_limit=False)
    # Warm-up both paths.
    run_counts_ensemble(factory(), initial, 2, max_rounds=8, **kwargs)
    run_counts_ensemble(factory(), initial, 2, max_rounds=8, faults=schedule, **kwargs)
    start = time.perf_counter()
    run_counts_ensemble(factory(), initial, repetitions, max_rounds=max_rounds, **kwargs)
    base_seconds = time.perf_counter() - start
    start = time.perf_counter()
    run_counts_ensemble(
        factory(), initial, repetitions, max_rounds=max_rounds,
        faults=schedule, **kwargs,
    )
    fault_seconds = time.perf_counter() - start
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "max_rounds": max_rounds,
        "faults": dict(scenario["faults"]),
        "resolved_backend": _resolved(
            process=factory,
            initial=initial,
            stop=stop,
            repetitions=repetitions,
            rng=SEED,
            max_rounds=max_rounds,
            faults=schedule,
            raise_on_limit=False,
        ),
        "fault_free_seconds": round(base_seconds, 4),
        "faulted_seconds": round(fault_seconds, 4),
        "overhead_ratio": round(fault_seconds / base_seconds, 2),
    }
    print(
        f"{entry['label']}: fault-free {entry['fault_free_seconds']}s, "
        f"faulted {entry['faulted_seconds']}s -> "
        f"{entry['overhead_ratio']}x overhead"
    )
    return entry


def _measure_study_parallel(scenario) -> dict:
    """Study scheduling and caching: sequential vs workers=N vs warm cache.

    Three runs of the same spec.  The sequential run is the reference;
    the parallel run (which also fills a throwaway cache directory) must
    be ``results_equal`` bit-for-bit; the final run replays entirely
    from the cache, so its wall time is the cache's lookup cost.
    """
    spec = scenario["spec"]()
    workers = scenario["workers"]
    cells = spec.num_cells()
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        start = time.perf_counter()
        sequential = run_study(spec)
        seq_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = run_study(spec, workers=workers, cache=cache_dir)
        par_seconds = time.perf_counter() - start
        start = time.perf_counter()
        warm = run_study(spec, workers=workers, cache=cache_dir)
        warm_seconds = time.perf_counter() - start
        hits = sum(record.cache_hit for record in warm.records())
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    entry = {
        "label": scenario["label"],
        "cells": cells,
        "workers": workers,
        "sequential_seconds": round(seq_seconds, 4),
        "parallel_seconds": round(par_seconds, 4),
        "cells_per_second_sequential": round(cells / seq_seconds, 2),
        "cells_per_second_parallel": round(cells / par_seconds, 2),
        "parallel_results_equal": bool(parallel.results_equal(sequential)),
        "warm_cache_seconds": round(warm_seconds, 4),
        "cache_hit_rate": round(hits / cells, 4),
        "warm_speedup": round(seq_seconds / warm_seconds, 2),
    }
    print(
        f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
        f"workers={workers} {entry['parallel_seconds']}s "
        f"(results_equal={entry['parallel_results_equal']}), "
        f"warm cache {entry['warm_cache_seconds']}s -> "
        f"{entry['warm_speedup']}x at {entry['cache_hit_rate']:.0%} hits"
    )
    return entry


def _measure_kernel_sync(scenario) -> dict:
    """Fused agent kernel vs the sequential and lock-step agent paths."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = scenario["repetitions"]
    stop = Consensus()
    # Warm-ups (and, when numba is present, JIT compilation).
    repeat_first_passage(lambda: factory(), initial, stop, 1, rng=SEED, backend="agent")
    run_agent_ensemble(factory(), initial, 2, rng=SEED)
    kernel_result = run_fused_agent_ensemble(factory(), initial, 2, rng=SEED)
    seq_seconds = _best_seconds(
        lambda: repeat_first_passage(
            lambda: factory(), initial, stop, repetitions, rng=SEED, backend="agent"
        )
    )
    ens_seconds = _best_seconds(
        lambda: run_agent_ensemble(factory(), initial, repetitions, rng=SEED)
    )
    kern_seconds = _best_seconds(
        lambda: run_fused_agent_ensemble(factory(), initial, repetitions, rng=SEED)
    )
    kernel_result = run_fused_agent_ensemble(factory(), initial, repetitions, rng=SEED)
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "resolved_backend": _resolved(
            process=factory,
            initial=scenario["initial"](),
            stop=stop,
            repetitions=repetitions,
            rng=SEED,
        ),
        "sequential_seconds": round(seq_seconds, 4),
        "ensemble_agent_seconds": round(ens_seconds, 4),
        "kernel_seconds": round(kern_seconds, 4),
        "speedup_vs_sequential": round(seq_seconds / kern_seconds, 2),
        "speedup_vs_ensemble": round(ens_seconds / kern_seconds, 2),
        "kernel_mean_rounds": round(float(kernel_result.times.mean()), 2),
    }
    print(
        f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
        f"ensemble {entry['ensemble_agent_seconds']}s, "
        f"kernel {entry['kernel_seconds']}s -> "
        f"{entry['speedup_vs_sequential']}x vs sequential"
    )
    return entry


def _measure_kernel_async(scenario) -> dict:
    """Dependency-wavefront tick batching vs the per-tick ensemble loop."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = scenario["repetitions"]
    budget = scenario["tick_budget"](initial.num_nodes)
    run_asynchronous_ensemble(factory(), initial, 2, rng=SEED, max_ticks=64)
    run_fused_asynchronous_ensemble(factory(), initial, 2, rng=SEED, max_ticks=64)
    ens_seconds = _best_seconds(
        lambda: run_asynchronous_ensemble(
            factory(), initial, repetitions, rng=SEED, max_ticks=budget
        ),
        repeats=5,
    )
    kern_seconds = _best_seconds(
        lambda: run_fused_asynchronous_ensemble(
            factory(), initial, repetitions, rng=SEED, max_ticks=budget
        ),
        repeats=5,
    )
    entry = {
        "label": scenario["label"],
        "repetitions": repetitions,
        "tick_budget": budget,
        "resolved_backend": _resolved(
            process=factory,
            initial=initial,
            stop=Consensus(),
            repetitions=repetitions,
            scheduler="asynchronous",
            rng=SEED,
            max_rounds=budget,
        ),
        "ensemble_seconds": round(ens_seconds, 4),
        "kernel_seconds": round(kern_seconds, 4),
        "speedup_vs_ensemble": round(ens_seconds / kern_seconds, 2),
    }
    print(
        f"{entry['label']}: ensemble {entry['ensemble_seconds']}s, "
        f"kernel {entry['kernel_seconds']}s -> "
        f"{entry['speedup_vs_ensemble']}x vs ensemble"
    )
    return entry


def _measure_kernels(scenario, smoke_reference: bool = False) -> dict:
    """The fused-kernel section; in full mode also records the smoke-size
    baselines that ``--kernels-check`` regression-gates against."""
    entry = {
        "mode": kernel_mode(),
        "numba_available": HAVE_NUMBA,
        "sync": _measure_kernel_sync(scenario["sync"]),
        "async": _measure_kernel_async(scenario["async"]),
    }
    if smoke_reference:
        # Median of three full measurements: one favorable run would set
        # a floor that fresh --kernels-check runs keep tripping over.
        syncs = [_measure_kernel_sync(SMOKE_KERNELS["sync"]) for _ in range(3)]
        asyncs = [_measure_kernel_async(SMOKE_KERNELS["async"]) for _ in range(3)]
        entry["smoke_reference"] = {
            "sync_speedup_vs_sequential": sorted(
                s["speedup_vs_sequential"] for s in syncs
            )[1],
            "async_speedup_vs_ensemble": sorted(
                a["speedup_vs_ensemble"] for a in asyncs
            )[1],
        }
    return entry


def run_benchmark(smoke: bool = False, output: "pathlib.Path | None" = None) -> dict:
    """Measure every section and (optionally) write the JSON report."""
    report = {
        "mode": "smoke" if smoke else "full",
        "seed": SEED,
        "cpu_count": os.cpu_count() or 1,
        "scenarios": _measure_scenarios(SMOKE_SCENARIOS if smoke else FULL_SCENARIOS),
        "sharded": _measure_sharded(SMOKE_SHARDED if smoke else FULL_SHARDED),
        "async": _measure_async(SMOKE_ASYNC if smoke else FULL_ASYNC),
        "adversary": _measure_adversary(
            SMOKE_ADVERSARY if smoke else FULL_ADVERSARY
        ),
        "faults": _measure_faults(SMOKE_FAULTS if smoke else FULL_FAULTS),
        "study-parallel": _measure_study_parallel(
            SMOKE_STUDY if smoke else FULL_STUDY
        ),
        "kernels": _measure_kernels(
            SMOKE_KERNELS if smoke else FULL_KERNELS, smoke_reference=not smoke
        ),
    }
    if output is not None:
        output = pathlib.Path(output)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {output}")
    return report


def bench_engine_throughput(benchmark):
    """pytest-benchmark entry point (full scenarios, asserts the targets)."""
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    headline = report["scenarios"][0]
    assert headline["speedup"] >= 10.0, headline
    assert headline["per_replica_rng_exact_match"], headline
    agent = report["scenarios"][1]
    assert agent["per_replica_rng_exact_match"], agent
    assert report["async"]["speedup"] >= 5.0, report["async"]
    assert report["adversary"]["speedup"] >= 5.0, report["adversary"]
    # See main(): the draw-free tie-break sped the sequential baseline, so
    # the fused agent path's honest ratio here sits around 0.7-1.0x.
    assert report["adversary"]["agent_speedup"] >= 0.6, report["adversary"]
    kernels = report["kernels"]
    assert kernels["sync"]["speedup_vs_sequential"] >= 5.0, kernels["sync"]
    assert kernels["async"]["speedup_vs_ensemble"] >= 1.0, kernels["async"]
    study = report["study-parallel"]
    assert study["parallel_results_equal"], study
    assert study["cache_hit_rate"] == 1.0, study
    assert study["warm_speedup"] >= 5.0, study
    if report["cpu_count"] >= 4:
        best = max(w["speedup_vs_workers1"] for w in report["sharded"]["workers"])
        assert best >= 2.0, report["sharded"]


def _kernels_check(report_path: "pathlib.Path") -> int:
    """Regression gate for scripts/check.sh: re-measure the smoke-size
    kernel scenarios and fail on a >20% drop vs the committed report's
    ``kernels.smoke_reference`` block.  Run under both ``REPRO_NO_NUMBA``
    settings so the numpy fallback is gated too."""
    report_path = pathlib.Path(report_path)
    if not report_path.exists():
        print(f"FAIL: no recorded report at {report_path}")
        return 1
    reference = json.loads(report_path.read_text()).get("kernels", {}).get(
        "smoke_reference"
    )
    if not reference:
        print(f"FAIL: {report_path} has no kernels.smoke_reference baselines")
        return 1
    # The measurement window is milliseconds, so one preempted attempt
    # can fake a regression — a real one fails every retry.
    for attempt in range(3):
        fresh = _measure_kernels(SMOKE_KERNELS)
        checks = [
            (
                "sync kernel vs sequential",
                fresh["sync"]["speedup_vs_sequential"],
                reference["sync_speedup_vs_sequential"],
            ),
            (
                "async kernel vs ensemble",
                fresh["async"]["speedup_vs_ensemble"],
                reference["async_speedup_vs_ensemble"],
            ),
        ]
        failures = []
        for label, measured, recorded in checks:
            floor = 0.8 * recorded
            status = "OK" if measured >= floor else "FAIL"
            print(
                f"{status}: {label} {measured}x "
                f"(recorded {recorded}x, floor {round(floor, 2)}x, "
                f"mode={fresh['mode']}, attempt {attempt + 1})"
            )
            if measured < floor:
                failures.append(label)
        if not failures:
            return 0
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="≤30 s sanity mode")
    parser.add_argument(
        "--output",
        default=None,
        help=f"report path (default: {DEFAULT_OUTPUT} in full mode, none in smoke)",
    )
    parser.add_argument(
        "--kernels-check",
        nargs="?",
        const=str(DEFAULT_OUTPUT),
        default=None,
        metavar="REPORT",
        help="only re-measure the smoke-size kernel scenarios and fail on a "
        ">20%% speedup regression vs the recorded report (default: "
        f"{DEFAULT_OUTPUT})",
    )
    args = parser.parse_args()
    if args.kernels_check is not None:
        return _kernels_check(args.kernels_check)
    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    report = run_benchmark(smoke=args.smoke, output=output)
    headline = report["scenarios"][0]
    floor = 2.0 if args.smoke else 10.0
    failures = []
    if headline["speedup"] < floor:
        failures.append(
            f"headline speedup {headline['speedup']}x below the {floor}x target"
        )
    if headline.get("per_replica_rng_exact_match") is False:
        failures.append("per-replica ensemble diverged from the sequential samples")
    if not all(w["times_match_workers1"] for w in report["sharded"]["workers"]):
        failures.append("sharded per-replica results varied with the worker count")
    async_floor = 1.5 if args.smoke else 5.0
    if report["async"]["speedup"] < async_floor:
        failures.append(
            f"async ensemble speedup {report['async']['speedup']}x "
            f"below the {async_floor}x target"
        )
    if report["adversary"]["speedup"] < async_floor:
        failures.append(
            f"adversary ensemble speedup {report['adversary']['speedup']}x "
            f"below the {async_floor}x target"
        )
    # The agent-ensemble floor sits below 1.0 by design: the draw-free
    # 3-Majority tie-break (paper footnote 1) cut the *sequential* loop's
    # per-round draw count, while the fused switch-law step's cost never
    # depended on the tie-break — so the honest agent-path ratio on this
    # scenario now hovers around 0.7-1.0x.  The number stays recorded for
    # tracking; a real kernel regression would push it far below.
    if report["adversary"]["agent_speedup"] < 0.6:
        failures.append(
            f"adversary agent-ensemble {report['adversary']['agent_speedup']}x "
            "is far below sequential (fused colors kernel regression)"
        )
    study = report["study-parallel"]
    if not study["parallel_results_equal"]:
        failures.append(
            f"workers={study['workers']} study diverged from the sequential run"
        )
    if study["cache_hit_rate"] < 1.0:
        failures.append(
            f"warm cache hit rate {study['cache_hit_rate']:.0%} below 100%"
        )
    if not args.smoke and study["warm_speedup"] < 5.0:
        failures.append(
            f"warm-cache speedup {study['warm_speedup']}x below the 5x target"
        )
    kernels = report["kernels"]
    kernel_floor = 2.0 if args.smoke else 5.0
    if kernels["sync"]["speedup_vs_sequential"] < kernel_floor:
        failures.append(
            f"fused agent kernel {kernels['sync']['speedup_vs_sequential']}x "
            f"below the {kernel_floor}x target"
        )
    if kernels["async"]["speedup_vs_ensemble"] < 1.0:
        failures.append(
            f"async tick-batching kernel "
            f"{kernels['async']['speedup_vs_ensemble']}x is slower than the "
            "per-tick ensemble loop"
        )
    if not args.smoke and report["cpu_count"] >= 4:
        best = max(w["speedup_vs_workers1"] for w in report["sharded"]["workers"])
        if best < 2.0:
            failures.append(
                f"sharded speedup {best}x below the 2x multicore target"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print(
        f"OK: headline {headline['speedup']}x, async {report['async']['speedup']}x, "
        f"adversary {report['adversary']['speedup']}x, "
        f"kernel-agent {kernels['sync']['speedup_vs_sequential']}x, "
        f"kernel-async {kernels['async']['speedup_vs_ensemble']}x, "
        f"study warm-cache {study['warm_speedup']}x "
        f"(cpu_count={report['cpu_count']}, kernel_mode={kernels['mode']})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
