"""Engine throughput: sequential vs vectorized-ensemble ``repeat_first_passage``.

The reproducible speedup benchmark behind the ensemble engine.  The
headline scenario is the one the repo's perf target names — 3-Majority on
the exact count-level chain, ``n = 10⁴``, ``k = 2`` balanced, ``R = 100``
replicas — timed through ``repeat_first_passage`` on both paths:

* ``backend="counts"`` — the sequential reference: one run per replica,
  each paying per-round Python and small-array overhead;
* ``backend="ensemble-counts"`` — all replicas lock-step in one
  ``(R, k)`` matrix, one broadcast multinomial per round.

A second scenario covers the agent-level matrix path (2-Choices, which
has no count-level chain).  The report also re-checks correctness: with
``rng_mode="per-replica"`` the ensemble engine must reproduce the
sequential first-passage samples bit-for-bit.

Run as a script to (re)generate ``BENCH_engine.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_engine_throughput.py [--smoke]

``--smoke`` shrinks the scenarios to a ≤30 s sanity check (used by tier-1
via ``tests/test_bench_engine_smoke.py`` and ``scripts/check.sh``) and
does not overwrite the committed full-size report unless asked to.
"""

import argparse
import json
import pathlib
import time

import numpy as np

from repro.core import Configuration
from repro.engine import Consensus, repeat_first_passage, run_counts_ensemble
from repro.processes import ThreeMajority, TwoChoices

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"

FULL_SCENARIOS = [
    # (label, process factory, initial, repetitions, sequential backend, ensemble backend)
    {
        "label": "3-majority counts n=10^4 k=2 R=100",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(10_000, 2),
        "repetitions": 100,
        "sequential": "counts",
        "ensemble": "ensemble-counts",
    },
    {
        "label": "2-choices agent n=2048 k=8 R=50",
        "factory": TwoChoices,
        "initial": lambda: Configuration.biased(2048, 8, 64),
        "repetitions": 50,
        "sequential": "agent",
        "ensemble": "ensemble-agent",
    },
]

SMOKE_SCENARIOS = [
    {
        "label": "3-majority counts n=2000 k=2 R=30 (smoke)",
        "factory": ThreeMajority,
        "initial": lambda: Configuration.balanced(2000, 2),
        "repetitions": 30,
        "sequential": "counts",
        "ensemble": "ensemble-counts",
    },
]

SEED = 20170725  # PODC'17 presentation date


def _time_backend(scenario, backend: str) -> "tuple[float, np.ndarray]":
    factory = scenario["factory"]
    initial = scenario["initial"]()
    # One warm-up replica keeps allocator/JIT-free numpy setup noise out of
    # the measured section.
    repeat_first_passage(
        lambda: factory(), initial, Consensus(), 1, rng=SEED, backend=backend
    )
    start = time.perf_counter()
    times = repeat_first_passage(
        lambda: factory(),
        initial,
        Consensus(),
        scenario["repetitions"],
        rng=SEED,
        backend=backend,
    )
    return time.perf_counter() - start, times


def _exactness_check(scenario) -> bool:
    """Per-replica ensemble must equal the sequential counts samples."""
    factory = scenario["factory"]
    initial = scenario["initial"]()
    repetitions = min(scenario["repetitions"], 25)
    sequential = repeat_first_passage(
        lambda: factory(), initial, Consensus(), repetitions, rng=SEED, backend="counts"
    )
    ensemble = run_counts_ensemble(
        factory(), initial, repetitions, rng=SEED, rng_mode="per-replica"
    )
    return bool(np.array_equal(sequential, ensemble.times))


def run_benchmark(smoke: bool = False, output: "pathlib.Path | None" = None) -> dict:
    """Measure every scenario and (optionally) write the JSON report."""
    scenarios = SMOKE_SCENARIOS if smoke else FULL_SCENARIOS
    report = {"mode": "smoke" if smoke else "full", "seed": SEED, "scenarios": []}
    for scenario in scenarios:
        seq_seconds, seq_times = _time_backend(scenario, scenario["sequential"])
        ens_seconds, ens_times = _time_backend(scenario, scenario["ensemble"])
        entry = {
            "label": scenario["label"],
            "repetitions": scenario["repetitions"],
            "sequential_backend": scenario["sequential"],
            "ensemble_backend": scenario["ensemble"],
            "sequential_seconds": round(seq_seconds, 4),
            "ensemble_seconds": round(ens_seconds, 4),
            "speedup": round(seq_seconds / ens_seconds, 2),
            "sequential_mean_rounds": round(float(seq_times.mean()), 2),
            "ensemble_mean_rounds": round(float(ens_times.mean()), 2),
        }
        if scenario["sequential"] == "counts":
            entry["per_replica_rng_exact_match"] = _exactness_check(scenario)
        report["scenarios"].append(entry)
        print(
            f"{entry['label']}: sequential {entry['sequential_seconds']}s, "
            f"ensemble {entry['ensemble_seconds']}s -> {entry['speedup']}x"
        )
    if output is not None:
        output = pathlib.Path(output)
        output.write_text(json.dumps(report, indent=2) + "\n")
        print(f"report written to {output}")
    return report


def bench_engine_throughput(benchmark):
    """pytest-benchmark entry point (full scenarios, asserts the target)."""
    report = benchmark.pedantic(run_benchmark, rounds=1, iterations=1)
    headline = report["scenarios"][0]
    assert headline["speedup"] >= 10.0, headline
    assert headline["per_replica_rng_exact_match"], headline


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="≤30 s sanity mode")
    parser.add_argument(
        "--output",
        default=None,
        help=f"report path (default: {DEFAULT_OUTPUT} in full mode, none in smoke)",
    )
    args = parser.parse_args()
    output = args.output
    if output is None and not args.smoke:
        output = DEFAULT_OUTPUT
    report = run_benchmark(smoke=args.smoke, output=output)
    headline = report["scenarios"][0]
    floor = 2.0 if args.smoke else 10.0
    if headline["speedup"] < floor:
        print(f"FAIL: speedup {headline['speedup']}x below the {floor}x target")
        return 1
    if headline.get("per_replica_rng_exact_match") is False:
        print("FAIL: per-replica ensemble diverged from the sequential samples")
        return 1
    print(f"OK: {headline['speedup']}x (target {floor}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
