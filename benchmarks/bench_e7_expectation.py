"""E7 — footnote 2: 2-Choices and 3-Majority agree exactly in expectation.

Paper claim: for both processes, if ``x_i`` is the current fraction of
color ``i`` then the expected fraction after one round is
``x_i² + (1 − Σ_j x_j²) x_i``.  The whole point of Theorem 1 is that this
identity coexists with a polynomial runtime gap.

Regenerated table: over a family of configurations (balanced, biased,
power-law, singleton), the maximum absolute gap between the closed-form
expectations of the two processes (analytically zero), plus empirical
one-round means from the agent-level implementations of both processes
against the shared formula.
"""

import numpy as np

from repro.analysis import (
    empirical_mean_next_counts,
    exact_expected_counts_ac,
    footnote2_identity_gap,
)
from repro.core import Configuration
from repro.core.ac_process import ThreeMajorityFunction
from repro.experiments import Table, workloads
from repro.processes import ThreeMajority, TwoChoices

from conftest import emit

REPETITIONS = 3000


def _configs():
    rng = np.random.default_rng(5)
    return [
        ("balanced n=120 k=4", Configuration.balanced(120, 4)),
        ("biased n=120 k=4 bias=40", Configuration.biased(120, 4, 40)),
        ("power-law n=120 k=8", workloads.power_law(120, 8, rng=rng)),
        ("singletons n=24", Configuration.singletons(24)),
        ("near-consensus (118,1,1)", Configuration([118, 1, 1])),
    ]


def _measure():
    rows = []
    for index, (label, config) in enumerate(_configs()):
        exact_gap = footnote2_identity_gap(config)
        shared = exact_expected_counts_ac(ThreeMajorityFunction(), config)
        rng = np.random.default_rng(12345 + index)
        emp_2c = empirical_mean_next_counts(TwoChoices(), config, REPETITIONS, rng)
        emp_3m = empirical_mean_next_counts(ThreeMajority(), config, REPETITIONS, rng)
        scale = max(1.0, float(np.abs(shared).max()))
        rows.append(
            (
                label,
                exact_gap,
                float(np.abs(emp_2c - shared).max()),
                float(np.abs(emp_3m - shared).max()),
                scale,
            )
        )
    return rows


def bench_e7_expectation_identity(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E7  footnote-2 identity: E[2-Choices(c)] = E[3-Majority(c)]",
        columns=[
            "configuration",
            "closed-form gap",
            "|emp(2C) − formula|",
            "|emp(3M) − formula|",
            "scale",
        ],
    )
    for row in rows:
        table.add_row(*row)
    emit(table)

    for label, exact_gap, gap_2c, gap_3m, scale in rows:
        assert exact_gap < 1e-9, label                   # identity is exact
        assert gap_2c < 0.06 * scale + 0.6, label        # agent impls match
        assert gap_3m < 0.06 * scale + 0.6, label
