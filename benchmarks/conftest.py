"""Shared helpers for the benchmark suite.

Each ``bench_e<id>_*.py`` module regenerates one experiment from
EXPERIMENTS.md: it measures the paper's quantity under ``pytest-benchmark``
timing, prints the paper-shaped table, and asserts the qualitative claim
(who wins, growth exponents, exact identities).  Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` shows the tables; EXPERIMENTS.md records a reference copy).
"""

import os

import pytest


def env_backend(default: str) -> str:
    """The ``REPRO_BACKEND`` perf knob, validated against the registry.

    Accepts any registered backend name or resolution alias of the
    unified runtime; a typo fails fast with the registry's vocabulary
    instead of deep inside a sweep.
    """
    from repro.engine.runtime import backend_choices

    backend = os.environ.get("REPRO_BACKEND", default)
    if backend not in backend_choices():
        raise SystemExit(
            f"REPRO_BACKEND={backend!r}: pick one of {', '.join(backend_choices())}"
        )
    return backend


def env_workers(default: "int | None") -> "int | None":
    """One shared meaning for the ``REPRO_WORKERS`` perf knob.

    A value ≥ 1 requests that many pool workers in every bench that takes
    the sharded path; ``0`` or unset keeps the bench's own ``default``
    (``None`` = all cores once a sharded backend is selected, ``1`` =
    in-process, bit-for-bit the plain ensemble engine).
    """
    raw = int(os.environ.get("REPRO_WORKERS", "0"))
    return raw if raw >= 1 else default


def emit(renderable) -> None:
    """Print a table/section with surrounding blank lines (visible via -s)."""
    print()
    print(renderable)
    print()


@pytest.fixture
def report():
    """The table printer as a fixture, for symmetry with benchmark."""
    return emit
