"""Shared helpers for the benchmark suite.

Each ``bench_e<id>_*.py`` module regenerates one experiment from
EXPERIMENTS.md: it measures the paper's quantity under ``pytest-benchmark``
timing, prints the paper-shaped table, and asserts the qualitative claim
(who wins, growth exponents, exact identities).  Run with::

    pytest benchmarks/ --benchmark-only -s

(the ``-s`` shows the tables; EXPERIMENTS.md records a reference copy).
"""

import pytest


def emit(renderable) -> None:
    """Print a table/section with surrounding blank lines (visible via -s)."""
    print()
    print(renderable)
    print()


@pytest.fixture
def report():
    """The table printer as a fixture, for symmetry with benchmark."""
    return emit
