"""Ablation — laziness in Voter (§3.2's pointed remark about [BGKMT16]).

The paper notes that the prior Voter-style analysis of [BGKMT16] "relies
critically on the fact that their process is lazy (nodes do not sample
with probability 1/2), while our proof does not require any laziness."
This bench quantifies what laziness costs at runtime: the lazy chain
obeys the same `(n/k)` reduction law but pays a constant-factor slowdown
— i.e. the paper's laziness-free Lemma 3 is both more general and
describes the faster process.  The factor is 4/3, not the naive 2: in
the coalescence dual, two walks with independent 1/2-laziness meet with
probability (1/2 + 1/4)/n = 0.75/n per step instead of 1/n (both-lazy
steps cannot merge walks at distinct nodes, but a single mover can).
"""

import numpy as np

from repro.analysis import coalescence_expected_upper, fit_power_law
from repro.core import Configuration
from repro.engine import ColorsAtMost, repeat_first_passage
from repro.experiments import Table
from repro.processes import LazyVoter, Voter

from conftest import emit

N = 512
K_VALUES = [2, 8, 32]
REPETITIONS = 15


def _measure():
    config = Configuration.singletons(N)
    rows = []
    for k in K_VALUES:
        plain = repeat_first_passage(
            Voter, config, ColorsAtMost(k), REPETITIONS, rng=k, backend="agent"
        )
        lazy = repeat_first_passage(
            LazyVoter, config, ColorsAtMost(k), REPETITIONS, rng=500 + k, backend="agent"
        )
        rows.append(
            (
                k,
                float(plain.mean()),
                float(lazy.mean()),
                float(lazy.mean() / plain.mean()),
                coalescence_expected_upper(N, k),
            )
        )
    return rows


def bench_ablation_laziness(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=f"ABL  laziness ablation: Voter vs lazy Voter (p=1/2), n={N}",
        columns=["k", "voter T^k", "lazy voter T^k", "lazy/plain", "20n/k"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        "§3.2: the paper's Lemma-3 proof needs no laziness; [BGKMT16]'s does. "
        "Predicted slowdown factor 4/3 (pairwise meeting rate 0.75/n)."
    )
    emit(table)

    k_arr = np.asarray(K_VALUES, dtype=float)
    lazy_fit = fit_power_law(k_arr, np.asarray([r[2] for r in rows]))
    for k, plain_mean, lazy_mean, ratio, bound in rows:
        assert plain_mean < bound, k
        # The lazy chain is slower by roughly the predicted factor 4/3.
        assert 1.15 < ratio < 1.7, (k, ratio)
    # Both variants keep the 1/k law.
    assert -1.4 < lazy_fit.exponent < -0.6, lazy_fit.summary()
