"""E13 — Theorem 2 / Lemma 1 / Theorem 3: Strassen couplings, constructed.

Paper claim: for AC-processes with ``α(c) ⪰ α̃(c̃)``, the one-step
multinomial laws are comparable in the stochastic majorization order, and
(via a variant of Strassen's theorem) a coupling exists under which the
resulting configurations are majorization-ordered with probability one.
The paper proves existence; here the coupling is *computed* as a
transportation LP on enumerated one-step laws.

Regenerated table: for a grid of comparable configuration pairs
(3-Majority above, Voter below), LP feasibility (the coupling exists),
the verification of its marginals/support, the support size, and the
exact top-j expectation certificate of Definition 3.  A reversed pair is
included as a negative control (the LP must be infeasible).
"""

from repro.core import Configuration
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.core.coupling import (
    one_step_distribution,
    stochastic_majorization_certificate,
    strassen_coupling,
)
from repro.experiments import Table

from conftest import emit

PAIRS = [
    # (upper counts for 3-Majority, lower counts for Voter)
    ([4, 2], [3, 3]),
    ([5, 1], [3, 3]),
    ([6, 0], [3, 3]),
    ([4, 2, 1], [3, 2, 2]),
    ([5, 1, 1], [3, 2, 2]),
    ([3, 3, 1], [3, 2, 2]),
    ([4, 4], [4, 4]),
]


def _measure():
    rows = []
    for upper_counts, lower_counts in PAIRS:
        upper_cfg = Configuration(upper_counts)
        lower_cfg = Configuration(lower_counts)
        upper = one_step_distribution(ThreeMajorityFunction(), upper_cfg)
        lower = one_step_distribution(VoterFunction(), lower_cfg)
        certificate, _margins = stochastic_majorization_certificate(lower, upper)
        lp = strassen_coupling(lower=lower, upper=upper)
        rows.append(
            (
                str(tuple(upper_counts)),
                str(tuple(lower_counts)),
                len(upper),
                len(lower),
                certificate,
                lp.feasible,
                lp.feasible and lp.verify(),
            )
        )
    # Negative control: reversed roles must be infeasible.
    upper = one_step_distribution(VoterFunction(), Configuration([3, 3]))
    lower = one_step_distribution(ThreeMajorityFunction(), Configuration([6, 0]))
    control = strassen_coupling(lower=lower, upper=upper)
    return rows, control.feasible


def bench_e13_strassen_coupling(benchmark):
    rows, control_feasible = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E13  Strassen couplings for 3-Majority(upper) ⪰ Voter(lower), n=6/7",
        columns=[
            "upper c",
            "lower c̃",
            "|supp upper|",
            "|supp lower|",
            "top-j certificate",
            "LP feasible",
            "coupling verified",
        ],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        f"negative control (roles reversed): LP feasible = {control_feasible} (expected no)"
    )
    emit(table)

    for row in rows:
        _u, _l, _su, _sl, certificate, feasible, verified = row
        assert certificate and feasible and verified, row
    assert not control_feasible
