"""E2 — Theorem 5: the 2-Choices symmetry-breaking lower bound.

Paper claim: starting from any configuration with maximum support ``ℓ``,
w.h.p. no color exceeds ``ℓ' = max(2ℓ, γ log n)`` for ``n / (γ ℓ')``
rounds; from the n-color configuration, no color reaches support
``γ log n`` for ``n / (γ² log n)`` rounds.

Regenerated series:
  (a) the *budget table* — fraction of runs in which symmetry broke within
      the theorem's round budget (paper: ≈ 0), with the 3-Majority
      contrast column (breaks essentially always);
  (b) the *scaling series* — measured rounds until some color exceeds
      ``c·log n``, fitted against ``n / log n`` growth.

Since PR 5 each series is a declarative :class:`repro.StudySpec` with a
``zip`` expansion — the per-``n`` stopping thresholds
(``max-support>ℓ'``) and round budgets are parallel axes zipped against
``n``, which is exactly the shape the spec layer's ``zip`` rule exists
for.  ``workers`` keeps the sharded-pool perf experiment reachable via
``REPRO_WORKERS`` (values > 1 repartition the batched streams per shard,
so trajectories differ statistically from the committed assertions'
seeds, though the theorem-level claims still hold).
"""

import math

import numpy as np

from repro import StudySpec, run_study
from repro.analysis import fit_power_law_with_log_correction
from repro.experiments import Table

from conftest import emit, env_workers

GAMMA = 3.0
N_VALUES = [1024, 2048, 4096, 8192]
REPLICAS = 5
SEED = 20170502  # the paper's PODC acceptance season
# workers=1 (the default) degenerates the sharded backends to the plain
# in-process ensemble — one fixed execution path, so the seed-sensitive
# assertions below stay deterministic across worker configurations.
# (The PR-5 spec port rederives per-cell seeds from (SEED, cell index),
# so these are fresh sample streams, re-validated against the committed
# thresholds — not the pre-port trajectories.)
WORKERS = env_workers(1)


def _thresholds():
    return [max(2, int(math.ceil(GAMMA * math.log(n)))) for n in N_VALUES]


def _budget_spec(process: str, backend: str) -> StudySpec:
    """E2a: stop at support ℓ', horizon = the Theorem-5 round budget."""
    thresholds = _thresholds()
    budgets = [
        max(2, int(n / (GAMMA * t))) for n, t in zip(N_VALUES, thresholds)
    ]
    return StudySpec(
        name=f"e2a-budget-{process}",
        seed=SEED,
        repetitions=REPLICAS,
        expansion="zip",
        workers=WORKERS,
        raise_on_limit=False,
        axes={
            "process": [process],
            "n": N_VALUES,
            "stop": [f"max-support>{t}" for t in thresholds],
            "max_rounds": budgets,
            "backend": [backend],
            "rng_mode": ["batched"],
        },
    )


def _scaling_spec() -> StudySpec:
    """E2b: same thresholds, generous 50·n horizon (all runs must stop)."""
    return StudySpec(
        name="e2b-scaling-2-choices",
        seed=SEED + 1,
        repetitions=REPLICAS,
        expansion="zip",
        workers=WORKERS,
        raise_on_limit=False,
        axes={
            "process": ["2-choices"],
            "n": N_VALUES,
            "stop": [f"max-support>{t}" for t in _thresholds()],
            "max_rounds": [50 * n for n in N_VALUES],
            "backend": ["sharded-auto"],
            "rng_mode": ["batched"],
        },
    )


def _budget_table():
    table = Table(
        title=(
            "E2a  symmetry breaks within the Theorem-5 budget n/(γℓ')? "
            f"(γ={GAMMA:g}, start: n distinct colors)"
        ),
        columns=["n", "threshold ℓ'", "budget rounds", "2-choices broke", "3-majority broke"],
    )
    store_2c = run_study(_budget_spec("2-choices", "sharded-auto"))
    store_3m = run_study(_budget_spec("3-majority", "sharded-agent"))
    outcomes = []
    for rec_2c, rec_3m, threshold in zip(
        store_2c.records(), store_3m.records(), _thresholds()
    ):
        broke_2c = int(rec_2c.stopped.sum())
        broke_3m = int(rec_3m.stopped.sum())
        table.add_row(
            rec_2c.params["n"],
            threshold,
            rec_2c.params["max_rounds"],
            f"{broke_2c}/{REPLICAS}",
            f"{broke_3m}/{REPLICAS}",
        )
        outcomes.append((broke_2c, broke_3m))
    return table, outcomes


def _scaling_series():
    table = Table(
        title="E2b  2-Choices rounds until max support > 3·log n (scaling)",
        columns=["n", "mean rounds", "n/log n"],
    )
    store = run_study(_scaling_spec())
    means = []
    for record in store.records():
        assert record.stopped.all(), "raise the horizon"
        n = record.params["n"]
        mean = float(record.times.mean())
        means.append(mean)
        table.add_row(n, mean, n / math.log(n))
    fit = fit_power_law_with_log_correction(
        np.asarray(N_VALUES, dtype=float), np.asarray(means), log_exponent=-1.0
    )
    table.add_footnote(f"fit of mean·log(n)/n-shape: {fit.summary()}")
    return table, fit, means


def bench_e2_two_choices_lower(benchmark):
    (budget_table, outcomes), (scaling_table, fit, _means) = benchmark.pedantic(
        lambda: (_budget_table(), _scaling_series()), rounds=1, iterations=1
    )
    emit(budget_table)
    emit(scaling_table)

    # Theorem 5: 2-Choices essentially never breaks within the budget; the
    # 3-Majority contrast breaks essentially always.
    total_2c = sum(b for b, _ in outcomes)
    total_3m = sum(b for _, b in outcomes)
    assert total_2c <= 1, f"2-Choices broke symmetry {total_2c} times"
    assert total_3m >= len(N_VALUES) * REPLICAS - 1
    # Growth compatible with Omega(n / log n): exponent near 1 after
    # dividing out the 1/log n.
    assert fit.exponent > 0.75, fit.summary()
