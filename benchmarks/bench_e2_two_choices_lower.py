"""E2 — Theorem 5: the 2-Choices symmetry-breaking lower bound.

Paper claim: starting from any configuration with maximum support ``ℓ``,
w.h.p. no color exceeds ``ℓ' = max(2ℓ, γ log n)`` for ``n / (γ ℓ')``
rounds; from the n-color configuration, no color reaches support
``γ log n`` for ``n / (γ² log n)`` rounds.

Regenerated series:
  (a) the *budget table* — fraction of runs in which symmetry broke within
      the theorem's round budget (paper: ≈ 0), with the 3-Majority
      contrast column (breaks essentially always);
  (b) the *scaling series* — measured rounds until some color exceeds
      ``c·log n``, fitted against ``n / log n`` growth.
"""

import math

import numpy as np

from repro.analysis import fit_power_law_with_log_correction
from repro.core import Configuration
from repro.engine import MaxSupportAbove, SimulationPlan, execute
from repro.experiments import Table
from repro.processes import ThreeMajority, TwoChoices

from conftest import emit, env_workers

GAMMA = 3.0
N_VALUES = [1024, 2048, 4096, 8192]
REPLICAS = 5
# workers=1 (the default) degenerates the sharded backends to the plain
# in-process ensemble, so the committed assertions see exactly the
# trajectories they were tuned on.  REPRO_WORKERS>1 spreads each ensemble
# over the runtime's persistent multiprocessing pool as a perf
# experiment: the default batched streams are repartitioned per shard, so
# trajectories differ (statistically equivalent) and the seed-tuned
# qualitative assertions below, while expected to hold, are not
# guaranteed bit-for-bit.
WORKERS = env_workers(1)


def run_ensemble(process, initial, repetitions, rng, stop, max_rounds,
                 raise_on_limit=True, backend="sharded-auto"):
    """One measurement through the unified runtime (sharded family)."""
    return execute(SimulationPlan(
        process=process,
        initial=initial,
        stop=stop,
        repetitions=repetitions,
        rng=rng,
        max_rounds=max_rounds,
        raise_on_limit=raise_on_limit,
        workers=WORKERS,
        backend=backend,
    ))


def _budget_table():
    table = Table(
        title=(
            "E2a  symmetry breaks within the Theorem-5 budget n/(γℓ')? "
            f"(γ={GAMMA:g}, start: n distinct colors)"
        ),
        columns=["n", "threshold ℓ'", "budget rounds", "2-choices broke", "3-majority broke"],
    )
    outcomes = []
    for n in N_VALUES:
        threshold = max(2, int(math.ceil(GAMMA * math.log(n))))
        budget = max(2, int(n / (GAMMA * threshold)))
        result_2c = run_ensemble(
            TwoChoices(),
            Configuration.singletons(n),
            REPLICAS,
            rng=n,
            stop=MaxSupportAbove(threshold),
            max_rounds=budget,
            raise_on_limit=False,
        )
        result_3m = run_ensemble(
            ThreeMajority(),
            Configuration.singletons(n),
            REPLICAS,
            rng=n,
            stop=MaxSupportAbove(threshold),
            max_rounds=budget,
            raise_on_limit=False,
            backend="sharded-agent",
        )
        broke_2c = int(result_2c.stopped.sum())
        broke_3m = int(result_3m.stopped.sum())
        table.add_row(n, threshold, budget, f"{broke_2c}/{REPLICAS}", f"{broke_3m}/{REPLICAS}")
        outcomes.append((broke_2c, broke_3m))
    return table, outcomes


def _scaling_series():
    table = Table(
        title="E2b  2-Choices rounds until max support > 3·log n (scaling)",
        columns=["n", "mean rounds", "n/log n"],
    )
    means = []
    for n in N_VALUES:
        threshold = max(2, int(math.ceil(GAMMA * math.log(n))))
        result = run_ensemble(
            TwoChoices(),
            Configuration.singletons(n),
            REPLICAS,
            rng=1000 + n,
            stop=MaxSupportAbove(threshold),
            max_rounds=50 * n,
            raise_on_limit=False,
        )
        assert result.all_stopped, "raise the horizon"
        mean = float(result.times.mean())
        means.append(mean)
        table.add_row(n, mean, n / math.log(n))
    fit = fit_power_law_with_log_correction(
        np.asarray(N_VALUES, dtype=float), np.asarray(means), log_exponent=-1.0
    )
    table.add_footnote(f"fit of mean·log(n)/n-shape: {fit.summary()}")
    return table, fit, means


def bench_e2_two_choices_lower(benchmark):
    (budget_table, outcomes), (scaling_table, fit, _means) = benchmark.pedantic(
        lambda: (_budget_table(), _scaling_series()), rounds=1, iterations=1
    )
    emit(budget_table)
    emit(scaling_table)

    # Theorem 5: 2-Choices essentially never breaks within the budget; the
    # 3-Majority contrast breaks essentially always.
    total_2c = sum(b for b, _ in outcomes)
    total_3m = sum(b for _, b in outcomes)
    assert total_2c <= 1, f"2-Choices broke symmetry {total_2c} times"
    assert total_3m >= len(N_VALUES) * REPLICAS - 1
    # Growth compatible with Omega(n / log n): exponent near 1 after
    # dividing out the 1/log n.
    assert fit.exponent > 0.75, fit.summary()
