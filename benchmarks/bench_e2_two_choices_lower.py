"""E2 — Theorem 5: the 2-Choices symmetry-breaking lower bound.

Paper claim: starting from any configuration with maximum support ``ℓ``,
w.h.p. no color exceeds ``ℓ' = max(2ℓ, γ log n)`` for ``n / (γ ℓ')``
rounds; from the n-color configuration, no color reaches support
``γ log n`` for ``n / (γ² log n)`` rounds.

Regenerated series:
  (a) the *budget table* — fraction of runs in which symmetry broke within
      the theorem's round budget (paper: ≈ 0), with the 3-Majority
      contrast column (breaks essentially always);
  (b) the *scaling series* — measured rounds until some color exceeds
      ``c·log n``, fitted against ``n / log n`` growth.
"""

import math

import numpy as np

from repro.analysis import fit_power_law_with_log_correction
from repro.core import Configuration
from repro.engine import symmetry_breaking_time
from repro.experiments import Table
from repro.processes import ThreeMajority, TwoChoices

from conftest import emit

GAMMA = 3.0
N_VALUES = [1024, 2048, 4096, 8192]
SEEDS = range(5)


def _budget_table():
    table = Table(
        title=(
            "E2a  symmetry breaks within the Theorem-5 budget n/(γℓ')? "
            f"(γ={GAMMA:g}, start: n distinct colors)"
        ),
        columns=["n", "threshold ℓ'", "budget rounds", "2-choices broke", "3-majority broke"],
    )
    outcomes = []
    for n in N_VALUES:
        threshold = max(2, int(math.ceil(GAMMA * math.log(n))))
        budget = max(2, int(n / (GAMMA * threshold)))
        broke_2c = 0
        broke_3m = 0
        for seed in SEEDS:
            _r, fired = symmetry_breaking_time(
                TwoChoices(),
                Configuration.singletons(n),
                threshold,
                rng=seed,
                max_rounds=budget,
                raise_on_limit=False,
            )
            broke_2c += int(fired)
            _r, fired = symmetry_breaking_time(
                ThreeMajority(),
                Configuration.singletons(n),
                threshold,
                rng=seed,
                max_rounds=budget,
                raise_on_limit=False,
                backend="agent",
            )
            broke_3m += int(fired)
        table.add_row(n, threshold, budget, f"{broke_2c}/{len(SEEDS)}", f"{broke_3m}/{len(SEEDS)}")
        outcomes.append((broke_2c, broke_3m))
    return table, outcomes


def _scaling_series():
    table = Table(
        title="E2b  2-Choices rounds until max support > 3·log n (scaling)",
        columns=["n", "mean rounds", "n/log n"],
    )
    means = []
    for n in N_VALUES:
        threshold = max(2, int(math.ceil(GAMMA * math.log(n))))
        rounds = []
        for seed in SEEDS:
            r, fired = symmetry_breaking_time(
                TwoChoices(),
                Configuration.singletons(n),
                threshold,
                rng=1000 + seed,
                max_rounds=50 * n,
                raise_on_limit=False,
            )
            assert fired, "raise the horizon"
            rounds.append(r)
        mean = float(np.mean(rounds))
        means.append(mean)
        table.add_row(n, mean, n / math.log(n))
    fit = fit_power_law_with_log_correction(
        np.asarray(N_VALUES, dtype=float), np.asarray(means), log_exponent=-1.0
    )
    table.add_footnote(f"fit of mean·log(n)/n-shape: {fit.summary()}")
    return table, fit, means


def bench_e2_two_choices_lower(benchmark):
    (budget_table, outcomes), (scaling_table, fit, _means) = benchmark.pedantic(
        lambda: (_budget_table(), _scaling_series()), rounds=1, iterations=1
    )
    emit(budget_table)
    emit(scaling_table)

    # Theorem 5: 2-Choices essentially never breaks within the budget; the
    # 3-Majority contrast breaks essentially always.
    total_2c = sum(b for b, _ in outcomes)
    total_3m = sum(b for _, b in outcomes)
    assert total_2c <= 1, f"2-Choices broke symmetry {total_2c} times"
    assert total_3m >= len(N_VALUES) * len(SEEDS) - 1
    # Growth compatible with Omega(n / log n): exponent near 1 after
    # dividing out the 1/log n.
    assert fit.exponent > 0.75, fit.summary()
