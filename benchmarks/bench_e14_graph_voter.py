"""E14 — §1.1 related work: Voter/coalescence on general graphs.

Paper context (§1.1): Voter's consensus/coalescence times on arbitrary
graphs are governed by spectral quantities — [CEOR13] bounds the
expected coalescence time by ``O(μ⁻¹ (log⁴ n + ρ))`` (spectral gap μ,
degree statistic ρ), and [BGKMT16] bounds Voter consensus by
``O(m / (d_min φ))``.  The paper's own Lemma 3 specialises the picture
to the complete graph; this bench regenerates the cross-graph contrast
the citations describe.

Regenerated table: measured coalescence time (all walks → 1) on four
graph families at comparable ``n``, against the [CEOR13] scale, plus the
synchronous-bipartite caveat (even cycles never coalesce — the parity
phenomenon documented in ``repro.graphs``).
"""

import numpy as np

from repro.analysis import ceor13_coalescence_scale, spectral_profile
from repro.coalescing import CoalescingWalks
from repro.experiments import Table
from repro.graphs import CompleteGraph, CycleGraph, random_regular_graph

from conftest import emit

SEEDS = range(5)


def _families():
    rng = np.random.default_rng(2024)
    return [
        ("complete n=64 (self-pull)", CompleteGraph(64)),
        ("complete n=64 (no self)", CompleteGraph(64, include_self=False)),
        ("random 4-regular n=64", random_regular_graph(64, 4, rng)),
        ("cycle n=65 (odd)", CycleGraph(65)),
    ]


def _measure():
    rows = []
    for label, graph in _families():
        profile = spectral_profile(graph)
        times = []
        for seed in SEEDS:
            run = CoalescingWalks(graph).run_until(
                1, np.random.default_rng(seed), max_steps=10**6
            )
            assert run.reached, label
            times.append(run.rounds)
        rows.append(
            (
                label,
                float(profile.spectral_gap),
                float(np.mean(times)),
                ceor13_coalescence_scale(graph),
            )
        )
    # The parity caveat: two walks at odd distance on an even cycle never
    # meet under synchronous steps.
    even_cycle = CycleGraph(64)
    walker = CoalescingWalks(even_cycle)
    positions = np.asarray([0, 1], dtype=np.int64)
    rng = np.random.default_rng(9)
    parity_preserved = True
    for _ in range(20_000):
        positions = even_cycle.sample_neighbors(positions, rng)
        if positions[0] == positions[1]:
            parity_preserved = False
            break
    return rows, parity_preserved


def bench_e14_graph_voter(benchmark):
    rows, parity_preserved = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E14  coalescence across graph families vs the [CEOR13] scale",
        columns=["graph", "spectral gap μ", "mean T¹_C", "μ⁻¹(log⁴n + ρ)"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        "even cycle, walks at odd distance, 20k synchronous steps without "
        f"meeting: {parity_preserved} (bipartite parity trap)"
    )
    emit(table)

    by_label = {label: (gap, measured, scale) for label, gap, measured, scale in rows}
    for label, (gap, measured, scale) in by_label.items():
        assert measured < scale, label  # constant-1 CEOR13 scale dominates
    # The low-gap family (odd cycle) is far slower than the complete graph.
    assert by_label["cycle n=65 (odd)"][1] > 5 * by_label["complete n=64 (self-pull)"][1]
    assert parity_preserved
