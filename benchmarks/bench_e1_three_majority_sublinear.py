"""E1 — Theorem 4: unconditional sublinear consensus for 3-Majority.

Paper claim: from *any* configuration (we use the hardest symmetric one,
``k = n`` pairwise-distinct colors), 3-Majority reaches consensus w.h.p.
in ``O(n^{3/4} log^{7/8} n)`` rounds.

Regenerated series: mean consensus time vs ``n`` over a geometric sweep,
the ratio against the paper's scale, and the fitted growth exponent.
Expected shape: exponent clearly below 1 (ours lands well below 3/4 —
the paper's bound is an upper bound, not a tight estimate).

Since PR 5 the measurement is a declarative :class:`repro.StudySpec`
(one ``n`` axis, everything else scalar) executed by
:func:`repro.run_study`; the per-cell seed derivation matches the old
harness exactly, so the committed assertions see the same samples the
imperative sweep produced.
"""

import os

import numpy as np

from repro import StudySpec, run_study
from repro.analysis import three_majority_consensus_upper
from repro.experiments import sweep_result_from_records

from conftest import emit, env_backend, env_workers

N_VALUES = [256, 512, 1024, 2048, 4096, 8192]
REPETITIONS = 5
SEED = 20170217  # the paper's arXiv date
# Execution knobs shared by the sweep benches, validated against the
# runtime's backend registry: REPRO_BACKEND picks any registered backend
# or resolution alias (sharded-* spreads each sweep point over
# REPRO_WORKERS pool workers; unset = all cores), and REPRO_SCHEDULER
# moves the whole sweep onto the asynchronous one-node-per-tick model
# (tick counts; predictions are scaled by n to match).
BACKEND = env_backend("ensemble-auto")
SCHEDULER = os.environ.get("REPRO_SCHEDULER", "synchronous")
WORKERS = env_workers(None)
_ASYNC = SCHEDULER == "asynchronous"

SPEC = StudySpec(
    name="E1  3-Majority consensus time from n distinct colors (Theorem 4)",
    seed=SEED,
    repetitions=REPETITIONS,
    workers=WORKERS,
    axes={
        "process": ["3-majority"],
        "workload": ["singletons"],
        "n": N_VALUES,
        "scheduler": [SCHEDULER],
        "backend": [BACKEND],
        "rng_mode": ["batched"],
    },
)


def _run_sweep():
    store = run_study(SPEC)
    return sweep_result_from_records(
        SPEC.name,
        "n",
        store.records(),
        predicted=(
            (lambda n: three_majority_consensus_upper(n) * n)
            if _ASYNC
            else three_majority_consensus_upper
        ),
    )


def bench_e1_three_majority_sublinear(benchmark):
    result = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)
    table = result.to_table(
        predicted_label="n^1.75*log^0.875" if _ASYNC else "n^0.75*log^0.875"
    )
    fit = result.fit()
    emit(table)

    # Theorem 4's qualitative content: sublinear growth (ticks carry an
    # extra factor n), bounded by the paper's scale with a constant below
    # 1 (it is a generous upper bound).
    assert fit.exponent < (1.85 if _ASYNC else 0.85), fit.summary()
    assert np.all(result.means() <= result.predictions()), "exceeded paper bound"
