"""E10 — §1.1: in the biased regime, 2-Choices ≈ 3-Majority; Voter lags.

Paper background: with an initial bias ``Ω(√(n log n))`` toward one color,
both 2-Choices and 3-Majority exploit the drift and reach (plurality)
consensus in ``O(k log n)`` rounds ([EFK+16], [BCN+14]) — *the same
asymptotic* — while Voter cannot exploit bias at all and stays ``Θ(n)``.
The paper's separation (E3) is specifically about the *unbiased,
many-color* regime; this experiment regenerates the contrast.

Regenerated table: consensus time of the three processes from a biased
k=2 configuration across n, plus the plurality-win rate for the drift
processes (footnote 4: both converge to the majority color w.h.p.).
"""

import math

import numpy as np

from repro.core import Configuration
from repro.engine import Consensus, run_agent
from repro.experiments import Table
from repro.processes import ThreeMajority, TwoChoices, Voter

from conftest import emit

N_VALUES = [512, 1024, 2048]
SEEDS = range(5)


def _biased_config(n: int) -> Configuration:
    bias = int(2 * math.sqrt(n * math.log(n)))
    bias += (n - bias) % 2  # parity
    return Configuration.biased(n, 2, bias)


def _measure():
    rows = []
    for n in N_VALUES:
        config = _biased_config(n)
        majority = int(np.argmax(config.counts_array()))
        stats = {}
        for name, factory in (
            ("2-choices", TwoChoices),
            ("3-majority", ThreeMajority),
            ("voter", Voter),
        ):
            rounds = []
            wins = 0
            for seed in SEEDS:
                result = run_agent(
                    factory(), config, rng=seed, stop=Consensus(), max_rounds=400 * n
                )
                rounds.append(result.rounds)
                wins += int(result.final.support(majority) == n)
            stats[name] = (float(np.mean(rounds)), wins)
        rows.append((n, config.bias, stats))
    return rows


def bench_e10_biased_regime(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E10  biased k=2 start (bias ≈ 2√(n log n)): mean consensus time",
        columns=["n", "bias", "2-choices", "3-majority", "voter", "2C wins", "3M wins"],
    )
    for n, bias_value, stats in rows:
        table.add_row(
            n,
            bias_value,
            stats["2-choices"][0],
            stats["3-majority"][0],
            stats["voter"][0],
            f"{stats['2-choices'][1]}/{len(SEEDS)}",
            f"{stats['3-majority'][1]}/{len(SEEDS)}",
        )
    table.add_footnote(
        "paper: 2-Choices and 3-Majority are O(k log n) here — same asymptotic; "
        "Voter ignores the bias (Θ(n))."
    )
    emit(table)

    for n, _bias, stats in rows:
        mean_2c, wins_2c = stats["2-choices"]
        mean_3m, wins_3m = stats["3-majority"]
        mean_voter, _ = stats["voter"]
        # Both drift processes beat Voter decisively...
        assert mean_2c < 0.5 * mean_voter, n
        assert mean_3m < 0.5 * mean_voter, n
        # ...are within a small constant factor of each other...
        assert mean_2c / mean_3m < 6.0 and mean_3m / mean_2c < 6.0, n
        # ...and almost always elect the majority color (footnote 4).
        assert wins_2c >= len(SEEDS) - 1, n
        assert wins_3m >= len(SEEDS) - 1, n
