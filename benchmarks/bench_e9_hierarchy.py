"""E9 — Conjecture 1: the h-Majority hierarchy, probed empirically.

Paper conjecture: ``(h+1)``-Majority is stochastically faster than
``h``-Majority for every ``h`` (proved only for h ∈ {1, 2, 3} via
Lemma 2; Appendix B shows the majorization machinery cannot settle the
rest — see E8).

Regenerated series: mean consensus time from a balanced 8-color start for
h ∈ {1, 2, 3, 4, 5, 7}, expected to be non-increasing in ``h`` (with
h = 1, 2 statistically identical: both are Voter).
"""

import numpy as np

from repro.core import Configuration
from repro.engine import Consensus, repeat_first_passage
from repro.experiments import Table
from repro.processes import HMajority

from conftest import emit

N = 512
K = 8
H_VALUES = [1, 2, 3, 4, 5, 7]
REPETITIONS = 30


def _measure():
    config = Configuration.balanced(N, K)
    rows = []
    for h in H_VALUES:
        times = repeat_first_passage(
            lambda h=h: HMajority(h),
            config,
            Consensus(),
            REPETITIONS,
            rng=300 + h,
            backend="agent",
        )
        rows.append((h, float(times.mean()), float(times.std(ddof=1) / np.sqrt(REPETITIONS))))
    return rows


def bench_e9_hierarchy(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title=f"E9  h-Majority consensus time, balanced k={K} start (n={N})",
        columns=["h", "mean rounds", "sem"],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote("Conjecture 1 predicts a non-increasing column (h=1,2 identical).")
    emit(table)

    means = {h: m for h, m, _ in rows}
    sems = {h: s for h, _, s in rows}
    # h = 1 and h = 2 are the same process (Voter): equal within noise.
    assert abs(means[1] - means[2]) < 4 * (sems[1] + sems[2])
    # The conjectured hierarchy, with Monte-Carlo slack on each comparison.
    for lo, hi in [(2, 3), (3, 4), (4, 5), (5, 7)]:
        assert means[hi] < means[lo] + 4 * (sems[lo] + sems[hi]), (lo, hi)
    # And the h=7 process is decisively faster than Voter.
    assert means[7] < 0.5 * means[1]
