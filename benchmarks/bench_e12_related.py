"""E12 — §1.1 related dynamics: Undecided collapse at k = n; 2-Median's
speed and its validity failure.

Paper remarks reproduced here:

* **Undecided dynamics** reach consensus fast for biased starts, but "for
  k = n all nodes become undecided with constant probability instead of
  agreeing on a color" — the process is not a leader-election primitive.
* **2-Median** reaches consensus in ``O(log k log log n + log n)`` rounds
  without bias — seemingly beating everything — but requires a total
  order on colors and "cannot guarantee validity" (footnote 5), so it is
  not self-stabilising for Byzantine agreement.

Regenerated table: (a) Undecided outcome statistics from the n-color
start vs a biased start; (b) consensus-time comparison 2-Median vs
3-Majority vs Voter from singletons; (c) a validity attack on 2-Median
(planted extreme values drag the median outside the honest range) that
3-Majority provably shrugs off.
"""

import numpy as np

from repro.adversary import AdversarySchedule, PlantInvalid, run_with_adversary
from repro.core import Configuration
from repro.engine import consensus_time, run_agent
from repro.experiments import Table
from repro.processes import ThreeMajority, TwoMedian, UndecidedDynamics, Voter

from conftest import emit

N = 512
SEEDS = range(12)


def _undecided_outcomes():
    rows = []
    for label, config in (
        ("singletons (k=n)", Configuration.singletons(N)),
        ("biased k=2", Configuration.biased(N, 2, bias=int(4 * np.sqrt(N)))),
    ):
        dead = 0
        consensus = 0
        for seed in SEEDS:
            process = UndecidedDynamics()
            result = run_agent(
                process, config, rng=seed, max_rounds=100_000, raise_on_limit=False
            )
            colors = result.final_colors
            if process.is_dead(colors):
                dead += 1
            elif process.has_converged(colors):
                consensus += 1
        rows.append((label, f"{dead}/{len(SEEDS)}", f"{consensus}/{len(SEEDS)}"))
    return rows


def _speed_comparison():
    config = Configuration.singletons(N)
    rows = []
    for name, factory in (
        ("2-median", TwoMedian),
        ("3-majority", ThreeMajority),
        ("voter", Voter),
    ):
        times = [
            consensus_time(factory(), config, rng=seed, backend="agent", max_rounds=10**6)
            for seed in range(5)
        ]
        rows.append((name, float(np.mean(times))))
    return rows


def _validity_attack():
    # Footnote 5's attack on ordered colors: honest values are bimodal at
    # {0, 200}; the adversary plants the MIDPOINT value 100 for a bounded
    # window.  2-Median's update (median of own + two samples) is pulled
    # toward the planted middle — a value no honest node ever supported —
    # while 3-Majority treats 100 as just another color with negligible
    # support and always recovers onto a valid value.
    counts = np.zeros(201, dtype=np.int64)
    counts[0] = N // 2
    counts[200] = N - N // 2
    initial = Configuration(counts)
    schedule_budget = N // 32
    outcomes = {}
    for name, factory in (("2-median", TwoMedian), ("3-majority", ThreeMajority)):
        invalid_wins = 0
        for seed in range(8):
            result = run_with_adversary(
                factory(),
                initial,
                AdversarySchedule(PlantInvalid(schedule_budget, invalid_color=100), stop=60),
                rng=seed,
                max_rounds=30_000,
                stable_fraction=0.9,
            )
            if result.stabilized and not result.winner_is_valid:
                invalid_wins += 1
        outcomes[name] = invalid_wins
    return outcomes, schedule_budget


def _measure():
    return _undecided_outcomes(), _speed_comparison(), _validity_attack()


def bench_e12_related_dynamics(benchmark):
    undecided_rows, speed_rows, (attack, budget) = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table_a = Table(
        title=f"E12a  Undecided dynamics outcomes (n={N})",
        columns=["start", "all-undecided (dead)", "valid consensus"],
    )
    for row in undecided_rows:
        table_a.add_row(*row)
    emit(table_a)

    table_b = Table(
        title=f"E12b  consensus time from n={N} distinct colors",
        columns=["process", "mean rounds"],
    )
    for row in speed_rows:
        table_b.add_row(*row)
    table_b.add_footnote("2-Median's speed is bought with totally-ordered colors.")
    emit(table_b)

    table_c = Table(
        title=f"E12c  validity under PlantInvalid (budget {budget}, 60 rounds)",
        columns=["process", "runs stabilising on an INVALID value (of 8)"],
    )
    for name, invalid in attack.items():
        table_c.add_row(name, invalid)
    emit(table_c)

    # (a) collapse happens with constant probability at k=n, never with bias.
    singleton_dead = int(undecided_rows[0][1].split("/")[0])
    biased_dead = int(undecided_rows[1][1].split("/")[0])
    assert singleton_dead >= 1
    assert biased_dead == 0
    # (b) 2-median is the fastest; voter the slowest.
    speeds = dict(speed_rows)
    assert speeds["2-median"] < speeds["3-majority"] < speeds["voter"]
    # (c) 3-Majority never elects the invalid color; 2-Median does, often.
    assert attack["3-majority"] == 0
    assert attack["2-median"] >= 2
