"""Ablation — DESIGN.md's two-semantics decision: count-level vs agent-level.

The library runs AC-processes either as exact count-level multinomial
chains (Section 2.2 of the paper) or as literal agent-level protocols.
DESIGN.md claims the count backend is (a) exactly the same process in
distribution and (b) much cheaper for narrow color spaces, while the
agent backend wins when ``k ≈ n``.  This bench quantifies both claims —
the per-round costs and the distributional agreement of the resulting
consensus times.
"""

import time

import numpy as np

from repro.analysis import mann_whitney_less
from repro.core import Configuration
from repro.engine import Consensus, repeat_first_passage
from repro.experiments import Table
from repro.processes import ThreeMajority

from conftest import emit

N = 4096
REPETITIONS = 25


def _time_per_round(backend: str, config: Configuration, rounds: int) -> float:
    process = ThreeMajority()
    rng = np.random.default_rng(0)
    if backend == "counts":
        counts = config.counts_array().copy()
        start = time.perf_counter()
        for _ in range(rounds):
            counts = process.step_counts(counts, rng)
        return (time.perf_counter() - start) / rounds
    colors = config.to_assignment()
    start = time.perf_counter()
    for _ in range(rounds):
        colors = process.update(colors, rng)
    return (time.perf_counter() - start) / rounds


def _measure():
    narrow = Configuration.balanced(N, 8)
    wide = Configuration.singletons(N)
    cost_rows = [
        ("narrow k=8", _time_per_round("counts", narrow, 200), _time_per_round("agent", narrow, 200)),
        ("wide k=n", _time_per_round("counts", wide, 50), _time_per_round("agent", wide, 50)),
    ]
    # Distributional agreement on consensus times (narrow start).
    small = Configuration.balanced(256, 8)
    times_counts = repeat_first_passage(
        ThreeMajority, small, Consensus(), REPETITIONS, rng=1, backend="counts"
    )
    times_agent = repeat_first_passage(
        ThreeMajority, small, Consensus(), REPETITIONS, rng=2, backend="agent"
    )
    p_less = mann_whitney_less(times_counts, times_agent)
    p_greater = mann_whitney_less(times_agent, times_counts)
    return cost_rows, (float(times_counts.mean()), float(times_agent.mean()), p_less, p_greater)


def bench_ablation_backends(benchmark):
    cost_rows, (mean_counts, mean_agent, p_less, p_greater) = benchmark.pedantic(
        _measure, rounds=1, iterations=1
    )
    table = Table(
        title=f"ABL  backend ablation, 3-Majority (n={N})",
        columns=["workload", "counts s/round", "agent s/round", "agent/counts"],
    )
    for label, t_counts, t_agent in cost_rows:
        table.add_row(label, t_counts, t_agent, t_agent / t_counts)
    table.add_footnote(
        f"consensus-time agreement (n=256, k=8): mean counts={mean_counts:.1f}, "
        f"agent={mean_agent:.1f}, MW p-values {p_less:.2f}/{p_greater:.2f}"
    )
    emit(table)

    narrow = cost_rows[0]
    # The count backend must win decisively on narrow color spaces.
    assert narrow[2] > 3 * narrow[1], narrow
    # And the two backends must be statistically indistinguishable: neither
    # one-sided test should be significant.
    assert p_less > 0.01 and p_greater > 0.01
