"""E3 — Theorem 1: the polynomial separation between 2-Choices and 3-Majority.

Paper claim: from configurations with many colors and no bias, 3-Majority
needs ``Õ(n^{3/4})`` rounds while 2-Choices needs ``Ω(n / log n)`` — a
polynomial gap, despite the two processes having *identical* expected
one-round behaviour (footnote 2, regenerated as E7).

Regenerated series: consensus time of both processes from the n-color
configuration, their ratio (growing with n), and fitted exponents.
"""

import numpy as np

from repro.analysis import fit_power_law
from repro.core import Configuration
from repro.engine import Consensus, repeat_first_passage
from repro.experiments import Table
from repro.processes import ThreeMajority, TwoChoices

from conftest import emit, env_backend, env_workers

N_VALUES = [512, 1024, 2048, 4096, 8192]
REPLICAS = 3
# REPRO_BACKEND accepts any runtime-registry backend or alias
# (sharded-auto + REPRO_WORKERS=4 moves both measurement loops onto the
# persistent multicore pool); the default stays the in-process ensemble.
BACKEND = env_backend("ensemble-auto")
WORKERS = env_workers(None)


def _measure():
    rows = []
    for n in N_VALUES:
        t2c = repeat_first_passage(
            lambda: TwoChoices(),
            Configuration.singletons(n),
            Consensus(),
            REPLICAS,
            rng=n,
            max_rounds=10**7,
            backend=BACKEND,
            workers=WORKERS,
        ).mean()
        t3m = repeat_first_passage(
            lambda: ThreeMajority(),
            Configuration.singletons(n),
            Consensus(),
            REPLICAS,
            rng=n,
            backend=BACKEND,
            workers=WORKERS,
        ).mean()
        rows.append((n, float(t2c), float(t3m), float(t2c / t3m)))
    return rows


def bench_e3_separation(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="E3  consensus time from n distinct colors: 2-Choices vs 3-Majority",
        columns=["n", "2-choices", "3-majority", "ratio"],
    )
    for row in rows:
        table.add_row(*row)
    n_arr = np.asarray([r[0] for r in rows], dtype=float)
    fit_2c = fit_power_law(n_arr, np.asarray([r[1] for r in rows]))
    fit_3m = fit_power_law(n_arr, np.asarray([r[2] for r in rows]))
    table.add_footnote(f"2-choices fit: {fit_2c.summary()}")
    table.add_footnote(f"3-majority fit: {fit_3m.summary()}")
    emit(table)

    ratios = [r[3] for r in rows]
    # The separation: ratio grows, 2-Choices near-linear, 3-Majority
    # clearly sublinear, exponent gap comfortably polynomial.
    assert ratios[-1] > 2 * ratios[0]
    assert fit_2c.exponent > 0.75, fit_2c.summary()
    assert fit_3m.exponent < 0.85, fit_3m.summary()
    assert fit_2c.exponent - fit_3m.exponent > 0.25
