"""Ablation — the two-phase structure of Theorem 4's proof, measured.

The proof splits 3-Majority's run at ``≈ n^{1/4} log^{1/8} n`` remaining
colors: phase 1 is analysed through the Voter domination (the process is
"Voter-like" while colors are plentiful — footnote 6), phase 2 through
[BCN+16].  This bench measures where the time actually goes and how
Voter-like phase 1 really is (the per-round sample-collision probability
``‖x‖₂²``, which is exactly the probability a node's update deviates
from a plain Voter step in the resample formulation).
"""

import numpy as np

from repro.analysis import measure_phases
from repro.experiments import Table

from conftest import emit

N_VALUES = [512, 1024, 2048, 4096]
SEEDS = range(3)


def _measure():
    rows = []
    for n in N_VALUES:
        breakdowns = [measure_phases(n, rng=seed) for seed in SEEDS]
        rows.append(
            (
                n,
                breakdowns[0].boundary_colors,
                float(np.mean([b.phase1_rounds for b in breakdowns])),
                float(np.mean([b.phase2_rounds for b in breakdowns])),
                float(np.mean([b.phase1_mean_collision_probability for b in breakdowns])),
            )
        )
    return rows


def bench_ablation_phases(benchmark):
    rows = benchmark.pedantic(_measure, rounds=1, iterations=1)
    table = Table(
        title="ABL  Theorem-4 phase decomposition of 3-Majority runs",
        columns=[
            "n",
            "boundary colors",
            "phase-1 rounds",
            "phase-2 rounds",
            "phase-1 mean ‖x‖₂²",
        ],
    )
    for row in rows:
        table.add_row(*row)
    table.add_footnote(
        "phase 1: n → n^{1/4}log^{1/8}n colors (analysed via Voter domination); "
        "phase 2: the [BCN+16] regime."
    )
    emit(table)

    for n, _boundary, phase1, phase2, collision in rows:
        assert phase1 > 0 and phase2 > 0, n
        # Phase 1 is Voter-like on average: collisions well below 1/2.
        assert collision < 0.4, n
    # Larger systems spend proportionally more of the run in phase 1: the
    # phase-1 rounds must grow with n.
    phase1_series = [r[2] for r in rows]
    assert phase1_series[-1] > phase1_series[0]
