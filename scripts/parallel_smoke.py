#!/usr/bin/env python
"""Parallel-study smoke: concurrent scheduling + result cache, end to end.

Three scenarios that exercise the ``workers``/``cache`` layer the way a
user would hit it, including the one that cannot run comfortably inside
pytest (a real ``kill -9`` of a *parallel* run):

Part A — parallel equality.  The spec runs sequentially (the reference)
and with ``workers=2`` against a fresh cache directory; the parallel
store must be ``results_equal`` bit-for-bit.

Part B — SIGKILL mid-parallel-run.  A subprocess runs the same spec with
``workers=2`` and is SIGKILL'd once the journal shows progress —
skipping every ``finally`` while cells are genuinely in flight.  Resume
(also with ``workers=2``) must complete the wreckage bit-for-bit.

Part C — warm cache.  A second full run against the now-warm cache must
replay every cell (100% hits) and beat the cold run's wall time; the
committed ``BENCH_engine.json`` must carry the ``study-parallel``
section with a positive parallel throughput.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.study import StudySpec, journal_path, save_spec

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def smoke_spec() -> StudySpec:
    return StudySpec(
        name="parallel smoke",
        seed=29,
        repetitions=3,
        axes={
            "process": ["3-majority"],
            "n": [32, 48, 64, 80, 96, 128],
            "rng_mode": ["per-replica"],
        },
    )


def part_a_parallel_equality(tmp: str, cache_dir: str):
    spec = smoke_spec()
    start = time.perf_counter()
    reference = api.study(spec.to_dict())
    seq_seconds = time.perf_counter() - start
    start = time.perf_counter()
    parallel = api.study(spec.to_dict(), workers=2, cache=cache_dir)
    par_seconds = time.perf_counter() - start
    assert parallel.results_equal(reference), (
        "workers=2 store diverged from the sequential run"
    )
    print(
        f"part A: workers=2 bit-for-bit equal the sequential run "
        f"(sequential {seq_seconds:.2f}s, parallel {par_seconds:.2f}s)"
    )
    return reference, seq_seconds


_CHILD = """
import sys, time
from repro import api
api.study(
    sys.argv[1],
    store_path=sys.argv[2],
    workers=2,
    progress=lambda cell, record: time.sleep(0.2),
)
"""


def _run_child_until_killed(spec_path: str, store_path: str) -> bool:
    """SIGKILL a parallel study subprocess mid-run (True when it landed)."""
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, spec_path, store_path],
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
        },
    )
    jpath = journal_path(store_path)
    try:
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                return False  # finished before the kill: retry
            try:
                with open(jpath, "rb") as handle:
                    if handle.read().count(b"\n") >= 2:
                        break
            except FileNotFoundError:
                pass
            time.sleep(0.01)
        if child.poll() is not None:
            return False
        child.send_signal(signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    return os.path.exists(jpath)


def part_b_sigkill_resume(tmp: str, reference) -> None:
    spec_path = os.path.join(tmp, "parallel.toml")
    save_spec(smoke_spec(), spec_path)
    store_path = os.path.join(tmp, "killed.json")
    jpath = journal_path(store_path)
    for attempt in range(5):
        if _run_child_until_killed(spec_path, store_path):
            break
        for stale in (store_path, jpath):
            if os.path.exists(stale):
                os.remove(stale)
    else:
        raise AssertionError("could not SIGKILL the parallel study mid-run")
    assert not os.path.exists(store_path), "SIGKILL should skip compaction"
    resumed = api.study(spec_path, store_path=store_path, resume=True, workers=2)
    assert resumed.is_complete(), "resume left cells unrun"
    assert resumed.results_equal(reference), (
        "resumed parallel store diverged from the uninterrupted run"
    )
    assert not os.path.exists(jpath), "journal not compacted after resume"
    print("part B: SIGKILL'd parallel run resumed bit-for-bit")


def part_c_warm_cache(cache_dir: str, reference, seq_seconds: float) -> None:
    start = time.perf_counter()
    warm = api.study(smoke_spec().to_dict(), workers=2, cache=cache_dir)
    warm_seconds = time.perf_counter() - start
    records = warm.records()
    hits = sum(record.cache_hit for record in records)
    assert hits == len(records), f"warm run hit only {hits}/{len(records)} cells"
    assert warm.results_equal(reference), "cached records diverged"
    cells_per_second = len(records) / warm_seconds
    assert cells_per_second > 0
    print(
        f"part C: warm cache replayed {hits}/{len(records)} cells in "
        f"{warm_seconds:.2f}s ({cells_per_second:.1f} cells/s, "
        f"cold run {seq_seconds:.2f}s)"
    )
    report = json.loads(BENCH_PATH.read_text())
    section = report.get("study-parallel")
    assert section, f"{BENCH_PATH} has no study-parallel section"
    assert section["cells_per_second_parallel"] > 0, section
    assert section["parallel_results_equal"], section
    assert section["cache_hit_rate"] == 1.0, section
    print(
        f"part C: {BENCH_PATH.name} study-parallel section OK "
        f"({section['cells_per_second_parallel']} cells/s parallel, "
        f"warm speedup {section['warm_speedup']}x)"
    )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = os.path.join(tmp, "cache")
        reference, seq_seconds = part_a_parallel_equality(tmp, cache_dir)
        part_b_sigkill_resume(tmp, reference)
        part_c_warm_cache(cache_dir, reference, seq_seconds)
    print(
        "parallel-smoke OK: workers=2 bit-for-bit, SIGKILL resumed, "
        "warm cache at 100% hits"
    )


if __name__ == "__main__":
    main()
