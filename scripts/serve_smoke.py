#!/usr/bin/env python
"""Serve smoke: the daemon's full service contract, end to end.

The one scenario that cannot run comfortably inside pytest — a real
``kill -9`` of the *daemon* while it executes a submitted study — plus
the dedup/caching story, against the repo's headline experiment
(``studies/consensus_scaling.toml``):

Part A — foreground reference.  The spec runs in-process (no daemon,
no cache); this store is the bit-for-bit yardstick for everything the
service produces.

Part B — kill/restart durability.  A daemon subprocess starts on a
fresh state dir, the spec is submitted over HTTP, and the ndjson event
stream is followed until the first ``record`` lands — then the daemon
is SIGKILL'd (no ``finally``, no checkpointing courtesy).  A second
daemon on the *same* state dir must replay its job journal, re-enqueue
the in-flight job, finish it, and serve a result store
``results_equal`` to Part A's — while a reconnected watcher sees the
journal's valid prefix replayed plus the new records, no duplicates.

Part C — content-addressed dedup.  Resubmitting the finished spec
attaches to the done job (no recomputation); submitting a *renamed*
copy (new spec_hash, identical cells) completes entirely from the
state-dir result cache — 100% ``cache_hit`` records, results still
bit-for-bit the reference.
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.serve import ServeClient, ServeError
from repro.study import StudySpec, load_spec

SPEC_PATH = os.path.join(
    os.path.dirname(__file__), "..", "studies", "consensus_scaling.toml"
)


def start_daemon(state_dir: str) -> "tuple[subprocess.Popen, str]":
    """Launch ``repro serve`` on an ephemeral port; return (proc, url)."""
    child = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--state-dir", state_dir],
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
        },
        stdout=subprocess.PIPE,
        text=True,
    )
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = child.stdout.readline()
        match = re.search(r"listening on (http://\S+)", line or "")
        if match:
            return child, match.group(1)
        if child.poll() is not None:
            break
        time.sleep(0.01)
    raise AssertionError("daemon never announced its address")


def part_b_kill_restart(tmp: str, reference) -> str:
    state_dir = os.path.join(tmp, "state")
    daemon, url = start_daemon(state_dir)
    spec = load_spec(SPEC_PATH)
    try:
        client = ServeClient(url)
        view = client.submit(spec)
        job_id = view["id"]
        print(f"part B: submitted job {job_id} ({view['num_cells']} cells)")
        # Follow the stream just long enough to prove cells are landing,
        # then SIGKILL the daemon mid-run.
        streamed_before = 0
        for event in client.events(job_id):
            if event["event"] == "record":
                streamed_before += 1
                if streamed_before >= 1:
                    break
        assert streamed_before >= 1, "no record ever streamed"
    finally:
        daemon.send_signal(signal.SIGKILL)
        daemon.wait()
        daemon.stdout.close()
    print(f"part B: SIGKILL'd the daemon after {streamed_before} streamed record(s)")

    daemon, url = start_daemon(state_dir)
    try:
        client = ServeClient(url)
        resumed_view = client.status(job_id)
        assert resumed_view["state"] in ("queued", "running", "done"), resumed_view
        killed_mid_run = resumed_view["counts"]["ok"] < resumed_view["num_cells"]
        seen = []
        final = client.wait(job_id, progress=seen.append)
        assert final["state"] == "done", final
        ids = [event["cell_id"] for event in seen]
        assert len(ids) == len(set(ids)), "reattached stream duplicated records"
        store = client.results_store(job_id)
        assert store.results_equal(reference), (
            "restarted daemon's store diverged from the foreground run"
        )
        print(
            "part B: restart resumed the job "
            f"({'mid-run' if killed_mid_run else 'already complete'}; "
            f"{len(seen)} records on the reattached stream) — results "
            "bit-for-bit the foreground run"
        )
        return state_dir, job_id
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait()
        daemon.stdout.close()


def part_c_dedup_and_cache(tmp: str, state_dir: str, job_id: str, reference):
    daemon, url = start_daemon(state_dir)
    spec = load_spec(SPEC_PATH)
    try:
        client = ServeClient(url)
        again = client.submit(spec)
        assert again["attached"] and again["id"] == job_id, again
        assert again["state"] == "done", again
        print("part C: resubmitting the finished spec attached (no recompute)")

        renamed = StudySpec.from_dict(
            {**spec.to_dict(), "name": "consensus-scaling (smoke rename)"}
        )
        view = client.submit(renamed)
        assert view["id"] != job_id, "rename should be a new content hash"
        final = client.wait(view["id"])
        assert final["state"] == "done", final
        counts = final["counts"]
        assert counts["cached"] == counts["ok"] == view["num_cells"], counts
        store = client.results_store(view["id"])
        records = store.records()
        assert all(record.cache_hit for record in records)
        # results_equal compares spec hashes, which the rename changes by
        # design; the *records* (same cell_ids, same seeds) must match.
        assert len(records) == len(reference.records())
        assert all(
            mine.same_results(ref)
            for mine, ref in zip(records, reference.records())
        ), "cached records diverged"
        print(
            f"part C: renamed spec served {counts['cached']}/{view['num_cells']} "
            "cells from the state-dir cache, bit-for-bit the reference"
        )
    finally:
        daemon.send_signal(signal.SIGTERM)
        daemon.wait()
        daemon.stdout.close()


def main() -> None:
    reference = api.study(SPEC_PATH)
    print(f"part A: foreground reference run complete ({len(reference)} cells)")
    with tempfile.TemporaryDirectory() as tmp:
        state_dir, job_id = part_b_kill_restart(tmp, reference)
        part_c_dedup_and_cache(tmp, state_dir, job_id, reference)
    print(
        "serve-smoke OK: SIGKILL'd daemon resumed bit-for-bit on restart; "
        "dedup attached; renamed spec at 100% cache hits"
    )


if __name__ == "__main__":
    main()
