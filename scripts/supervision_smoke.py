#!/usr/bin/env python
"""Supervision smoke: the execution policy's crash story, end to end.

Two chaos scenarios that cannot run inside pytest comfortably (they need
signal handlers on the main thread and a real ``kill -9``):

Part A — deadline enforcement.  A process whose ``update`` hangs is
registered into the process registry and swept alongside the healthy
3-Majority.  The run must kill the hanging cell at ``deadline_s``,
record it as ``status="timeout"`` and *continue* to the healthy cell.
The registry entry is then swapped for the real process (simulating a
transient hang) and ``resume`` must re-attempt exactly the timed-out
cell and complete the store.

Part B — torn-journal resume.  The same spec runs twice: once
uninterrupted (the reference), once in a subprocess that is SIGKILL'd at
a random moment mid-study — skipping every ``finally``, so only the
sidecar journal survives.  The journal is then truncated at a *random
byte offset* (simulating a tear inside the kill window itself), and the
study is resumed on top of the wreckage.  The resumed store must be
bit-for-bit identical to the uninterrupted one and the journal must be
compacted away.

The kill moment and the truncation offset are randomised per run (chaos
is the point); the seed is printed and can be pinned via
``SUPERVISION_SMOKE_SEED`` to replay a failure.
"""

from __future__ import annotations

import os
import random
import signal
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro import api
from repro.processes.registry import PROCESS_FACTORIES
from repro.processes.three_majority import ThreeMajority
from repro.study import StudySpec, load_study_store, journal_path, save_spec


class HangingThreeMajority(ThreeMajority):
    """3-Majority whose every update blocks far past any sane deadline."""

    def update(self, colors, rng):
        time.sleep(600.0)
        return super().update(colors, rng)


def part_a_deadline(tmp: str) -> None:
    PROCESS_FACTORIES["hanging"] = HangingThreeMajority
    spec = StudySpec(
        name="supervision smoke: deadline",
        seed=11,
        repetitions=2,
        axes={
            "process": ["hanging", "3-majority"],
            "n": [48],
            "backend": ["agent"],
            "rng_mode": ["per-replica"],
        },
    )
    store_path = os.path.join(tmp, "deadline.json")
    store = api.study(spec.to_dict(), store_path=store_path, deadline_s=1.0)
    records = store.records()
    assert len(records) == 2, f"run stopped early: {len(records)} records"
    hung, healthy = records
    assert hung.status == "timeout", hung.status
    assert hung.error["deadline_s"] == 1.0, hung.error
    assert hung.error["attempts"] == 1, "a hang must not be retried in-run"
    assert healthy.ok, "the run did not continue past the timed-out cell"
    assert not os.path.exists(journal_path(store_path)), "journal not compacted"
    print(
        f"part A: hanging cell killed at deadline "
        f"(wall {hung.wall_time_s:.2f}s), run continued"
    )

    # The hang was transient: swap in the real process and resume.  Only
    # the timed-out cell may be re-attempted; the healthy cell's samples
    # must be exactly what the first pass recorded.
    PROCESS_FACTORIES["hanging"] = ThreeMajority
    try:
        resumed = api.study(
            spec.to_dict(), store_path=store_path, resume=True, deadline_s=1.0
        )
        assert resumed.is_complete(), "resume left the timed-out cell broken"
        assert resumed.get(healthy.cell_id).same_results(healthy), (
            "resume disturbed the healthy cell's samples"
        )
    finally:
        del PROCESS_FACTORIES["hanging"]
    print("part A: resume re-attempted exactly the timed-out cell; store complete")


_CHILD = """
import sys, time
from repro import api
api.study(
    sys.argv[1],
    store_path=sys.argv[2],
    progress=lambda cell, record: time.sleep(0.25),
)
"""


def _run_child_until_killed(
    rng: random.Random, spec_path: str, store_path: str
) -> bool:
    """Start a study subprocess and SIGKILL it mid-run.

    Returns True when the kill landed while the journal was still live
    (the scenario under test); False when the child won the race and
    finished first — the caller clears the output and retries.
    """
    child = subprocess.Popen(
        [sys.executable, "-c", _CHILD, spec_path, store_path],
        env={
            **os.environ,
            "PYTHONPATH": os.path.join(
                os.path.dirname(__file__), "..", "src"
            ),
        },
    )
    jpath = journal_path(store_path)
    try:
        # Wait until at least one record line follows the header, then
        # kill at a random moment — anywhere from "one cell in" to
        # "almost done".
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            if child.poll() is not None:
                return False  # finished before any kill: retry
            try:
                with open(jpath, "rb") as handle:
                    if handle.read().count(b"\n") >= 2:
                        break
            except FileNotFoundError:
                pass
            time.sleep(0.01)
        time.sleep(rng.uniform(0.0, 0.6))
        if child.poll() is not None:
            return False
        child.send_signal(signal.SIGKILL)
        child.wait()
    finally:
        if child.poll() is None:
            child.kill()
            child.wait()
    return os.path.exists(jpath)


def part_b_torn_journal(tmp: str, rng: random.Random) -> None:
    spec = StudySpec(
        name="supervision smoke: torn journal",
        seed=23,
        repetitions=3,
        axes={
            "process": ["3-majority"],
            "n": [32, 48, 64, 80, 96, 128],
            "rng_mode": ["per-replica"],
        },
    )
    spec_path = os.path.join(tmp, "torn.toml")
    save_spec(spec, spec_path)
    full = api.study(spec_path, store_path=os.path.join(tmp, "full.json"))
    assert full.is_complete()

    part_path = os.path.join(tmp, "part.json")
    jpath = journal_path(part_path)
    for attempt in range(5):
        if _run_child_until_killed(rng, spec_path, part_path):
            break
        # The child finished (journal compacted) before the kill: wipe
        # its output and race again with a fresh start.
        for stale in (part_path, jpath):
            if os.path.exists(stale):
                os.remove(stale)
    else:
        raise AssertionError("could not SIGKILL the study mid-run in 5 tries")
    assert not os.path.exists(part_path), "SIGKILL should skip compaction"

    size = os.path.getsize(jpath)
    offset = rng.randrange(0, size + 1)
    with open(jpath, "r+b") as handle:
        handle.truncate(offset)
    print(f"part B: SIGKILL'd mid-study; journal torn at byte {offset}/{size}")

    resumed = api.study(spec_path, store_path=part_path, resume=True)
    assert resumed.is_complete(), "resume left cells unrun"
    assert resumed.results_equal(full), (
        "resumed store diverged from the uninterrupted run"
    )
    assert not os.path.exists(jpath), "journal not compacted after resume"
    reloaded = load_study_store(part_path)
    assert reloaded.results_equal(full), "compacted store diverged on reload"
    print("part B: resumed store is bit-for-bit the uninterrupted one")


def main() -> None:
    seed = os.environ.get("SUPERVISION_SMOKE_SEED")
    seed = int(seed) if seed else random.SystemRandom().randrange(2**32)
    print(f"supervision smoke (SUPERVISION_SMOKE_SEED={seed})")
    rng = random.Random(seed)
    with tempfile.TemporaryDirectory() as tmp:
        part_a_deadline(tmp)
        part_b_torn_journal(tmp, rng)
    print("supervision-smoke OK: deadlines enforced; torn journal resumed bit-for-bit")


if __name__ == "__main__":
    main()
