#!/usr/bin/env python
"""Fit the runtime cost-model constants from ``BENCH_engine.json``.

The ROADMAP's "keep ``auto`` honest" item: the backend registry ranks
strategies with three hand-calibrated constants
(:data:`repro.engine.runtime._SEQ_OVERHEAD`,
:data:`~repro.engine.runtime._COUNTS_FACTOR`,
:data:`~repro.engine.runtime._POOL_SPAWN_COST`).  As kernels evolve the
measured timings drift away from what those constants encode, and
``resolve_backend`` starts ranking on stale folklore.  This script closes
the loop without touching the runtime:

1. rebuild the exact :class:`~repro.engine.plan.SimulationPlan` behind
   every timing ``benchmarks/bench_engine_throughput.py`` recorded
   (scenario definitions are imported from the bench module, so the two
   can never disagree about what was measured);
2. decompose each backend's ``cost(plan)`` affinely in the three
   constants — every cost formula is affine in them, so four evaluations
   with the constants patched to unit vectors recover the exact
   coefficients, whatever the formulas currently are;
3. least-squares fit ``seconds ≈ scale × cost`` over all observations
   (rows weighted by 1/seconds, so every section counts equally), and
4. print the fitted constants next to the hand-calibrated ones with the
   relative drift.

Usage::

    PYTHONPATH=src python scripts/fit_cost_model.py [--report PATH]
        [--max-drift PCT]

``--max-drift`` turns the drift report into a check: exit non-zero when
any fitted constant is further than PCT percent from its hand-calibrated
value (used ad hoc after kernel work; the default is informational).

The fit is deliberately crude — the cost model only needs to *rank*
strategies, and one global elements-per-second scale across kernels as
different as a multinomial chain and a python tick loop is an
approximation.  Treat large drift as "re-derive the constant", not as a
number to paste in blindly.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

import numpy as np

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))
sys.path.insert(0, str(REPO / "benchmarks"))

import bench_engine_throughput as bench  # noqa: E402
from repro.engine import Consensus, SimulationPlan  # noqa: E402
from repro.engine import runtime  # noqa: E402
from repro.engine.runtime import get_backend  # noqa: E402

#: The constants the fit recovers (module attribute names in runtime.py).
CONSTANTS = ("_SEQ_OVERHEAD", "_COUNTS_FACTOR", "_POOL_SPAWN_COST")


def _cost_coefficients(backend_name: str, plan: SimulationPlan) -> np.ndarray:
    """``[base, d/d_SEQ_OVERHEAD, d/d_COUNTS_FACTOR, d/d_POOL_SPAWN_COST]``.

    Every registered cost formula is affine in the three constants (they
    never multiply each other), so evaluating with the constants patched
    to 0 and to unit vectors recovers the exact coefficients without
    duplicating any formula here.  A cold pool is assumed for sharded
    plans — that is how the bench measured them (one fresh pool per
    worker count).
    """
    backend = get_backend(backend_name)
    saved = {name: getattr(runtime, name) for name in CONSTANTS}
    saved_warm = runtime.pool_is_warm
    try:
        runtime.pool_is_warm = lambda workers: False
        for name in CONSTANTS:
            setattr(runtime, name, 0.0)
        base = backend.cost(plan)
        coefficients = [base]
        for name in CONSTANTS:
            setattr(runtime, name, 1.0)
            coefficients.append(backend.cost(plan) - base)
            setattr(runtime, name, 0.0)
    finally:
        for name, value in saved.items():
            setattr(runtime, name, value)
        runtime.pool_is_warm = saved_warm
    return np.asarray(coefficients, dtype=float)


def _observations(report: dict) -> "list[tuple[str, str, SimulationPlan, float]]":
    """Pair every recorded timing with the plan and backend it measured."""
    smoke = report.get("mode") == "smoke"
    rng = report["seed"]
    observations = []

    scenarios = bench.SMOKE_SCENARIOS if smoke else bench.FULL_SCENARIOS
    for scenario, entry in zip(scenarios, report["scenarios"]):
        plan = SimulationPlan(
            process=scenario["factory"],
            initial=scenario["initial"](),
            stop=Consensus(),
            repetitions=scenario["repetitions"],
            rng=rng,
        )
        for key, backend_name in (
            ("sequential_seconds", scenario["sequential"]),
            ("ensemble_seconds", scenario["ensemble"]),
        ):
            observations.append(
                (entry["label"], backend_name, plan, float(entry[key]))
            )

    sharded = bench.SMOKE_SHARDED if smoke else bench.FULL_SHARDED
    entry = report["sharded"]
    for worker_entry in entry["workers"]:
        workers = worker_entry["workers"]
        plan = SimulationPlan(
            process=sharded["factory"],
            initial=sharded["initial"](),
            stop=Consensus(),
            repetitions=sharded["repetitions"],
            rng=rng,
            rng_mode="per-replica",
            workers=workers,
        )
        observations.append(
            (
                f"{entry['label']} workers={workers}",
                f"sharded-{sharded['backend']}",
                plan,
                float(worker_entry["seconds"]),
            )
        )

    async_scenario = bench.SMOKE_ASYNC if smoke else bench.FULL_ASYNC
    entry = report["async"]
    plan = SimulationPlan(
        process=async_scenario["factory"],
        initial=async_scenario["initial"](),
        stop=Consensus(),
        repetitions=async_scenario["repetitions"],
        rng=rng,
        scheduler="asynchronous",
        max_rounds=int(entry["tick_budget"]),
    )
    observations.append(
        (entry["label"], "async", plan, float(entry["sequential_seconds"]))
    )
    observations.append(
        (entry["label"], "ensemble-async", plan, float(entry["ensemble_seconds"]))
    )

    adversary_scenario = bench.SMOKE_ADVERSARY if smoke else bench.FULL_ADVERSARY
    entry = report["adversary"]
    plan = SimulationPlan(
        process=adversary_scenario["factory"],
        initial=adversary_scenario["initial"](),
        repetitions=adversary_scenario["repetitions"],
        rng=rng,
        adversary=adversary_scenario["adversary"](),
        max_rounds=adversary_scenario["max_rounds"],
        stable_fraction=0.9,
    )
    for key, backend_name in (
        ("sequential_seconds", "adversary"),
        ("counts_ensemble_seconds", "ensemble-adversary-counts"),
        ("agent_ensemble_seconds", "ensemble-adversary-agent"),
    ):
        observations.append((entry["label"], backend_name, plan, float(entry[key])))

    # The fused-kernel section (PR 8).  Neither kernel cost formula uses
    # the fitted constants (their factors are separate knobs), so these
    # rows only constrain the global seconds-per-element scale — which is
    # exactly what keeps the kernel-vs-counts ranking honest.
    kernels = report.get("kernels")
    if kernels:
        sync = bench.SMOKE_KERNELS["sync"] if smoke else bench.FULL_KERNELS["sync"]
        plan = SimulationPlan(
            process=sync["factory"],
            initial=sync["initial"](),
            stop=Consensus(),
            repetitions=sync["repetitions"],
            rng=rng,
        )
        observations.append(
            (
                kernels["sync"]["label"],
                "kernel-agent",
                plan,
                float(kernels["sync"]["kernel_seconds"]),
            )
        )
        asynchronous = (
            bench.SMOKE_KERNELS["async"] if smoke else bench.FULL_KERNELS["async"]
        )
        plan = SimulationPlan(
            process=asynchronous["factory"],
            initial=asynchronous["initial"](),
            stop=Consensus(),
            repetitions=asynchronous["repetitions"],
            rng=rng,
            scheduler="asynchronous",
            max_rounds=int(kernels["async"]["tick_budget"]),
        )
        observations.append(
            (
                kernels["async"]["label"],
                "kernel-async",
                plan,
                float(kernels["async"]["kernel_seconds"]),
            )
        )

    return observations


def fit(report: dict) -> dict:
    """Least-squares fit of the constants against one bench report."""
    # Drop degenerate timings up front so the design matrix, the targets
    # and the reported observations stay aligned row for row.
    observations = [
        entry for entry in _observations(report) if entry[3] > 0.0
    ]
    design = np.asarray(
        [
            _cost_coefficients(backend_name, plan)
            for _label, backend_name, plan, _measured in observations
        ],
        dtype=float,
    )
    target = np.asarray([entry[3] for entry in observations], dtype=float)
    # Relative-error weighting: every observation contributes one unit row,
    # so the 4.8 s async loop cannot drown the 1.9 ms ensemble timing.
    weights = 1.0 / target
    solution, *_ = np.linalg.lstsq(
        design * weights[:, None], np.ones_like(target), rcond=None
    )
    scale = solution[0]
    if scale <= 0.0:
        raise RuntimeError(
            f"fit produced a non-positive seconds-per-element scale ({scale:.3e}); "
            "the recorded timings do not support the cost model's shape"
        )
    fitted = {
        name: float(solution[1 + i] / scale) for i, name in enumerate(CONSTANTS)
    }
    predicted = design @ solution
    return {
        "scale_seconds_per_element": float(scale),
        "fitted": fitted,
        "hand_calibrated": {
            name: float(getattr(runtime, name)) for name in CONSTANTS
        },
        "observations": [
            {
                "label": label,
                "backend": backend_name,
                "measured_seconds": measured,
                "predicted_seconds": float(p),
            }
            for (label, backend_name, _plan, measured), p in zip(
                observations, predicted
            )
        ],
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--report",
        default=str(REPO / "BENCH_engine.json"),
        help="bench report to fit against (default: the committed one)",
    )
    parser.add_argument(
        "--max-drift",
        type=float,
        default=None,
        metavar="PCT",
        help="fail when any constant drifts further than PCT percent",
    )
    args = parser.parse_args(argv)

    report = json.loads(pathlib.Path(args.report).read_text())
    result = fit(report)

    print(f"cost-model fit against {args.report} (mode={report.get('mode')})")
    print(
        f"  global scale: {result['scale_seconds_per_element']:.3e} "
        "seconds per cost-model element"
    )
    print()
    print(f"  {'constant':<18} {'hand-calibrated':>16} {'fitted':>14} {'drift':>9}")
    worst_drift = 0.0
    for name in CONSTANTS:
        hand = result["hand_calibrated"][name]
        fitted = result["fitted"][name]
        drift = abs(fitted - hand) / abs(hand) * 100.0
        worst_drift = max(worst_drift, drift)
        flag = "" if fitted > 0 else "   (unconstrained by these timings)"
        print(f"  {name:<18} {hand:>16.4g} {fitted:>14.4g} {drift:>8.1f}%{flag}")
    print()
    print("  per-observation check (measured vs the fitted model):")
    for entry in result["observations"]:
        ratio = entry["predicted_seconds"] / entry["measured_seconds"]
        print(
            f"    {entry['backend']:<26} {entry['measured_seconds']:>9.4f}s "
            f"measured, {entry['predicted_seconds']:>9.4f}s fitted "
            f"(x{ratio:.2f})  [{entry['label']}]"
        )

    if args.max_drift is not None and worst_drift > args.max_drift:
        print(
            f"\nFAIL: worst drift {worst_drift:.1f}% exceeds "
            f"--max-drift {args.max_drift:.1f}% — re-derive the constants "
            "(see the cost-model comment block in src/repro/engine/runtime.py)"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
