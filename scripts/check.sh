#!/usr/bin/env bash
# One-command verification: tier-1 test-suite + engine-throughput smoke.
#
#   scripts/check.sh            # everything
#   scripts/check.sh -k engine  # extra args forwarded to pytest
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"
python benchmarks/bench_engine_throughput.py --smoke
