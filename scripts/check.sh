#!/usr/bin/env bash
# One-command verification: tier-1 + plan-matrix + study-smoke +
# faults-smoke + supervision-smoke + throughput.
#
# Steps:
#   1. tier-1    — the full test suite.
#   2. plan-matrix — the cross-backend equivalence matrix (bench_smoke
#      marker): per-replica bit-for-bit agreement of sequential vs
#      ensemble vs sharded(workers=1,2) vs plan-resolved "auto" on
#      3-Majority / 2-Choices / Voter, plus the async and adversary plan
#      axes against their sequential runners.
#   3. study-smoke — the declarative-study resume contract end-to-end
#      through the CLI: a 2-cell StudySpec run to completion, the same
#      spec killed after one cell and resumed, both stores reported, and
#      the resumed store asserted bit-for-bit equal to the uninterrupted
#      one (per-replica rng_mode).
#   4. faults-smoke — the failure-isolation contract: a 2-cell spec with
#      a faults axis whose crash=1.0 cell deterministically exceeds its
#      round budget.  The run still exits 0, records the failure with a
#      traceback, the report surfaces it, and resuming a store that only
#      has the healthy cell retries just the broken one — leaving the
#      healthy cell's samples bit-for-bit what the uninterrupted run got.
#   5. supervision-smoke — the execution policy's chaos story: a cell
#      whose process hangs is killed at its deadline (status="timeout",
#      run continues, resume re-attempts it), and a study subprocess is
#      SIGKILL'd mid-run, its journal truncated at a random byte offset,
#      then resumed — the resumed store must be bit-for-bit identical to
#      an uninterrupted run.
#   6. parallel-smoke — the concurrent-study contract: the same spec run
#      sequentially and with workers=2 (bit-for-bit results_equal), a
#      parallel subprocess SIGKILL'd mid-run and resumed to the identical
#      store, and a second run over the warm result cache replaying every
#      cell (100% hits) — plus the committed BENCH_engine.json carrying a
#      study-parallel section with positive parallel throughput.
#   7. serve-smoke — the service contract end-to-end: a daemon
#      subprocess accepts studies/consensus_scaling.toml over HTTP,
#      streams ndjson progress, is SIGKILL'd mid-run, and a second
#      daemon on the same state dir resumes the job to a store
#      bit-for-bit equal to an uninterrupted foreground run; then
#      resubmission dedup (attach, no recompute) and a renamed spec
#      served at 100% cache hits from the state-dir result cache.
#   8. smoke     — the engine-throughput benchmark in ≤30 s mode
#      (sequential vs ensemble headline, the persistent sharded pool at
#      R=4 / workers=2, async / adversary engines, fault-path overhead,
#      the fused-kernel section, and the runtime's resolved-backend
#      record per section).
#   9. kernels-smoke — the fused-kernel regression gate: re-measures the
#      smoke-size kernel scenarios under REPRO_NO_NUMBA=0 and =1 and
#      fails on a >20% speedup drop vs the baselines recorded in the
#      committed BENCH_engine.json (kernels.smoke_reference).  Both env
#      settings run so the pure-numpy fallback is gated alongside the
#      JIT path.
#
#   scripts/check.sh            # everything
#   scripts/check.sh -k engine  # extra args forwarded to the tier-1 run
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"
echo "== plan-matrix: cross-backend equivalence =="
python -m pytest -x -q -m bench_smoke tests/test_runtime_matrix.py
echo "== study-smoke: save -> resume -> report, bit-for-bit =="
STUDY_TMP="$(mktemp -d)"
trap 'rm -rf "$STUDY_TMP"' EXIT
cat > "$STUDY_TMP/smoke.toml" <<'EOF'
name = "check.sh study smoke"
seed = 7
repetitions = 3

[axes]
process = "3-majority"
n = [64, 96]
rng_mode = "per-replica"
EOF
python -m repro study run "$STUDY_TMP/smoke.toml" --store "$STUDY_TMP/full.json" --quiet
python -m repro study run "$STUDY_TMP/smoke.toml" --store "$STUDY_TMP/part.json" --max-cells 1 --quiet
python -m repro study resume "$STUDY_TMP/smoke.toml" --store "$STUDY_TMP/part.json" --quiet
python -m repro study report "$STUDY_TMP/part.json"
python - "$STUDY_TMP" <<'EOF'
import sys
from repro.study import load_study_store
tmp = sys.argv[1]
full = load_study_store(f"{tmp}/full.json")
resumed = load_study_store(f"{tmp}/part.json")
assert full.is_complete() and resumed.is_complete(), "smoke study left cells unrun"
assert resumed.results_equal(full), (
    "resumed store diverged from the uninterrupted run"
)
print("study-smoke OK: resumed store is bit-for-bit the uninterrupted one")
EOF
echo "== faults-smoke: record failure -> resume -> report =="
cat > "$STUDY_TMP/faults.toml" <<'EOF'
name = "check.sh faults smoke"
seed = 9
repetitions = 3

[axes]
process = "3-majority"
workload = { name = "balanced", kwargs = { k = 3 } }
n = 48
max_rounds = 400
rng_mode = "per-replica"
faults = ["none", { crash = 1.0 }]
EOF
# crash = 1.0 freezes every node from round 0, so that cell can never
# reach consensus and deterministically blows its 400-round budget; the
# run must still exit 0 with the failure recorded, not raise.
python -m repro study run "$STUDY_TMP/faults.toml" --store "$STUDY_TMP/ffull.json" --quiet
python -m repro study run "$STUDY_TMP/faults.toml" --store "$STUDY_TMP/fpart.json" --max-cells 1 --quiet
python -m repro study resume "$STUDY_TMP/faults.toml" --store "$STUDY_TMP/fpart.json" --quiet
python -m repro study report "$STUDY_TMP/fpart.json"
python - "$STUDY_TMP" <<'EOF'
import sys
from repro.study import load_study_store
tmp = sys.argv[1]
full = load_study_store(f"{tmp}/ffull.json")
resumed = load_study_store(f"{tmp}/fpart.json")
for store in (full, resumed):
    by_status = {record.status: record for record in store.records()}
    assert set(by_status) == {"ok", "failed"}, sorted(by_status)
    failed = by_status["failed"]
    assert failed.error["type"] == "RoundLimitExceeded", failed.error
    assert failed.error["attempts"] == 2, "failed cell was not retried"
    assert "Traceback" in failed.error["traceback"], "no traceback recorded"
ok_full = [record for record in full.records() if record.ok]
ok_resumed = [record for record in resumed.records() if record.ok]
assert len(ok_full) == len(ok_resumed) == 1
assert ok_resumed[0].same_results(ok_full[0]), (
    "resume disturbed the healthy cell's samples"
)
print("faults-smoke OK: failure recorded with traceback; healthy cell untouched")
EOF
echo "== supervision-smoke: deadline kill + torn-journal resume =="
python scripts/supervision_smoke.py
echo "== parallel-smoke: workers=2 bit-for-bit + SIGKILL resume + warm cache =="
python scripts/parallel_smoke.py
echo "== serve-smoke: daemon SIGKILL -> restart resume + dedup + cache =="
python scripts/serve_smoke.py
python benchmarks/bench_engine_throughput.py --smoke
echo "== kernels-smoke: fused-kernel regression gate (numba + numpy fallback) =="
REPRO_NO_NUMBA=0 python benchmarks/bench_engine_throughput.py --kernels-check
REPRO_NO_NUMBA=1 python benchmarks/bench_engine_throughput.py --kernels-check
