#!/usr/bin/env bash
# One-command verification: tier-1 test-suite + engine-throughput smoke.
#
# The smoke covers every execution path: sequential vs ensemble headline,
# the sharded pool (R=4 over workers=2, bit-for-bit merge check), and the
# async / adversary ensemble engines at tiny shapes.
#
#   scripts/check.sh            # everything
#   scripts/check.sh -k engine  # extra args forwarded to pytest
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"
python benchmarks/bench_engine_throughput.py --smoke
