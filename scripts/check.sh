#!/usr/bin/env bash
# One-command verification: tier-1 test-suite + plan-matrix + throughput smoke.
#
# Steps:
#   1. tier-1    — the full test suite.
#   2. plan-matrix — the cross-backend equivalence matrix (bench_smoke
#      marker): per-replica bit-for-bit agreement of sequential vs
#      ensemble vs sharded(workers=1,2) vs plan-resolved "auto" on
#      3-Majority / 2-Choices / Voter, plus the async and adversary plan
#      axes against their sequential runners.
#   3. smoke     — the engine-throughput benchmark in ≤30 s mode
#      (sequential vs ensemble headline, the persistent sharded pool at
#      R=4 / workers=2, async / adversary engines, and the runtime's
#      resolved-backend record per section).
#
#   scripts/check.sh            # everything
#   scripts/check.sh -k engine  # extra args forwarded to the tier-1 run
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

python -m pytest -x -q "$@"
echo "== plan-matrix: cross-backend equivalence =="
python -m pytest -x -q -m bench_smoke tests/test_runtime_matrix.py
python benchmarks/bench_engine_throughput.py --smoke
