"""Legacy setup shim.

The offline environment has setuptools but no `wheel`, so PEP-517 editable
installs fail with "invalid command 'bdist_wheel'".  This shim lets
``python setup.py develop`` / ``pip install -e . --no-build-isolation``
fall back to the legacy egg-link editable install, which needs no wheel.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
