"""Tests for the batched asynchronous engines and per-node sample rules.

Covers the two halves of the async rework:

* the sequential :func:`run_asynchronous` now computes only the activated
  node's update (``update_node`` / ``update_from_samples``) instead of a
  full synchronous round per tick — semantics checked against the rule
  and, in distribution, against the synchronous engine;
* :func:`run_asynchronous_ensemble` advances ``R`` replicas lock-step
  with batch-drawn randomness and incremental counts; its tick
  distributions must match the sequential scheduler within statistical
  tolerance.
"""

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import (
    ColorsAtMost,
    Consensus,
    EnsembleMetricRecorder,
    repeat_first_passage,
    run_asynchronous,
    run_asynchronous_ensemble,
)
from repro.processes import ThreeMajority, TwoChoices, TwoMedian, Voter
from repro.processes.three_majority import ThreeMajorityResample


# ---------------------------------------------------------------------------
# Per-node sample rules.


@pytest.mark.parametrize(
    "process_cls", [ThreeMajority, ThreeMajorityResample, TwoChoices, Voter]
)
def test_update_from_samples_matches_update(process_cls):
    """The sample rule applied to a full round's picks equals `update`."""
    process = process_cls()
    assert process.has_sample_update
    colors = Configuration.biased(151, 5, 13).to_assignment()
    n = colors.size
    seed = 99
    # Reproduce update()'s own draws, then re-apply the rule by hand.
    rng_a = np.random.default_rng(seed)
    expected = process.update(colors, rng_a)
    rng_b = np.random.default_rng(seed)
    sampled = rng_b.integers(
        0, n, size=(n, process.samples_per_round)
    )
    picks = colors[sampled]
    actual = process.update_from_samples(colors, picks, rng_b)
    assert np.array_equal(expected, actual)


@pytest.mark.parametrize(
    "process_cls", [ThreeMajority, ThreeMajorityResample, TwoChoices, Voter]
)
def test_update_node_scalar_shape(process_cls):
    process = process_cls()
    colors = Configuration.biased(60, 4, 10).to_assignment()
    rng = np.random.default_rng(3)
    new = process.update_node(colors, 7, rng)
    assert np.ndim(new) == 0
    assert 0 <= int(new) < 4


def test_update_node_fallback_is_full_round_slice():
    """Processes without a sample rule fall back to update()[node]."""
    process = TwoMedian()
    assert not process.has_sample_update
    colors = Configuration.biased(40, 3, 6).to_assignment()
    seed = 17
    expected = process.update(colors, np.random.default_rng(seed))[5]
    actual = process.update_node(colors, 5, np.random.default_rng(seed))
    assert int(expected) == int(actual)


def test_update_from_samples_not_implemented_without_rule():
    with pytest.raises(NotImplementedError):
        TwoMedian().update_from_samples(
            np.zeros(3, dtype=np.int64),
            np.zeros((3, 2), dtype=np.int64),
            np.random.default_rng(0),
        )


# ---------------------------------------------------------------------------
# Sequential scheduler on the fast tick path.


def test_sequential_async_reaches_consensus():
    result = run_asynchronous(ThreeMajority(), Configuration.balanced(32, 4), rng=2)
    assert result.reached_consensus
    assert result.stopped


def test_sequential_async_round_equivalents_match_sync_scale():
    config = Configuration.balanced(32, 4)
    sync_mean = repeat_first_passage(
        Voter, config, Consensus(), 30, rng=7, backend="counts"
    ).mean()
    async_equivalents = [
        run_asynchronous(Voter(), config, rng=500 + s).round_equivalents()
        for s in range(15)
    ]
    assert 0.3 < np.mean(async_equivalents) / sync_mean < 3.0


# ---------------------------------------------------------------------------
# Lock-step asynchronous ensemble.


def test_async_ensemble_consensus_and_population_invariants():
    result = run_asynchronous_ensemble(
        Voter(), Configuration.balanced(64, 4), 12, rng=3
    )
    assert result.all_stopped
    assert result.repetitions == 12
    assert np.all(result.ticks > 0)
    assert np.all(result.final_counts.sum(axis=1) == 64)
    assert np.all(np.count_nonzero(result.final_counts, axis=1) == 1)
    assert np.all(result.round_equivalents() == result.ticks / 64.0)


def test_async_ensemble_deterministic():
    config = Configuration.balanced(48, 3)
    a = run_asynchronous_ensemble(ThreeMajority(), config, 8, rng=5)
    b = run_asynchronous_ensemble(ThreeMajority(), config, 8, rng=5)
    assert np.array_equal(a.ticks, b.ticks)
    assert np.array_equal(a.final_counts, b.final_counts)


@pytest.mark.parametrize("process_cls", [ThreeMajority, Voter, TwoChoices])
def test_async_ensemble_matches_sequential_distribution(process_cls):
    """Tick distributions agree with the sequential scheduler (tolerance)."""
    config = Configuration.balanced(64, 2)
    repetitions = 40
    sequential = np.asarray(
        [
            run_asynchronous(process_cls(), config, rng=1000 + s).ticks
            for s in range(repetitions)
        ],
        dtype=float,
    )
    ensemble = run_asynchronous_ensemble(
        process_cls(), config, repetitions, rng=4
    )
    assert ensemble.all_stopped
    ratio = ensemble.ticks.mean() / sequential.mean()
    assert 0.5 < ratio < 2.0, (ensemble.ticks.mean(), sequential.mean())


def test_async_ensemble_fallback_process_matches_sequential_distribution():
    """Processes without a sample rule ride the per-replica fallback."""
    config = Configuration.biased(40, 3, 6)
    ensemble = run_asynchronous_ensemble(
        TwoMedian(), config, 10, rng=6, max_ticks=100_000
    )
    assert ensemble.all_stopped
    sequential = np.asarray(
        [
            run_asynchronous(TwoMedian(), config, rng=2000 + s).ticks
            for s in range(10)
        ],
        dtype=float,
    )
    ratio = ensemble.ticks.mean() / sequential.mean()
    assert 0.4 < ratio < 2.5


def test_async_ensemble_custom_stop_and_tick_limit():
    result = run_asynchronous_ensemble(
        Voter(),
        Configuration.singletons(24),
        6,
        rng=4,
        stop=ColorsAtMost(6),
    )
    assert result.all_stopped
    assert np.all(np.count_nonzero(result.final_counts, axis=1) <= 6)
    limited = run_asynchronous_ensemble(
        Voter(), Configuration.balanced(24, 3), 4, rng=5, max_ticks=3
    )
    assert np.all(limited.ticks <= 3)
    assert np.all(limited.final_counts.sum(axis=1) == 24)


def test_async_ensemble_check_every_stride():
    result = run_asynchronous_ensemble(
        Voter(), Configuration.balanced(30, 2), 5, rng=8, check_every=7
    )
    # Stopping is only evaluated on the stride, so recorded ticks are
    # multiples of it (except replicas stopped at tick 0).
    assert np.all(result.ticks % 7 == 0)
    with pytest.raises(ValueError):
        run_asynchronous_ensemble(
            Voter(), Configuration.balanced(30, 2), 5, rng=8, check_every=0
        )
    with pytest.raises(ValueError):
        run_asynchronous_ensemble(Voter(), Configuration.balanced(30, 2), 0)


def test_async_ensemble_recorder_hook():
    recorder = EnsembleMetricRecorder(
        names=("num_colors", "max_support"), aggregate="mean"
    )
    run_asynchronous_ensemble(
        ThreeMajority(),
        Configuration.balanced(60, 3),
        6,
        rng=9,
        recorder=recorder,
    )
    assert len(recorder) >= 2
    series = recorder.series("num_colors")
    assert series[0] == 3.0
    assert series[-1] <= series[0]


def test_async_ensemble_projected_counts():
    """Processes with widened projections recompute counts on stride."""
    from repro.processes import UndecidedDynamics

    process = UndecidedDynamics()
    initial = Configuration.biased(50, 3, 20)
    result = run_asynchronous_ensemble(
        process, initial, 4, rng=6, max_ticks=200_000
    )
    assert result.final_counts.shape == (4, initial.num_slots + 1)
    assert np.all(result.final_counts.sum(axis=1) == 50)
