"""Tests for the fault-injection subsystem and the failure-isolating runner.

Covers the three layers the faults axis threads through:

* the fault models and schedules themselves (semantics: stasis under
  total crash/loss, recovery after a closed window, node conservation,
  plan-validation of the incompatible axes);
* the declarative vocabulary (canonical dicts, CLI grammar, TOML
  round-trip, spec/cell hash stability for fault-free specs);
* the failure-isolating ``run_study`` (failed cells recorded with
  tracebacks, retry on fresh sub-seeds, resume re-attempting exactly
  the failed/missing cells, store format v2 + v1 upgrade,
  :class:`StoreCorruptError` on mangled files).
"""

import json

import numpy as np
import pytest

import repro
from repro import StudySpec, api
from repro.core import Configuration
from repro.engine import Consensus, SimulationPlan, execute, run
from repro.faults import (
    CrashRecovery,
    CrashStop,
    FaultSchedule,
    MessageLoss,
    as_fault_schedule,
    build_fault_schedule,
    canonical_fault_value,
    encode_fault_value,
    parse_fault_cli,
)
from repro.processes import ThreeMajority, TwoChoices
from repro.study import (
    ExecutionPolicy,
    StoreCorruptError,
    StudyStore,
    compile_study,
    dumps_spec,
    load_study_store,
    loads_spec,
    run_study,
    spec_hash,
    study_report,
)
from repro.study.runner import _record_cell


# ---------------------------------------------------------------------------
# Fault model semantics
# ---------------------------------------------------------------------------


class TestFaultSemantics:
    def test_total_crash_is_stasis(self):
        initial = Configuration.balanced(48, 3)
        result = run(
            ThreeMajority(),
            initial,
            rng=5,
            faults=CrashStop(1.0),
            max_rounds=50,
            raise_on_limit=False,
        )
        assert not result.stopped
        assert np.array_equal(result.final.counts_array(), initial.counts_array())

    def test_total_loss_is_stasis_on_agent_backend(self):
        initial = Configuration.biased(32, 4, 8)
        result = run(
            TwoChoices(),
            initial,
            rng=5,
            faults=MessageLoss(1.0),
            max_rounds=50,
            raise_on_limit=False,
        )
        assert not result.stopped
        assert np.array_equal(result.final.counts_array(), initial.counts_array())

    def test_recovery_after_closed_window_reaches_consensus(self):
        # Total crash for rounds [0, 5), then recovery drains the crashed
        # pool and the dynamics converge normally.
        schedule = FaultSchedule(CrashRecovery(1.0, 0.5), start=0, stop=5)
        result = run(
            ThreeMajority(),
            Configuration.balanced(48, 3),
            rng=11,
            faults=schedule,
            max_rounds=5_000,
        )
        assert result.stopped
        assert result.final.is_consensus

    def test_population_conserved_under_active_faults(self):
        schedule = FaultSchedule((CrashRecovery(0.1, 0.2), MessageLoss(0.1)))
        for backend in ("counts", "agent"):
            result = run(
                ThreeMajority(),
                Configuration.balanced(60, 3),
                rng=3,
                backend=backend,
                faults=schedule,
                max_rounds=2_000,
            )
            assert int(result.final.counts_array().sum()) == 60

    def test_trivial_schedules_collapse_to_none(self):
        assert as_fault_schedule(None) is None
        assert as_fault_schedule(CrashStop(0.0)) is None
        assert as_fault_schedule(FaultSchedule(())) is None
        assert as_fault_schedule(MessageLoss(0.0)) is None
        live = as_fault_schedule(MessageLoss(0.5))
        assert isinstance(live, FaultSchedule)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            CrashStop(1.5)
        with pytest.raises(ValueError):
            CrashRecovery(0.1, -0.2)
        with pytest.raises(ValueError):
            FaultSchedule(CrashStop(0.1), start=-1)
        with pytest.raises(ValueError):
            FaultSchedule(CrashStop(0.1), start=5, stop=5)
        with pytest.raises(TypeError):
            as_fault_schedule("crash")

    def test_plan_rejects_incompatible_axes(self):
        base = dict(
            process=ThreeMajority,
            initial=Configuration.balanced(24, 3),
            stop=Consensus(),
            repetitions=2,
            rng=0,
            faults=CrashStop(0.1),
        )
        with pytest.raises(ValueError, match="synchronous"):
            SimulationPlan(scheduler="asynchronous", **base)
        from repro.adversary import PlantInvalid

        with pytest.raises(ValueError, match="mutually exclusive"):
            SimulationPlan(adversary=PlantInvalid(1, invalid_color=9), **base)

    def test_windowed_schedule_active(self):
        schedule = FaultSchedule(MessageLoss(0.5), start=2, stop=9)
        assert not schedule.active(1)
        assert schedule.active(2)
        assert schedule.active(8)
        assert not schedule.active(9)
        open_ended = FaultSchedule(MessageLoss(0.5), start=3)
        assert open_ended.active(10**9)


# ---------------------------------------------------------------------------
# Declarative vocabulary
# ---------------------------------------------------------------------------


class TestDeclarativeVocabulary:
    def test_canonical_fills_defaults(self):
        assert canonical_fault_value(None) is None
        assert canonical_fault_value("none") is None
        value = canonical_fault_value({"crash": 0.01, "recover": 0.1})
        assert value == {
            "crash": 0.01, "recover": 0.1, "loss": 0.0,
            "byzantine": 0.0, "color": None, "start": 0, "stop": None,
        }

    def test_canonical_validation(self):
        with pytest.raises(KeyError):
            canonical_fault_value({"chaos": 1})
        with pytest.raises(ValueError):
            canonical_fault_value({"crash": 2.0})
        with pytest.raises(ValueError):
            canonical_fault_value({"recover": 0.5})  # recover without crash
        with pytest.raises(ValueError):
            canonical_fault_value({"crash": 0.1, "start": 5, "stop": 3})

    def test_encode_drops_defaults(self):
        assert encode_fault_value(None) == "none"
        assert encode_fault_value({"crash": 0.0}) == "none"
        assert encode_fault_value({"crash": 0.01, "start": 0}) == {"crash": 0.01}
        roundtrip = canonical_fault_value(
            encode_fault_value({"loss": 0.05, "start": 2, "stop": 9})
        )
        assert roundtrip == canonical_fault_value(
            {"loss": 0.05, "start": 2, "stop": 9}
        )

    def test_cli_grammar(self):
        assert parse_fault_cli(None) is None
        assert parse_fault_cli("none") is None
        assert parse_fault_cli("crash:p=0.01,recover=0.1") == canonical_fault_value(
            {"crash": 0.01, "recover": 0.1}
        )
        assert parse_fault_cli("loss:p=0.05,start=2,stop=9") == (
            canonical_fault_value({"loss": 0.05, "start": 2, "stop": 9})
        )
        merged = parse_fault_cli("crash:p=0.01", loss=0.05)
        assert merged["loss"] == 0.05 and merged["crash"] == 0.01
        assert parse_fault_cli(None, loss=0.05) == canonical_fault_value(
            {"loss": 0.05}
        )
        with pytest.raises(ValueError):
            parse_fault_cli("meteor:p=0.5")
        with pytest.raises(ValueError):
            parse_fault_cli("crash")
        with pytest.raises(ValueError):
            parse_fault_cli("crash:p=0.01,zap=2")

    def test_build_fault_schedule_picks_models(self):
        assert build_fault_schedule(None) is None
        crash = build_fault_schedule({"crash": 0.01})
        assert isinstance(crash.faults[0], CrashStop)
        recovery = build_fault_schedule({"crash": 0.01, "recover": 0.1})
        assert isinstance(recovery.faults[0], CrashRecovery)
        both = build_fault_schedule({"crash": 0.01, "loss": 0.05})
        assert len(both.faults) == 2
        assert isinstance(both.faults[1], MessageLoss)

    def test_spec_hash_stable_without_faults_axis(self):
        """Adding the axis must not orphan existing stores and specs."""
        base = StudySpec(name="s", axes={"process": ["voter"], "n": [16]})
        explicit = StudySpec(
            name="s", axes={"process": ["voter"], "n": [16], "faults": ["none"]}
        )
        assert spec_hash(base) == spec_hash(explicit)
        assert "faults" not in base.to_dict()["axes"]
        # Fault-free cells keep their pre-fault cell ids too.
        for cell in compile_study(base):
            assert "faults" not in cell.params

    def test_spec_toml_roundtrip_with_faults_axis(self):
        spec = StudySpec(
            name="faulty",
            seed=2,
            repetitions=2,
            axes={
                "process": ["3-majority"],
                "n": [24],
                "faults": ["none", {"crash": 0.01, "recover": 0.1}, {"loss": 0.05}],
            },
        )
        assert loads_spec(dumps_spec(spec)) == spec
        assert spec_hash(loads_spec(dumps_spec(spec))) == spec_hash(spec)
        assert spec.num_cells() == 3

    def test_compiled_fault_cells_carry_plans_and_labels(self):
        spec = StudySpec(
            name="faulty",
            repetitions=2,
            axes={
                "process": ["3-majority"],
                "n": [24],
                "faults": ["none", {"crash": 0.01}],
            },
        )
        cells = compile_study(spec)
        assert cells[0].plan.faults is None
        assert isinstance(cells[1].plan.faults, FaultSchedule)
        assert "faults(crash=0.01)" in cells[1].label()
        assert "faults" not in cells[0].label()

    def test_api_simulate_accepts_fault_forms(self):
        kwargs = dict(n=32, workload={"name": "balanced", "kwargs": {"k": 3}}, seed=4)
        by_dict = api.simulate("3-majority", faults={"loss": 0.1}, **kwargs)
        by_str = api.simulate("3-majority", faults="loss:p=0.1", **kwargs)
        by_obj = api.simulate("3-majority", faults=MessageLoss(0.1), **kwargs)
        assert np.array_equal(by_dict.times, by_str.times)
        assert np.array_equal(by_dict.times, by_obj.times)


# ---------------------------------------------------------------------------
# Failure-isolating runner + store v2
# ---------------------------------------------------------------------------


def failing_spec(**overrides):
    """Two cells: one healthy, one that deterministically explodes.

    ``crash = 1.0`` freezes every node from round 0, so the stasis can
    never reach consensus and ``raise_on_limit=True`` turns the tiny
    horizon into a :class:`RoundLimitExceeded` — a deliberate, repeatable
    in-cell failure.
    """
    defaults = dict(
        name="half-broken",
        seed=9,
        repetitions=3,
        axes={
            "process": ["3-majority"],
            "workload": [{"name": "balanced", "kwargs": {"k": 3}}],
            "n": [48],
            "max_rounds": [400],
            "faults": ["none", {"crash": 1.0}],
        },
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


class TestFailureIsolation:
    def test_failed_cell_recorded_with_traceback(self):
        store = run_study(failing_spec())
        records = store.records()
        assert len(records) == 2
        ok, failed = records[0], records[1]
        assert ok.ok and ok.status == "ok" and ok.error is None
        assert not failed.ok and failed.status == "failed"
        assert failed.resolved_backend == "-"
        assert failed.times.size == 0
        assert failed.error["type"] == "RoundLimitExceeded"
        assert "RoundLimitExceeded" in failed.error["traceback"]
        assert failed.error["attempts"] == 2
        assert not store.is_complete()
        assert store.failed() == [failed]

    def test_on_error_raise_propagates(self):
        from repro.engine import RoundLimitExceeded

        with pytest.raises(RoundLimitExceeded):
            run_study(failing_spec(), on_error="raise")
        with pytest.raises(ValueError):
            run_study(failing_spec(), on_error="explode")

    def test_transient_failure_recovers_on_retry(self, monkeypatch):
        from repro.study import runner as runner_module

        calls = {"count": 0}
        real_execute = runner_module.execute

        def flaky_execute(plan):
            calls["count"] += 1
            if calls["count"] == 1:
                raise OSError("worker pool lost a process")
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", flaky_execute)
        spec = StudySpec(
            name="flaky", seed=1, repetitions=2,
            axes={"process": ["voter"], "n": [16]},
        )
        store = run_study(spec, max_attempts=2)
        assert calls["count"] == 2
        [record] = store.records()
        assert record.ok
        assert store.is_complete()

    def test_resume_retries_only_failed_cells(self, tmp_path):
        spec = failing_spec()
        path = str(tmp_path / "store.json")
        first = run_study(spec, store_path=path)
        assert len(first.failed()) == 1
        # Resume re-attempts the failed cell (still deterministic failure:
        # one record per cell, replaced in place) and nothing else.
        resumed = run_study(spec, store_path=path, resume=True)
        assert len(resumed) == 2
        assert len(resumed.failed()) == 1
        # The healthy cell was NOT re-run: bit-for-bit equal records.
        assert resumed.records()[0].same_results(first.records()[0])

    def test_interrupt_and_resume_ok_cells_bit_for_bit(self, tmp_path):
        spec = failing_spec()
        path = str(tmp_path / "store.json")
        run_study(spec, store_path=path, max_cells=1)
        resumed = run_study(spec, store_path=path, resume=True)
        fresh = run_study(spec)
        assert resumed.records()[0].same_results(fresh.records()[0])
        assert resumed.records()[1].status == fresh.records()[1].status == "failed"

    def test_report_summarises_failures(self):
        store = run_study(failing_spec())
        rendered = study_report(store).render()
        assert "1 failed" in rendered
        assert "FAILED cell 1" in rendered
        assert "RoundLimitExceeded" in rendered
        assert "resume the study to retry" in rendered

    def test_store_add_replaces_failed_only(self):
        spec = failing_spec()
        store = run_study(spec)
        failed = store.failed()[0]
        ok = store.records()[0]
        with pytest.raises(ValueError, match="already recorded"):
            store.add(ok)
        replacement = _record_cell(
            [c for c in compile_study(spec) if c.cell_id == failed.cell_id][0],
            on_error="record",
            policy=ExecutionPolicy(max_attempts=1),
        )
        store.add(replacement)  # failed → replaced, not duplicated
        assert len(store) == 2

    def test_store_roundtrip_preserves_failure_columns(self, tmp_path):
        path = str(tmp_path / "store.json")
        store = run_study(failing_spec(), store_path=path)
        loaded = load_study_store(path)
        assert loaded.results_equal(store)
        assert len(loaded.failed()) == 1
        assert loaded.failed()[0].error["type"] == "RoundLimitExceeded"

    def test_v1_store_upgrades_in_memory(self, tmp_path):
        spec = StudySpec(name="v1", seed=3, repetitions=2,
                         axes={"process": ["voter"], "n": [16]})
        store = run_study(spec)
        payload = store.to_dict()
        payload["format_version"] = 1
        del payload["columns"]["status"]
        del payload["columns"]["error"]
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(payload))
        loaded = load_study_store(str(path))
        assert all(record.ok for record in loaded.records())
        assert loaded.results_equal(store)
        # Future versions still refuse with the upgrade message.
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="unsupported study-store"):
            load_study_store(str(path))

    def test_corrupt_store_raises_named_error(self, tmp_path):
        spec = StudySpec(name="c", seed=3, repetitions=2,
                         axes={"process": ["voter"], "n": [16]})
        path = tmp_path / "store.json"
        run_study(spec, store_path=str(path))
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # truncated checkpoint
        with pytest.raises(StoreCorruptError, match=str(path)):
            load_study_store(str(path))
        # Structurally damaged (valid JSON, missing column) names it too.
        payload = json.loads(text)
        del payload["columns"]["times"]
        path.write_text(json.dumps(payload))
        with pytest.raises(StoreCorruptError, match=str(path)):
            load_study_store(str(path))
        assert issubclass(StoreCorruptError, ValueError)

    def test_cli_reports_corrupt_store_actionably(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "store.json"
        path.write_text('{"format_version": 2, "kind": "repro-study-store"')
        with pytest.raises(SystemExit) as excinfo:
            main(["study", "report", str(path)])
        assert "corrupt" in str(excinfo.value)

    def test_cli_sweep_rejects_fault_conflicts(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="mutually exclusive"):
            main([
                "sweep", "3-majority", "--min-n", "16", "--max-n", "16",
                "--faults", "crash:p=0.1", "--adversary", "plant-invalid",
            ])
        with pytest.raises(SystemExit, match="synchronous"):
            main([
                "sweep", "3-majority", "--min-n", "16", "--max-n", "16",
                "--loss", "0.1", "--scheduler", "asynchronous",
            ])
        with pytest.raises(SystemExit, match="bad --faults"):
            main([
                "sweep", "3-majority", "--min-n", "16", "--max-n", "16",
                "--faults", "meteor:p=0.1",
            ])

    def test_run_study_exit_zero_with_recorded_failures(self, tmp_path):
        from repro.cli import main
        from repro.study import save_spec

        spec_path = str(tmp_path / "spec.toml")
        save_spec(failing_spec(), spec_path)
        assert main(["study", "run", spec_path, "--quiet"]) == 0
        store = load_study_store(str(tmp_path / "spec.store.json"))
        assert len(store.failed()) == 1

    def test_faulted_study_resolves_fault_capable_backend(self):
        spec = StudySpec(
            name="faulted-backends",
            seed=5,
            repetitions=2,
            axes={
                "process": ["3-majority"],
                "workload": [{"name": "balanced", "kwargs": {"k": 3}}],
                "n": [48],
                "backend": ["auto", "ensemble-auto", "sharded-auto"],
                "rng_mode": ["per-replica"],
                "faults": [{"crash": 0.02, "recover": 0.3}],
            },
            workers=2,
        )
        store = run_study(spec, on_error="raise")
        records = store.records()
        assert len(records) == 3
        assert all(record.ok for record in records)
        # Each family resolves to its fault-capable counts member (cells
        # derive distinct seeds, so sample equality across backends is
        # covered by the runtime matrix, not here).
        assert [r.resolved_backend for r in records] == [
            "counts", "ensemble-counts", "sharded-counts",
        ]


# ---------------------------------------------------------------------------
# Byzantine faults (the fourth model: rewrites, not reverts)
# ---------------------------------------------------------------------------


class TestByzantine:
    """Semantics of hostile rewrites in both state representations."""

    def test_rate_one_pinned_color_is_instant_consensus(self):
        # Every node is a traitor every round; all announce color 2 — the
        # very first round lands the whole system on the hostile color.
        result = api.simulate(
            "3-majority",
            n=32,
            workload={"name": "balanced", "kwargs": {"k": 4}},
            faults={"byzantine": 1.0, "color": 2},
            backend="agent",
            rng_mode="per-replica",
            repetitions=3,
            seed=13,
        )
        assert np.array_equal(result.times, [1, 1, 1])
        assert result.stopped.all()
        assert np.array_equal(result.final_counts[:, 2], [32, 32, 32])

    def test_rate_one_pinned_color_counts_projection(self):
        from repro.core.ac_process import ThreeMajorityFunction
        from repro.faults import Byzantine

        runtime = FaultSchedule((Byzantine(1.0, color=0),)).counts_runtime(
            ThreeMajorityFunction()
        )
        out = runtime.step_row(
            np.array([40, 30, 30]), np.random.default_rng(1), 0
        )
        assert np.array_equal(out, [100, 0, 0])

    def test_counts_projection_conserves_nodes(self):
        from repro.core.ac_process import ThreeMajorityFunction
        from repro.faults import Byzantine

        runtime = FaultSchedule((Byzantine(0.3),)).counts_runtime(
            ThreeMajorityFunction()
        )
        rng = np.random.default_rng(7)
        counts = np.array([50, 30, 20])
        for round_index in range(20):
            counts = runtime.step_row(counts, rng, round_index)
            assert counts.sum() == 100
            assert (counts >= 0).all()

    def test_color_outside_slot_space_rejected(self):
        with pytest.raises(ValueError, match="outside the color space"):
            api.simulate(
                "3-majority",
                n=24,
                workload={"name": "balanced", "kwargs": {"k": 3}},
                faults={"byzantine": 0.5, "color": 7},
                backend="agent",
                repetitions=1,
                seed=3,
            )

    def test_constructor_validation(self):
        from repro.faults import Byzantine

        with pytest.raises(ValueError):
            Byzantine(1.5)
        with pytest.raises(ValueError):
            Byzantine(0.1, color=-1)
        with pytest.raises(ValueError):
            Byzantine(0.1, color=True)
        assert Byzantine(0.0).is_trivial()
        assert not Byzantine(0.2, color=1).is_trivial()

    def test_rate_zero_collapses_like_other_models(self):
        assert build_fault_schedule({"byzantine": 0.0}) is None
        assert encode_fault_value({"byzantine": 0.0}) == "none"
        assert as_fault_schedule(build_fault_schedule({"byzantine": 0.0})) is None

    def test_color_without_byzantine_rejected(self):
        with pytest.raises(ValueError, match="meaningless"):
            canonical_fault_value({"color": 1})
        # ...but a pinned color with a positive rate is fine.
        value = canonical_fault_value({"byzantine": 0.02, "color": 1})
        assert value["byzantine"] == 0.02 and value["color"] == 1

    def test_cli_grammar(self):
        value = parse_fault_cli("byzantine:p=0.02,color=1")
        assert value["byzantine"] == 0.02
        assert value["color"] == 1
        with pytest.raises(ValueError, match="unknown fault kind"):
            parse_fault_cli("gremlins:p=0.5")

    def test_vocabulary_round_trips_through_toml(self):
        spec = StudySpec(
            name="byzantine-round-trip",
            seed=4,
            repetitions=2,
            axes={
                "process": ["3-majority"],
                "n": [32],
                "faults": [
                    "none",
                    {"byzantine": 0.1},
                    {"byzantine": 0.05, "color": 0, "start": 2},
                ],
            },
        )
        reloaded = loads_spec(dumps_spec(spec))
        assert spec_hash(reloaded) == spec_hash(spec)
        assert reloaded.axes["faults"][2]["color"] == 0

    def test_build_constructs_byzantine_model(self):
        from repro.faults import Byzantine

        schedule = build_fault_schedule(
            {"crash": 0.01, "byzantine": 0.05, "color": 1, "stop": 9}
        )
        kinds = [type(model) for model in schedule.faults]
        assert CrashStop in kinds and Byzantine in kinds
        byz = schedule.faults[kinds.index(Byzantine)]
        assert byz.rate == 0.05 and byz.color == 1
        assert schedule.stop == 9
