"""Smoke tests: every shipped example runs end-to-end (at reduced size).

Examples are public API usage documentation; these tests keep them from
rotting.  Where an example accepts a size argument we pass a small one;
the heavyweight coupled-LP example is exercised through its library call
at a reduced size rather than the full script.
"""

import runpy
import sys

import numpy as np
import pytest


def _run_example(path: str, argv: list) -> None:
    saved = sys.argv
    sys.argv = [path] + argv
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = saved


class TestExamples:
    def test_quickstart(self, capsys):
        _run_example("examples/quickstart.py", ["256"])
        out = capsys.readouterr().out
        assert "consensus time" in out
        assert "3-majority" in out

    def test_leader_election_race(self, capsys):
        _run_example("examples/leader_election_race.py", ["1024"])
        out = capsys.readouterr().out
        assert "mean consensus time" in out
        assert "remaining colors over time" in out

    def test_byzantine_agreement(self, capsys):
        _run_example("examples/byzantine_agreement.py", [])
        out = capsys.readouterr().out
        assert "3-Majority under dynamic adversaries" in out
        assert "midpoint attack outcomes" in out

    def test_duality_walkthrough(self, capsys):
        _run_example("examples/duality_walkthrough.py", [])
        out = capsys.readouterr().out
        assert "maps identical: True" in out
        assert "coalescence T^k_C" in out

    def test_hierarchy_explorer(self, capsys):
        _run_example("examples/hierarchy_explorer.py", [])
        out = capsys.readouterr().out
        assert "7/12" in out
        assert "Conjecture 1" in out

    def test_coupling_lemma2_reduced(self):
        # The full example solves ~12 transportation LPs at n=6 (~15 s);
        # exercise the same code path at n=5 to keep the suite fast.
        from repro.core import Configuration, run_coupled_chains
        from repro.core.ac_process import ThreeMajorityFunction, VoterFunction

        trajectory = run_coupled_chains(
            ThreeMajorityFunction(),
            VoterFunction(),
            Configuration.singletons(5),
            rounds=8,
            rng=np.random.default_rng(11),
        )
        assert trajectory.majorization_maintained()
        assert trajectory.colors_never_more()
