"""Tests for the graph substrate (repro.graphs)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    CompleteGraph,
    CycleGraph,
    ExplicitGraph,
    random_regular_graph,
)


class TestCompleteGraph:
    def test_uniform_with_self(self, rng):
        g = CompleteGraph(10)
        nodes = np.zeros(50_000, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        freqs = np.bincount(samples, minlength=10) / samples.size
        assert freqs == pytest.approx(np.full(10, 0.1), abs=0.01)

    def test_without_self_never_self(self, rng):
        g = CompleteGraph(10, include_self=False)
        nodes = np.full(10_000, 3, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        assert not np.any(samples == 3)
        assert samples.min() >= 0 and samples.max() < 10

    def test_without_self_uniform_on_others(self, rng):
        g = CompleteGraph(5, include_self=False)
        nodes = np.full(45_000, 2, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        freqs = np.bincount(samples, minlength=5) / samples.size
        for v in (0, 1, 3, 4):
            assert freqs[v] == pytest.approx(0.25, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompleteGraph(0)
        with pytest.raises(ValueError):
            CompleteGraph(1, include_self=False)

    def test_pull_matrix_shape(self, rng):
        y = CompleteGraph(8).pull_matrix(5, rng)
        assert y.shape == (5, 8)
        assert y.min() >= 0 and y.max() < 8

    def test_pull_matrix_validates(self, rng):
        with pytest.raises(ValueError):
            CompleteGraph(4).pull_matrix(-1, rng)


class TestCycleGraph:
    def test_moves_are_neighbors(self, rng):
        g = CycleGraph(12)
        nodes = np.arange(12, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        diffs = (samples - nodes) % 12
        assert set(np.unique(diffs)).issubset({1, 11})

    def test_validation(self):
        with pytest.raises(ValueError):
            CycleGraph(2)


class TestExplicitGraph:
    def test_path_graph_neighbors(self, rng):
        g = ExplicitGraph(nx.path_graph(4))
        assert g.degree(0) == 1
        assert g.degree(1) == 2
        assert set(g.neighbors(1)) == {0, 2}

    def test_sampling_respects_adjacency(self, rng):
        g = ExplicitGraph(nx.path_graph(5))
        nodes = np.full(2000, 2, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        assert set(np.unique(samples)) == {1, 3}

    def test_sampling_uniform_over_neighbors(self, rng):
        g = ExplicitGraph(nx.star_graph(4))  # center 0, leaves 1..4
        nodes = np.zeros(40_000, dtype=np.int64)
        samples = g.sample_neighbors(nodes, rng)
        freqs = np.bincount(samples, minlength=5)[1:] / samples.size
        assert freqs == pytest.approx(np.full(4, 0.25), abs=0.01)

    def test_rejects_disconnected(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        with pytest.raises(ValueError):
            ExplicitGraph(g)

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            ExplicitGraph(nx.empty_graph(1))

    def test_relabels_arbitrary_nodes(self, rng):
        g = nx.Graph()
        g.add_edges_from([("a", "b"), ("b", "c")])
        eg = ExplicitGraph(g)
        assert eg.num_nodes == 3


class TestRandomRegular:
    def test_degree_and_connectivity(self, rng):
        g = random_regular_graph(20, 4, rng)
        assert g.num_nodes == 20
        for u in range(20):
            assert g.degree(u) == 4

    def test_rejects_low_degree(self, rng):
        with pytest.raises(ValueError):
            random_regular_graph(10, 2, rng)
