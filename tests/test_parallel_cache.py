"""Tests for parallel cell scheduling and the content-addressed cache.

The two contracts the parallel layer must keep:

* **bit-for-bit** — a study run with ``workers > 1`` produces a store
  ``results_equal`` to the sequential run, whatever the completion
  order, and a SIGKILL mid-run resumes to the same store;
* **provenance-clean caching** — the result cache replays only clean
  records, keyed by cell identity (spec name is *not* part of it, so
  overlapping studies share entries), stamps ``cache_hit`` without
  perturbing ``same_results``, and shrugs off corrupt entries.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro import StudySpec
from repro.engine.runtime import execute as real_execute
from repro.study import (
    ResultCache,
    canonical_cache_value,
    canonical_parallel_value,
    compile_study,
    dumps_spec,
    journal_path,
    loads_spec,
    resolve_parallel,
    run_study,
    save_spec,
    spec_hash,
)
from repro.study import runner as runner_module
from repro.study.scheduler import CellScheduler


def grid_spec(**overrides):
    defaults = dict(
        name="parallel grid",
        seed=13,
        repetitions=2,
        axes={
            "process": ["3-majority", "voter"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        },
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


# ---------------------------------------------------------------------------
# The [parallel] / [cache] vocabulary
# ---------------------------------------------------------------------------


class TestVocabulary:
    def test_parallel_canonicalisation(self):
        assert canonical_parallel_value(None) is None
        assert canonical_parallel_value(1) is None  # workers=1 is the default
        assert canonical_parallel_value(4) == {"workers": 4, "max_inflight": None}
        assert canonical_parallel_value({"workers": 1}) is None
        with pytest.raises(ValueError):
            canonical_parallel_value(0)
        with pytest.raises(KeyError, match="unknown parallel keys"):
            canonical_parallel_value({"workers": 2, "nope": 1})
        with pytest.raises(TypeError):
            canonical_parallel_value(True)

    def test_resolve_parallel_precedence_and_clamp(self):
        assert resolve_parallel(None) == (1, 2)
        assert resolve_parallel({"workers": 4}) == (4, 8)
        # Explicit args beat the spec table; max_inflight never below workers.
        assert resolve_parallel({"workers": 4}, workers=2) == (2, 4)
        assert resolve_parallel(None, workers=4, max_inflight=2) == (4, 4)

    def test_cache_canonicalisation(self):
        assert canonical_cache_value(None) is None
        assert canonical_cache_value(False) is None
        assert canonical_cache_value(True) == {"enabled": True, "dir": None}
        # A bare directory implies enabled.
        assert canonical_cache_value("/tmp/c") == {"enabled": True, "dir": "/tmp/c"}
        assert canonical_cache_value({"enabled": False}) is None
        with pytest.raises(KeyError, match="unknown cache keys"):
            canonical_cache_value({"directory": "/tmp/c"})

    def test_default_tables_elide_from_hash(self):
        plain = grid_spec()
        assert spec_hash(grid_spec(parallel=1)) == spec_hash(plain)
        assert spec_hash(grid_spec(cache=False)) == spec_hash(plain)
        assert spec_hash(grid_spec(parallel=2)) != spec_hash(plain)
        assert "[parallel]" not in dumps_spec(plain)
        assert "[cache]" not in dumps_spec(plain)

    def test_tables_round_trip_through_toml(self, tmp_path):
        spec = grid_spec(
            parallel={"workers": 2, "max_inflight": 6},
            cache={"dir": str(tmp_path / "c"), "enabled": False},
        )
        assert loads_spec(dumps_spec(spec)) == spec


# ---------------------------------------------------------------------------
# Parallel execution: bit-for-bit vs sequential
# ---------------------------------------------------------------------------


class TestParallelEquality:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_parallel_matches_sequential(self, workers):
        sequential = run_study(grid_spec())
        parallel = run_study(grid_spec(), workers=workers)
        assert parallel.results_equal(sequential)
        assert [r.status for r in parallel.records()] == ["ok"] * 4

    def test_scheduler_completion_order_and_bounds(self):
        """run() yields every cell exactly once, in completion order."""
        seen = []

        def slow_even(cell):
            time.sleep(0.15 if cell % 2 == 0 else 0.0)
            return cell * 10

        with CellScheduler(slow_even, workers=2) as scheduler:
            for cell, record in scheduler.run(range(4)):
                seen.append((cell, record))
        assert sorted(seen) == [(0, 0), (1, 10), (2, 20), (3, 30)]
        # The odd (fast) cells overtake the even (slow) ones.
        assert seen[0][0] % 2 == 1

    def test_sigkill_mid_parallel_run_resumes_bitwise(self, tmp_path):
        spec = grid_spec(
            name="parallel kill",
            repetitions=3,
            axes={
                "process": ["3-majority"],
                "n": [32, 48, 64, 80, 96, 128],
                "rng_mode": ["per-replica"],
            },
        )
        reference = run_study(spec)
        spec_path = str(tmp_path / "spec.toml")
        save_spec(spec, spec_path)
        store_path = str(tmp_path / "killed.json")
        jpath = journal_path(store_path)

        child_src = (
            "import sys, time\n"
            "from repro import api\n"
            "api.study(sys.argv[1], store_path=sys.argv[2], workers=2,\n"
            "          progress=lambda cell, record: time.sleep(0.2))\n"
        )
        env = {
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
        }
        for attempt in range(5):
            child = subprocess.Popen(
                [sys.executable, "-c", child_src, spec_path, store_path], env=env
            )
            try:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if child.poll() is not None:
                        break
                    try:
                        with open(jpath, "rb") as handle:
                            if handle.read().count(b"\n") >= 2:
                                break
                    except FileNotFoundError:
                        pass
                    time.sleep(0.01)
                if child.poll() is None:
                    child.send_signal(signal.SIGKILL)
                    child.wait()
                    if os.path.exists(jpath):
                        break  # the kill landed mid-run
            finally:
                if child.poll() is None:
                    child.kill()
                    child.wait()
            for stale in (store_path, jpath):  # child won the race: retry
                if os.path.exists(stale):
                    os.remove(stale)
        else:
            raise AssertionError("could not SIGKILL the parallel study mid-run")

        assert not os.path.exists(store_path), "SIGKILL must skip compaction"
        resumed = run_study(spec, store_path=store_path, resume=True, workers=2)
        assert resumed.is_complete()
        assert resumed.results_equal(reference)
        assert not os.path.exists(jpath), "journal not compacted after resume"

    def test_timeout_of_one_inflight_cell_spares_siblings(self, monkeypatch):
        def hang_small(plan):
            if plan.initial.num_nodes == 24:
                time.sleep(8.0)
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", hang_small)
        spec = grid_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        store = run_study(spec, workers=2, deadline_s=0.2)
        hung, healthy = store.records()
        assert hung.status == "timeout"
        assert hung.error["deadline_s"] == 0.2
        assert healthy.ok, "the sibling cell must survive the abandonment"


# ---------------------------------------------------------------------------
# The content-addressed result cache
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_second_run_is_all_cache_hits(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = run_study(grid_spec(), cache=cache_dir)
        assert all(not r.cache_hit for r in cold.records())
        warm = run_study(grid_spec(), cache=cache_dir)
        assert all(r.cache_hit for r in warm.records())
        assert warm.results_equal(cold)  # cache_hit is not part of identity
        stats = ResultCache(cache_dir).stats()
        assert stats["entries"] == 4
        assert stats["hits"] == 4 and stats["misses"] == 4

    def test_overlapping_spec_shares_entries(self, tmp_path):
        """Cell identity is params+seed, not the spec name: a renamed spec
        with the same axes replays every record from the first study.
        The *stores* are distinct artifacts (different ``spec_hash``), so
        the overlap shows record by record, not via ``results_equal``."""
        cache_dir = str(tmp_path / "cache")
        first = run_study(grid_spec(), cache=cache_dir)
        renamed = grid_spec(name="same grid, different study")
        assert spec_hash(renamed) != spec_hash(grid_spec())
        second = run_study(renamed, cache=cache_dir)
        assert all(r.cache_hit for r in second.records())
        for record in second.records():
            assert record.same_results(first.get(record.cell_id))

    def test_resumed_run_consults_the_cache(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        reference = run_study(grid_spec())
        # A partial run caches what it completed; a fresh store on the
        # same spec replays those cells and computes only the rest.
        store_path = str(tmp_path / "partial.json")
        run_study(grid_spec(), store_path=store_path, max_cells=2,
                  cache=cache_dir)
        resumed = run_study(grid_spec(), store_path=store_path, resume=True,
                            cache=cache_dir)
        assert resumed.is_complete()
        assert resumed.results_equal(reference)
        fresh = run_study(grid_spec(), cache=cache_dir)
        assert all(r.cache_hit for r in fresh.records())

    def test_corrupt_entry_is_warned_and_recomputed(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_study(grid_spec(), cache=cache_dir)
        cache = ResultCache(cache_dir)
        victim = compile_study(grid_spec())[0]
        path = cache.entry_path(victim.cell_id)
        with open(path, "r+b") as handle:
            handle.write(b"garbage")
        with pytest.warns(RuntimeWarning, match="cache"):
            store = run_study(grid_spec(), cache=cache_dir)
        by_id = {r.cell_id: r for r in store.records()}
        assert not by_id[victim.cell_id].cache_hit  # recomputed
        hits = [r for r in store.records() if r.cache_hit]
        assert len(hits) == 3, "the other entries must still replay"
        assert not os.path.exists(path) or cache.get(victim.cell_id) is not None

    def test_failed_records_are_never_cached(self, tmp_path, monkeypatch):
        def fail_small(plan):
            if plan.initial.num_nodes == 24:
                raise ValueError("boom")
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", fail_small)
        cache_dir = str(tmp_path / "cache")
        spec = grid_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        store = run_study(spec, cache=cache_dir, max_attempts=1)
        failed, healthy = store.records()
        assert failed.status == "failed" and healthy.ok
        cache = ResultCache(cache_dir)
        assert cache.get(failed.cell_id) is None
        assert cache.get(healthy.cell_id) is not None

    def test_gc_expires_and_evicts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        run_study(grid_spec(), cache=cache_dir)
        cache = ResultCache(cache_dir)
        assert cache.stats()["entries"] == 4
        report = cache.gc(max_age_s=0.0)
        assert report == {"removed": 4, "entries": 0, "bytes": 0}
        assert cache.stats()["entries"] == 0
        # LRU eviction: refill, then squeeze to a byte budget.
        run_study(grid_spec(), cache=cache_dir)
        total = cache.stats()["bytes"]
        report = cache.gc(max_bytes=total // 2)
        assert 0 < report["entries"] < 4
        assert report["bytes"] <= total // 2
