"""Tests for the simulation engine: rng, metrics, stopping, simulator, batch."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import (
    AllOf,
    AnyOf,
    BiasAtLeast,
    ColorsAtMost,
    Consensus,
    MaxSupportAbove,
    MetricRecorder,
    RoundLimitExceeded,
    as_generator,
    cdf_dominates,
    consensus_time,
    default_round_limit,
    derive_seed,
    empirical_cdf,
    reduction_time,
    repeat_first_passage,
    run,
    run_agent,
    run_counts,
    spawn_generators,
    summarize,
    symmetry_breaking_time,
)
from repro.engine.metrics import (
    METRICS,
    bias,
    collision_probability,
    entropy,
    max_support,
    monochromatic_fraction,
    num_colors,
)
from repro.processes import ThreeMajority, TwoChoices, Voter


class TestRng:
    def test_as_generator_from_int(self):
        g1 = as_generator(42)
        g2 = as_generator(42)
        assert g1.integers(1000) == g2.integers(1000)

    def test_as_generator_passthrough(self):
        g = np.random.default_rng(3)
        assert as_generator(g) is g

    def test_as_generator_rejects_negative(self):
        with pytest.raises(ValueError):
            as_generator(-1)

    def test_as_generator_rejects_junk(self):
        with pytest.raises(TypeError):
            as_generator("seed")

    def test_spawn_independent_and_deterministic(self):
        a = spawn_generators(7, 3)
        b = spawn_generators(7, 3)
        for ga, gb in zip(a, b):
            assert ga.integers(10**6) == gb.integers(10**6)
        fresh = spawn_generators(7, 3)
        draws = [g.integers(10**6) for g in fresh]
        assert len(set(draws)) == 3  # overwhelmingly likely distinct

    def test_spawn_validates_count(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_derive_seed_stable(self):
        assert derive_seed(5, 0) == derive_seed(5, 0)
        assert derive_seed(5, 0) != derive_seed(5, 1)

    def test_derive_seed_validates_stream(self):
        with pytest.raises(ValueError):
            derive_seed(5, -1)


class TestMetrics:
    def test_num_colors(self):
        assert num_colors(np.asarray([0, 3, 0, 2])) == 2

    def test_bias(self):
        assert bias(np.asarray([5, 9, 1])) == 4

    def test_max_support(self):
        assert max_support(np.asarray([5, 9, 1])) == 9

    def test_collision_probability(self):
        assert collision_probability(np.asarray([5, 5])) == pytest.approx(0.5)

    def test_entropy(self):
        assert entropy(np.asarray([10, 0])) == pytest.approx(0.0)

    def test_monochromatic_fraction(self):
        assert monochromatic_fraction(np.asarray([3, 1])) == pytest.approx(0.75)

    def test_registry_complete(self):
        assert set(METRICS) >= {
            "num_colors",
            "bias",
            "max_support",
            "collision_probability",
            "entropy",
            "monochromatic_fraction",
        }

    def test_recorder_stride(self):
        rec = MetricRecorder(names=("num_colors",), stride=2)
        for t in range(5):
            rec.observe(t, np.asarray([2, 2]))
        assert list(rec.rounds) == [0, 2, 4]
        assert len(rec) == 3

    def test_recorder_unknown_metric(self):
        with pytest.raises(KeyError):
            MetricRecorder(names=("nope",))

    def test_recorder_series_and_dict(self):
        rec = MetricRecorder(names=("num_colors", "bias"))
        rec.observe(0, np.asarray([3, 1]))
        out = rec.as_dict()
        assert out["num_colors"][0] == 2
        assert out["bias"][0] == 2
        assert rec.series("bias")[0] == 2


class TestStopping:
    def test_consensus(self):
        assert Consensus()(np.asarray([4, 0]))
        assert not Consensus()(np.asarray([3, 1]))

    def test_colors_at_most(self):
        cond = ColorsAtMost(2)
        assert cond(np.asarray([2, 2, 0]))
        assert not cond(np.asarray([2, 1, 1]))

    def test_max_support_above(self):
        cond = MaxSupportAbove(3)
        assert cond(np.asarray([4, 0]))
        assert not cond(np.asarray([3, 1]))

    def test_bias_at_least(self):
        cond = BiasAtLeast(2)
        assert cond(np.asarray([4, 1, 1]))
        assert not cond(np.asarray([3, 2, 1]))

    def test_combinators(self):
        both = Consensus() & MaxSupportAbove(3)
        either = Consensus() | MaxSupportAbove(100)
        assert both(np.asarray([4, 0]))
        assert not both(np.asarray([3, 1]))
        assert either(np.asarray([4, 0]))

    def test_validation(self):
        with pytest.raises(ValueError):
            ColorsAtMost(0)
        with pytest.raises(ValueError):
            MaxSupportAbove(-1)
        with pytest.raises(ValueError):
            BiasAtLeast(-1)
        with pytest.raises(ValueError):
            AnyOf()
        with pytest.raises(ValueError):
            AllOf()

    def test_labels(self):
        assert "consensus" in (Consensus() | ColorsAtMost(3)).label


class TestSimulator:
    def test_consensus_time_deterministic_given_seed(self):
        config = Configuration.singletons(64)
        t1 = consensus_time(ThreeMajority(), config, rng=11)
        t2 = consensus_time(ThreeMajority(), config, rng=11)
        assert t1 == t2

    def test_backends_agree_statistically(self):
        # Count-level and agent-level 3-Majority are the same process;
        # their mean consensus times must agree within Monte-Carlo noise.
        config = Configuration.balanced(60, 6)
        times_counts = repeat_first_passage(
            ThreeMajority, config, Consensus(), 120, rng=1, backend="counts"
        )
        times_agent = repeat_first_passage(
            ThreeMajority, config, Consensus(), 120, rng=2, backend="agent"
        )
        mean_c = times_counts.mean()
        mean_a = times_agent.mean()
        pooled_sem = np.sqrt(times_counts.var() / 120 + times_agent.var() / 120)
        assert abs(mean_c - mean_a) < 4 * pooled_sem + 1.0

    def test_counts_backend_rejects_non_ac(self):
        with pytest.raises(TypeError):
            run_counts(TwoChoices(), Configuration([2, 2]), rng=0)

    def test_run_counts_backend_label(self):
        res = run(Voter(), Configuration.balanced(20, 4), rng=0, backend="counts")
        assert res.backend == "counts"
        assert res.reached_consensus

    def test_run_agent_backend_label(self):
        res = run(TwoChoices(), Configuration.balanced(20, 2), rng=0)
        assert res.backend == "agent"

    def test_auto_prefers_counts_for_ac(self):
        res = run(Voter(), Configuration.balanced(20, 4), rng=0, backend="auto")
        assert res.backend == "counts"

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            run(Voter(), Configuration([2, 2]), backend="quantum")

    def test_round_limit_raises(self):
        with pytest.raises(RoundLimitExceeded):
            run(Voter(), Configuration.singletons(64), rng=0, max_rounds=1)

    def test_round_limit_soft(self):
        res = run(
            Voter(),
            Configuration.singletons(64),
            rng=0,
            max_rounds=1,
            raise_on_limit=False,
        )
        assert not res.stopped
        assert res.rounds == 1

    def test_already_stopped_at_round_zero(self):
        res = run(Voter(), Configuration.monochromatic(10), rng=0)
        assert res.rounds == 0
        assert res.stopped

    def test_recorder_integration(self):
        rec = MetricRecorder(names=("num_colors",))
        res = run(Voter(), Configuration.balanced(30, 3), rng=5, recorder=rec)
        series = res.metric("num_colors")
        assert series[0] == 3
        assert series[-1] == 1
        assert np.all(np.diff(series) <= 0)  # Voter never adds colors

    def test_metric_requires_recorder(self):
        res = run(Voter(), Configuration.balanced(10, 2), rng=0)
        with pytest.raises(ValueError):
            res.metric("num_colors")

    def test_reduction_time(self):
        t = reduction_time(Voter(), Configuration.singletons(64), kappa=8, rng=3)
        assert t >= 1

    def test_symmetry_breaking_time(self):
        rounds, fired = symmetry_breaking_time(
            ThreeMajority(), Configuration.singletons(128), threshold=10, rng=4
        )
        assert fired
        assert rounds >= 1

    def test_symmetry_breaking_soft_limit(self):
        rounds, fired = symmetry_breaking_time(
            TwoChoices(),
            Configuration.singletons(256),
            threshold=256,
            rng=4,
            max_rounds=5,
            raise_on_limit=False,
        )
        assert not fired
        assert rounds == 5

    def test_default_round_limit_scales(self):
        assert default_round_limit(100) > default_round_limit(10) > 0

    def test_agent_run_final_colors_exposed(self):
        res = run_agent(TwoChoices(), Configuration.balanced(30, 2), rng=0)
        assert res.final_colors is not None
        assert res.final_colors.shape == (30,)


class TestBatch:
    def test_summary_fields(self):
        s = summarize([1, 2, 3, 4, 5])
        assert s.count == 5
        assert s.mean == pytest.approx(3.0)
        assert s.median == pytest.approx(3.0)
        assert s.minimum == 1 and s.maximum == 5

    def test_summary_ci(self):
        s = summarize(np.full(100, 10.0))
        lo, hi = s.mean_ci95()
        assert lo == pytest.approx(10.0)
        assert hi == pytest.approx(10.0)

    def test_summary_rejects_empty(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_format_row(self):
        assert "mean=" in summarize([1.0, 2.0]).format_row("label")

    def test_repeat_first_passage_deterministic(self):
        config = Configuration.balanced(40, 4)
        a = repeat_first_passage(Voter, config, Consensus(), 10, rng=9)
        b = repeat_first_passage(Voter, config, Consensus(), 10, rng=9)
        assert np.array_equal(a, b)

    def test_repeat_validates(self):
        with pytest.raises(ValueError):
            repeat_first_passage(Voter, Configuration([2, 2]), Consensus(), 0, rng=0)

    def test_empirical_cdf(self):
        cdf = empirical_cdf(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert cdf(0.5) == 0.0
        assert cdf(2.0) == pytest.approx(0.5)
        assert cdf(10.0) == 1.0

    def test_cdf_dominates_trivial(self):
        fast = np.asarray([1, 2, 3])
        slow = np.asarray([4, 5, 6])
        assert cdf_dominates(fast, slow)
        assert not cdf_dominates(slow, fast)

    def test_cdf_dominates_slack(self):
        a = np.asarray([1, 3])
        b = np.asarray([2, 2])
        # a's CDF dips below b's at t=2 by 1/2; slack saves it.
        assert not cdf_dominates(a, b, slack=0.0)
        assert cdf_dominates(a, b, slack=0.6)
