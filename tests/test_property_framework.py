"""Property-based tests (hypothesis): the AC-framework's order theory.

Quantified versions of the paper's structural facts:

* Lemma 2's condition on random comparable pairs (beyond the exhaustive
  small-n check): ``c ⪰ c̃ ⇒ α^{3M}(c) ⪰ α^{V}(c̃)``;
* the certificate/LP consistency of Definition 3 and Theorem 3 on random
  comparable pairs of one-step laws;
* drift monotonicity: the top-color mass of ``α^{3M}`` is monotone along
  majorization chains (Schur-convexity of the top-prefix composed with
  the process function on sorted configurations);
* the exact chain respects the multinomial one-step law.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration
from repro.core.ac_process import HMajorityFunction, ThreeMajorityFunction, VoterFunction
from repro.core.coupling import (
    one_step_distribution,
    stochastic_majorization_certificate,
    strassen_coupling,
)
from repro.core.dominance import lemma2_margin
from repro.core.majorization import majorizes, top_j_sums

count_vectors = st.lists(st.integers(min_value=0, max_value=12), min_size=2, max_size=6).filter(
    lambda c: sum(c) >= 2
)


@st.composite
def comparable_pair(draw):
    """A random pair ``upper ⪰ lower`` with equal totals.

    ``lower`` is produced from ``upper`` by random integer Robin-Hood
    transfers, which generate the majorization order on integer vectors.
    """
    upper = np.asarray(draw(count_vectors), dtype=np.int64)
    lower = upper.copy()
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        order = np.argsort(lower)
        i = int(order[-1])
        j = int(order[0])
        if lower[i] - lower[j] >= 2:
            lower[i] -= 1
            lower[j] += 1
    return upper, lower


class TestLemma2Property:
    @given(pair=comparable_pair())
    @settings(max_examples=150, deadline=None)
    def test_three_majority_dominates_voter(self, pair):
        upper, lower = pair
        assert majorizes(upper.astype(float), lower.astype(float))
        alpha_upper = ThreeMajorityFunction().probabilities(upper)
        alpha_lower = VoterFunction().probabilities(lower)
        assert majorizes(alpha_upper, alpha_lower, tol=1e-10)

    @given(pair=comparable_pair())
    @settings(max_examples=100, deadline=None)
    def test_margin_formula_nonnegative(self, pair):
        upper, lower = pair
        margin = lemma2_margin(Configuration(upper), Configuration(lower))
        assert np.all(margin >= -1e-12)

    @given(counts=count_vectors)
    @settings(max_examples=100, deadline=None)
    def test_diagonal_case(self, counts):
        # The c = c̃ special case: α^{3M}(c) ⪰ α^V(c) = c/n always.
        arr = np.asarray(counts, dtype=np.int64)
        alpha = ThreeMajorityFunction().probabilities(arr)
        assert majorizes(alpha, arr / arr.sum(), tol=1e-10)


class TestSchurDriftProperty:
    @given(counts=count_vectors)
    @settings(max_examples=100, deadline=None)
    def test_top_prefixes_of_drift_dominate_voter(self, counts):
        # Prefix sums of sorted α^{3M} dominate those of sorted fractions.
        arr = np.asarray(counts, dtype=np.int64)
        drift_prefix = top_j_sums(ThreeMajorityFunction().probabilities(arr))
        voter_prefix = top_j_sums(arr / arr.sum())
        assert np.all(drift_prefix >= voter_prefix - 1e-10)

    @given(counts=count_vectors, h=st.integers(min_value=1, max_value=5))
    @settings(max_examples=60, deadline=None)
    def test_h_majority_alpha_valid(self, counts, h):
        arr = np.asarray(counts, dtype=np.int64)
        alpha = HMajorityFunction(h).probabilities(arr)
        assert alpha.sum() == pytest.approx(1.0)
        assert np.all(alpha >= 0)
        assert np.all(alpha[arr == 0] == 0)


small_count_vectors = st.lists(
    st.integers(min_value=0, max_value=4), min_size=2, max_size=3
).filter(lambda c: 2 <= sum(c) <= 7)


@st.composite
def small_comparable_pair(draw):
    """Like :func:`comparable_pair` but sized for exact law enumeration."""
    upper = np.asarray(draw(small_count_vectors), dtype=np.int64)
    lower = upper.copy()
    for _ in range(draw(st.integers(min_value=0, max_value=4))):
        order = np.argsort(lower)
        i = int(order[-1])
        j = int(order[0])
        if lower[i] - lower[j] >= 2:
            lower[i] -= 1
            lower[j] += 1
    return upper, lower


class TestCouplingProperty:
    @given(pair=small_comparable_pair())
    @settings(max_examples=12, deadline=None)
    def test_certificate_and_lp_consistent(self, pair):
        upper_arr, lower_arr = pair
        upper = one_step_distribution(ThreeMajorityFunction(), Configuration(upper_arr))
        lower = one_step_distribution(VoterFunction(), Configuration(lower_arr))
        certificate, _ = stochastic_majorization_certificate(lower, upper)
        lp = strassen_coupling(lower=lower, upper=upper)
        # Theorem 3: LP feasible ⇔ ≤st; certificate is necessary for ≤st.
        if lp.feasible:
            assert certificate
            assert lp.verify()
        # And for these dominating pairs (Lemma 1) the LP must be feasible.
        assert lp.feasible

    @given(counts=small_count_vectors)
    @settings(max_examples=12, deadline=None)
    def test_one_step_distribution_is_multinomial(self, counts):
        arr = np.asarray(counts, dtype=np.int64)
        config = Configuration(arr)
        dist = one_step_distribution(VoterFunction(), config)
        assert sum(dist.probabilities) == pytest.approx(1.0)
        expectation = dist.expectation()
        assert expectation == pytest.approx(arr.astype(float), abs=1e-9)
