"""Tests for the exact partition Markov chain (repro.analysis.exact_chain)."""

import numpy as np
import pytest

from repro.analysis import PartitionChain
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.core import Configuration
from repro.engine import Consensus, repeat_first_passage
from repro.processes import ThreeMajority, Voter


class TestTransitionMatrix:
    def test_rows_stochastic(self):
        chain = PartitionChain(VoterFunction(), 5)
        matrix = chain.transition_matrix()
        assert matrix.shape == (len(chain.states), len(chain.states))
        assert matrix.sum(axis=1) == pytest.approx(np.ones(len(chain.states)))

    def test_consensus_absorbing(self):
        chain = PartitionChain(ThreeMajorityFunction(), 5)
        matrix = chain.transition_matrix()
        idx = chain.states.index((5,))
        assert matrix[idx, idx] == pytest.approx(1.0)

    def test_validates_n(self):
        with pytest.raises(ValueError):
            PartitionChain(VoterFunction(), 0)
        with pytest.raises(ValueError):
            PartitionChain(VoterFunction(), 50)

    def test_voter_two_nodes_by_hand(self):
        # n=2, states (2,) and (1,1). From (1,1): each node picks uniform
        # of the two nodes; consensus iff both pick the same node: 1/2.
        chain = PartitionChain(VoterFunction(), 2)
        matrix = chain.transition_matrix()
        i_split = chain.states.index((1, 1))
        i_cons = chain.states.index((2,))
        assert matrix[i_split, i_cons] == pytest.approx(0.5)
        assert matrix[i_split, i_split] == pytest.approx(0.5)

    def test_voter_two_nodes_expected_time(self):
        # Geometric(1/2): expected consensus time 2.
        result = PartitionChain(VoterFunction(), 2).analyze()
        assert result.expected_time_from((1, 1)) == pytest.approx(2.0)

    def test_expected_time_zero_at_consensus(self):
        result = PartitionChain(VoterFunction(), 4).analyze()
        assert result.expected_time_from((4,)) == 0.0

    def test_expected_time_accepts_unsorted(self):
        result = PartitionChain(VoterFunction(), 4).analyze()
        assert result.expected_time_from((1, 2, 1, 0)) == result.expected_time_from((2, 1, 1))


class TestExactVsSimulation:
    @pytest.mark.parametrize(
        "function,process",
        [(VoterFunction(), Voter), (ThreeMajorityFunction(), ThreeMajority)],
    )
    def test_mean_consensus_time_matches(self, function, process):
        n = 6
        exact = PartitionChain(function, n).analyze().expected_time_from((1,) * n)
        times = repeat_first_passage(
            process, Configuration.singletons(n), Consensus(), 1500, rng=123
        )
        sem = times.std(ddof=1) / np.sqrt(times.size)
        assert abs(times.mean() - exact) < 4 * sem

    def test_three_majority_faster_exactly(self):
        # Exact expected consensus times: 3M <= Voter from every partition
        # of n=6 (the Lemma 2 / Theorem 2 conclusion in expectation).
        n = 6
        voter = PartitionChain(VoterFunction(), n).analyze()
        three = PartitionChain(ThreeMajorityFunction(), n).analyze()
        for state in voter.states:
            assert (
                three.expected_time_from(state)
                <= voter.expected_time_from(state) + 1e-9
            ), state


class TestReductionDistribution:
    def test_pmf_sums_to_one_with_long_horizon(self):
        chain = PartitionChain(VoterFunction(), 5)
        pmf = chain.reduction_time_distribution((1, 1, 1, 1, 1), kappa=1, horizon=400)
        assert pmf.sum() == pytest.approx(1.0, abs=1e-6)

    def test_immediate_when_already_reduced(self):
        chain = PartitionChain(VoterFunction(), 5)
        pmf = chain.reduction_time_distribution((3, 2), kappa=2, horizon=10)
        assert pmf[0] == pytest.approx(1.0)

    def test_exact_stochastic_dominance_theorem2(self):
        # Theorem 2, exactly: the CDF of T^kappa under 3-Majority lies
        # above the CDF under Voter, for every kappa, from the singleton
        # start on n=5.
        n, horizon = 5, 300
        voter_chain = PartitionChain(VoterFunction(), n)
        three_chain = PartitionChain(ThreeMajorityFunction(), n)
        start = (1,) * n
        for kappa in (1, 2, 3):
            pmf_v = voter_chain.reduction_time_distribution(start, kappa, horizon)
            pmf_3 = three_chain.reduction_time_distribution(start, kappa, horizon)
            cdf_v = np.cumsum(pmf_v)
            cdf_3 = np.cumsum(pmf_3)
            assert np.all(cdf_3 >= cdf_v - 1e-9), kappa
