"""Unit tests for the fused kernel layer (:mod:`repro.engine.kernels`).

Three invariants, in decreasing strictness:

* **bit-for-bit** — the async wavefront kernel draws its per-stride
  randomness in the engine's exact shapes and order, so for processes
  whose sample rule consumes no extra randomness it must reproduce
  :func:`repro.engine.asynchronous.run_asynchronous_ensemble` identically
  (ticks, stop masks, final counts).  This is the test that caught the
  wavefront's read-write blocking bug.
* **exact in distribution** — the switch-and-redistribute lumping and the
  fused colors step are identically distributed to the agent-level
  engines; cross-validated with KS / z-score checks.
* **contract** — eligibility gates, rng-mode rejections, compaction
  bookkeeping, and the numba/numpy mode switch (``REPRO_NO_NUMBA``).
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import (
    Consensus,
    ColorsAtMost,
    MaxSupportAbove,
    run_agent_ensemble,
    run_asynchronous_ensemble,
    run_counts_ensemble,
)
from repro.engine.kernels import (
    HAVE_NUMBA,
    async_kernel_eligible,
    compaction_safe,
    force_numpy,
    fused_colors_step,
    kernel_eligible,
    kernel_mode,
    kernel_step_counts,
    run_fused_agent_ensemble,
    run_fused_asynchronous_ensemble,
)
from repro.engine.metrics import MetricRecorder
from repro.engine.stopping import StoppingCondition
from repro.processes import ThreeMajority, TwoChoices, Voter
from repro.processes.base import AgentProcess
from repro.processes.three_majority import ThreeMajorityResample

SEED = 20170729

#: Processes whose ``update_from_samples`` draws no extra randomness —
#: for these the wavefront kernel must equal the per-tick engine bitwise.
DRAW_FREE = [
    pytest.param(Voter, id="voter"),
    pytest.param(ThreeMajority, id="3-majority"),
    pytest.param(ThreeMajorityResample, id="3-majority-resample"),
    pytest.param(TwoChoices, id="2-choices"),
]


class _RandomTieBreak3Majority(ThreeMajority):
    """3-Majority with the *drawing* tie-break the paper states literally.

    Footnote 1 makes the fixed-sample tie-break (what :class:`ThreeMajority`
    now implements) equal in distribution, so this variant survives only as
    the test double for rules whose sample update consumes extra
    randomness — the case the wavefront kernel can match distributionally
    but never bitwise.
    """

    name = "3-majority/drawing"

    def update_from_samples(self, own, picks, rng):
        a, b, c = picks[..., 0], picks[..., 1], picks[..., 2]
        random_pick = rng.integers(0, 3, size=a.shape)
        fallback = np.take_along_axis(picks, random_pick[..., None], axis=-1)[..., 0]
        return np.where(
            a == b, a, np.where(b == c, b, np.where(a == c, a, fallback))
        )


class _NoKernelProcess(AgentProcess):
    """A sample-rule process with no switch-and-redistribute form."""

    name = "no-kernel"
    samples_per_round = 1
    has_sample_update = True

    def update(self, colors, rng):
        return colors.copy()

    def update_from_samples(self, own, picks, rng):
        return picks[..., 0]


class _IndexPinnedStop(StoppingCondition):
    """Keyed to an absolute color index — *not* compaction-safe."""

    label = "slot0-extinct"

    def satisfied(self, counts):
        return counts[0] == 0

    def satisfied_ensemble(self, counts):
        return counts[:, 0] == 0


# ---------------------------------------------------------------------------
# Async wavefront kernel: bitwise against the per-tick engine.


@pytest.mark.parametrize("factory", DRAW_FREE)
@pytest.mark.parametrize(
    "n, k, reps, check_every",
    [
        (64, 5, 12, 50),
        (300, 3, 8, 250),
        (257, 4, 6, 97),  # stride not dividing the budget, odd shapes
    ],
)
def test_async_kernel_bitwise_equals_engine(factory, n, k, reps, check_every):
    process = factory()
    initial = Configuration.balanced(n, k)
    budget = 30 * n
    engine = run_asynchronous_ensemble(
        process, initial, reps, rng=SEED, max_ticks=budget,
        check_every=check_every,
    )
    kernel = run_fused_asynchronous_ensemble(
        process, initial, reps, rng=SEED, max_ticks=budget,
        check_every=check_every,
    )
    assert np.array_equal(kernel.ticks, engine.ticks)
    assert np.array_equal(kernel.stopped, engine.stopped)
    assert np.array_equal(kernel.final_counts, engine.final_counts)
    assert kernel.stop_label == engine.stop_label


def test_async_kernel_bitwise_under_stopping_and_truncation():
    """Retirement mid-run and a tight tick budget stay on the same stream."""
    initial = Configuration.balanced(120, 6)
    stop = ColorsAtMost(2)
    engine = run_asynchronous_ensemble(
        Voter(), initial, 10, rng=SEED, stop=stop, max_ticks=700,
        check_every=64,
    )
    kernel = run_fused_asynchronous_ensemble(
        Voter(), initial, 10, rng=SEED, stop=stop, max_ticks=700,
        check_every=64,
    )
    assert np.array_equal(kernel.ticks, engine.ticks)
    assert np.array_equal(kernel.stopped, engine.stopped)
    assert np.array_equal(kernel.final_counts, engine.final_counts)


def test_async_kernel_statistical_for_drawing_rules():
    """A tie-break that *draws* makes the streams diverge (the kernel's
    draw shapes differ), so such rules are pinned distributionally:
    consensus-tick samples from engine and kernel pass a KS test."""
    from scipy.stats import ks_2samp

    initial = Configuration.balanced(96, 2)
    engine = run_asynchronous_ensemble(
        _RandomTieBreak3Majority(), initial, 80, rng=SEED, max_ticks=30_000,
    )
    kernel = run_fused_asynchronous_ensemble(
        _RandomTieBreak3Majority(), initial, 80, rng=SEED + 1, max_ticks=30_000,
    )
    assert engine.stopped.all() and kernel.stopped.all()
    statistic = ks_2samp(engine.ticks, kernel.ticks)
    assert statistic.pvalue > 1e-3, (
        f"wavefront consensus ticks diverge (p={statistic.pvalue:.2e})"
    )


def test_async_kernel_recorder_matches_engine():
    recorder_engine = MetricRecorder(("num_colors",))
    recorder_kernel = MetricRecorder(("num_colors",))
    initial = Configuration.balanced(100, 4)
    run_asynchronous_ensemble(
        Voter(), initial, 5, rng=SEED, max_ticks=600, check_every=100,
        recorder=recorder_engine,
    )
    run_fused_asynchronous_ensemble(
        Voter(), initial, 5, rng=SEED, max_ticks=600, check_every=100,
        recorder=recorder_kernel,
    )
    assert recorder_engine.rounds == recorder_kernel.rounds
    for name in recorder_engine.names:
        assert np.array_equal(
            recorder_engine.series(name), recorder_kernel.series(name)
        )


def test_async_kernel_rejects_processes_without_sample_rule():
    # A sample rule alone is enough for the wavefront (no kernel form
    # needed) — the gate is update_from_samples, not kernel_switch_law.
    assert async_kernel_eligible(_NoKernelProcess())

    class _NoSampleRule(AgentProcess):
        name = "no-sample-rule"

        def update(self, colors, rng):
            return colors.copy()

    assert not async_kernel_eligible(_NoSampleRule())
    with pytest.raises(TypeError, match="sample"):
        run_fused_asynchronous_ensemble(
            _NoSampleRule(), Configuration.balanced(16, 2), 2, rng=0,
            max_ticks=8,
        )


# ---------------------------------------------------------------------------
# Sync kernel: the exact lumping, distribution checks.


def test_kernel_step_counts_preserves_totals_and_support():
    rng = np.random.default_rng(SEED)
    counts = np.tile(Configuration.biased(500, 6, 40).counts_array(), (64, 1))
    for process in (ThreeMajority(), Voter(), TwoChoices()):
        stepped = kernel_step_counts(process, counts.copy(), rng)
        assert stepped.shape == counts.shape
        assert (stepped >= 0).all()
        assert np.array_equal(stepped.sum(axis=1), counts.sum(axis=1))
        # Absorbing support: dead colors stay dead.
        dead = counts[0] == 0
        assert (stepped[:, dead] == 0).all()


def test_kernel_step_counts_matches_ac_law_exactly():
    """For an AC-process the lumped chain *is* the count chain: same σ≡1
    multinomial law, checked against step_counts_ensemble moments."""
    counts = np.tile(Configuration.biased(400, 3, 60).counts_array(), (4000, 1))
    process = ThreeMajority()
    lumped = kernel_step_counts(process, counts, np.random.default_rng(3))
    exact = process.step_counts_ensemble(counts, np.random.default_rng(4))
    # Identical one-round law ⇒ matching mean/std of each class within
    # Monte-Carlo noise (4000 replicas, ~5σ bands).
    for column in range(counts.shape[1]):
        mu_l, mu_e = lumped[:, column].mean(), exact[:, column].mean()
        sd = max(exact[:, column].std(), 1e-9)
        assert abs(mu_l - mu_e) < 5 * sd / np.sqrt(4000), (column, mu_l, mu_e)


def test_fused_agent_first_passage_matches_engines_distributionally():
    from scipy.stats import ks_2samp

    initial = Configuration.biased(256, 4, 16)
    kernel = run_fused_agent_ensemble(
        TwoChoices(), initial, 200, rng=SEED, max_rounds=20_000
    )
    agent = run_agent_ensemble(
        TwoChoices(), initial, 200, rng=SEED + 1, max_rounds=20_000
    )
    assert kernel.all_stopped and agent.all_stopped
    statistic = ks_2samp(kernel.times, agent.times)
    assert statistic.pvalue > 1e-3, (
        f"lumped 2-choices first passage diverges (p={statistic.pvalue:.2e}, "
        f"means {kernel.times.mean():.2f} vs {agent.times.mean():.2f})"
    )


def test_fused_agent_matches_counts_chain_for_ac_processes():
    from scipy.stats import ks_2samp

    initial = Configuration.balanced(512, 2)
    kernel = run_fused_agent_ensemble(
        ThreeMajority(), initial, 300, rng=SEED, max_rounds=20_000
    )
    counts = run_counts_ensemble(
        ThreeMajority(), initial, 300, rng=SEED + 1, max_rounds=20_000
    )
    statistic = ks_2samp(kernel.times, counts.times)
    assert statistic.pvalue > 1e-3


def test_fused_colors_step_distribution():
    """One fused round from a fixed matrix matches update_ensemble's
    marginal switch rate and destination law (z-score bands)."""
    rng_a = np.random.default_rng(11)
    rng_b = np.random.default_rng(12)
    initial = Configuration.biased(300, 5, 30)
    reps = 2000
    colors = np.tile(initial.to_assignment(), (reps, 1))
    process = TwoChoices()
    fused = fused_colors_step(process, colors, 5, rng_a)
    reference = process.update_ensemble(colors, rng_b)
    assert fused.shape == colors.shape
    # Compare per-color occupancy after one round.
    for color in range(5):
        occ_f = (fused == color).sum(axis=1).mean()
        occ_r = (reference == color).sum(axis=1).mean()
        sd = max((reference == color).sum(axis=1).std(), 1e-9)
        band = 5 * sd / np.sqrt(reps)
        assert abs(occ_f - occ_r) < band, (color, occ_f, occ_r, band)
    # The keep-own-color branch: a node visibly changes color iff it
    # switches (σ = ‖x‖²) to a class other than its own, so the expected
    # change rate is σ · Σ_i x_i (1 − q_i).
    switched = (fused != colors).mean()
    x = initial.fractions()
    norm_sq = float(np.dot(x, x))
    q = x**2 / norm_sq
    change_rate = norm_sq * float((x * (1.0 - q)).sum())
    assert abs(switched - change_rate) < 0.02, (switched, change_rate)


# ---------------------------------------------------------------------------
# Compaction.


def test_compaction_safe_classification():
    assert compaction_safe(Consensus())
    assert compaction_safe(ColorsAtMost(2) | Consensus())
    assert compaction_safe(MaxSupportAbove(10) & Consensus())
    assert not compaction_safe(_IndexPinnedStop())
    assert not compaction_safe(Consensus() | _IndexPinnedStop())


def test_fused_agent_compaction_restores_full_width():
    initial = Configuration.singletons(512)
    result = run_fused_agent_ensemble(
        Voter(), initial, 20, rng=SEED, max_rounds=200_000
    )
    assert result.all_stopped
    assert result.final_counts.shape == (20, 512)
    assert (result.final_counts.sum(axis=1) == 512).all()
    # Consensus: exactly one surviving color per replica, at full support.
    assert ((result.final_counts == 512).sum(axis=1) == 1).all()
    assert (np.count_nonzero(result.final_counts, axis=1) == 1).all()


def test_fused_agent_compaction_matches_uncompacted_distribution():
    from scipy.stats import ks_2samp

    initial = Configuration.singletons(128)
    compacted = run_fused_agent_ensemble(
        ThreeMajority(), initial, 150, rng=SEED, compact=True,
        max_rounds=100_000,
    )
    plain = run_fused_agent_ensemble(
        ThreeMajority(), initial, 150, rng=SEED + 1, compact=False,
        max_rounds=100_000,
    )
    statistic = ks_2samp(compacted.times, plain.times)
    assert statistic.pvalue > 1e-3


def test_fused_agent_compaction_gates():
    initial = Configuration.singletons(64)
    with pytest.raises(ValueError, match="compaction"):
        run_fused_agent_ensemble(
            Voter(), initial, 4, rng=0, compact=True,
            stop=_IndexPinnedStop(), max_rounds=50, raise_on_limit=False,
        )
    recorder = MetricRecorder(("num_colors",))
    with pytest.raises(ValueError, match="compaction"):
        run_fused_agent_ensemble(
            Voter(), initial, 4, rng=0, compact=True, recorder=recorder,
            max_rounds=50, raise_on_limit=False,
        )
    # compact=None degrades gracefully instead of raising.
    result = run_fused_agent_ensemble(
        Voter(), initial, 4, rng=0, stop=_IndexPinnedStop(),
        max_rounds=100_000,
    )
    assert result.final_counts.shape[1] == 64


# ---------------------------------------------------------------------------
# Contract: eligibility, rng modes, implementation modes.


def test_kernel_eligibility_gates():
    initial = Configuration.balanced(60, 3)
    assert kernel_eligible(TwoChoices(), initial)
    assert kernel_eligible(ThreeMajority(), initial)
    assert not kernel_eligible(_NoKernelProcess(), initial)
    with pytest.raises(TypeError, match="switch-and-redistribute"):
        run_fused_agent_ensemble(_NoKernelProcess(), initial, 2, rng=0)


def test_fused_agent_rejects_per_replica_mode():
    with pytest.raises(ValueError, match="batched-only"):
        run_fused_agent_ensemble(
            Voter(), Configuration.balanced(60, 3), 4, rng=0,
            rng_mode="per-replica",
        )


def test_force_numpy_context():
    before = kernel_mode()
    with force_numpy():
        assert kernel_mode() == "numpy"
        with force_numpy():  # reentrant
            assert kernel_mode() == "numpy"
        assert kernel_mode() == "numpy"
    assert kernel_mode() == before


@pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
def test_numba_mode_matches_numpy_fallback_bitwise():
    initial = Configuration.biased(200, 4, 20)
    with force_numpy():
        fallback = run_fused_agent_ensemble(
            TwoChoices(), initial, 30, rng=SEED, max_rounds=20_000
        )
    accelerated = run_fused_agent_ensemble(
        TwoChoices(), initial, 30, rng=SEED, max_rounds=20_000
    )
    assert np.array_equal(fallback.times, accelerated.times)
    assert np.array_equal(fallback.final_counts, accelerated.final_counts)
    with force_numpy():
        fallback_async = run_fused_asynchronous_ensemble(
            Voter(), Configuration.balanced(128, 2), 6, rng=SEED,
            max_ticks=2000,
        )
    accelerated_async = run_fused_asynchronous_ensemble(
        Voter(), Configuration.balanced(128, 2), 6, rng=SEED, max_ticks=2000,
    )
    assert np.array_equal(fallback_async.ticks, accelerated_async.ticks)
    assert np.array_equal(
        fallback_async.final_counts, accelerated_async.final_counts
    )


def test_repro_no_numba_env_forces_numpy_mode():
    """``REPRO_NO_NUMBA=1`` pins the numpy fallback at import time, and the
    kernels still produce the identical (generator-stream) results."""
    script = (
        "import numpy as np\n"
        "from repro.core import Configuration\n"
        "from repro.engine.kernels import kernel_mode, HAVE_NUMBA\n"
        "from repro.engine.kernels import run_fused_asynchronous_ensemble\n"
        "from repro.processes import Voter\n"
        "assert kernel_mode() == 'numpy', kernel_mode()\n"
        "assert not HAVE_NUMBA\n"
        "r = run_fused_asynchronous_ensemble(\n"
        "    Voter(), Configuration.balanced(60, 3), 4, rng=%d, max_ticks=500)\n"
        "print(','.join(map(str, r.ticks)))\n" % SEED
    )
    env = dict(os.environ, REPRO_NO_NUMBA="1")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (
            os.path.join(os.path.dirname(__file__), "..", "src"),
            env.get("PYTHONPATH", ""),
        ) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", script], env=env,
        capture_output=True, text=True, timeout=120,
    )
    assert proc.returncode == 0, proc.stderr
    subprocess_ticks = [int(v) for v in proc.stdout.strip().split(",")]
    engine = run_asynchronous_ensemble(
        Voter(), Configuration.balanced(60, 3), 4, rng=SEED, max_ticks=500
    )
    assert subprocess_ticks == engine.ticks.tolist()
