"""Integration tests: every theorem/lemma of the paper validated end-to-end.

These tests cross module boundaries (processes + engine + analysis) and
use Monte-Carlo estimates with conservative margins; the benchmark suite
runs the same experiments at larger scale and records the numbers in
EXPERIMENTS.md.
"""

import math

import numpy as np
import pytest

from repro.analysis import (
    coalescence_expected_upper,
    fit_power_law,
    mann_whitney_less,
    three_majority_consensus_upper,
    two_choices_threshold,
)
from repro.coalescing import CoalescingWalks, coalescence_reduction_time
from repro.core import Configuration
from repro.engine import (
    ColorsAtMost,
    Consensus,
    cdf_dominates,
    consensus_time,
    repeat_first_passage,
    run_agent,
    symmetry_breaking_time,
)
from repro.graphs import CompleteGraph
from repro.processes import (
    ThreeMajority,
    TwoChoices,
    TwoChoicesBirthUpper,
    UndecidedDynamics,
    Voter,
)


class TestTheorem4ThreeMajorityUnconditional:
    """3-Majority reaches consensus sublinearly from the n-color start."""

    def test_consensus_well_below_paper_bound(self):
        for n in (256, 1024, 4096):
            t = consensus_time(
                ThreeMajority(), Configuration.singletons(n), rng=11, backend="agent"
            )
            assert t <= three_majority_consensus_upper(n)

    def test_growth_exponent_sublinear(self):
        n_values = [256, 512, 1024, 2048, 4096]
        means = []
        for n in n_values:
            times = [
                consensus_time(
                    ThreeMajority(), Configuration.singletons(n), rng=seed, backend="agent"
                )
                for seed in range(5)
            ]
            means.append(np.mean(times))
        fit = fit_power_law(np.asarray(n_values, dtype=float), np.asarray(means))
        # Theorem 4 predicts exponent <= 3/4 (up to polylogs); anything
        # clearly below 1 validates sublinearity, and we check it is not
        # absurdly small either.
        assert fit.exponent < 0.85, fit.summary()
        assert fit.exponent > 0.05, fit.summary()


class TestTheorem5TwoChoicesLowerBound:
    """2-Choices cannot break symmetry within the theorem's budget."""

    @pytest.mark.parametrize("n", [1024, 4096])
    def test_no_symmetry_break_within_budget(self, n):
        gamma = 3.0
        threshold = max(2, int(math.ceil(gamma * math.log(n))))
        budget = max(2, int(n / (gamma * threshold)))
        for seed in range(5):
            _rounds, fired = symmetry_breaking_time(
                TwoChoices(),
                Configuration.singletons(n),
                threshold,
                rng=seed,
                max_rounds=budget,
                raise_on_limit=False,
            )
            assert not fired, (n, seed)

    def test_three_majority_breaks_in_same_budget(self):
        # The contrast that drives Theorem 1: 3-Majority smashes symmetry
        # within the very budget 2-Choices provably cannot.
        n = 4096
        gamma = 3.0
        threshold = max(2, int(math.ceil(gamma * math.log(n))))
        budget = max(2, int(n / (gamma * threshold)))
        for seed in range(5):
            _rounds, fired = symmetry_breaking_time(
                ThreeMajority(),
                Configuration.singletons(n),
                threshold,
                rng=seed,
                max_rounds=budget,
                raise_on_limit=False,
                backend="agent",
            )
            assert fired, seed

    def test_bounded_support_start(self):
        # Theorem 5 for ell > 1: start with max support ell, threshold 2*ell.
        n, ell = 4096, 16
        config = Configuration([ell] * (n // ell))
        threshold = two_choices_threshold(ell, n, gamma=8.0)
        budget = max(2, int(n / (8.0 * threshold)))
        for seed in range(3):
            _rounds, fired = symmetry_breaking_time(
                TwoChoices(),
                config,
                threshold,
                rng=seed,
                max_rounds=budget,
                raise_on_limit=False,
            )
            assert not fired

    def test_birth_process_majorizes_true_support(self):
        # The coupling step of the proof: P(t) >= c_i(t) while below ell'.
        # We validate the stochastic comparison via means: the birth process
        # mean ell + t*n*p dominates the measured support of any fixed color.
        n = 1024
        gamma = 4.0
        upper = TwoChoicesBirthUpper(n=n, ell=1, gamma=gamma)
        horizon = upper.round_budget
        rng = np.random.default_rng(5)
        process = TwoChoices()
        colors = Configuration.singletons(n).to_assignment()
        support_color_zero = [1]
        for _ in range(horizon):
            colors = process.update(colors, rng)
            support_color_zero.append(int(np.sum(colors == 0)))
        mean_birth = upper.ell + np.arange(horizon + 1) * n * upper.collision_probability
        # The birth process mean plus slack dominates the observed path.
        assert np.all(np.asarray(support_color_zero) <= mean_birth + 5 * np.sqrt(mean_birth) + 5)


class TestTheorem1Separation:
    """Polynomial gap between 2-Choices and 3-Majority from n colors."""

    def test_ratio_grows_with_n(self):
        ratios = []
        for n in (512, 2048, 8192):
            t2c = consensus_time(
                TwoChoices(), Configuration.singletons(n), rng=5, max_rounds=10**6
            )
            t3m = consensus_time(
                ThreeMajority(), Configuration.singletons(n), rng=5, backend="agent"
            )
            ratios.append(t2c / t3m)
        assert ratios[0] < ratios[-1]
        assert ratios[-1] > 10

    def test_two_choices_near_linear_growth(self):
        n_values = [512, 1024, 2048, 4096]
        means = []
        for n in n_values:
            times = [
                consensus_time(
                    TwoChoices(), Configuration.singletons(n), rng=seed, max_rounds=10**6
                )
                for seed in range(3)
            ]
            means.append(np.mean(times))
        fit = fit_power_law(np.asarray(n_values, dtype=float), np.asarray(means))
        # Theorem 5 implies growth Omega(n / log n): exponent near 1.
        assert fit.exponent > 0.7, fit.summary()


class TestLemma2Domination:
    """3-Majority's reduction times are dominated by Voter's."""

    @pytest.mark.parametrize("kappa", [1, 4])
    def test_reduction_time_cdf_dominance(self, kappa):
        config = Configuration.singletons(128)
        fast = repeat_first_passage(
            ThreeMajority, config, ColorsAtMost(kappa), 60, rng=31, backend="counts"
        )
        slow = repeat_first_passage(
            Voter, config, ColorsAtMost(kappa), 60, rng=32, backend="counts"
        )
        assert fast.mean() < slow.mean()
        assert cdf_dominates(fast, slow, slack=0.12)
        assert mann_whitney_less(fast, slow) < 1e-4


class TestLemma3VoterReduction:
    """Voter reaches <= k colors within the paper's O((n/k) log n)."""

    def test_means_below_explicit_constant(self):
        # E[T^k_V] = E[T^k_C] <= 20 n / k (Equation 19).
        n = 512
        for k in (2, 4, 8, 16, 32):
            times = repeat_first_passage(
                Voter, Configuration.singletons(n), ColorsAtMost(k), 15, rng=k
            )
            assert times.mean() < coalescence_expected_upper(n, k)

    def test_scaling_in_k(self):
        # Mean reduction time should scale roughly like n/k: halving with k.
        n = 512
        means = []
        for k in (2, 8, 32):
            times = repeat_first_passage(
                Voter, Configuration.singletons(n), ColorsAtMost(k), 15, rng=100 + k
            )
            means.append(times.mean())
        assert means[0] > 2.0 * means[1] > 2.0 * means[2]


class TestLemma4Duality:
    """T^k_V and T^k_C agree in distribution (coupled surely elsewhere)."""

    def test_mean_reduction_times_match(self):
        n, k, reps = 128, 8, 40
        graph = CompleteGraph(n)
        voter_times = repeat_first_passage(
            Voter, Configuration.singletons(n), ColorsAtMost(k), reps, rng=77
        )
        walk_times = np.asarray(
            [
                coalescence_reduction_time(graph, k, np.random.default_rng(900 + s))
                for s in range(reps)
            ]
        )
        pooled_sem = math.sqrt(
            voter_times.var() / reps + walk_times.var(ddof=1) / reps
        )
        assert abs(voter_times.mean() - walk_times.mean()) < 4 * pooled_sem + 1.0

    def test_coalescence_mean_below_20n_over_k(self):
        n = 256
        graph = CompleteGraph(n)
        for k in (4, 16):
            times = [
                coalescence_reduction_time(graph, k, np.random.default_rng(50 + s))
                for s in range(15)
            ]
            assert np.mean(times) < coalescence_expected_upper(n, k)


class TestBiasedRegime:
    """§1.1: with a large bias, 2-Choices and 3-Majority are both fast and
    converge to the majority color; Voter ignores the bias's speed value."""

    def test_both_fast_and_correct_with_bias(self):
        n, k = 1024, 2
        bias = int(2 * math.sqrt(n * math.log(n)))
        config = Configuration.biased(n, k, bias)
        majority_color = int(np.argmax(config.counts_array()))
        for process_cls in (TwoChoices, ThreeMajority):
            wins = 0
            total_rounds = 0
            for seed in range(5):
                result = run_agent(
                    process_cls(), config, rng=seed, stop=Consensus(), max_rounds=20_000
                )
                total_rounds += result.rounds
                if result.final.support(majority_color) == n:
                    wins += 1
            assert wins >= 4, process_cls.__name__
            assert total_rounds / 5 < n  # decisively sublinear with bias

    def test_voter_slower_than_drift_processes_with_bias(self):
        n = 512
        bias = int(2 * math.sqrt(n * math.log(n)))
        bias += (n - bias) % 2  # parity so the exact bias is constructible
        config = Configuration.biased(n, 2, bias)
        voter_mean = repeat_first_passage(
            Voter, config, Consensus(), 10, rng=3, backend="counts"
        ).mean()
        three_mean = repeat_first_passage(
            ThreeMajority, config, Consensus(), 10, rng=4, backend="counts"
        ).mean()
        assert three_mean < voter_mean


class TestUndecidedCollapse:
    """§1.1: for k = n the Undecided dynamics die with constant probability."""

    def test_collapse_happens_with_constant_probability(self):
        n = 256
        dead = 0
        converged = 0
        for seed in range(20):
            process = UndecidedDynamics()
            result = run_agent(
                process,
                Configuration.singletons(n),
                rng=seed,
                max_rounds=50_000,
                raise_on_limit=False,
            )
            colors = result.final_colors
            if process.is_dead(colors):
                dead += 1
            elif process.has_converged(colors):
                converged += 1
        # Both outcomes occur: collapse with constant probability, but not
        # almost surely.
        assert dead >= 2
        assert converged >= 2

    def test_three_majority_never_dies_from_singletons(self):
        # The contrast: 3-Majority always ends on a valid color.
        n = 256
        for seed in range(5):
            result = run_agent(
                ThreeMajority(), Configuration.singletons(n), rng=seed
            )
            assert result.reached_consensus
            assert result.final.max_support == n
