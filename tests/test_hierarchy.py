"""Tests for repro.core.hierarchy — Appendix B, exactly."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.ac_process import HMajorityFunction
from repro.core.hierarchy import (
    appendix_b_counterexample,
    equation_24_terms,
    h_majority_probabilities_fraction,
    hierarchy_probability_vectors,
    three_majority_top_mass_exact,
)
from repro.core.majorization import majorizes


class TestEquation24:
    def test_top_mass_is_seven_twelfths(self):
        assert three_majority_top_mass_exact() == Fraction(7, 12)

    def test_terms_match_paper_decomposition(self):
        terms = equation_24_terms()
        assert terms == [Fraction(1, 8), Fraction(3, 8), Fraction(1, 12)]
        assert sum(terms) == Fraction(7, 12)

    def test_enumerator_matches_terms(self):
        assert three_majority_top_mass_exact() == sum(equation_24_terms())


class TestRationalEnumerator:
    def test_distribution_sums_to_one(self):
        x = [Fraction(1, 2), Fraction(1, 6), Fraction(1, 6), Fraction(1, 6)]
        alpha = h_majority_probabilities_fraction(x, 3)
        assert sum(alpha) == Fraction(1)

    def test_voter_cases(self):
        x = [Fraction(2, 5), Fraction(2, 5), Fraction(1, 5)]
        for h in (1, 2):
            assert h_majority_probabilities_fraction(x, h) == x

    def test_matches_float_enumerator(self):
        x = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        rational = h_majority_probabilities_fraction(x, 4)
        counts = np.asarray([2, 1, 1])
        floats = HMajorityFunction(4).probabilities(counts)
        assert [float(v) for v in rational] == pytest.approx(list(floats), abs=1e-12)

    def test_rejects_non_probability(self):
        with pytest.raises(ValueError):
            h_majority_probabilities_fraction([Fraction(1, 2)], 3)

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            h_majority_probabilities_fraction([Fraction(1)], 0)

    def test_symmetric_fixed_point(self):
        x = [Fraction(1, 2), Fraction(1, 2), Fraction(0), Fraction(0)]
        for h in (3, 4, 5, 6):
            assert h_majority_probabilities_fraction(x, h) == x


class TestCounterexample:
    def test_report_reproduces_appendix_b(self):
        report = appendix_b_counterexample()
        assert report.inputs_comparable
        assert not report.images_majorize
        assert report.lemma1_hypothesis_fails()
        assert report.top_mass_lower == Fraction(7, 12)

    def test_upper_is_fixed(self):
        report = appendix_b_counterexample()
        assert report.alpha_upper == report.x_upper

    def test_violation_is_one_twelfth_at_prefix_one(self):
        report = appendix_b_counterexample()
        gap = float(report.alpha_lower[0]) - float(report.alpha_upper[0])
        assert gap == pytest.approx(1.0 / 12.0)

    def test_holds_for_larger_h_too(self):
        # Appendix B's argument is for every h >= 3: the symmetric upper
        # configuration stays fixed while h-majority on the lower pushes
        # strictly more than 1/2 onto its top color.
        for h in (3, 4, 5):
            report = appendix_b_counterexample(h)
            assert report.lemma1_hypothesis_fails(), h
            assert report.top_mass_lower > Fraction(1, 2)

    def test_images_comparable_in_opposite_direction(self):
        # The *lower* image majorizes the upper at prefix one but NOT
        # overall: (7/12, ...) vs (1/2, 1/2, 0, 0) are incomparable.
        report = appendix_b_counterexample()
        lower_img = [float(v) for v in report.alpha_lower]
        upper_img = [float(v) for v in report.alpha_upper]
        assert not majorizes(lower_img, upper_img)
        assert not majorizes(upper_img, lower_img)


class TestHierarchyVectors:
    def test_monotone_top_mass_in_h(self):
        x = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
        vectors = hierarchy_probability_vectors(x, [1, 3, 5, 7])
        top = [vectors[h][0] for h in (1, 3, 5, 7)]
        assert all(a < b for a, b in zip(top, top[1:]))

    def test_all_entries_are_fractions(self):
        x = [Fraction(1, 3), Fraction(1, 3), Fraction(1, 3)]
        vectors = hierarchy_probability_vectors(x, [3])
        assert all(isinstance(v, Fraction) for v in vectors[3])
        # Full symmetry: uniform stays uniform.
        assert vectors[3] == x
