"""Tests for supervised execution: policy, deadlines, degradation, journal.

The four pillars of the execution policy layer:

* the ``ExecutionPolicy`` vocabulary — canonical dicts, default elision
  (an all-default policy serialises to nothing, so every pre-existing
  ``spec_hash`` survives), error classification and deterministic
  backoff;
* classified retries in ``_record_cell`` — fatal errors fail fast,
  transient errors retry with backoff, unknown errors keep the
  historical retry;
* the degradation ladder — transient exhaustion on a sharded backend
  re-resolves down ``sharded-* → ensemble-* → sequential``, stamps
  ``degraded_from``, and the per-replica rng contract keeps the result
  bit-for-bit;
* the crash-safe journal — fsync'd per-record checkpoint lines, torn
  tails salvaged (never raised), and resume completing the wreckage
  bit-for-bit.
"""

import os
import signal
import threading
import time

import numpy as np
import pytest

from repro import StudySpec
from repro.engine import WorkerPoolError, shared_executor, shutdown_pools
from repro.engine.runtime import degradation_ladder, execute as real_execute
from repro.engine.simulator import RoundLimitExceeded
from repro.study import (
    CellDeadlineExceeded,
    ExecutionPolicy,
    StudyStore,
    as_execution_policy,
    canonical_policy_value,
    compile_study,
    dumps_spec,
    encode_policy_value,
    journal_path,
    load_study_store,
    loads_spec,
    resolve_policy,
    run_study,
    spec_hash,
    study_report,
)
from repro.study import runner as runner_module
from repro.study.policy import backoff_delay, classify_error
from repro.study.runner import _CellDeadline, _record_cell


def one_cell_spec(backend="auto", *, workers=None, seed=5, **spec_overrides):
    defaults = dict(
        name="supervised",
        seed=seed,
        repetitions=3,
        workers=workers,
        axes={
            "process": ["3-majority"],
            "n": [48],
            "backend": [backend],
            "rng_mode": ["per-replica"],
        },
    )
    defaults.update(spec_overrides)
    return StudySpec(**defaults)


def one_cell(backend="auto", **kwargs):
    return compile_study(one_cell_spec(backend, **kwargs))[0]


def fast_policy(**overrides):
    """A policy that never sleeps between retries (test speed)."""
    defaults = dict(backoff_s=0.0)
    defaults.update(overrides)
    return ExecutionPolicy(**defaults)


# ---------------------------------------------------------------------------
# The policy vocabulary
# ---------------------------------------------------------------------------


class TestPolicyVocabulary:
    def test_defaults_collapse_to_none(self):
        assert canonical_policy_value(None) is None
        assert canonical_policy_value({}) is None
        assert canonical_policy_value(ExecutionPolicy()) is None
        assert canonical_policy_value(
            {"max_attempts": 2, "deadline_s": "none"}
        ) is None
        assert encode_policy_value({}) is None

    def test_canonical_fills_defaults(self):
        value = canonical_policy_value({"max_attempts": 3})
        assert value == {
            "deadline_s": None,
            "max_attempts": 3,
            "backoff_s": 0.05,
            "backoff_max_s": 30.0,
            "jitter": 0.5,
            "degrade": True,
        }
        # Encoding drops the default-valued keys again.
        assert encode_policy_value(value) == {"max_attempts": 3}

    def test_unknown_keys_rejected(self):
        with pytest.raises(KeyError, match="unknown execution keys"):
            canonical_policy_value({"retries": 3})

    @pytest.mark.parametrize(
        "bad",
        [
            {"deadline_s": 0.0},
            {"deadline_s": -1.0},
            {"max_attempts": 0},
            {"jitter": 1.5},
            {"backoff_s": -0.1},
            {"backoff_max_s": -1.0},
        ],
    )
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            canonical_policy_value(bad)

    def test_as_execution_policy(self):
        policy = ExecutionPolicy(max_attempts=4)
        assert as_execution_policy(policy) is policy
        assert as_execution_policy(None) == ExecutionPolicy()
        assert as_execution_policy({"deadline_s": 60}) == ExecutionPolicy(
            deadline_s=60.0
        )

    def test_resolve_precedence_and_overrides(self):
        spec_value = {"max_attempts": 5, "deadline_s": 100.0}
        # The spec table wins over defaults...
        assert resolve_policy(None, spec_value).max_attempts == 5
        # ...an explicit policy wins over the spec table...
        explicit = ExecutionPolicy(max_attempts=7)
        assert resolve_policy(explicit, spec_value).max_attempts == 7
        assert resolve_policy(explicit, spec_value).deadline_s is None
        # ...and the CLI-style overrides patch whichever base won.
        patched = resolve_policy(
            None, spec_value, max_attempts=1, deadline_s=9.0
        )
        assert patched.max_attempts == 1
        assert patched.deadline_s == 9.0


class TestClassifyAndBackoff:
    def test_classification(self):
        assert classify_error(WorkerPoolError("dead")) == "transient"
        assert classify_error(MemoryError()) == "transient"
        assert classify_error(OSError("disk")) == "transient"
        assert classify_error(ValueError("bad plan")) == "fatal"
        assert classify_error(TypeError("bad type")) == "fatal"
        assert classify_error(KeyError("missing")) == "fatal"
        # Unknown errors (e.g. a stochastic round-limit blowout) keep the
        # historical retry-on-sub-seed behaviour.
        assert classify_error(RuntimeError("???")) == "unknown"
        assert classify_error(
            RoundLimitExceeded("voter", 10, "consensus")
        ) == "unknown"

    def test_transient_opt_in_attribute(self):
        class FlakyConfig(ValueError):
            transient = True

        assert classify_error(FlakyConfig("wire glitch")) == "transient"

    def test_backoff_is_deterministic_and_bounded(self):
        policy = ExecutionPolicy(backoff_s=0.1, backoff_max_s=1.0, jitter=0.5)
        for attempt in (1, 2, 3, 4, 5):
            base = min(0.1 * 2.0 ** (attempt - 1), 1.0)
            delay = backoff_delay(policy, 123, attempt)
            assert delay == backoff_delay(policy, 123, attempt)
            assert 0.5 * base <= delay <= 1.5 * base
        # Different cells (and attempts) jitter differently.
        assert backoff_delay(policy, 123, 1) != backoff_delay(policy, 124, 1)

    def test_backoff_edge_cases(self):
        policy = ExecutionPolicy(backoff_s=0.2, jitter=0.0)
        assert backoff_delay(policy, 1, 0) == 0.0
        assert backoff_delay(policy, 1, 1) == 0.2
        assert backoff_delay(fast_policy(), 1, 3) == 0.0


# ---------------------------------------------------------------------------
# The [execution] spec table
# ---------------------------------------------------------------------------


class TestSpecExecutionTable:
    def test_default_policy_preserves_spec_hash(self):
        bare = one_cell_spec()
        defaulted = one_cell_spec(execution={"max_attempts": 2})
        assert defaulted.execution is None
        assert spec_hash(defaulted) == spec_hash(bare)
        assert "[execution]" not in dumps_spec(defaulted)
        assert [c.cell_id for c in compile_study(defaulted)] == [
            c.cell_id for c in compile_study(bare)
        ]

    def test_non_default_policy_round_trips(self):
        spec = one_cell_spec(
            execution={"deadline_s": 60.0, "max_attempts": 3}
        )
        text = dumps_spec(spec)
        assert "[execution]" in text
        reloaded = loads_spec(text)
        assert spec_hash(reloaded) == spec_hash(spec)
        assert reloaded.execution["deadline_s"] == 60.0
        assert reloaded.execution["max_attempts"] == 3
        # The supervision table changes the hash (it is spec content)...
        assert spec_hash(spec) != spec_hash(one_cell_spec())
        # ...but never the cells: supervision is not measurement.
        assert [c.cell_id for c in compile_study(spec)] == [
            c.cell_id for c in compile_study(one_cell_spec())
        ]

    def test_invalid_execution_rejected_with_context(self):
        with pytest.raises(ValueError, match="execution"):
            one_cell_spec(execution={"max_attempts": 0})
        with pytest.raises((KeyError, ValueError), match="execution"):
            one_cell_spec(execution={"retries": 9})

    def test_spec_table_drives_the_runner(self, monkeypatch):
        calls = []

        def failing(plan):
            calls.append(plan)
            raise RuntimeError("stochastic blowout")

        monkeypatch.setattr(runner_module, "execute", failing)
        spec = one_cell_spec(
            execution={"max_attempts": 3, "backoff_s": 0.0}
        )
        store = run_study(spec)
        (record,) = store.records()
        assert record.status == "failed"
        assert record.error["attempts"] == 3
        assert len(calls) == 3


# ---------------------------------------------------------------------------
# Classified retries in the runner
# ---------------------------------------------------------------------------


class TestRetryClassification:
    def test_fatal_errors_fail_fast(self, monkeypatch):
        calls = []

        def fatal(plan):
            calls.append(plan)
            raise ValueError("deterministic config error")

        monkeypatch.setattr(runner_module, "execute", fatal)
        record = _record_cell(
            one_cell(), on_error="record", policy=fast_policy(max_attempts=4)
        )
        assert record.status == "failed"
        assert record.error["type"] == "ValueError"
        assert record.error["attempts"] == 1
        assert len(calls) == 1
        assert record.degraded_from is None
        assert len(record.error["attempt_walls_s"]) == 1

    def test_transient_errors_retry_then_succeed(self, monkeypatch):
        calls = []

        def flaky(plan):
            calls.append(plan)
            if len(calls) == 1:
                raise WorkerPoolError("worker 123 died mid-map")
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", flaky)
        record = _record_cell(
            one_cell(), on_error="record", policy=fast_policy()
        )
        assert record.ok
        assert record.error is None
        assert record.degraded_from is None
        assert len(calls) == 2
        # The retry runs on a jittered sub-seed, not the pristine plan.
        assert calls[1].rng != calls[0].rng

    def test_unknown_errors_keep_historical_retry(self, monkeypatch):
        calls = []

        def unknown(plan):
            calls.append(plan)
            raise RuntimeError("round limit")

        monkeypatch.setattr(runner_module, "execute", unknown)
        record = _record_cell(
            one_cell(), on_error="record", policy=fast_policy()
        )
        assert record.status == "failed"
        assert record.error["attempts"] == 2
        assert len(calls) == 2
        assert record.degraded_from is None  # unknown ≠ transient: no ladder

    def test_raise_mode_propagates_first_error(self, monkeypatch):
        calls = []

        def flaky(plan):
            calls.append(plan)
            raise WorkerPoolError("dead")

        monkeypatch.setattr(runner_module, "execute", flaky)
        with pytest.raises(WorkerPoolError):
            _record_cell(one_cell(), on_error="raise", policy=fast_policy())
        assert len(calls) == 1


# ---------------------------------------------------------------------------
# The degradation ladder
# ---------------------------------------------------------------------------


class TestDegradation:
    def test_ladder_shape(self):
        assert degradation_ladder("sharded-counts") == (
            "ensemble-counts", "counts",
        )
        assert degradation_ladder("sharded-agent") == (
            "ensemble-agent", "agent",
        )
        assert degradation_ladder("ensemble-counts") == ("counts",)
        assert degradation_ladder("counts") == ()
        assert degradation_ladder("no-such-backend") == ()

    def test_transient_exhaustion_degrades_bit_for_bit(self, monkeypatch):
        def pool_down(plan):
            if plan.backend and "sharded" in str(plan.backend):
                raise WorkerPoolError("pool is gone")
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", pool_down)
        store = run_study(
            one_cell_spec("sharded-counts", workers=2),
            policy=fast_policy(max_attempts=1),
        )
        (record,) = store.records()
        assert record.ok
        assert record.degraded_from == "sharded-counts"
        assert record.resolved_backend == "ensemble-counts"
        # The per-replica contract: the degraded record carries exactly
        # the samples the sequential reference produces.
        reference = run_study(one_cell_spec("counts"), on_error="raise")
        (ref_record,) = reference.records()
        assert np.array_equal(record.times, ref_record.times)
        assert np.array_equal(record.stopped, ref_record.stopped)
        # ...and the report marks the degradation honestly.
        text = str(study_report(store))
        assert "DEGRADED" in text
        assert "sharded-counts" in text

    def test_degradation_disabled_records_failure(self, monkeypatch):
        def pool_down(plan):
            raise WorkerPoolError("pool is gone")

        monkeypatch.setattr(runner_module, "execute", pool_down)
        store = run_study(
            one_cell_spec("sharded-counts", workers=2),
            policy=fast_policy(max_attempts=1, degrade=False),
        )
        (record,) = store.records()
        assert record.status == "failed"
        assert record.error["type"] == "WorkerPoolError"
        assert record.degraded_from is None

    def test_real_worker_kill_degrades(self):
        """SIGKILL a live pool worker mid-study: the record must survive.

        The end-to-end story with no monkeypatching: the shared pool is
        warmed, one worker is killed while the cell's map is in flight,
        the single allowed attempt dies with ``WorkerPoolError``, and the
        runner degrades to the ensemble backend — whose samples are
        bit-for-bit the sequential reference's.
        """
        spec = one_cell_spec(
            "sharded-agent",
            workers=2,
            seed=31,
            repetitions=8,
            axes={
                "process": ["voter"],
                "workload": [{"name": "balanced", "kwargs": {"k": 2}}],
                "n": [4096],
                "max_rounds": [200000],
                "backend": ["sharded-agent"],
                "rng_mode": ["per-replica"],
            },
        )
        executor = shared_executor(2)
        pool = executor._ensure_pool()
        victim = pool._pool[0].pid
        timer = threading.Timer(0.35, os.kill, (victim, signal.SIGKILL))
        timer.start()
        try:
            store = run_study(spec, policy=fast_policy(max_attempts=1))
        finally:
            timer.cancel()
            shutdown_pools()
        (record,) = store.records()
        assert record.ok, record.error
        assert record.degraded_from == "sharded-agent"
        assert record.resolved_backend == "ensemble-agent"
        sequential = one_cell_spec(
            "agent", seed=31, repetitions=8,
            axes={**spec.axes, "backend": ["agent"]},
        )
        (ref_record,) = run_study(sequential, on_error="raise").records()
        assert np.array_equal(record.times, ref_record.times)
        assert np.array_equal(record.stopped, ref_record.stopped)


# ---------------------------------------------------------------------------
# Deadlines
# ---------------------------------------------------------------------------


class TestDeadline:
    def test_timeout_recorded_and_run_continues(self, monkeypatch):
        calls = []

        def hang_first(plan):
            calls.append(plan)
            if len(calls) == 1:
                time.sleep(30.0)
            return real_execute(plan)

        monkeypatch.setattr(runner_module, "execute", hang_first)
        spec = one_cell_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        store = run_study(spec, deadline_s=0.2)
        records = store.records()
        assert len(records) == 2
        timed_out, healthy = records
        assert timed_out.status == "timeout"
        assert timed_out.error["deadline_s"] == 0.2
        assert timed_out.error["attempts"] == 1  # hangs are not retried in-run
        assert timed_out.error["attempt_walls_s"][0] == pytest.approx(
            0.2, abs=0.15
        )
        assert healthy.ok
        assert store.timeouts() == [timed_out]
        text = str(study_report(store))
        assert "TIMEOUT" in text and "timed out" in text

    def test_resume_reattempts_timeout(self, tmp_path, monkeypatch):
        spec = one_cell_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        reference = run_study(spec)
        store_path = str(tmp_path / "study.json")
        calls = []

        def hang_first(plan):
            calls.append(plan)
            if len(calls) == 1:
                time.sleep(30.0)
            return real_execute(plan)

        with monkeypatch.context() as patch:
            patch.setattr(runner_module, "execute", hang_first)
            interrupted = run_study(spec, store_path=store_path, deadline_s=0.2)
        assert len(interrupted.timeouts()) == 1
        assert not os.path.exists(journal_path(store_path))  # compacted
        resumed = run_study(spec, store_path=store_path, resume=True)
        assert resumed.is_complete()
        assert resumed.results_equal(reference)

    def test_raise_mode_still_enforces_deadline(self, monkeypatch):
        def hang(plan):
            time.sleep(30.0)

        monkeypatch.setattr(runner_module, "execute", hang)
        with pytest.raises(CellDeadlineExceeded):
            _record_cell(
                one_cell(),
                on_error="raise",
                policy=ExecutionPolicy(deadline_s=0.2),
            )

    def test_thread_fallback_converts_collateral_error(self):
        """Off the main thread the watchdog kills the pool, not the frame.

        The cell then dies with a pool error — which must surface as the
        deadline exception, chained to the collateral damage.
        """
        outcome = {}

        def body():
            try:
                with _CellDeadline(0.05):
                    time.sleep(0.2)
                    raise WorkerPoolError("pool torn down by watchdog")
            except BaseException as exc:
                outcome["exc"] = exc

        thread = threading.Thread(target=body)
        thread.start()
        thread.join()
        assert isinstance(outcome["exc"], CellDeadlineExceeded)
        assert isinstance(outcome["exc"].__cause__, WorkerPoolError)

    def test_no_deadline_is_a_no_op(self):
        with _CellDeadline(None) as watchdog:
            pass
        assert not watchdog.expired


# ---------------------------------------------------------------------------
# The journaled store
# ---------------------------------------------------------------------------


def _journal_only(path: str, spec: StudySpec, records) -> str:
    """Checkpoint ``records`` into a journal and simulate a hard kill.

    The handle is closed without :meth:`StudyStore.compact`, so only the
    sidecar journal exists afterwards — the exact on-disk state a
    ``kill -9`` mid-study leaves behind.
    """
    store = StudyStore(spec)
    store.begin_journal(path)
    for record in records:
        store.add(record)
        store.checkpoint(record)
    store._journal.close()
    store._journal = None
    return journal_path(path)


class TestJournaledStore:
    def test_journal_alone_rebuilds_the_store(self, tmp_path):
        spec = one_cell_spec()
        reference = run_study(spec)
        path = str(tmp_path / "store.json")
        _journal_only(path, spec, reference.records())
        loaded = load_study_store(path)
        assert loaded.salvage is None
        assert loaded.results_equal(reference)

    def test_torn_tail_is_salvaged_not_raised(self, tmp_path):
        spec = one_cell_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        reference = run_study(spec)
        path = str(tmp_path / "store.json")
        jpath = _journal_only(path, spec, reference.records())
        with open(jpath, "r+b") as handle:
            handle.truncate(os.path.getsize(jpath) - 10)
        loaded = load_study_store(path)
        assert loaded.salvage is not None
        assert loaded.salvage["bytes_discarded"] > 0
        assert len(loaded) == 1  # the record in flight is lost, no more
        assert "SALVAGED" in str(study_report(loaded))

    def test_mid_journal_corruption_stops_at_the_tear(self, tmp_path):
        spec = one_cell_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48],
            "rng_mode": ["per-replica"],
        })
        reference = run_study(spec)
        path = str(tmp_path / "store.json")
        jpath = _journal_only(path, spec, reference.records())
        lines = open(jpath, "rb").read().splitlines(keepends=True)
        # Flip one byte inside the *first record* line: the CRC check
        # must reject it and everything after it is unreachable.
        broken = bytearray(lines[1])
        broken[len(broken) // 2] ^= 0xFF
        with open(jpath, "wb") as handle:
            handle.write(lines[0] + bytes(broken) + lines[2])
        loaded = load_study_store(path)
        assert loaded.salvage is not None
        assert len(loaded) == 0
        assert loaded.salvage["records_salvaged"] == 0

    def test_resume_completes_a_torn_journal_bit_for_bit(self, tmp_path):
        spec = one_cell_spec(axes={
            "process": ["3-majority"],
            "n": [24, 48, 96],
            "rng_mode": ["per-replica"],
        })
        reference = run_study(spec)
        path = str(tmp_path / "store.json")
        jpath = _journal_only(path, spec, reference.records())
        with open(jpath, "r+b") as handle:
            handle.truncate(os.path.getsize(jpath) - 25)
        resumed = run_study(spec, store_path=path, resume=True)
        assert resumed.is_complete()
        assert resumed.results_equal(reference)
        assert not os.path.exists(jpath)  # compacted into the base JSON
        assert load_study_store(path).results_equal(reference)

    def test_compaction_crash_duplicates_converge(self, tmp_path):
        # A kill between save() and the journal unlink leaves the same
        # record in both files; replay must upsert, not raise.
        spec = one_cell_spec()
        reference = run_study(spec)
        path = str(tmp_path / "store.json")
        reference.save(path)
        _journal_only(path, spec, reference.records())
        loaded = load_study_store(path)
        assert len(loaded) == 1
        assert loaded.results_equal(reference)

    def test_fresh_run_refuses_leftover_journal(self, tmp_path):
        spec = one_cell_spec()
        path = str(tmp_path / "store.json")
        _journal_only(path, spec, [])
        with pytest.raises(ValueError, match="already exists"):
            run_study(spec, store_path=path)

    def test_foreign_journal_rejected(self, tmp_path):
        path = str(tmp_path / "store.json")
        run_study(one_cell_spec(), store_path=path)
        other = one_cell_spec(seed=99)
        _journal_only(path, other, [])
        with pytest.raises(ValueError, match="spec_hash"):
            load_study_store(path)
        with pytest.raises(ValueError, match="spec_hash"):
            run_study(one_cell_spec(), store_path=path, resume=True)

    def test_torn_header_with_no_base_reads_as_missing(self, tmp_path):
        spec = one_cell_spec()
        path = str(tmp_path / "store.json")
        jpath = _journal_only(path, spec, [])
        with open(jpath, "r+b") as handle:
            handle.truncate(7)
        with pytest.raises(FileNotFoundError):
            load_study_store(path)
        # resume=True treats it as a fresh start and completes anyway.
        store = run_study(spec, store_path=path, resume=True)
        assert store.is_complete()
        assert not os.path.exists(jpath)

    def test_checkpoint_requires_begin_journal(self):
        spec = one_cell_spec()
        store = run_study(spec)
        with pytest.raises(RuntimeError, match="begin_journal"):
            StudyStore(spec).checkpoint(store.records()[0])

    def test_v2_and_v1_stores_upgrade_in_memory(self, tmp_path):
        import json

        spec = one_cell_spec()
        store = run_study(spec)
        payload = store.to_dict()
        # A v2 file: no degraded_from column, version stamp 2.
        payload["format_version"] = 2
        del payload["columns"]["degraded_from"]
        path = str(tmp_path / "v2.json")
        with open(path, "w") as handle:
            json.dump(payload, handle)
        loaded = load_study_store(path)
        assert loaded.records()[0].degraded_from is None
        assert loaded.results_equal(store)
