"""Shared fixtures for the test-suite."""

import numpy as np
import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "bench_smoke: fast throughput-benchmark smoke check wired into tier-1",
    )


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def rng_factory():
    """Factory for generators with per-call seeds."""

    def _make(seed: int = 0) -> np.random.Generator:
        return np.random.default_rng(seed)

    return _make
