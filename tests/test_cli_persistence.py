"""Tests for the CLI (repro.cli) and sweep persistence."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import Configuration
from repro.engine import Consensus
from repro.experiments import (
    load_sweep,
    save_sweep,
    sweep_first_passage,
    sweep_from_dict,
    sweep_to_dict,
)
from repro.processes import Voter
from repro.study import load_study_store


def _reject_constant(value):
    raise AssertionError(f"non-strict JSON constant in file: {value}")


def _small_sweep():
    return sweep_first_passage(
        name="demo",
        process_factory=lambda n: Voter(),
        workload=lambda n: Configuration.balanced(n, 4),
        stop=lambda n: Consensus(),
        n_values=[16, 32, 64],
        repetitions=4,
        seed=5,
        predicted=lambda n: float(n),
    )


class TestPersistence:
    def test_round_trip_in_memory(self):
        original = _small_sweep()
        rebuilt = sweep_from_dict(sweep_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.param_name == original.param_name
        for a, b in zip(original.points, rebuilt.points):
            assert a.param == b.param
            assert np.array_equal(a.samples, b.samples)
            assert a.predicted == b.predicted
            assert a.summary.mean == pytest.approx(b.summary.mean)

    def test_round_trip_on_disk(self, tmp_path):
        original = _small_sweep()
        path = tmp_path / "sweep.json"
        save_sweep(original, str(path))
        rebuilt = load_sweep(str(path))
        assert rebuilt.fit().exponent == pytest.approx(original.fit().exponent)

    def test_file_is_plain_json(self, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(_small_sweep(), str(path))
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 2
        assert len(payload["points"]) == 3

    def test_round_trips_provenance_fields(self):
        original = _small_sweep()
        payload = sweep_to_dict(original)
        assert payload["rng_mode"] == original.rng_mode
        assert all(p["resolved_backend"] for p in payload["points"])
        rebuilt = sweep_from_dict(payload)
        assert rebuilt.rng_mode == original.rng_mode
        for a, b in zip(original.points, rebuilt.points):
            assert a.resolved_backend == b.resolved_backend

    def test_reads_legacy_version1_files(self):
        payload = sweep_to_dict(_small_sweep())
        legacy = {
            "format_version": 1,
            "name": payload["name"],
            "param_name": payload["param_name"],
            "points": [
                {k: p[k] for k in ("param", "samples", "predicted")}
                for p in payload["points"]
            ],
        }
        rebuilt = sweep_from_dict(legacy)
        assert rebuilt.rng_mode == "batched"
        assert all(p.resolved_backend is None for p in rebuilt.points)

    def test_rejects_unknown_future_versions(self):
        with pytest.raises(ValueError, match="unsupported sweep format version"):
            sweep_from_dict({"format_version": 99, "points": []})

    def test_missing_prediction_stays_strict_json(self, tmp_path):
        # api.sweep without predicted= leaves NaN predictions; the file
        # must still be strict JSON (null), round-tripping back to NaN.
        from repro import api

        result = api.sweep("voter", [16, 32], repetitions=2, seed=3)
        path = tmp_path / "sweep.json"
        save_sweep(result, str(path))
        payload = json.loads(path.read_text(), parse_constant=_reject_constant)
        assert all(p["predicted"] is None for p in payload["points"])
        rebuilt = load_sweep(str(path))
        assert all(np.isnan(p.predicted) for p in rebuilt.points)

    def test_summaries_recomputed_from_samples(self):
        payload = sweep_to_dict(_small_sweep())
        payload["points"][0]["samples"] = [1, 1, 1, 1]
        rebuilt = sweep_from_dict(payload)
        assert rebuilt.points[0].summary.mean == pytest.approx(1.0)


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "voter", "-n", "64"])
        assert args.command == "simulate"
        assert args.nodes == 64

    def test_simulate_runs(self, capsys):
        code = main(["simulate", "3-majority", "-n", "128", "--seed", "3"])
        out = capsys.readouterr().out
        assert code == 0
        assert "consensus after" in out

    def test_simulate_with_trace(self, capsys):
        code = main(
            ["simulate", "voter", "-n", "64", "-k", "4", "--trace", "--seed", "1"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "trajectory" in out

    def test_simulate_biased(self, capsys):
        code = main(
            ["simulate", "2-choices", "-n", "128", "-k", "2", "--bias", "64", "--seed", "2"]
        )
        assert code == 0
        assert "consensus after" in capsys.readouterr().out

    def test_simulate_bias_requires_colors(self):
        with pytest.raises(SystemExit):
            main(["simulate", "voter", "--bias", "10"])

    def test_sweep_runs_and_saves(self, tmp_path, capsys):
        out_file = tmp_path / "sweep.json"
        code = main(
            [
                "sweep",
                "3-majority",
                "--min-n", "64",
                "--max-n", "128",
                "-r", "2",
                "-o", str(out_file),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fit:" in out
        assert out_file.exists()
        rebuilt = load_sweep(str(out_file))
        assert len(rebuilt.points) == 2

    def test_sweep_validates_range(self):
        with pytest.raises(SystemExit):
            main(["sweep", "voter", "--min-n", "128", "--max-n", "64"])
        with pytest.raises(SystemExit):
            main(["sweep", "voter", "--colors", "1"])

    def test_sweep_backend_choices_derive_from_registry(self):
        from repro.engine import backend_choices

        parser = build_parser()
        for name in backend_choices():
            args = parser.parse_args(["sweep", "voter", "--backend", name])
            assert args.backend == name
        with pytest.raises(SystemExit):
            parser.parse_args(["sweep", "voter", "--backend", "warp-drive"])

    def test_sweep_asynchronous_scheduler(self, capsys):
        code = main(
            [
                "sweep", "3-majority",
                "--min-n", "32", "--max-n", "64",
                "-r", "2", "--scheduler", "asynchronous",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consensus ticks" in out

    def test_sweep_adversary_plan(self, capsys):
        code = main(
            [
                "sweep", "3-majority",
                "--min-n", "64", "--max-n", "128",
                "-r", "2", "--colors", "3",
                "--adversary", "plant-invalid", "--budget", "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "stable valid regime" in out
        assert "plant-invalid" in out

    def test_sweep_per_replica_rng_matches_sequential_backend(self, tmp_path):
        args = [
            "sweep", "voter",
            "--min-n", "16", "--max-n", "32",
            "-r", "3", "--seed", "5",
        ]
        ref_file = tmp_path / "seq.json"
        ens_file = tmp_path / "ens.json"
        assert main(args + ["--backend", "counts", "-o", str(ref_file)]) == 0
        assert main(
            args
            + [
                "--backend", "ensemble-counts",
                "--rng-mode", "per-replica",
                "-o", str(ens_file),
            ]
        ) == 0
        reference = load_sweep(str(ref_file))
        ensemble = load_sweep(str(ens_file))
        for a, b in zip(reference.points, ensemble.points):
            assert np.array_equal(a.samples, b.samples)

    def test_counterexample_command(self, capsys):
        code = main(["counterexample"])
        out = capsys.readouterr().out
        assert code == 0
        assert "7/12" in out

    def test_unknown_process_errors(self):
        with pytest.raises(KeyError):
            main(["simulate", "no-such-process"])

    def test_simulate_smoke_over_every_registered_process(self, capsys):
        """`repro simulate` runs end-to-end for every registry name."""
        from repro.processes import available_processes

        for name in available_processes():
            if name == "h-majority:<h>":
                name = "h-majority:3"  # the parameterised scheme's exemplar
            code = main(
                ["simulate", name, "-n", "32", "-k", "2", "--seed", "1",
                 "--max-rounds", "5000"]
            )
            out = capsys.readouterr().out
            assert code == 0, name
            assert "consensus after" in out, name


class TestCliStudy:
    """End-to-end coverage of the `repro study` subcommands."""

    SPEC_TOML = """\
name = "cli-study"
seed = 11
repetitions = 2

[axes]
process = ["3-majority", "voter"]
n = [32]
rng_mode = ["per-replica"]
"""

    def _write_spec(self, tmp_path):
        path = tmp_path / "cli-study.toml"
        path.write_text(self.SPEC_TOML)
        return str(path)

    def test_run_reports_and_checkpoints(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        code = main(["study", "run", spec_path])
        out = capsys.readouterr().out
        assert code == 0
        assert "complete" in out
        assert "cli-study" in out
        store = load_study_store(str(tmp_path / "cli-study.store.json"))
        assert len(store) == 2

    def test_run_refuses_to_clobber_without_resume(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        assert main(["study", "run", spec_path]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already exists"):
            main(["study", "run", spec_path])

    def test_kill_and_resume_completes_only_missing_cells(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        store_path = str(tmp_path / "partial.json")
        full_path = str(tmp_path / "full.json")
        # The uninterrupted reference run.
        assert main(["study", "run", spec_path, "-o", full_path, "--quiet"]) == 0
        # An "interrupted" run: one cell, then the process dies.
        assert main(
            ["study", "run", spec_path, "-o", store_path, "--max-cells", "1",
             "--quiet"]
        ) == 0
        assert len(load_study_store(store_path)) == 1
        capsys.readouterr()
        assert main(["study", "resume", spec_path, "-o", store_path]) == 0
        out = capsys.readouterr().out
        # Only the second cell ran on resume.
        assert "[2/2]" in out and "[1/2]" not in out
        resumed = load_study_store(store_path)
        full = load_study_store(full_path)
        assert resumed.results_equal(full)

    def test_resume_without_store_errors(self, tmp_path):
        spec_path = self._write_spec(tmp_path)
        with pytest.raises(SystemExit, match="no store to resume"):
            main(["study", "resume", spec_path])

    def test_report_renders_saved_store(self, tmp_path, capsys):
        spec_path = self._write_spec(tmp_path)
        store_path = str(tmp_path / "s.json")
        assert main(["study", "run", spec_path, "-o", store_path, "--quiet"]) == 0
        capsys.readouterr()
        assert main(["study", "report", store_path]) == 0
        out = capsys.readouterr().out
        assert "cli-study" in out
        assert "3-majority" in out and "voter" in out

    def test_bad_spec_is_a_usage_error(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text('name = "x"\n[axes]\nprocess = ["warp-dynamics"]\n')
        with pytest.raises(SystemExit, match="cannot"):
            main(["study", "run", str(path)])
