"""Unit tests for repro.core.ac_process — process functions of Definition 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration
from repro.core.ac_process import (
    HMajorityFunction,
    PowerDriftFunction,
    ThreeMajorityFunction,
    VoterFunction,
    adoption_matrix_over_rounds,
    expected_next_counts,
    multinomial_step,
)

count_vectors = st.lists(st.integers(min_value=0, max_value=30), min_size=2, max_size=6).filter(
    lambda c: sum(c) >= 2
)


class TestVoterFunction:
    def test_equation_1(self):
        alpha = VoterFunction().probabilities(np.asarray([3, 1, 0]))
        assert alpha == pytest.approx([0.75, 0.25, 0.0])

    def test_consensus_fixed_point(self):
        alpha = VoterFunction().probabilities(np.asarray([0, 5]))
        assert alpha == pytest.approx([0.0, 1.0])

    @given(count_vectors)
    @settings(max_examples=60, deadline=None)
    def test_is_probability_vector(self, counts):
        VoterFunction().validate(np.asarray(counts, dtype=np.int64))


class TestThreeMajorityFunction:
    def test_equation_2_by_hand(self):
        # x = (1/2, 1/2): alpha_i = x_i^2 + (1 - 1/2) x_i = 1/4 + 1/4 = 1/2.
        alpha = ThreeMajorityFunction().probabilities(np.asarray([2, 2]))
        assert alpha == pytest.approx([0.5, 0.5])

    def test_equation_2_asymmetric(self):
        # x = (3/4, 1/4): ||x||^2 = 10/16. alpha_1 = 9/16 + (6/16)(3/4) = 0.84375
        alpha = ThreeMajorityFunction().probabilities(np.asarray([3, 1]))
        x = np.asarray([0.75, 0.25])
        expected = x**2 + (1 - (x**2).sum()) * x
        assert alpha == pytest.approx(expected)

    def test_appendix_b_value(self):
        # alpha_1 for x = (1/2, 1/6, 1/6, 1/6) must be 7/12 (Equation 24).
        alpha = ThreeMajorityFunction().probabilities(np.asarray([3, 1, 1, 1]))
        assert alpha[0] == pytest.approx(7.0 / 12.0)

    def test_never_revives_dead_colors(self):
        alpha = ThreeMajorityFunction().probabilities(np.asarray([4, 0, 2]))
        assert alpha[1] == 0.0

    def test_drift_favors_plurality_vs_voter(self):
        counts = np.asarray([6, 2, 2])
        three = ThreeMajorityFunction().probabilities(counts)
        voter = VoterFunction().probabilities(counts)
        assert three[0] > voter[0]
        assert three[1] < voter[1]

    @given(count_vectors)
    @settings(max_examples=60, deadline=None)
    def test_is_probability_vector(self, counts):
        ThreeMajorityFunction().validate(np.asarray(counts, dtype=np.int64))


class TestHMajorityFunction:
    def test_h1_h2_equal_voter(self):
        counts = np.asarray([5, 3, 2])
        voter = VoterFunction().probabilities(counts)
        for h in (1, 2):
            alpha = HMajorityFunction(h).probabilities(counts)
            assert alpha == pytest.approx(voter)

    def test_h3_matches_closed_form(self):
        counts = np.asarray([5, 3, 2])
        enumerated = HMajorityFunction(3).probabilities(counts)
        closed = ThreeMajorityFunction().probabilities(counts)
        assert enumerated == pytest.approx(closed, abs=1e-12)

    def test_h3_matches_closed_form_many_colors(self):
        counts = np.asarray([4, 3, 2, 2, 1])
        enumerated = HMajorityFunction(3).probabilities(counts)
        closed = ThreeMajorityFunction().probabilities(counts)
        assert enumerated == pytest.approx(closed, abs=1e-12)

    def test_symmetric_two_colors_fixed_point(self):
        # (1/2, 1/2) is a fixed point for every h (Appendix B's symmetry).
        for h in (3, 4, 5):
            alpha = HMajorityFunction(h).probabilities(np.asarray([6, 6]))
            assert alpha == pytest.approx([0.5, 0.5])

    def test_larger_h_sharper_drift(self):
        counts = np.asarray([6, 3, 3])
        masses = [
            HMajorityFunction(h).probabilities(counts)[0] for h in (1, 3, 5, 7)
        ]
        assert all(a < b for a, b in zip(masses, masses[1:]))

    def test_rejects_wide_configs(self):
        with pytest.raises(ValueError):
            HMajorityFunction(3, max_support_colors=4).probabilities(
                np.ones(6, dtype=np.int64)
            )

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            HMajorityFunction(0)

    @given(count_vectors, st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_is_probability_vector(self, counts, h):
        HMajorityFunction(h).validate(np.asarray(counts, dtype=np.int64))


class TestPowerDrift:
    def test_beta_one_is_voter(self):
        counts = np.asarray([4, 3, 1])
        assert PowerDriftFunction(1.0).probabilities(counts) == pytest.approx(
            VoterFunction().probabilities(counts)
        )

    def test_rejects_beta_below_one(self):
        with pytest.raises(ValueError):
            PowerDriftFunction(0.5)

    def test_large_beta_concentrates(self):
        counts = np.asarray([5, 4, 1])
        weak = PowerDriftFunction(1.5).probabilities(counts)
        strong = PowerDriftFunction(4.0).probabilities(counts)
        assert strong[0] > weak[0]


class TestStepMachinery:
    def test_multinomial_step_preserves_n(self, rng):
        out = multinomial_step(50, np.asarray([0.5, 0.25, 0.25]), rng)
        assert out.sum() == 50

    def test_multinomial_step_rejects_zero_mass(self, rng):
        with pytest.raises(ValueError):
            multinomial_step(10, np.zeros(3), rng)

    def test_step_counts_preserves_population(self, rng):
        counts = np.asarray([10, 5, 5])
        out = ThreeMajorityFunction().step_counts(counts, rng)
        assert out.sum() == 20

    def test_step_configuration_api(self, rng):
        config = Configuration([10, 10])
        out = VoterFunction().step(config, rng)
        assert out.num_nodes == 20

    def test_expected_next_counts(self):
        counts = np.asarray([6, 2])
        expected = expected_next_counts(counts, VoterFunction())
        assert expected == pytest.approx([6.0, 2.0])

    def test_consensus_absorbing(self, rng):
        counts = np.asarray([8, 0])
        for _ in range(5):
            counts = ThreeMajorityFunction().step_counts(counts, rng)
        assert list(counts) == [8, 0]

    def test_adoption_matrix_shape(self, rng):
        config = Configuration([5, 5])
        mat = adoption_matrix_over_rounds(VoterFunction(), config, rounds=4, rng=rng)
        assert mat.shape == (5, 2)
        assert np.all(mat.sum(axis=1) == 10)

    def test_empirical_mean_matches_alpha(self, rng):
        # The count-level sampler's mean must track n * alpha.
        counts = np.asarray([12, 4])
        func = ThreeMajorityFunction()
        alpha = func.probabilities(counts)
        reps = 4000
        acc = np.zeros(2)
        for _ in range(reps):
            acc += func.step_counts(counts, rng)
        mean = acc / reps
        assert mean == pytest.approx(16 * alpha, abs=0.2)
