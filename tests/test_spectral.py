"""Tests for the spectral toolbox (repro.analysis.spectral)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    bgkmt16_consensus_scale,
    ceor13_coalescence_scale,
    spectral_profile,
    transition_matrix,
)
from repro.coalescing import coalescence_reduction_time
from repro.graphs import CompleteGraph, CycleGraph, random_regular_graph


class TestTransitionMatrix:
    def test_rows_stochastic_all_graphs(self, rng):
        graphs = [
            CompleteGraph(8),
            CompleteGraph(8, include_self=False),
            CycleGraph(9),
            random_regular_graph(10, 3, rng),
        ]
        for graph in graphs:
            matrix = transition_matrix(graph)
            assert matrix.shape == (graph.num_nodes, graph.num_nodes)
            assert matrix.sum(axis=1) == pytest.approx(np.ones(graph.num_nodes))

    def test_complete_with_self_uniform(self):
        matrix = transition_matrix(CompleteGraph(5))
        assert matrix == pytest.approx(np.full((5, 5), 0.2))

    def test_complete_without_self_zero_diagonal(self):
        matrix = transition_matrix(CompleteGraph(5, include_self=False))
        assert np.diag(matrix) == pytest.approx(np.zeros(5))

    def test_cycle_structure(self):
        matrix = transition_matrix(CycleGraph(6))
        assert matrix[0, 1] == 0.5 and matrix[0, 5] == 0.5
        assert matrix[0, 2] == 0.0

    def test_unsupported_graph(self):
        class Weird:
            num_nodes = 3

        with pytest.raises(TypeError):
            transition_matrix(Weird())


class TestSpectralProfile:
    def test_complete_with_self_gap_one(self):
        profile = spectral_profile(CompleteGraph(16))
        # Uniform matrix: λ₂ = 0, gap 1.
        assert profile.spectral_gap == pytest.approx(1.0)
        assert profile.rho == pytest.approx(16.0)

    def test_complete_without_self(self):
        n = 16
        profile = spectral_profile(CompleteGraph(n, include_self=False))
        # K_n walk: λ₂ = −1/(n−1); second-largest REAL eigenvalue.
        assert profile.lambda_2 == pytest.approx(-1 / (n - 1), abs=1e-9)

    def test_cycle_gap_formula(self):
        n = 17
        profile = spectral_profile(CycleGraph(n))
        expected_lambda2 = math.cos(2 * math.pi / n)
        assert profile.lambda_2 == pytest.approx(expected_lambda2, abs=1e-9)

    def test_regular_rho_equals_n(self, rng):
        graph = random_regular_graph(12, 4, rng)
        profile = spectral_profile(graph)
        # Regular graphs: rho = (d n)^2 / (n d^2) = n.
        assert profile.rho == pytest.approx(12.0)

    def test_cheeger_sandwich(self, rng):
        for graph in (CompleteGraph(10), CycleGraph(11), random_regular_graph(12, 3, rng)):
            profile = spectral_profile(graph)
            assert 0 <= profile.cheeger_lower <= profile.cheeger_upper


class TestRelatedWorkScales:
    def test_complete_graph_scale_near_polylog(self):
        # CEOR13 on K_n: gap 1, rho = n → scale ≈ n + log^4 n.
        n = 64
        scale = ceor13_coalescence_scale(CompleteGraph(n))
        assert n <= scale <= n + math.log(n) ** 4 + 1

    def test_cycle_scale_quadratic_growth(self):
        small = ceor13_coalescence_scale(CycleGraph(17))
        large = ceor13_coalescence_scale(CycleGraph(67))
        # Gap of the cycle is Θ(1/n²): the scale grows super-linearly.
        assert large > 8 * small

    def test_bgkmt16_finite_for_connected(self, rng):
        for graph in (CompleteGraph(12), random_regular_graph(12, 3, rng)):
            assert math.isfinite(bgkmt16_consensus_scale(graph))

    def test_measured_coalescence_below_ceor13_scale(self):
        # The bound has an unspecified constant; with constant 1 it should
        # comfortably dominate the measured time on these families.
        for graph in (CompleteGraph(48), CycleGraph(25)):
            times = [
                coalescence_reduction_time(graph, 1, np.random.default_rng(s), max_steps=10**6)
                for s in range(5)
            ]
            assert np.mean(times) < ceor13_coalescence_scale(graph)

    def test_ordering_complete_faster_than_cycle(self):
        # Same n: the cycle's scale must far exceed the complete graph's.
        n = 33
        assert ceor13_coalescence_scale(CycleGraph(n)) > 5 * ceor13_coalescence_scale(
            CompleteGraph(n)
        )
