"""Unit tests for the agent-level processes (repro.processes)."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.processes import (
    HMajority,
    ThreeMajority,
    ThreeMajorityResample,
    TwoChoices,
    TwoMedian,
    UNDECIDED,
    UndecidedDynamics,
    Voter,
    available_processes,
    counts_from_colors,
    make_process,
    plurality_with_random_tie_break,
    sample_uniform_nodes,
)
from repro.processes.two_choices import TwoChoicesBirthUpper, two_choices_expected_fractions


class TestSampling:
    def test_shape(self, rng):
        out = sample_uniform_nodes(10, 3, rng)
        assert out.shape == (10, 3)
        assert out.min() >= 0 and out.max() < 10

    def test_rejects_bad_args(self, rng):
        with pytest.raises(ValueError):
            sample_uniform_nodes(0, 1, rng)
        with pytest.raises(ValueError):
            sample_uniform_nodes(5, 0, rng)

    def test_counts_from_colors(self):
        assert list(counts_from_colors(np.asarray([0, 2, 2]), 4)) == [1, 0, 2, 0]


class TestVoter:
    def test_preserves_population(self, rng):
        colors = np.arange(100)
        out = Voter().update(colors, rng)
        assert out.shape == (100,)
        assert set(np.unique(out)).issubset(set(range(100)))

    def test_consensus_absorbing(self, rng):
        colors = np.full(50, 3)
        out = Voter().update(colors, rng)
        assert np.all(out == 3)

    def test_does_not_mutate_input(self, rng):
        colors = np.arange(20)
        snapshot = colors.copy()
        Voter().update(colors, rng)
        assert np.array_equal(colors, snapshot)

    def test_is_anonymous(self):
        assert Voter().is_anonymous
        assert Voter().samples_per_round == 1

    def test_one_round_mean_matches_alpha(self, rng):
        # Agent-level Voter one-round mean counts must track c (martingale).
        config = Configuration([30, 10])
        base = config.to_assignment()
        acc = np.zeros(2)
        reps = 3000
        for _ in range(reps):
            out = Voter().update(base, rng)
            acc += counts_from_colors(out, 2)
        assert acc / reps == pytest.approx([30, 10], abs=0.6)


class TestTwoChoices:
    def test_keep_branch(self, rng):
        # With all-distinct colors, collisions are rare: most nodes keep.
        colors = np.arange(1000)
        out = TwoChoices().update(colors, rng)
        assert np.mean(out == colors) > 0.99

    def test_adopt_branch_two_colors(self, rng):
        colors = np.asarray([0] * 50 + [1] * 50)
        out = TwoChoices().update(colors, rng)
        # Adoptions only to existing colors.
        assert set(np.unique(out)).issubset({0, 1})

    def test_not_anonymous(self):
        assert not TwoChoices().is_anonymous

    def test_consensus_absorbing(self, rng):
        colors = np.zeros(64, dtype=np.int64)
        out = TwoChoices().update(colors, rng)
        assert np.all(out == 0)

    def test_expected_fractions_footnote2(self):
        x = np.asarray([0.5, 0.3, 0.2])
        expected = two_choices_expected_fractions(x)
        norm_sq = (x**2).sum()
        assert expected == pytest.approx(x**2 + (1 - norm_sq) * x)
        assert expected.sum() == pytest.approx(1.0)

    def test_expected_next_fractions_method(self):
        config = Configuration([5, 5])
        expected = TwoChoices().expected_next_fractions(config)
        assert expected == pytest.approx([0.5, 0.5])

    def test_empirical_switch_rate(self, rng):
        # From (n/2, n/2): each node switches iff both samples show the
        # other color: probability 1/4.
        n = 2000
        colors = np.asarray([0] * (n // 2) + [1] * (n // 2))
        switched = 0
        reps = 50
        for _ in range(reps):
            out = TwoChoices().update(colors, rng)
            switched += int(np.sum(out != colors))
        assert switched / (reps * n) == pytest.approx(0.25, abs=0.01)


class TestTwoChoicesBirthUpper:
    def test_threshold_formula(self):
        proc = TwoChoicesBirthUpper(n=1000, ell=1, gamma=18.0)
        assert proc.ell_prime == int(np.ceil(18 * np.log(1000)))
        proc2 = TwoChoicesBirthUpper(n=1000, ell=200, gamma=18.0)
        assert proc2.ell_prime == 400

    def test_collision_probability(self):
        proc = TwoChoicesBirthUpper(n=100, ell=10)
        assert proc.collision_probability == pytest.approx((proc.ell_prime / 100) ** 2)

    def test_trajectory_monotone(self, rng):
        proc = TwoChoicesBirthUpper(n=500, ell=1)
        traj = proc.run(100, rng)
        assert traj.shape == (101,)
        assert traj[0] == 1
        assert np.all(np.diff(traj) >= 0)

    def test_first_passage_immediate_when_at_threshold(self, rng):
        proc = TwoChoicesBirthUpper(n=100, ell=100, gamma=1.0)
        # ell' = 200 > n is unreachable quickly, but ell >= ell'? no: 2*100=200.
        assert proc.first_passage(rng, max_rounds=0) in (0, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TwoChoicesBirthUpper(n=0, ell=0)
        with pytest.raises(ValueError):
            TwoChoicesBirthUpper(n=10, ell=11)
        with pytest.raises(ValueError):
            TwoChoicesBirthUpper(n=10, ell=1, gamma=0.0)
        with pytest.raises(ValueError):
            TwoChoicesBirthUpper(n=10, ell=1).run(-1, np.random.default_rng(0))


class TestThreeMajority:
    def test_majority_of_two_wins(self, rng):
        # Two colors, one with 90%: strong drift to plurality.
        colors = np.asarray([0] * 900 + [1] * 100)
        out = ThreeMajority().update(colors, rng)
        assert np.mean(out == 0) > 0.85

    def test_consensus_absorbing(self, rng):
        colors = np.full(30, 7)
        assert np.all(ThreeMajority().update(colors, rng) == 7)

    def test_variants_same_one_round_mean(self, rng):
        # The plurality rule and the resample rule share Equation (2).
        config = Configuration([12, 6, 2])
        base = config.to_assignment()
        reps = 4000
        acc_a = np.zeros(3)
        acc_b = np.zeros(3)
        for _ in range(reps):
            acc_a += counts_from_colors(ThreeMajority().update(base, rng), 3)
            acc_b += counts_from_colors(ThreeMajorityResample().update(base, rng), 3)
        assert acc_a / reps == pytest.approx(acc_b / reps, abs=0.5)

    def test_one_round_mean_matches_equation_2(self, rng):
        config = Configuration([12, 6, 2])
        base = config.to_assignment()
        alpha = ThreeMajority().adoption_probabilities(config)
        reps = 4000
        acc = np.zeros(3)
        for _ in range(reps):
            acc += counts_from_colors(ThreeMajority().update(base, rng), 3)
        assert acc / reps == pytest.approx(20 * alpha, abs=0.5)


class TestHMajority:
    def test_tie_break_uniform(self, rng):
        samples = np.asarray([[0, 1, 2]] * 9000)
        out = plurality_with_random_tie_break(samples, rng)
        for color in (0, 1, 2):
            assert np.mean(out == color) == pytest.approx(1 / 3, abs=0.02)

    def test_clear_plurality(self, rng):
        samples = np.asarray([[3, 3, 1, 2, 3]] * 10)
        out = plurality_with_random_tie_break(samples, rng)
        assert np.all(out == 3)

    def test_two_way_tie(self, rng):
        samples = np.asarray([[1, 1, 2, 2, 5]] * 6000)
        out = plurality_with_random_tie_break(samples, rng)
        assert np.mean(out == 1) == pytest.approx(0.5, abs=0.03)
        assert np.mean(out == 5) == 0.0

    def test_single_sample(self, rng):
        samples = np.asarray([[4], [2]])
        assert list(plurality_with_random_tie_break(samples, rng)) == [4, 2]

    def test_rejects_one_dimensional(self, rng):
        with pytest.raises(ValueError):
            plurality_with_random_tie_break(np.asarray([1, 2, 3]), rng)

    def test_h1_h2_match_voter_mean(self, rng):
        config = Configuration([15, 5])
        base = config.to_assignment()
        reps = 3000
        for h in (1, 2):
            acc = np.zeros(2)
            proc = HMajority(h)
            for _ in range(reps):
                acc += counts_from_colors(proc.update(base, rng), 2)
            assert acc / reps == pytest.approx([15, 5], abs=0.5)

    def test_h3_matches_three_majority_mean(self, rng):
        config = Configuration([12, 8])
        base = config.to_assignment()
        alpha = ThreeMajority().adoption_probabilities(config)
        reps = 4000
        acc = np.zeros(2)
        proc = HMajority(3)
        for _ in range(reps):
            acc += counts_from_colors(proc.update(base, rng), 2)
        assert acc / reps == pytest.approx(20 * alpha, abs=0.5)

    def test_supports_count_backend_logic(self):
        wide = Configuration.singletons(64)
        narrow = Configuration.balanced(64, 4)
        proc = HMajority(5)
        assert not proc.supports_count_backend(wide)
        assert proc.supports_count_backend(narrow)
        assert HMajority(2).supports_count_backend(wide)

    def test_rejects_bad_h(self):
        with pytest.raises(ValueError):
            HMajority(0)


class TestTwoMedian:
    def test_median_of_three(self, rng):
        # All nodes value 0 except one with 100: medians stay in range.
        colors = np.zeros(100, dtype=np.int64)
        colors[0] = 100
        out = TwoMedian().update(colors, rng)
        assert out.min() >= 0 and out.max() <= 100

    def test_consensus_absorbing(self, rng):
        colors = np.full(30, 9)
        assert np.all(TwoMedian().update(colors, rng) == 9)

    def test_values_between_extremes(self, rng):
        colors = np.asarray([0] * 50 + [10] * 50)
        out = TwoMedian().update(colors, rng)
        assert set(np.unique(out)).issubset({0, 10})

    def test_not_anonymous(self):
        assert not TwoMedian().is_anonymous

    def test_converges_fast_from_many_values(self, rng):
        from repro.engine import consensus_time

        t = consensus_time(TwoMedian(), Configuration.singletons(256), rng=rng)
        # O(log k log log n + log n): tiny compared to n.
        assert t < 64


class TestUndecided:
    def test_conflict_creates_undecided(self, rng):
        colors = np.asarray([0, 1] * 200)
        out = UndecidedDynamics().update(colors, rng)
        assert np.any(out == UNDECIDED)

    def test_undecided_adopts(self, rng):
        colors = np.full(100, UNDECIDED)
        colors[0] = 5
        proc = UndecidedDynamics()
        out = proc.update(colors, rng)
        # Node 0 keeps its color (samples either 5-color or undecided;
        # sampling undecided keeps... actually node 0 adopting undecided is
        # possible only if it samples an undecided node AND is undecided
        # itself; decided nodes seeing undecided keep their color.
        assert out[0] == 5

    def test_dead_state_detection(self):
        assert UndecidedDynamics.is_dead(np.full(10, UNDECIDED))
        assert not UndecidedDynamics.is_dead(np.asarray([UNDECIDED, 3]))

    def test_undecided_fraction(self):
        colors = np.asarray([UNDECIDED, 1, UNDECIDED, 2])
        assert UndecidedDynamics.undecided_fraction(colors) == pytest.approx(0.5)

    def test_has_converged_requires_real_color(self):
        proc = UndecidedDynamics()
        assert proc.has_converged(np.full(5, 2))
        assert not proc.has_converged(np.asarray([2, UNDECIDED, 2, 2, 2]))

    def test_configuration_projection_tracks_undecided(self):
        proc = UndecidedDynamics()
        colors = np.asarray([0, UNDECIDED, 1, UNDECIDED])
        config = proc.configuration_of(colors, num_slots=2)
        assert config.num_nodes == 4
        assert config.counts == (1, 1, 2)


class TestRegistry:
    def test_round_trip_names(self):
        for name in ("voter", "2-choices", "3-majority", "2-median", "undecided-dynamics"):
            proc = make_process(name)
            assert proc.name == name

    def test_h_majority_scheme(self):
        proc = make_process("h-majority:5")
        assert isinstance(proc, HMajority)
        assert proc.h == 5

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            make_process("4-choices")

    def test_available_lists_scheme(self):
        names = available_processes()
        assert "voter" in names
        assert "h-majority:<h>" in names

    def test_fresh_instances(self):
        assert make_process("voter") is not make_process("voter")
