"""Unit tests for repro.core.configuration."""

import numpy as np
import pytest

from repro.core import Configuration


class TestConstruction:
    def test_basic_counts(self):
        c = Configuration([3, 1, 0])
        assert c.num_nodes == 4
        assert c.num_colors == 2
        assert c.num_slots == 3

    def test_counts_tuple(self):
        assert Configuration([2, 2]).counts == (2, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Configuration([1, -1])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Configuration([])

    def test_rejects_all_zero(self):
        with pytest.raises(ValueError):
            Configuration([0, 0])

    def test_rejects_non_integer(self):
        with pytest.raises(ValueError):
            Configuration([1.5, 2.5])

    def test_accepts_integral_floats(self):
        assert Configuration([2.0, 3.0]).counts == (2, 3)

    def test_rejects_two_dimensional(self):
        with pytest.raises(ValueError):
            Configuration(np.ones((2, 2)))

    def test_counts_array_read_only(self):
        c = Configuration([1, 2])
        with pytest.raises(ValueError):
            c.counts_array()[0] = 5


class TestConstructors:
    def test_from_assignment(self):
        c = Configuration.from_assignment([0, 1, 1, 3])
        assert c.counts == (1, 2, 0, 1)

    def test_from_assignment_padding(self):
        c = Configuration.from_assignment([0, 0], num_slots=4)
        assert c.counts == (2, 0, 0, 0)

    def test_from_assignment_rejects_small_slots(self):
        with pytest.raises(ValueError):
            Configuration.from_assignment([0, 5], num_slots=3)

    def test_from_assignment_rejects_negative_color(self):
        with pytest.raises(ValueError):
            Configuration.from_assignment([0, -2])

    def test_monochromatic(self):
        c = Configuration.monochromatic(7, color=2)
        assert c.is_consensus
        assert c.support(2) == 7
        assert c.num_nodes == 7

    def test_singletons(self):
        c = Configuration.singletons(5)
        assert c.num_colors == 5
        assert c.max_support == 1

    def test_balanced_divides(self):
        c = Configuration.balanced(12, 4)
        assert c.counts == (3, 3, 3, 3)
        assert c.bias == 0

    def test_balanced_remainder(self):
        c = Configuration.balanced(10, 4)
        assert sorted(c.counts, reverse=True) == [3, 3, 2, 2]
        assert c.bias <= 1

    def test_balanced_bounds(self):
        with pytest.raises(ValueError):
            Configuration.balanced(3, 5)

    def test_biased_has_requested_bias(self):
        c = Configuration.biased(100, 4, bias=10)
        assert c.bias == 10
        assert c.num_nodes == 100
        assert c.num_colors <= 4

    def test_biased_zero_bias_near_balanced(self):
        c = Configuration.biased(100, 4, bias=0)
        assert c.bias == 0

    def test_biased_unachievable(self):
        with pytest.raises(ValueError):
            Configuration.biased(10, 2, bias=100)


class TestDerivedQuantities:
    def test_bias_definition(self):
        # bias = support(top) - support(second)
        assert Configuration([7, 4, 1]).bias == 3

    def test_bias_single_slot(self):
        assert Configuration([5]).bias == 5

    def test_max_support(self):
        assert Configuration([2, 9, 3]).max_support == 9

    def test_support_out_of_range(self):
        assert Configuration([2, 2]).support(10) == 0

    def test_plurality_colors_tie(self):
        assert Configuration([4, 4, 1]).plurality_colors() == (0, 1)

    def test_remaining_colors(self):
        assert Configuration([0, 3, 0, 2]).remaining_colors() == (1, 3)

    def test_fractions_sum_to_one(self):
        x = Configuration([3, 5, 2]).fractions()
        assert x.sum() == pytest.approx(1.0)

    def test_sorted_desc(self):
        assert list(Configuration([1, 5, 3]).sorted_desc()) == [5, 3, 1]

    def test_prefix_sums(self):
        assert list(Configuration([1, 5, 3]).prefix_sums_desc()) == [5, 8, 9]

    def test_squared_two_norm_consensus(self):
        assert Configuration([10]).squared_two_norm_of_fractions() == pytest.approx(1.0)

    def test_squared_two_norm_singletons(self):
        c = Configuration.singletons(10)
        assert c.squared_two_norm_of_fractions() == pytest.approx(0.1)

    def test_entropy_extremes(self):
        assert Configuration([10]).entropy() == pytest.approx(0.0)
        c = Configuration.singletons(8)
        assert c.entropy() == pytest.approx(np.log(8))

    def test_monochromatic_fraction(self):
        assert Configuration([3, 1]).monochromatic_fraction() == pytest.approx(0.75)


class TestMajorizationOrder:
    def test_consensus_majorizes_everything(self):
        top = Configuration([6, 0, 0])
        assert top.majorizes(Configuration([2, 2, 2]))
        assert top.majorizes(Configuration([3, 2, 1]))
        assert top.majorizes(top)

    def test_singletons_minimal(self):
        bottom = Configuration.singletons(4)
        for other in ([2, 1, 1, 0], [2, 2, 0, 0], [4, 0, 0, 0]):
            assert Configuration(other).majorizes(bottom)
            assert not bottom.majorizes(Configuration(other))

    def test_incomparable_pair(self):
        # (3,3,0) vs (4,1,1): prefix1 4>3 but prefix2 6>5 — comparable?
        # top-1: 4 >= 3; top-2: 5 < 6 → incomparable.
        a = Configuration([3, 3, 0])
        b = Configuration([4, 1, 1])
        assert not a.majorizes(b)
        assert not b.majorizes(a)

    def test_order_operators(self):
        assert Configuration([4, 0]) >= Configuration([2, 2])
        assert Configuration([2, 2]) <= Configuration([4, 0])

    def test_majorizes_requires_same_n(self):
        with pytest.raises(ValueError):
            Configuration([3]).majorizes(Configuration([2, 2]))

    def test_padding_invariance(self):
        assert Configuration([3, 1]).majorizes(Configuration([2, 1, 1, 0]))


class TestDunder:
    def test_equality_with_padding(self):
        assert Configuration([2, 1]) == Configuration([2, 1, 0, 0])

    def test_inequality(self):
        assert Configuration([2, 1]) != Configuration([1, 2])

    def test_hash_consistency(self):
        assert hash(Configuration([2, 1])) == hash(Configuration([2, 1]))

    def test_len_and_getitem(self):
        c = Configuration([4, 0, 2])
        assert len(c) == 3
        assert c[2] == 2

    def test_iter(self):
        assert list(Configuration([1, 2])) == [1, 2]

    def test_repr_contains_counts(self):
        assert "n=3" in repr(Configuration([2, 1]))


class TestTransformations:
    def test_canonical_sorts_and_trims(self):
        c = Configuration([0, 1, 5, 0, 3]).canonical()
        assert c.counts == (5, 3, 1)

    def test_with_slots_pads(self):
        assert Configuration([2, 1]).with_slots(4).counts == (2, 1, 0, 0)

    def test_with_slots_rejects_dropping_support(self):
        with pytest.raises(ValueError):
            Configuration([2, 1]).with_slots(1)

    def test_with_slots_can_trim_zeros(self):
        assert Configuration([2, 1, 0]).with_slots(2).counts == (2, 1)

    def test_to_assignment_roundtrip(self):
        c = Configuration([2, 0, 3])
        back = Configuration.from_assignment(c.to_assignment(), num_slots=3)
        assert back == c

    def test_assignment_length(self):
        assert Configuration([2, 3]).to_assignment().shape == (5,)
