"""Tests for coalescing random walks and the Lemma-4 duality."""

import numpy as np
import pytest

from repro.coalescing import (
    CoalescingWalks,
    coalescence_counts_forward,
    coalescence_reduction_time,
    run_duality_coupling,
    voter_opinion_counts_forward,
    voter_opinions_reversed,
    walk_positions_forward,
)
from repro.graphs import CompleteGraph, CycleGraph, random_regular_graph


class TestCoalescingWalks:
    def test_initial_positions(self):
        walks = CoalescingWalks(CompleteGraph(5))
        assert list(walks.initial_positions()) == [0, 1, 2, 3, 4]

    def test_step_never_increases_walks(self, rng):
        walks = CoalescingWalks(CompleteGraph(30))
        state = walks.initial_positions()
        for _ in range(20):
            nxt = walks.step(state, rng)
            assert nxt.size <= state.size
            state = nxt

    def test_run_until_counts_monotone(self, rng):
        walks = CoalescingWalks(CompleteGraph(40))
        run = walks.run_until(1, rng)
        assert run.reached
        assert run.walk_counts[0] == 40
        assert run.final_walks == 1
        assert np.all(np.diff(run.walk_counts) <= 0)

    def test_run_until_intermediate_target(self, rng):
        walks = CoalescingWalks(CompleteGraph(40))
        run = walks.run_until(10, rng)
        assert run.reached
        assert run.final_walks <= 10

    def test_run_until_validates(self, rng):
        with pytest.raises(ValueError):
            CoalescingWalks(CompleteGraph(5)).run_until(0, rng)

    def test_run_respects_custom_positions(self, rng):
        walks = CoalescingWalks(CompleteGraph(20))
        run = walks.run_until(1, rng, positions=np.asarray([3, 3, 7]))
        assert run.walk_counts[0] == 2  # deduplicated start

    def test_meeting_time_zero_for_same_node(self, rng):
        walks = CoalescingWalks(CompleteGraph(10))
        assert walks.meeting_time(4, 4, rng) == 0

    def test_meeting_time_geometric_mean(self, rng):
        # On K_n with self-loops two walks meet w.p. 1/n per step: mean n.
        n = 25
        walks = CoalescingWalks(CompleteGraph(n))
        times = [walks.meeting_time(0, 1, rng) for _ in range(400)]
        mean = np.mean(times)
        sem = np.std(times, ddof=1) / np.sqrt(len(times))
        assert abs(mean - n) < 4 * sem + 1.0

    def test_reduction_time_helper(self, rng):
        t = coalescence_reduction_time(CompleteGraph(30), 5, rng)
        assert t >= 1

    def test_reduction_time_raises_on_limit(self, rng):
        with pytest.raises(RuntimeError):
            coalescence_reduction_time(CompleteGraph(30), 1, rng, max_steps=1)


class TestDualityCoupling:
    """Lemma 4 / Figure 1: the maps coincide exactly, on every graph."""

    @pytest.mark.parametrize("horizon", [0, 1, 5, 40])
    def test_maps_identical_complete(self, rng, horizon):
        witness = run_duality_coupling(CompleteGraph(30), horizon, rng)
        assert witness.maps_identical
        assert witness.counts_equal

    def test_maps_identical_cycle(self, rng):
        for horizon in (1, 10, 100):
            witness = run_duality_coupling(CycleGraph(24), horizon, rng)
            assert witness.maps_identical

    def test_maps_identical_random_regular(self, rng):
        graph = random_regular_graph(24, 3, rng)
        witness = run_duality_coupling(graph, 50, rng)
        assert witness.maps_identical

    def test_many_seeds(self):
        for seed in range(20):
            rng = np.random.default_rng(seed)
            witness = run_duality_coupling(CompleteGraph(16), 12, rng)
            assert witness.maps_identical, seed

    def test_composition_identity_explicit(self, rng):
        # Independent re-derivation: both maps are Y[T-1] ∘ ... ∘ Y[0].
        y = CompleteGraph(12).pull_matrix(7, rng)
        expected = np.arange(12)
        for t in range(7):
            expected = y[t][expected]
        assert np.array_equal(walk_positions_forward(y), expected)
        assert np.array_equal(voter_opinions_reversed(y), expected)

    def test_validates_negative_horizon(self, rng):
        with pytest.raises(ValueError):
            run_duality_coupling(CompleteGraph(5), -1, rng)

    def test_zero_horizon_identity(self, rng):
        witness = run_duality_coupling(CompleteGraph(9), 0, rng)
        assert witness.walks_remaining == 9
        assert witness.opinions_remaining == 9


class TestDistributionalDuality:
    """The forward (unreversed) trajectories agree in distribution."""

    def test_count_trajectories_same_mean(self):
        n, horizon, reps = 24, 30, 200
        graph = CompleteGraph(n)
        voter_counts = np.zeros(horizon + 1)
        walk_counts = np.zeros(horizon + 1)
        for seed in range(reps):
            rng_v = np.random.default_rng(10_000 + seed)
            rng_w = np.random.default_rng(20_000 + seed)
            voter_counts += voter_opinion_counts_forward(graph.pull_matrix(horizon, rng_v))
            walk_counts += coalescence_counts_forward(graph.pull_matrix(horizon, rng_w))
        voter_counts /= reps
        walk_counts /= reps
        # Mean trajectories agree within Monte-Carlo noise at every round.
        assert voter_counts == pytest.approx(walk_counts, abs=1.2)

    def test_trajectories_monotone(self, rng):
        y = CompleteGraph(20).pull_matrix(25, rng)
        for series in (voter_opinion_counts_forward(y), coalescence_counts_forward(y)):
            assert series[0] == 20
            assert np.all(np.diff(series) <= 0)
