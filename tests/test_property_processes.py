"""Property-based tests (hypothesis): invariants of every process.

Each property is quantified over random configurations and seeds:

* population conservation — no process creates or destroys nodes;
* no spontaneous colors — a color with zero support stays at zero (the
  adversary-free processes cannot invent colors);
* consensus absorption — a monochromatic state is a fixed point;
* AC semantics agreement — for AC-processes, the agent-level one-round
  law and the count-level multinomial have the same support behaviour
  and the same expectation ``n·α(c)`` (checked via seeds-average);
* anonymity — relabelling colors commutes with the dynamics for the
  color-symmetric processes.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Configuration
from repro.processes import (
    HMajority,
    ThreeMajority,
    ThreeMajorityResample,
    TwoChoices,
    TwoMedian,
    UNDECIDED,
    UndecidedDynamics,
    Voter,
    counts_from_colors,
)

ALL_PROCESSES = [
    Voter,
    TwoChoices,
    ThreeMajority,
    ThreeMajorityResample,
    lambda: HMajority(4),
    lambda: HMajority(5),
    TwoMedian,
    UndecidedDynamics,
]

COLOR_SYMMETRIC = [
    Voter,
    TwoChoices,
    ThreeMajority,
    ThreeMajorityResample,
    lambda: HMajority(4),
]

configurations = st.lists(
    st.integers(min_value=0, max_value=25), min_size=2, max_size=8
).filter(lambda counts: sum(counts) >= 2)

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@st.composite
def config_and_seed(draw):
    counts = draw(configurations)
    seed = draw(seeds)
    return Configuration(counts), np.random.default_rng(seed)


class TestUniversalInvariants:
    @pytest.mark.parametrize("factory", ALL_PROCESSES)
    @given(data=config_and_seed())
    @settings(max_examples=30, deadline=None)
    def test_population_conserved(self, factory, data):
        config, rng = data
        process = factory()
        colors = process.initial_colors(config)
        out = process.update(colors, rng)
        assert out.shape == colors.shape

    @pytest.mark.parametrize("factory", ALL_PROCESSES)
    @given(data=config_and_seed())
    @settings(max_examples=30, deadline=None)
    def test_no_spontaneous_colors(self, factory, data):
        config, rng = data
        process = factory()
        colors = process.initial_colors(config)
        existing = set(np.unique(colors))
        out = process.update(colors, rng)
        assert set(np.unique(out)).issubset(existing | {UNDECIDED})

    @pytest.mark.parametrize("factory", ALL_PROCESSES)
    @given(seed=seeds, n=st.integers(min_value=2, max_value=40))
    @settings(max_examples=25, deadline=None)
    def test_consensus_absorbing(self, factory, seed, n):
        process = factory()
        rng = np.random.default_rng(seed)
        colors = np.full(n, 3, dtype=np.int64)
        out = process.update(colors, rng)
        assert np.all(out == 3)

    @pytest.mark.parametrize("factory", ALL_PROCESSES)
    @given(data=config_and_seed())
    @settings(max_examples=20, deadline=None)
    def test_input_not_mutated(self, factory, data):
        config, rng = data
        process = factory()
        colors = process.initial_colors(config)
        snapshot = colors.copy()
        process.update(colors, rng)
        assert np.array_equal(colors, snapshot)


class TestColorRelabelling:
    @pytest.mark.parametrize("factory", COLOR_SYMMETRIC)
    @given(data=config_and_seed(), offset=st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_anonymity_under_relabelling(self, factory, data, offset):
        # Shifting all color ids by a constant and running with the same
        # seed must produce the shifted outcome: color ids carry no
        # semantics for the symmetric processes.
        config, _ = data
        seed_rng_a = np.random.default_rng(7)
        seed_rng_b = np.random.default_rng(7)
        process = factory()
        colors = config.to_assignment()
        out_plain = process.update(colors, seed_rng_a)
        out_shifted = process.update(colors + offset, seed_rng_b)
        assert np.array_equal(out_plain + offset, out_shifted)


class TestACSemanticsAgreement:
    @given(data=config_and_seed())
    @settings(max_examples=15, deadline=None)
    def test_agent_mean_tracks_alpha_three_majority(self, data):
        config, rng = data
        process = ThreeMajority()
        alpha = process.adoption_probabilities(config)
        colors = config.to_assignment()
        reps = 400
        acc = np.zeros(config.num_slots)
        for _ in range(reps):
            acc += counts_from_colors(process.update(colors, rng), config.num_slots)
        mean = acc / reps
        n = config.num_nodes
        sigma = np.sqrt(n * alpha * (1 - alpha))
        tolerance = 5 * sigma / np.sqrt(reps) + 0.35
        assert np.all(np.abs(mean - n * alpha) <= tolerance)

    @given(data=config_and_seed())
    @settings(max_examples=15, deadline=None)
    def test_count_step_preserves_population(self, data):
        config, rng = data
        for process in (Voter(), ThreeMajority()):
            out = process.step_counts(config.counts_array(), rng)
            assert out.sum() == config.num_nodes
            assert np.all(out >= 0)

    @given(data=config_and_seed())
    @settings(max_examples=15, deadline=None)
    def test_count_step_no_revival(self, data):
        config, rng = data
        counts = config.counts_array()
        for process in (Voter(), ThreeMajority()):
            out = process.step_counts(counts, rng)
            assert np.all(out[counts == 0] == 0)


class TestTwoMedianOrderProperties:
    @given(data=config_and_seed())
    @settings(max_examples=25, deadline=None)
    def test_values_stay_in_hull(self, data):
        # 2-Median can only produce values between the current min and max.
        config, rng = data
        process = TwoMedian()
        colors = config.to_assignment()
        out = process.update(colors, rng)
        assert out.min() >= colors.min()
        assert out.max() <= colors.max()

    @given(data=config_and_seed(), shift=st.integers(min_value=-30, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_translation_equivariance(self, data, shift):
        # Medians commute with order-preserving shifts.
        config, _ = data
        process = TwoMedian()
        colors = config.to_assignment()
        out_a = process.update(colors, np.random.default_rng(3))
        out_b = process.update(colors + shift, np.random.default_rng(3))
        assert np.array_equal(out_a + shift, out_b)


class TestUndecidedProperties:
    @given(data=config_and_seed())
    @settings(max_examples=25, deadline=None)
    def test_undecided_count_monotone_under_conflict_free(self, data):
        # If all nodes share one color, nobody ever becomes undecided.
        config, rng = data
        n = config.num_nodes
        colors = np.zeros(n, dtype=np.int64)
        process = UndecidedDynamics()
        out = process.update(colors, rng)
        assert not np.any(out == UNDECIDED)

    @given(seed=seeds)
    @settings(max_examples=25, deadline=None)
    def test_all_undecided_absorbing(self, seed):
        rng = np.random.default_rng(seed)
        colors = np.full(20, UNDECIDED, dtype=np.int64)
        out = UndecidedDynamics().update(colors, rng)
        assert UndecidedDynamics.is_dead(out)
