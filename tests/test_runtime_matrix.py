"""Cross-backend equivalence matrix through the unified runtime.

The load-bearing reproducibility contract of the runtime layer: with
``rng_mode="per-replica"`` every execution strategy consumes the same
spawned child stream per replica, so the sequential reference path, the
lock-step ensemble, the sharded pool (at *any* worker count) and the
plan-resolved ``"auto"`` decision produce **bit-for-bit identical**
first-passage samples — on 3-Majority and Voter (count-level chain) and
2-Choices (agent-level matrix) alike.  The asynchronous and adversarial
plan axes are pinned against their sequential reference runners the same
way.

Marked ``bench_smoke`` so ``scripts/check.sh``'s dedicated ``plan-matrix``
step can select exactly this matrix.
"""

import numpy as np
import pytest

from repro.adversary import PlantInvalid, run_with_adversary
from repro.core import Configuration
from repro.engine import (
    Consensus,
    SimulationPlan,
    execute,
    resolve_backend,
    run_asynchronous,
    run_asynchronous_ensemble,
    shared_executor,
    spawn_generators,
)
from repro.engine.kernels import HAVE_NUMBA, force_numpy, kernel_mode
from repro.faults import (
    Byzantine,
    CrashRecovery,
    CrashStop,
    FaultSchedule,
    MessageLoss,
)
from repro.processes import ThreeMajority, TwoChoices, Voter

pytestmark = pytest.mark.bench_smoke

SEED = 20170729

CASES = [
    pytest.param(
        ThreeMajority, Configuration.balanced(240, 3), "counts", id="3-majority"
    ),
    pytest.param(
        TwoChoices, Configuration.biased(120, 4, 24), "agent", id="2-choices"
    ),
    pytest.param(Voter, Configuration.balanced(160, 4), "counts", id="voter"),
]


def _plan(factory, initial, backend, workers=None, **overrides):
    kwargs = dict(
        process=factory,
        initial=initial,
        stop=Consensus(),
        repetitions=5,
        rng=SEED,
        rng_mode="per-replica",
        max_rounds=20_000,
        backend=backend,
        workers=workers,
    )
    kwargs.update(overrides)
    return SimulationPlan(**kwargs)


@pytest.mark.parametrize("factory, initial, representation", CASES)
def test_per_replica_cross_backend_equivalence(factory, initial, representation):
    """sequential == ensemble == sharded(1) == sharded(2) == auto, bitwise."""
    reference = execute(_plan(factory, initial, "sequential-auto"))
    assert reference.backend == representation
    assert reference.unit == "rounds"
    for backend, workers in [
        ("ensemble-auto", None),
        ("sharded-auto", 1),
        ("sharded-auto", 2),
        ("auto", None),
    ]:
        result = execute(_plan(factory, initial, backend, workers=workers))
        label = f"{backend} (workers={workers})"
        assert np.array_equal(result.times, reference.times), label
        assert np.array_equal(result.stopped, reference.stopped), label
        assert np.array_equal(result.final_counts, reference.final_counts), label
        # Every backend agrees with the reference's representation choice.
        assert resolve_backend(
            _plan(factory, initial, backend, workers=workers)
        ).spec.representation == representation, label


def test_auto_resolution_is_cost_model_not_string_parsing():
    """The plan-resolved names behind the matrix, made explicit."""
    initial = Configuration.balanced(240, 3)
    assert resolve_backend(_plan(ThreeMajority, initial, "auto")).spec.name == (
        "ensemble-counts"
    )
    assert resolve_backend(
        _plan(ThreeMajority, initial, "sequential-auto")
    ).spec.name == "counts"
    assert resolve_backend(
        _plan(ThreeMajority, initial, "sharded-auto", workers=2)
    ).spec.name == "sharded-counts"
    wide = Configuration.singletons(8192)  # beyond the count-chain slot limit
    assert resolve_backend(_plan(ThreeMajority, wide, "auto")).spec.name == (
        "ensemble-agent"
    )


def test_async_plan_matches_sequential_runner():
    initial = Configuration.balanced(128, 2)
    budget = 4000
    plan = _plan(
        ThreeMajority,
        initial,
        "async",
        repetitions=4,
        scheduler="asynchronous",
        max_rounds=budget,
        rng_mode="batched",
    )
    result = execute(plan)
    assert result.unit == "ticks"
    reference = [
        run_asynchronous(ThreeMajority(), initial, rng=g, max_ticks=budget)
        for g in spawn_generators(SEED, 4)
    ]
    assert np.array_equal(result.times, [r.ticks for r in reference])
    assert np.array_equal(result.stopped, [r.stopped for r in reference])

    ensemble_plan = _plan(
        ThreeMajority,
        initial,
        "ensemble-async",
        repetitions=4,
        scheduler="asynchronous",
        max_rounds=budget,
        rng_mode="batched",
    )
    ensemble = execute(ensemble_plan)
    direct = run_asynchronous_ensemble(
        ThreeMajority(), initial, 4, rng=SEED, max_ticks=budget
    )
    assert np.array_equal(ensemble.times, direct.ticks)
    # The cost model sends repeated async measurements to the fused
    # wavefront kernel, which is bit-for-bit the ensemble engine for
    # draw-free sample rules — since the fixed-sample tie-break
    # (footnote 1) that now includes 3-Majority itself.
    auto = _plan(
        ThreeMajority, initial, "auto", repetitions=4,
        scheduler="asynchronous", max_rounds=budget, rng_mode="batched",
    )
    assert resolve_backend(auto).spec.name == "kernel-async"
    kernel = execute(auto)
    assert kernel.unit == "ticks"
    assert np.array_equal(kernel.times, direct.ticks)
    assert np.array_equal(kernel.final_counts, direct.final_counts)
    voter_auto = _plan(
        Voter, initial, "auto", repetitions=4,
        scheduler="asynchronous", max_rounds=budget, rng_mode="batched",
    )
    assert resolve_backend(voter_auto).spec.name == "kernel-async"
    voter_kernel = execute(voter_auto)
    voter_engine = run_asynchronous_ensemble(
        Voter(), initial, 4, rng=SEED, max_ticks=budget
    )
    assert np.array_equal(voter_kernel.times, voter_engine.ticks)
    assert np.array_equal(voter_kernel.final_counts, voter_engine.final_counts)


def test_adversary_plan_matches_sequential_runner():
    initial = Configuration.balanced(200, 3)
    adversary = PlantInvalid(2, invalid_color=8)
    base = dict(
        repetitions=5,
        adversary=adversary,
        max_rounds=3000,
        stable_fraction=0.9,
        stop=None,
    )
    reference = [
        run_with_adversary(
            ThreeMajority(), initial, adversary, rng=g,
            max_rounds=3000, stable_fraction=0.9,
        )
        for g in spawn_generators(SEED, 5)
    ]
    rounds = [r.rounds for r in reference]
    sequential = execute(_plan(ThreeMajority, initial, "adversary", **base))
    assert sequential.unit == "rounds"
    assert np.array_equal(sequential.times, rounds)
    assert np.array_equal(
        sequential.raw.winning_color, [r.winning_color for r in reference]
    )
    for backend, workers in [
        ("ensemble-adversary-agent", None),
        ("sharded-adversary-agent", 2),
    ]:
        result = execute(
            _plan(ThreeMajority, initial, backend, workers=workers, **base)
        )
        assert np.array_equal(result.times, rounds), backend
        assert np.array_equal(
            result.raw.winner_is_valid, [r.winner_is_valid for r in reference]
        ), backend
    # Batched auto resolution lands on the §5 count-level fast path.
    auto = _plan(
        ThreeMajority, initial, "auto", rng_mode="batched", **base
    )
    assert resolve_backend(auto).spec.name == "ensemble-adversary-counts"
    assert execute(auto).all_stopped


@pytest.mark.parametrize(
    "faults",
    [
        pytest.param(CrashStop(0.0), id="crash-stop-0"),
        pytest.param(CrashRecovery(0.0, 0.0), id="crash-recovery-0"),
        pytest.param(MessageLoss(0.0), id="loss-0"),
        pytest.param(Byzantine(0.0), id="byzantine-0"),
        pytest.param(Byzantine(0.0, color=1), id="byzantine-0-pinned"),
        pytest.param(FaultSchedule(()), id="empty-schedule"),
        pytest.param(
            FaultSchedule((CrashStop(0.0), MessageLoss(0.0), Byzantine(0.0))),
            id="all-zero-schedule",
        ),
    ],
)
@pytest.mark.parametrize("factory, initial, representation", CASES)
def test_rate_zero_faults_reproduce_baseline(
    factory, initial, representation, faults
):
    """Every fault model at rate 0 is bit-for-bit the fault-free run.

    Trivial schedules collapse to ``None`` at plan-resolution time, so
    the engines take the unmodified path and consume zero extra rng
    draws — on every backend of the matrix.
    """
    for backend, workers in [
        ("sequential-auto", None),
        ("ensemble-auto", None),
        ("sharded-auto", 2),
        ("auto", None),
    ]:
        baseline = execute(_plan(factory, initial, backend, workers=workers))
        faulted = execute(
            _plan(factory, initial, backend, workers=workers, faults=faults)
        )
        label = f"{backend} (workers={workers})"
        assert np.array_equal(faulted.times, baseline.times), label
        assert np.array_equal(faulted.stopped, baseline.stopped), label
        assert np.array_equal(
            faulted.final_counts, baseline.final_counts
        ), label


@pytest.mark.parametrize("factory, initial, representation", CASES)
def test_active_faults_cross_backend_equivalence(
    factory, initial, representation
):
    """Per-replica fault runs are bitwise identical across all backends."""
    faults = FaultSchedule((CrashRecovery(0.02, 0.3), MessageLoss(0.05)))
    reference = execute(
        _plan(factory, initial, "sequential-auto", faults=faults)
    )
    assert reference.backend == representation
    for backend, workers in [
        ("ensemble-auto", None),
        ("sharded-auto", 1),
        ("sharded-auto", 2),
        ("auto", None),
    ]:
        result = execute(
            _plan(factory, initial, backend, workers=workers, faults=faults)
        )
        label = f"{backend} (workers={workers})"
        assert np.array_equal(result.times, reference.times), label
        assert np.array_equal(result.stopped, reference.stopped), label
        assert np.array_equal(
            result.final_counts, reference.final_counts
        ), label


@pytest.mark.parametrize(
    "byzantine",
    [
        pytest.param(Byzantine(0.04), id="uniform"),
        pytest.param(Byzantine(0.04, color=0), id="pinned-color"),
    ],
)
@pytest.mark.parametrize("factory, initial, representation", CASES)
def test_active_byzantine_cross_backend_equivalence(
    factory, initial, representation, byzantine
):
    """Byzantine rewrites are bitwise identical across all backends.

    The replacement draw is the delicate part: agent-level engines narrow
    an int64 draw to the state dtype and count-level engines spend a
    multinomial per round, both *round-deterministically* (whenever the
    model is active, hit or not) — so sequential, ensemble and sharded
    runs stay on the same stream.  Stacking a crash model on top checks
    the claim/rewrite split inside one schedule.

    Hostile rewrites re-seed dead colors forever, so consensus (or any
    fixed plurality) may simply be unreachable — the drift-free Voter
    never shakes 4 % uniform noise.  The runs are therefore compared
    over a *fixed horizon* (``raise_on_limit=False``): every backend
    simulates exactly the same 300 faulted rounds and the final count
    vectors must agree bit for bit, which pins the rng discipline just
    as hard as a first-passage comparison.
    """
    faults = FaultSchedule((CrashRecovery(0.02, 0.3), byzantine))
    horizon = dict(faults=faults, max_rounds=300, raise_on_limit=False)
    reference = execute(
        _plan(factory, initial, "sequential-auto", **horizon)
    )
    assert reference.backend == representation
    for backend, workers in [
        ("ensemble-auto", None),
        ("sharded-auto", 1),
        ("sharded-auto", 2),
        ("auto", None),
    ]:
        result = execute(
            _plan(factory, initial, backend, workers=workers, **horizon)
        )
        label = f"{backend} (workers={workers})"
        assert np.array_equal(result.times, reference.times), label
        assert np.array_equal(result.stopped, reference.stopped), label
        assert np.array_equal(
            result.final_counts, reference.final_counts
        ), label


#: Every kernel implementation mode available in this environment.  The
#: numpy fallback is always exercised (forced even when numba is
#: importable); the numba mode only runs where the dependency exists —
#: both modes consume the generator identically, so their results must
#: agree bit for bit wherever both run.
KERNEL_MODES = [pytest.param("numpy", id="numpy-fallback")] + (
    [pytest.param("numba", id="numba")] if HAVE_NUMBA else []
)


def _kernel_mode_context(mode):
    import contextlib

    return force_numpy() if mode == "numpy" else contextlib.nullcontext()


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_kernel_backends_exercised_in_each_mode(mode):
    """Both kernel backends run under each implementation mode, and the
    numba mode (when present) reproduces the numpy fallback bit for bit."""
    sync_plan = _plan(
        TwoChoices, Configuration.biased(120, 4, 24), "kernel-agent",
        rng_mode="batched",
    )
    async_plan = _plan(
        Voter, Configuration.balanced(128, 2), "kernel-async",
        repetitions=4, scheduler="asynchronous", max_rounds=4000,
        rng_mode="batched",
    )
    with force_numpy():
        sync_reference = execute(sync_plan)
        async_reference = execute(async_plan)
    with _kernel_mode_context(mode):
        assert kernel_mode() == mode
        sync_result = execute(sync_plan)
        async_result = execute(async_plan)
    assert sync_result.backend == "kernel-agent"
    assert async_result.backend == "kernel-async"
    assert np.array_equal(sync_result.times, sync_reference.times)
    assert np.array_equal(sync_result.final_counts, sync_reference.final_counts)
    assert np.array_equal(async_result.times, async_reference.times)
    assert np.array_equal(
        async_result.final_counts, async_reference.final_counts
    )


@pytest.mark.parametrize("mode", KERNEL_MODES)
def test_kernel_agent_statistically_matches_sequential(mode):
    """KS-style cross-validation: the lumped chain's first-passage sample
    is drawn from the same distribution as the per-replica agent runs."""
    from scipy.stats import ks_2samp

    initial = Configuration.biased(120, 4, 24)
    with _kernel_mode_context(mode):
        kernel = execute(_plan(
            TwoChoices, initial, "kernel-agent",
            repetitions=160, rng_mode="batched",
        ))
    sequential = execute(_plan(
        TwoChoices, initial, "agent", repetitions=160,
        rng_mode="per-replica", rng=SEED + 1,
    ))
    assert kernel.all_stopped and sequential.all_stopped
    statistic = ks_2samp(kernel.times, sequential.times)
    assert statistic.pvalue > 1e-3, (
        f"kernel-agent first-passage sample diverges from the sequential "
        f"reference (KS p={statistic.pvalue:.2e}, "
        f"means {kernel.times.mean():.2f} vs {sequential.times.mean():.2f})"
    )


def test_per_replica_plans_never_resolve_to_kernels():
    """The exact-stream contract: kernels are batched-only, so the whole
    per-replica matrix above runs on the established engines."""
    for factory, initial, scheduler in [
        (ThreeMajority, Configuration.balanced(240, 3), "synchronous"),
        (TwoChoices, Configuration.biased(120, 4, 24), "synchronous"),
        (ThreeMajority, Configuration.balanced(128, 2), "asynchronous"),
    ]:
        plan = _plan(
            factory, initial, "auto",
            scheduler=scheduler,
            max_rounds=20_000 if scheduler == "synchronous" else 4000,
        )
        assert plan.rng_mode == "per-replica"
        assert resolve_backend(plan).spec.kind != "kernel", factory
    # Naming a kernel backend outright raises rather than silently
    # changing the stream contract.
    with pytest.raises(ValueError, match="batched-only"):
        resolve_backend(
            _plan(TwoChoices, Configuration.biased(120, 4, 24), "kernel-agent")
        )
    with pytest.raises(ValueError):
        resolve_backend(_plan(
            ThreeMajority, Configuration.balanced(128, 2), "kernel-async",
            scheduler="asynchronous",
        ))


def test_shared_pool_persists_across_plans():
    """The sharded backends reuse one warm pool instead of respawning."""
    initial = Configuration.balanced(240, 3)
    execute(_plan(ThreeMajority, initial, "sharded-counts", workers=2))
    executor = shared_executor(2)
    assert executor.pool_alive
    pool_before = executor._pool
    execute(_plan(Voter, Configuration.balanced(160, 4), "sharded-counts", workers=2))
    assert shared_executor(2)._pool is pool_before
