"""Tests for repro.core.dominance — Definition 2 and the executable Lemma 2."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.core.ac_process import (
    HMajorityFunction,
    PowerDriftFunction,
    ThreeMajorityFunction,
    VoterFunction,
)
from repro.core.dominance import (
    check_dominance_on_pair,
    find_dominance_counterexample,
    iter_comparable_pairs,
    lemma2_margin,
    verify_dominance_exhaustive,
)


class TestComparablePairs:
    def test_includes_diagonal(self):
        pairs = list(iter_comparable_pairs(4))
        assert any(u == l for u, l in pairs)

    def test_all_pairs_actually_comparable(self):
        for upper, lower in iter_comparable_pairs(5):
            assert upper.majorizes(lower)

    def test_consensus_tops_everything(self):
        pairs = list(iter_comparable_pairs(4))
        consensus_uppers = [l for u, l in pairs if u.counts == (4,)]
        # consensus majorizes all 5 partitions of 4.
        assert len(consensus_uppers) == 5

    def test_max_colors_restriction(self):
        for upper, lower in iter_comparable_pairs(5, max_colors=2):
            assert upper.num_colors <= 2
            assert lower.num_colors <= 2


class TestLemma2:
    """3-Majority dominates Voter — the paper's Lemma 2, verified exactly."""

    @pytest.mark.parametrize("n", [2, 3, 4, 5, 6, 7, 8])
    def test_exhaustive_small_n(self, n):
        report = verify_dominance_exhaustive(ThreeMajorityFunction(), VoterFunction(), n)
        assert report.holds, report.summary()
        assert report.pairs_checked > 0

    def test_margin_nonnegative_everywhere(self):
        # The explicit inequality (Eq. 3-5) in the Lemma 2 proof.
        for upper, lower in iter_comparable_pairs(7):
            margin = lemma2_margin(upper, lower)
            assert np.all(margin >= -1e-12), (upper.counts, lower.counts, margin)

    def test_margin_rejects_incomparable(self):
        a = Configuration([3, 3, 0])
        b = Configuration([4, 1, 1])
        with pytest.raises(ValueError):
            lemma2_margin(a, b)

    def test_no_counterexample_in_range(self):
        found = find_dominance_counterexample(
            ThreeMajorityFunction(), VoterFunction(), n_values=range(2, 8)
        )
        assert found is None


class TestSelfDominance:
    """Every AC-process with monotone drift dominates itself and Voter-alikes."""

    @pytest.mark.parametrize("n", [4, 6])
    def test_voter_dominates_itself(self, n):
        report = verify_dominance_exhaustive(VoterFunction(), VoterFunction(), n)
        assert report.holds

    def test_three_majority_does_not_dominate_itself(self):
        # A subtlety the Appendix-B mechanism already implies: Definition 2
        # self-dominance FAILS for 3-Majority.  The symmetric configuration
        # (2,2) is a fixed point of the drift (top-1 mass stays 1/2), while
        # the majorized (2,1,1) pushes 9/16 > 1/2 onto its top color — so
        # α(c) ⪰ α(c̃) fails on the comparable pair ((2,2), (2,1,1)).
        # Lemma 2 works precisely because the *dominated* side is Voter,
        # whose image is the unchanged fraction vector.
        report = verify_dominance_exhaustive(
            ThreeMajorityFunction(), ThreeMajorityFunction(), 4
        )
        assert not report.holds
        violating = {(pair.upper, pair.lower) for pair in report.violations}
        assert ((2, 2), (2, 1, 1)) in violating

    def test_power_drift_dominates_voter(self):
        report = verify_dominance_exhaustive(PowerDriftFunction(2.0), VoterFunction(), 6)
        assert report.holds


class TestAppendixBViaDominance:
    """The hierarchy direction fails: 4-Majority does NOT dominate 3-Majority."""

    def test_counterexample_exists(self):
        found = find_dominance_counterexample(
            HMajorityFunction(4), HMajorityFunction(3), n_values=[12]
        )
        assert found is not None
        assert found.gap > 0

    def test_paper_configuration_is_a_violation(self):
        # n = 12: upper (6,6) vs lower (6,2,2,2) — the Appendix-B vectors.
        upper = Configuration([6, 6])
        lower = Configuration([6, 2, 2, 2])
        pair = check_dominance_on_pair(HMajorityFunction(4), HMajorityFunction(3), upper, lower)
        assert not pair.holds
        # The violation at prefix 1 equals 7/12 - 1/2 = 1/12.
        assert pair.gap == pytest.approx(1.0 / 12.0, abs=1e-9)

    def test_check_requires_comparable_inputs(self):
        with pytest.raises(ValueError):
            check_dominance_on_pair(
                ThreeMajorityFunction(),
                VoterFunction(),
                Configuration([3, 3, 0]),
                Configuration([4, 1, 1]),
            )


class TestReportAPI:
    def test_summary_strings(self):
        good = verify_dominance_exhaustive(ThreeMajorityFunction(), VoterFunction(), 4)
        assert "HOLDS" in good.summary()
        bad = verify_dominance_exhaustive(HMajorityFunction(4), HMajorityFunction(3), 12, max_colors=4)
        assert "FAILS" in bad.summary()
        assert bad.worst_violation() is not None

    def test_clean_report_has_no_worst(self):
        good = verify_dominance_exhaustive(ThreeMajorityFunction(), VoterFunction(), 4)
        assert good.worst_violation() is None
