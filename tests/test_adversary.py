"""Tests for repro.adversary — dynamic adversaries and robust runs (§5)."""

import numpy as np
import pytest

from repro.adversary import (
    AdversarySchedule,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
    run_with_adversary,
)
from repro.core import Configuration
from repro.processes import ThreeMajority, TwoMedian


class TestAdversaries:
    def test_budget_validation(self):
        with pytest.raises(ValueError):
            RandomNoise(-1, 4)

    def test_random_noise_bounded(self, rng):
        colors = np.zeros(100, dtype=np.int64)
        adv = RandomNoise(budget=5, num_colors=3)
        out = adv.corrupt(colors, rng)
        assert np.sum(out != colors) <= 5
        assert out.max() < 3

    def test_zero_budget_noop(self, rng):
        colors = np.arange(10)
        for adv in (RandomNoise(0, 2), BoostRunnerUp(0), PlantInvalid(0, 99)):
            assert np.array_equal(adv.corrupt(colors, rng), colors)

    def test_does_not_mutate(self, rng):
        colors = np.zeros(50, dtype=np.int64)
        snap = colors.copy()
        RandomNoise(10, 4).corrupt(colors, rng)
        assert np.array_equal(colors, snap)

    def test_boost_runner_up_moves_leader_mass(self, rng):
        colors = np.asarray([0] * 80 + [1] * 20)
        out = BoostRunnerUp(budget=10).corrupt(colors, rng)
        assert np.sum(out == 1) == 30
        assert np.sum(out == 0) == 70

    def test_boost_runner_up_at_consensus(self, rng):
        colors = np.zeros(20, dtype=np.int64)
        out = BoostRunnerUp(budget=5).corrupt(colors, rng)
        # Resurrects some other color (or leaves unchanged when impossible).
        assert np.sum(out != 0) <= 5

    def test_plant_invalid(self, rng):
        colors = np.zeros(50, dtype=np.int64)
        out = PlantInvalid(budget=7, invalid_color=9).corrupt(colors, rng)
        assert np.sum(out == 9) == 7

    def test_plant_invalid_validation(self):
        with pytest.raises(ValueError):
            PlantInvalid(3, -1)

    def test_recommended_budget(self):
        assert recommended_corruption_budget(10**6, 2) >= 1
        with pytest.raises(ValueError):
            recommended_corruption_budget(1, 1)


class TestSchedule:
    def test_window(self, rng):
        sched = AdversarySchedule(PlantInvalid(5, 9), start=2, stop=4)
        colors = np.zeros(20, dtype=np.int64)
        assert np.array_equal(sched.corrupt(0, colors, rng), colors)
        assert np.sum(sched.corrupt(2, colors, rng) == 9) == 5
        assert np.array_equal(sched.corrupt(4, colors, rng), colors)

    def test_open_ended(self, rng):
        sched = AdversarySchedule(PlantInvalid(1, 9))
        assert sched.active(10**6)


class TestRobustRunner:
    def test_no_adversary_reaches_valid_consensus(self):
        result = run_with_adversary(
            ThreeMajority(),
            Configuration.balanced(200, 4),
            RandomNoise(0, 4),
            rng=5,
        )
        assert result.stabilized
        assert result.winner_is_valid
        assert result.valid_almost_all_consensus

    def test_three_majority_survives_small_invalid_plant(self):
        # Budget far below the drift scale: the invalid color cannot win.
        result = run_with_adversary(
            ThreeMajority(),
            Configuration.balanced(400, 3),
            PlantInvalid(budget=2, invalid_color=7),
            rng=6,
            stable_fraction=0.9,
        )
        assert result.stabilized
        assert result.winning_color != 7
        assert result.winner_is_valid

    def test_boost_runner_up_slows_consensus(self):
        clean = run_with_adversary(
            ThreeMajority(), Configuration.balanced(300, 2), RandomNoise(0, 2), rng=7
        )
        attacked = run_with_adversary(
            ThreeMajority(),
            Configuration.balanced(300, 2),
            BoostRunnerUp(budget=10),
            rng=7,
            stable_fraction=0.95,
        )
        assert attacked.rounds >= clean.rounds

    def test_two_median_validity_failure(self):
        # The §1.1 remark (footnote 5): 2-Median cannot guarantee validity.
        # Honest values all in {10, 11}; adversary plants extreme 0s, which
        # drags medians below the honest range.
        initial = Configuration(
            np.concatenate([np.zeros(10, dtype=np.int64), [150, 150]])
        )
        result = run_with_adversary(
            TwoMedian(),
            initial,
            AdversarySchedule(PlantInvalid(budget=30, invalid_color=0), stop=40),
            rng=8,
            max_rounds=4000,
            stable_fraction=0.9,
        )
        # The run must finish; validity may or may not be broken for a given
        # seed, but the winning color must be reported consistently.
        assert result.winning_color is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            run_with_adversary(
                ThreeMajority(), Configuration([2, 2]), RandomNoise(0, 2), stable_fraction=0.4
            )
        with pytest.raises(ValueError):
            run_with_adversary(
                ThreeMajority(), Configuration([2, 2]), RandomNoise(0, 2), stable_rounds=0
            )

    def test_unstabilized_reported(self):
        result = run_with_adversary(
            ThreeMajority(),
            Configuration.balanced(100, 2),
            BoostRunnerUp(budget=50),  # overwhelming adversary
            rng=9,
            max_rounds=50,
        )
        assert not result.stabilized
        assert result.rounds == 50
