"""Tests for the study-execution daemon (:mod:`repro.serve`).

The service contract under test, end to end:

* **wire protocol** — version-stamped payloads, rejection of versions
  this endpoint does not speak, light record events;
* **job lifecycle** — content-addressed dedup (resubmitting an active
  or finished spec attaches; broken states re-enqueue), validation at
  the door, cancellation;
* **durability** — a killed manager restarted on the same state dir
  replays its CRC-journaled job table (torn tail truncated), re-enqueues
  in-flight jobs, and finishes them **bit-for-bit** equal to an
  uninterrupted foreground run;
* **streaming** — ``/events`` replays the store journal's valid prefix
  on mid-run attach and never yields a torn or duplicate record (the
  :class:`JournalReader` invariant, also tested directly under a
  concurrent writer);
* the satellite pieces: graceful SIGTERM in ``run_study`` (exit 0,
  checkpoint intact), atomic cache stats counters under concurrent
  writers, and compile-only ``validate``.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro import api
from repro.serve import (
    JOB_STATES,
    PROTOCOL_VERSION,
    JobManager,
    ProtocolError,
    ServeClient,
    ServeError,
    StudyServer,
)
from repro.serve import protocol as proto
from repro.study import (
    JournalReader,
    ResultCache,
    StudySpec,
    journal_path,
    load_study_store,
    run_study,
    save_spec,
    spec_hash,
)
from repro.study.store import RunRecord, StudyStore, _journal_line


def tiny_spec(**overrides):
    defaults = dict(
        name="serve tiny",
        seed=23,
        repetitions=2,
        axes={
            "process": ["3-majority"],
            "n": [24, 32, 48],
            "rng_mode": ["per-replica"],
        },
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


# ---------------------------------------------------------------------------
# The wire protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_envelope_and_check_round_trip(self):
        body = proto.envelope({"x": 1})
        assert body["protocol"] == PROTOCOL_VERSION
        assert proto.check_protocol(json.loads(json.dumps(body)))["x"] == 1

    def test_version_mismatch_rejected(self):
        with pytest.raises(ProtocolError, match="version 99"):
            proto.check_protocol({"protocol": 99})
        with pytest.raises(ProtocolError, match="version None"):
            proto.check_protocol({})
        with pytest.raises(ProtocolError, match="JSON object"):
            proto.check_protocol([1, 2])

    def test_submit_request_round_trip(self):
        spec = tiny_spec()
        payload = proto.submit_request(spec.to_dict())
        parsed = proto.parse_submit_request(json.loads(json.dumps(payload)))
        assert StudySpec.from_dict(parsed).to_dict() == spec.to_dict()
        assert spec_hash(StudySpec.from_dict(parsed)) == spec_hash(spec)

    def test_submit_request_needs_spec_table(self):
        with pytest.raises(ProtocolError, match="'spec'"):
            proto.parse_submit_request({"protocol": PROTOCOL_VERSION})

    def test_record_event_is_light_and_json_safe(self):
        record = RunRecord(
            cell_id="a" * 16, index=3, seed=7, params={},
            resolved_backend="counts", unit="rounds",
            times=np.array([4.0, 6.0]), stopped=np.array([True, True]),
            wall_time_s=0.125, cache_hit=True,
        )
        event = json.loads(json.dumps(proto.record_event(record)))
        assert event == {
            "event": "record", "index": 3, "cell_id": "a" * 16,
            "status": "ok", "backend": "counts", "cache_hit": True,
            "degraded_from": None, "wall_time_s": 0.125,
            "unit": "rounds", "mean": 5.0,
        }

    def test_record_event_failed_cell_has_no_mean(self):
        record = RunRecord(
            cell_id="b" * 16, index=0, seed=1, params={},
            resolved_backend="counts", unit="rounds",
            times=np.array([]), stopped=np.array([]), status="failed",
        )
        assert proto.record_event(record)["mean"] is None

    def test_job_states_vocabulary(self):
        assert set(proto.ACTIVE_STATES) <= set(JOB_STATES)
        assert set(proto.RESUMABLE_STATES) <= set(JOB_STATES)
        assert set(proto.ACTIVE_STATES).isdisjoint(proto.RESUMABLE_STATES)


# ---------------------------------------------------------------------------
# JobManager: queue, dedup, durability
# ---------------------------------------------------------------------------


def finish(manager, job_id, timeout=60.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if manager.state(job_id) in proto.TERMINAL_STATES:
            return manager.view(job_id)
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} still {manager.state(job_id)}")


class TestJobManager:
    def test_submit_run_done_and_counts(self, tmp_path):
        manager = JobManager(str(tmp_path / "state"), cache=False)
        manager.start()
        try:
            view = manager.submit(tiny_spec().to_dict())
            assert view["id"] == spec_hash(tiny_spec())
            assert view["num_cells"] == 3 and not view["attached"]
            final = finish(manager, view["id"])
            assert final["state"] == "done"
            assert final["counts"]["ok"] == 3
        finally:
            manager.close()
        store = manager.load_store(view["id"])
        assert store.results_equal(run_study(tiny_spec()))

    def test_resubmit_attaches_not_recomputes(self, tmp_path):
        manager = JobManager(str(tmp_path / "state"), cache=False)
        manager.start()
        try:
            first = manager.submit(tiny_spec().to_dict())
            finish(manager, first["id"])
            again = manager.submit(tiny_spec().to_dict())
            assert again["attached"] and again["state"] == "done"
        finally:
            manager.close()

    def test_invalid_spec_rejected_before_enqueue(self, tmp_path):
        manager = JobManager(str(tmp_path / "state"), cache=False)
        try:
            bad = tiny_spec().to_dict()
            bad["axes"]["process"] = ["no-such-process"]
            with pytest.raises((KeyError, ValueError), match="no-such-process"):
                manager.submit(bad)
            assert manager.views() == []
        finally:
            manager.close()

    def test_cancel_queued_job(self, tmp_path):
        manager = JobManager(str(tmp_path / "state"), cache=False)
        try:
            view = manager.submit(tiny_spec().to_dict())
            cancelled = manager.cancel(view["id"])
            assert cancelled["state"] == "cancelled"
            manager.start()
            time.sleep(0.3)
            assert manager.state(view["id"]) == "cancelled"
        finally:
            manager.close()

    def test_restart_resumes_bit_for_bit(self, tmp_path):
        """The durability contract: kill between enqueue and completion,
        restart on the same state dir, and the finished store equals an
        uninterrupted foreground run exactly."""
        state = str(tmp_path / "state")
        spec = tiny_spec(name="serve restart")
        reference = run_study(spec)

        # Daemon #1 journals the submission but is never started — the
        # executor equivalent of a SIGKILL right after accept.
        first = JobManager(state, cache=False)
        job_id = first.submit(spec.to_dict())["id"]
        first._handle.close()  # abrupt: no graceful bookkeeping

        # A partial checkpoint, as a killed mid-run daemon leaves one.
        partial = run_study(
            spec, store_path=first.store_path(job_id), resume=True, max_cells=1
        )
        assert len(partial) == 1

        second = JobManager(state, cache=False)
        assert second.view(job_id)["state"] == "queued"
        assert second.view(job_id)["counts"]["ok"] == 1  # recounted from disk
        second.start()
        try:
            final = finish(second, job_id)
        finally:
            second.close()
        assert final["state"] == "done"
        assert second.load_store(job_id).results_equal(reference)

    def test_torn_job_journal_tail_is_truncated(self, tmp_path):
        state = str(tmp_path / "state")
        manager = JobManager(state, cache=False)
        manager.start()
        try:
            job_id = manager.submit(tiny_spec().to_dict())["id"]
            finish(manager, job_id)
        finally:
            manager.close()
        journal = os.path.join(state, "jobs.jsonl")
        intact = os.path.getsize(journal)
        with open(journal, "ab") as handle:
            handle.write(b'{"crc": 1, "data": {"event": "state", "id"')
        survivor = JobManager(state, cache=False)
        try:
            assert survivor.view(job_id)["state"] == "done"
        finally:
            survivor.close()
        assert os.path.getsize(journal) == intact

    def test_graceful_close_interrupts_then_resumes(self, tmp_path):
        state = str(tmp_path / "state")
        spec = tiny_spec(name="serve shutdown")
        manager = JobManager(state, cache=False)
        seen = threading.Event()
        original_tally = manager._tally

        def tally_and_stop(counts, record):
            original_tally(counts, record)
            seen.set()

        manager._tally = tally_and_stop
        manager.start()
        job_id = manager.submit(spec.to_dict())["id"]
        assert seen.wait(30.0)
        manager.close()  # graceful: stop event → checkpoint → interrupted
        state_after = manager.view(job_id)["state"]
        assert state_after in ("interrupted", "done")  # done if it outraced us
        if state_after == "interrupted":
            successor = JobManager(state, cache=False)
            successor.start()
            try:
                assert finish(successor, job_id)["state"] == "done"
            finally:
                successor.close()
            assert successor.load_store(job_id).results_equal(run_study(spec))

    def test_cache_inside_state_dir_gives_full_hits_on_rename(self, tmp_path):
        state = str(tmp_path / "state")
        manager = JobManager(state)  # cache=True → <state>/cache
        manager.start()
        try:
            first = manager.submit(tiny_spec().to_dict())
            finish(manager, first["id"])
            renamed = tiny_spec(name="serve tiny renamed")
            second = manager.submit(renamed.to_dict())
            assert second["id"] != first["id"]
            final = finish(manager, second["id"])
        finally:
            manager.close()
        assert final["counts"]["cached"] == final["num_cells"] == 3
        assert os.path.isdir(os.path.join(state, "cache"))
        assert manager.load_store(second["id"]).results_equal(
            run_study(renamed)
        )


# ---------------------------------------------------------------------------
# The HTTP surface, in-process on an ephemeral port
# ---------------------------------------------------------------------------


@pytest.fixture
def served(tmp_path):
    manager = JobManager(str(tmp_path / "state"), cache=False)
    server = StudyServer(("127.0.0.1", 0), manager)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    manager.start()
    host, port = server.server_address[:2]
    try:
        yield ServeClient(f"http://{host}:{port}"), manager
    finally:
        server.shutdown()
        server.server_close()
        manager.close()
        thread.join(5.0)


class TestHTTP:
    def test_submit_watch_results_round_trip(self, served):
        client, _manager = served
        spec = tiny_spec(name="serve http")
        view = client.submit(spec)
        events = []
        final = client.wait(view["id"], progress=events.append)
        assert final["state"] == "done"
        assert [e["index"] for e in events] == [0, 1, 2]
        assert all(e["event"] == "record" and e["status"] == "ok" for e in events)
        remote = client.results_store(view["id"])
        assert remote.results_equal(run_study(spec))

    def test_event_stream_has_hello_and_done(self, served):
        client, _manager = served
        view = client.submit(tiny_spec(name="serve hello"))
        kinds = [event["event"] for event in client.events(view["id"])]
        assert kinds[0] == "hello" and kinds[-1] == "done"
        assert kinds.count("record") == 3

    def test_mid_run_attach_replays_valid_prefix(self, served):
        client, _manager = served
        view = client.submit(tiny_spec(name="serve attach"))
        client.wait(view["id"])
        # Attaching *after* completion is the extreme mid-run case: the
        # journal is compacted away, so the prefix comes from the store.
        indexes = [
            event["index"]
            for event in client.events(view["id"])
            if event["event"] == "record"
        ]
        assert indexes == [0, 1, 2]

    def test_status_and_listing(self, served):
        client, _manager = served
        view = client.submit(tiny_spec(name="serve status"))
        client.wait(view["id"])
        status = client.status(view["id"])
        assert status["state"] == "done" and status["counts"]["ok"] == 3
        assert [j["id"] for j in client.jobs()] == [view["id"]]

    def test_http_errors_carry_protocol_bodies(self, served):
        client, _manager = served
        bad = tiny_spec().to_dict()
        bad["axes"]["process"] = ["no-such-process"]
        with pytest.raises(ServeError, match="no-such-process") as info:
            client.submit(bad)
        assert info.value.status == 400
        with pytest.raises(ServeError, match="unknown job") as info:
            client.status("0" * 16)
        assert info.value.status == 404
        view = client.submit(tiny_spec(name="serve no results yet"))
        client.wait(view["id"])
        with pytest.raises(ServeError, match="no such endpoint"):
            client._call(f"/jobs/{view['id']}/nope")


# ---------------------------------------------------------------------------
# JournalReader: the consistent-prefix invariant under a live writer
# ---------------------------------------------------------------------------


class TestJournalReader:
    def test_concurrent_reads_see_only_consistent_valid_prefixes(self, tmp_path):
        """Readers polling while run_study appends never see a torn,
        duplicated or reordered record — the /events invariant."""
        spec = tiny_spec(name="reader race", axes={
            "process": ["3-majority", "voter"],
            "n": [24, 32, 48],
            "rng_mode": ["per-replica"],
        })
        store_path = str(tmp_path / "race.json")
        reader = JournalReader(journal_path(store_path))
        seen = []
        errors = []
        done = threading.Event()

        def tail():
            try:
                while not done.is_set():
                    seen.extend(reader.poll())
                seen.extend(reader.poll())  # final drain
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=tail)
        thread.start()
        try:
            store = run_study(spec, store_path=store_path)
        finally:
            # Poll once more *before* compaction is visible? run_study
            # compacts at finish; the reader may or may not have drained
            # first — both must be consistent, never torn.
            done.set()
            thread.join(10.0)
        assert not errors
        ids = [record.cell_id for record in seen]
        assert len(ids) == len(set(ids)), "duplicate records surfaced"
        by_id = {record.cell_id: record for record in store.records()}
        for record in seen:
            assert record.same_results(by_id[record.cell_id])

    def test_partial_line_not_surfaced_until_complete(self, tmp_path):
        path = str(tmp_path / "s.json")
        jpath = journal_path(path)
        store = StudyStore(tiny_spec())
        header = _journal_line(
            {"kind": "repro-study-journal", "spec": tiny_spec().to_dict(),
             "spec_hash": store.spec_hash, "format_version": 4,
             "package_version": store.package_version}
        )
        record = RunRecord(
            cell_id="c" * 16, index=0, seed=5, params={},
            resolved_backend="counts", unit="rounds",
            times=np.array([3.0, 4.0]), stopped=np.array([True, True]),
        )
        from repro.study.store import _encode_record

        line = _journal_line({"record": _encode_record(record)})
        reader = JournalReader(jpath)
        with open(jpath, "wb") as handle:
            handle.write(header)
            handle.flush()
            assert reader.poll() == []  # header only: no records yet
            handle.write(line[: len(line) // 2])
            handle.flush()
            assert reader.poll() == []  # torn mid-record: invisible
            handle.write(line[len(line) // 2 :])
            handle.flush()
            polled = reader.poll()
        assert len(polled) == 1 and polled[0].same_results(record)
        assert reader.poll() == []  # nothing new

    def test_journal_replacement_resets_reader(self, tmp_path):
        """Compaction unlinks the journal; a *fresh* (even longer) file
        must re-replay from its own header, not misalign mid-line."""
        path = str(tmp_path / "s.json")
        jpath = journal_path(path)
        spec = tiny_spec()
        reader = JournalReader(jpath)
        run_study(spec, store_path=path)  # journal compacted away
        assert reader.poll() == []
        os.remove(path)
        store = run_study(spec, store_path=path)  # brand-new journal lived
        # Mid-flight the new journal was a different inode; the reader
        # must have reset rather than resuming at a stale offset.
        assert reader.poll() == []  # compacted again by now
        assert load_study_store(path).results_equal(store)


# ---------------------------------------------------------------------------
# Satellite: graceful SIGTERM in run_study (subprocess)
# ---------------------------------------------------------------------------


class TestGracefulStop:
    def test_stop_event_checkpoints_and_marks_interrupted(self, tmp_path):
        spec = tiny_spec(name="stop event")
        path = str(tmp_path / "s.json")
        stop = threading.Event()
        store = run_study(
            spec, store_path=path,
            progress=lambda cell, record: stop.set(),
            stop_event=stop,
        )
        assert len(store) == 1 and store.interrupted
        assert not os.path.exists(journal_path(path)), "must compact cleanly"
        resumed = run_study(spec, store_path=path, resume=True)
        assert not resumed.interrupted
        assert resumed.results_equal(run_study(spec))

    def test_stop_before_first_cell_runs_nothing(self, tmp_path):
        stop = threading.Event()
        stop.set()
        store = run_study(tiny_spec(), store_path=str(tmp_path / "s.json"),
                          stop_event=stop)
        assert len(store) == 0 and store.interrupted

    def test_sigterm_mid_run_exits_zero_with_checkpoint(self, tmp_path):
        spec = tiny_spec(
            name="sigterm graceful",
            axes={
                "process": ["3-majority"],
                "n": [32, 48, 64, 80, 96, 128],
                "rng_mode": ["per-replica"],
            },
        )
        spec_path = str(tmp_path / "spec.toml")
        save_spec(spec, spec_path)
        store_path = str(tmp_path / "terminated.json")
        jpath = journal_path(store_path)
        child_src = (
            "import sys, time\n"
            "from repro import api\n"
            "store = api.study(sys.argv[1], store_path=sys.argv[2],\n"
            "                  progress=lambda cell, record: time.sleep(0.2))\n"
            "sys.exit(0 if store.interrupted else 3)\n"
        )
        env = {
            **os.environ,
            "PYTHONPATH": os.path.join(os.path.dirname(__file__), "..", "src"),
        }
        for _attempt in range(5):
            child = subprocess.Popen(
                [sys.executable, "-c", child_src, spec_path, store_path], env=env
            )
            try:
                deadline = time.monotonic() + 60.0
                while time.monotonic() < deadline:
                    if child.poll() is not None:
                        break
                    try:
                        with open(jpath, "rb") as handle:
                            if handle.read().count(b"\n") >= 2:
                                break
                    except FileNotFoundError:
                        pass
                    time.sleep(0.01)
                if child.poll() is None:
                    child.send_signal(signal.SIGTERM)
                    if child.wait(timeout=60.0) == 0:
                        break  # graceful: interrupted store, exit 0
            finally:
                if child.poll() is None:
                    child.kill()
                    child.wait()
            for stale in (store_path, jpath):  # lost the race: retry
                if os.path.exists(stale):
                    os.remove(stale)
        else:
            raise AssertionError("could not SIGTERM the study mid-run")

        assert os.path.exists(store_path), "graceful stop must compact"
        assert not os.path.exists(jpath)
        partial = load_study_store(store_path)
        assert 0 < len(partial) < spec.num_cells()
        resumed = run_study(spec, store_path=store_path, resume=True)
        assert resumed.results_equal(run_study(spec))


# ---------------------------------------------------------------------------
# Satellite: atomic cache stats counters
# ---------------------------------------------------------------------------


class TestCacheStatsAtomicity:
    def test_concurrent_flushes_lose_no_counts(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        writers, per_writer = 8, 25

        def bump(seed):
            cache = ResultCache(cache_dir)
            for _ in range(per_writer):
                cache.hits += 1
                cache.misses += 2
                cache.flush()

        threads = [
            threading.Thread(target=bump, args=(i,)) for i in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = ResultCache(cache_dir).stats()
        assert stats["hits"] == writers * per_writer
        assert stats["misses"] == 2 * writers * per_writer

    def test_stats_survive_crc_damage(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cache = ResultCache(cache_dir)
        cache.hits = 5
        cache.flush()
        stats_path = os.path.join(cache_dir, "stats.json")
        with open(stats_path, "wb") as handle:
            handle.write(b'{"crc": 12, "data": {"hits": 999')
        fresh = ResultCache(cache_dir)
        assert fresh.stats()["hits"] == 0  # damage reads as zeros, not 999


# ---------------------------------------------------------------------------
# Satellite: compile-only validate
# ---------------------------------------------------------------------------


class TestValidateVerb:
    def test_validate_summary_matches_compile(self, tmp_path):
        spec = tiny_spec()
        summary = api.validate(spec)
        assert summary["spec_hash"] == spec_hash(spec)
        assert summary["num_cells"] == spec.num_cells() == 3
        assert [c["index"] for c in summary["cells"]] == [0, 1, 2]
        assert all("3-majority" in c["label"] for c in summary["cells"])
        spec_path = str(tmp_path / "spec.toml")
        save_spec(spec, spec_path)
        assert api.validate(spec_path) == summary

    def test_validate_rejects_whole_grid_eagerly(self):
        bad = tiny_spec().to_dict()
        bad["axes"]["n"] = [24, 32, -5]  # the *last* cell is broken
        with pytest.raises((KeyError, TypeError, ValueError)):
            api.validate(bad)
