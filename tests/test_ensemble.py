"""Tests for the vectorized ensemble engine (repro.engine.ensemble).

The load-bearing guarantee: with ``rng_mode="per-replica"`` the ensemble
engine spawns the same child generators as the sequential
``repeat_first_passage`` loop and consumes each stream identically, so
the first-passage samples agree *bit-for-bit* — on the count-level
backend and on the agent-level per-replica loop (which is also the
generic fallback for processes without a vectorized batched rule).
"""

import numpy as np
import pytest

from repro.core import Configuration
from repro.core.ac_process import (
    HMajorityFunction,
    PowerDriftFunction,
    ThreeMajorityFunction,
    VoterFunction,
    multinomial_step_batch,
)
from repro.engine import (
    AllOf,
    AnyOf,
    BiasAtLeast,
    ColorsAtMost,
    Consensus,
    MaxSupportAbove,
    RoundLimitExceeded,
    repeat_first_passage,
    run_agent_ensemble,
    run_counts_ensemble,
    run_ensemble,
)
from repro.engine.stopping import StoppingCondition
from repro.processes import (
    ThreeMajority,
    TwoChoices,
    TwoMedian,
    UndecidedDynamics,
    Voter,
)
from repro.processes.three_majority import ThreeMajorityResample


# ---------------------------------------------------------------------------
# Count-level backend: bit-exact reproduction of the sequential samples.


@pytest.mark.parametrize("process_cls", [ThreeMajority, Voter])
def test_counts_per_replica_matches_sequential(process_cls):
    initial = Configuration.biased(500, 4, 10)
    sequential = repeat_first_passage(
        lambda: process_cls(), initial, Consensus(), 12, rng=42, backend="counts"
    )
    ensemble = run_counts_ensemble(
        process_cls(), initial, 12, rng=42, rng_mode="per-replica"
    )
    assert np.array_equal(ensemble.times, sequential)
    assert ensemble.all_stopped
    assert ensemble.backend == "counts"


def test_repeat_first_passage_ensemble_counts_exact():
    initial = Configuration.balanced(400, 2)
    sequential = repeat_first_passage(
        lambda: ThreeMajority(), initial, Consensus(), 10, rng=5, backend="counts"
    )
    ensemble = repeat_first_passage(
        lambda: ThreeMajority(),
        initial,
        Consensus(),
        10,
        rng=5,
        backend="ensemble-counts",
        rng_mode="per-replica",
    )
    assert np.array_equal(sequential, ensemble)


def test_counts_batched_mode_is_deterministic_and_plausible():
    initial = Configuration.balanced(1000, 2)
    a = run_counts_ensemble(ThreeMajority(), initial, 20, rng=3)
    b = run_counts_ensemble(ThreeMajority(), initial, 20, rng=3)
    assert np.array_equal(a.times, b.times)
    assert a.all_stopped
    assert np.all(a.times > 0)
    # Each final configuration is a consensus on n nodes.
    assert np.all(np.count_nonzero(a.final_counts, axis=1) == 1)
    assert np.all(a.final_counts.sum(axis=1) == 1000)


def test_counts_ensemble_rejects_non_ac_process():
    with pytest.raises(TypeError):
        run_counts_ensemble(TwoChoices(), Configuration.balanced(20, 2), 3, rng=0)


# ---------------------------------------------------------------------------
# Batched process functions.


@pytest.mark.parametrize(
    "function",
    [VoterFunction(), ThreeMajorityFunction(), PowerDriftFunction(2.0), HMajorityFunction(3)],
)
def test_probabilities_batch_matches_rowwise(function):
    rng = np.random.default_rng(9)
    counts = rng.multinomial(200, [0.4, 0.3, 0.2, 0.1], size=6)
    batch = function.probabilities_batch(counts)
    for r in range(counts.shape[0]):
        np.testing.assert_allclose(batch[r], function.probabilities(counts[r]), atol=1e-12)


def test_multinomial_step_batch_preserves_row_sums():
    rng = np.random.default_rng(0)
    alpha = np.asarray([[0.5, 0.5], [0.1, 0.9], [1.0, 0.0]])
    totals = np.asarray([100, 50, 7])
    out = multinomial_step_batch(totals, alpha, rng)
    assert out.shape == alpha.shape
    assert np.array_equal(out.sum(axis=1), totals)
    assert out[2, 1] == 0  # zero-probability slot stays empty


def test_step_counts_ensemble_shapes_and_population():
    process = ThreeMajority()
    counts = np.tile(Configuration.balanced(300, 3).counts_array(), (5, 1))
    out = process.step_counts_ensemble(counts, np.random.default_rng(1))
    assert out.shape == counts.shape
    assert np.all(out.sum(axis=1) == 300)


# ---------------------------------------------------------------------------
# Vectorized stopping-mask semantics.


class _EveryRowEven(StoppingCondition):
    """Custom condition exercising the base-class ensemble fallback."""

    label = "even-total"

    def satisfied(self, counts: np.ndarray) -> bool:
        return int(counts.sum()) % 2 == 0


@pytest.mark.parametrize(
    "condition",
    [
        Consensus(),
        ColorsAtMost(2),
        MaxSupportAbove(7),
        BiasAtLeast(3),
        AnyOf(Consensus(), MaxSupportAbove(7)),
        AllOf(ColorsAtMost(3), MaxSupportAbove(5)),
        _EveryRowEven(),
    ],
)
def test_satisfied_ensemble_agrees_with_rowwise(condition):
    matrix = np.asarray(
        [
            [10, 0, 0, 0],
            [0, 0, 12, 0],
            [5, 5, 5, 5],
            [8, 4, 0, 0],
            [3, 3, 3, 2],
            [0, 9, 2, 1],
        ],
        dtype=np.int64,
    )
    mask = condition.satisfied_ensemble(matrix)
    expected = np.asarray([condition.satisfied(row) for row in matrix])
    assert mask.dtype == bool
    assert np.array_equal(mask, expected)


def test_bias_at_least_single_slot_ensemble():
    condition = BiasAtLeast(4)
    matrix = np.asarray([[3], [4], [9]], dtype=np.int64)
    assert np.array_equal(
        condition.satisfied_ensemble(matrix), np.asarray([False, True, True])
    )


# ---------------------------------------------------------------------------
# Agent-level backend.


@pytest.mark.parametrize(
    "process_cls", [ThreeMajority, ThreeMajorityResample, TwoChoices, Voter]
)
def test_vectorized_update_ensemble_matches_update_at_r1(process_cls):
    """The batched rule consumes the stream exactly like the scalar rule."""
    process = process_cls()
    assert process.has_vectorized_ensemble
    colors = Configuration.biased(257, 5, 13).to_assignment()
    scalar = process.update(colors, np.random.default_rng(11))
    batched = process.update_ensemble(colors[None, :], np.random.default_rng(11))
    assert batched.shape == (1, colors.size)
    assert np.array_equal(scalar, batched[0])


@pytest.mark.parametrize(
    "process_cls,initial",
    [
        (TwoMedian, Configuration.biased(60, 5, 6)),
        (UndecidedDynamics, Configuration.biased(60, 3, 30)),
    ],
)
def test_generic_loop_fallback_matches_sequential(process_cls, initial):
    """Non-batched processes ride the per-replica loop and agree exactly."""
    process = process_cls()
    assert not process.has_vectorized_ensemble
    sequential = repeat_first_passage(
        lambda: process_cls(), initial, Consensus(), 6, rng=2024,
        max_rounds=5000, backend="agent",
    )
    ensemble = run_agent_ensemble(
        process, initial, 6, rng=2024, max_rounds=5000
    )
    assert np.array_equal(ensemble.times, sequential)
    assert ensemble.all_stopped


def test_agent_per_replica_mode_matches_sequential_for_vectorized_process():
    """Forcing per-replica rng reproduces sequential runs even for processes
    that normally take the batched path."""
    initial = Configuration.biased(120, 4, 20)
    sequential = repeat_first_passage(
        lambda: TwoChoices(), initial, Consensus(), 8, rng=77, backend="agent"
    )
    ensemble = run_agent_ensemble(
        TwoChoices(), initial, 8, rng=77, rng_mode="per-replica"
    )
    assert np.array_equal(ensemble.times, sequential)


def test_update_ensemble_generic_fallback_shape():
    process = TwoMedian()
    colors = np.tile(Configuration.biased(40, 3, 4).to_assignment(), (3, 1))
    out = process.update_ensemble(colors, np.random.default_rng(0))
    assert out.shape == colors.shape


def test_undecided_projection_in_ensemble_counts():
    """Undecided's widened counts projection flows through the mask path."""
    process = UndecidedDynamics()
    initial = Configuration.biased(50, 3, 20)
    result = run_agent_ensemble(process, initial, 4, rng=6, max_rounds=5000)
    # One extra slot for the undecided sentinel.
    assert result.final_counts.shape == (4, initial.num_slots + 1)
    assert np.all(result.final_counts.sum(axis=1) == 50)


# ---------------------------------------------------------------------------
# Dispatch, compaction and limit semantics.


def test_run_ensemble_auto_dispatch():
    narrow = Configuration.balanced(200, 2)
    assert run_ensemble(ThreeMajority(), narrow, 4, rng=0).backend == "counts"
    assert run_ensemble(TwoChoices(), Configuration.biased(100, 3, 20), 4, rng=0).backend == "agent"
    assert (
        run_ensemble(ThreeMajority(), narrow, 4, rng=0, backend="agent").backend
        == "agent"
    )
    with pytest.raises(TypeError):
        run_ensemble(TwoChoices(), narrow, 4, rng=0, backend="counts")
    with pytest.raises(ValueError):
        run_ensemble(ThreeMajority(), narrow, 4, rng=0, backend="warp")
    with pytest.raises(ValueError):
        run_ensemble(ThreeMajority(), narrow, 4, rng=0, rng_mode="entangled")
    with pytest.raises(ValueError):
        run_ensemble(ThreeMajority(), narrow, 0, rng=0)


def test_round_limit_semantics():
    initial = Configuration.singletons(64)
    with pytest.raises(RoundLimitExceeded):
        run_ensemble(TwoChoices(), initial, 3, rng=0, max_rounds=1)
    lenient = run_ensemble(
        TwoChoices(), initial, 3, rng=0, max_rounds=1, raise_on_limit=False
    )
    assert not lenient.stopped.any()
    assert np.all(lenient.times == 1)


def test_agent_partial_stop_on_limit_round():
    """Replicas stopping exactly when the limit is hit must retire cleanly
    while the stragglers report the limit round (regression: the agent
    backend crashed on the post-loop write-back when the active set and the
    last counts matrix disagreed in size)."""
    result = run_agent_ensemble(
        TwoChoices(),
        Configuration.singletons(64),
        20,
        rng=0,
        stop=MaxSupportAbove(4),
        max_rounds=6,
        raise_on_limit=False,
    )
    assert result.stopped.any() and not result.all_stopped
    assert np.all(result.times[~result.stopped] == 6)
    assert np.all(result.times[result.stopped] <= 6)
    assert np.all(result.final_counts.sum(axis=1) == 64)
    assert np.all(result.final_counts[result.stopped].max(axis=1) > 4)


def test_counts_partial_stop_on_limit_round():
    result = run_counts_ensemble(
        ThreeMajority(),
        Configuration.balanced(800, 2),
        30,
        rng=1,
        max_rounds=14,
        raise_on_limit=False,
    )
    assert result.stopped.any() and not result.all_stopped
    assert np.all(result.times[~result.stopped] == 14)
    assert np.all(result.final_counts.sum(axis=1) == 800)


def test_already_satisfied_stops_at_round_zero():
    initial = Configuration.monochromatic(30, num_slots=3)
    result = run_ensemble(ThreeMajority(), initial, 5, rng=1)
    assert np.all(result.times == 0)
    assert result.all_stopped
    assert np.array_equal(result.final_counts, np.tile(initial.counts_array(), (5, 1)))


def test_per_replica_stopping_mask_with_max_support():
    """Replicas retire individually; recorded times are their own rounds."""
    initial = Configuration.singletons(128)
    threshold = 6
    ensemble = run_agent_ensemble(
        ThreeMajority(),
        initial,
        10,
        rng=13,
        stop=MaxSupportAbove(threshold),
        max_rounds=2000,
        rng_mode="per-replica",
    )
    sequential = repeat_first_passage(
        lambda: ThreeMajority(),
        initial,
        MaxSupportAbove(threshold),
        10,
        rng=13,
        max_rounds=2000,
        backend="agent",
    )
    assert np.array_equal(ensemble.times, sequential)
    assert np.all(ensemble.final_counts.max(axis=1) > threshold)


def test_agent_ensemble_narrow_dtype_and_overflow_guard():
    """Color/count matrices ride int32 below 2³¹ and int64 above."""
    from repro.engine import narrow_int_dtype

    assert narrow_int_dtype(10**8) == np.int32
    assert narrow_int_dtype(2**31 - 1) == np.int32
    assert narrow_int_dtype(2**31) == np.int64
    result = run_agent_ensemble(
        ThreeMajority(), Configuration.biased(120, 4, 20), 5, rng=1
    )
    assert result.final_counts.dtype == np.int32
    assert np.all(result.final_counts.sum(axis=1) == 120)


def test_ensemble_recorder_designated_replica_matches_sequential():
    """Recording replica 0 on the counts ensemble equals a sequential run
    with the same stream (per-replica mode)."""
    from repro.engine import (
        EnsembleMetricRecorder,
        MetricRecorder,
        run,
        spawn_generators,
    )

    initial = Configuration.biased(300, 3, 10)
    recorder = EnsembleMetricRecorder(names=("num_colors", "max_support"))
    run_counts_ensemble(
        ThreeMajority(), initial, 5, rng=21, rng_mode="per-replica",
        recorder=recorder,
    )
    reference = MetricRecorder(names=("num_colors", "max_support"))
    run(
        ThreeMajority(),
        initial,
        rng=spawn_generators(21, 5)[0],
        backend="counts",
        recorder=reference,
    )
    assert np.array_equal(recorder.series("num_colors"), reference.series("num_colors"))
    assert np.array_equal(recorder.series("max_support"), reference.series("max_support"))
    assert recorder.rounds == reference.rounds


def test_ensemble_recorder_mean_aggregate_and_agent_backend():
    from repro.engine import EnsembleMetricRecorder

    recorder = EnsembleMetricRecorder(
        names=("monochromatic_fraction",), aggregate="mean"
    )
    result = run_agent_ensemble(
        ThreeMajority(), Configuration.balanced(100, 4), 6, rng=2,
        recorder=recorder,
    )
    assert result.all_stopped
    series = recorder.series("monochromatic_fraction")
    assert len(series) >= 2
    assert series[0] == pytest.approx(0.25)
    # Replicas drift toward consensus, so the ensemble mean ends higher.
    assert series[-1] > series[0]


def test_ensemble_recorder_validation_and_plain_recorder_hook():
    from repro.engine import EnsembleMetricRecorder, MetricRecorder

    with pytest.raises(ValueError):
        EnsembleMetricRecorder(aggregate="median")
    with pytest.raises(ValueError):
        EnsembleMetricRecorder(replica=-1)
    with pytest.raises(ValueError):
        EnsembleMetricRecorder(replica=3, aggregate="mean")
    # A plain MetricRecorder rides the ensemble hook tracking replica 0.
    recorder = MetricRecorder(names=("num_colors",))
    run_ensemble(
        ThreeMajority(), Configuration.balanced(200, 2), 4, rng=3,
        recorder=recorder,
    )
    assert len(recorder) >= 1
    assert recorder.series("num_colors")[-1] == 1


def test_repeat_first_passage_ensemble_auto_sane():
    initial = Configuration.balanced(600, 3)
    times = repeat_first_passage(
        lambda: ThreeMajority(), initial, Consensus(), 25, rng=4, backend="ensemble-auto"
    )
    assert times.shape == (25,)
    assert np.all(times > 0)
    # Same seed, sequential path: statistically indistinguishable scale.
    reference = repeat_first_passage(
        lambda: ThreeMajority(), initial, Consensus(), 25, rng=4, backend="auto"
    )
    assert 0.4 < times.mean() / reference.mean() < 2.5
