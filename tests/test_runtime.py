"""Unit tests for the unified runtime (repro.engine.plan / runtime).

Covers plan validation, registry mechanics (registration, lookup,
aliases), the cost model's resolution decisions, rejection errors for
capability mismatches, the recorder threading rules, and the
``rng_mode`` plumbing through :func:`sweep_first_passage`.
"""

import numpy as np
import pytest

from repro.adversary import PlantInvalid
from repro.core import Configuration
from repro.engine import (
    BackendSpec,
    Consensus,
    MetricRecorder,
    SimulationPlan,
    backend_choices,
    backend_names,
    backend_specs,
    execute,
    get_backend,
    register_backend,
    repeat_first_passage,
    resolve_backend,
)
from repro.engine.runtime import _REGISTRY
from repro.experiments import sweep_first_passage
from repro.processes import ThreeMajority, TwoChoices, Voter


def _plan(**overrides):
    kwargs = dict(
        process=ThreeMajority,
        initial=Configuration.balanced(120, 3),
        stop=Consensus(),
        repetitions=4,
        rng=7,
    )
    kwargs.update(overrides)
    return SimulationPlan(**kwargs)


class TestPlanValidation:
    def test_rejects_bad_axes(self):
        with pytest.raises(ValueError):
            _plan(repetitions=0)
        with pytest.raises(ValueError):
            _plan(scheduler="sometimes")
        with pytest.raises(ValueError):
            _plan(rng_mode="psychic")
        with pytest.raises(ValueError):
            _plan(stable_fraction=0.4, adversary=PlantInvalid(1, invalid_color=9))
        with pytest.raises(ValueError):
            _plan(workers=0)
        with pytest.raises(ValueError):
            _plan(max_rounds=0)

    def test_adversary_requires_synchronous_scheduler(self):
        with pytest.raises(ValueError):
            _plan(
                scheduler="asynchronous",
                adversary=PlantInvalid(1, invalid_color=9),
            )

    def test_spawn_process_accepts_instances_and_factories(self):
        process = ThreeMajority()
        assert _plan(process=process).spawn_process() is process
        built = _plan(process=ThreeMajority).spawn_process()
        assert built.name == process.name

    def test_schedule_wraps_bare_adversaries(self):
        plan = _plan(adversary=PlantInvalid(1, invalid_color=9))
        assert plan.schedule().adversary.budget == 1
        with pytest.raises(ValueError):
            _plan().schedule()


class TestRegistry:
    def test_choices_cover_names_and_aliases(self):
        names = backend_names()
        choices = backend_choices()
        assert set(names) <= set(choices)
        for alias in ("auto", "sequential-auto", "ensemble-auto", "sharded-auto"):
            assert alias in choices
        assert len(backend_specs()) == len(names)

    def test_unknown_backend_lists_vocabulary(self):
        with pytest.raises(ValueError, match="ensemble-counts"):
            get_backend("warp-drive")
        with pytest.raises(ValueError):
            execute(_plan(backend="warp-drive"))

    def test_duplicate_and_reserved_registration_rejected(self):
        existing = get_backend("agent")
        with pytest.raises(ValueError):
            register_backend(existing)
        class Fake:
            spec = BackendSpec(
                name="auto", kind="ensemble", scheduler="synchronous",
                adversary=False, representation="agent",
                requires_counts_tractable=False, description="reserved clash",
            )
        with pytest.raises(ValueError):
            register_backend(Fake())

    def test_custom_backend_registers_and_resolves(self):
        inner = get_backend("ensemble-agent")
        class Custom:
            spec = BackendSpec(
                name="custom-test", kind="ensemble", scheduler="synchronous",
                adversary=False, representation="agent",
                requires_counts_tractable=False, description="test double",
            )
            def supports(self, plan):
                return inner.supports(plan)
            def eligible(self, plan, family_forced=False):
                return False  # never auto-picked
            def cost(self, plan):
                return inner.cost(plan)
            def execute(self, plan):
                return inner.execute(plan)
        try:
            register_backend(Custom())
            result = execute(_plan(backend="custom-test"))
            assert result.all_stopped
        finally:
            _REGISTRY.pop("custom-test", None)


class TestResolution:
    def test_auto_prefers_counts_chain_for_repeated_ac_runs(self):
        assert resolve_backend(_plan()).spec.name == "ensemble-counts"

    def test_auto_prefers_sequential_for_single_runs(self):
        assert resolve_backend(_plan(repetitions=1)).spec.kind == "sequential"

    def test_auto_routes_wide_slot_plans_to_the_fused_kernel(self):
        # Beyond the count chain's slot limit the plain counts backends
        # drop out; the fused kernel (whose active-slot compaction makes
        # wide starts cheap) is now the batched winner, while per-replica
        # exact streams still fall back to the agent ensemble.
        plan = _plan(initial=Configuration.singletons(8192))
        assert resolve_backend(plan).spec.name == "kernel-agent"
        per_replica = _plan(
            initial=Configuration.singletons(8192), rng_mode="per-replica"
        )
        assert resolve_backend(per_replica).spec.name == "ensemble-agent"

    def test_auto_ignores_sharding_without_explicit_workers(self):
        assert resolve_backend(_plan(repetitions=64)).spec.kind != "sharded"
        forced = _plan(repetitions=64, backend="sharded-auto")
        assert resolve_backend(forced).spec.kind == "sharded"

    def test_non_ac_process_resolves_to_agent_family(self):
        # 2-Choices is not an AC-process, but its switch-and-redistribute
        # form makes the fused kernel the batched winner; exact-stream
        # plans keep resolving to the agent representation.
        plan = _plan(process=TwoChoices)
        assert resolve_backend(plan).spec.name == "kernel-agent"
        per_replica = _plan(process=TwoChoices, rng_mode="per-replica")
        assert resolve_backend(per_replica).spec.name == "ensemble-agent"

    def test_counts_backend_rejects_non_ac_process(self):
        for name in ("counts", "ensemble-counts"):
            with pytest.raises(TypeError):
                resolve_backend(_plan(process=TwoChoices, backend=name))

    def test_axis_mismatch_rejected_with_guidance(self):
        plan = _plan(
            adversary=PlantInvalid(1, invalid_color=9), backend="ensemble-agent"
        )
        with pytest.raises(ValueError, match="ensemble-adversary"):
            resolve_backend(plan)

    def test_adversary_alias_resolution_adapts_to_the_axis(self):
        plan = _plan(
            adversary=PlantInvalid(1, invalid_color=9), backend="ensemble-auto"
        )
        assert resolve_backend(plan).spec.name == "ensemble-adversary-counts"
        per_replica = _plan(
            adversary=PlantInvalid(1, invalid_color=9),
            backend="ensemble-auto",
            rng_mode="per-replica",
        )
        # The count-level robust chain is batched-only.
        assert resolve_backend(per_replica).spec.name == "ensemble-adversary-agent"


class TestExecutionSurface:
    def test_sequential_recorder_single_run(self):
        recorder = MetricRecorder(names=("num_colors",))
        result = execute(_plan(repetitions=1, backend="counts", recorder=recorder))
        assert result.all_stopped
        assert len(recorder) >= 1

    def test_sequential_recorder_rejected_for_batches(self):
        recorder = MetricRecorder(names=("num_colors",))
        with pytest.raises(ValueError):
            resolve_backend(_plan(recorder=recorder, backend="agent"))

    def test_legacy_auto_is_the_sequential_reference(self):
        initial = Configuration.balanced(120, 3)
        legacy = repeat_first_passage(
            ThreeMajority, initial, Consensus(), 5, rng=13, backend="auto"
        )
        counts = repeat_first_passage(
            ThreeMajority, initial, Consensus(), 5, rng=13, backend="counts"
        )
        assert np.array_equal(legacy, counts)

    def test_execution_result_metadata(self):
        result = execute(_plan(backend="ensemble-counts"))
        assert result.backend == "ensemble-counts"
        assert result.unit == "rounds"
        assert result.repetitions == 4
        assert result.raw.backend == "counts"


class TestSweepThreading:
    def test_rng_mode_threads_through_sweeps(self):
        kwargs = dict(
            name="x",
            process_factory=lambda n: Voter(),
            workload=lambda n: Configuration.balanced(n, 4),
            stop=lambda n: Consensus(),
            n_values=[16, 32],
            repetitions=4,
            seed=7,
            predicted=lambda n: float(n),
        )
        reference = sweep_first_passage(backend="counts", **kwargs)
        per_replica = sweep_first_passage(
            backend="ensemble-counts", rng_mode="per-replica", **kwargs
        )
        for a, b in zip(reference.points, per_replica.points):
            assert np.array_equal(a.samples, b.samples)

    def test_adversary_sweep_accepts_per_n_factories(self):
        result = sweep_first_passage(
            name="robust",
            process_factory=lambda n: ThreeMajority(),
            workload=lambda n: Configuration.balanced(n, 3),
            stop=lambda n: Consensus(),
            n_values=[64, 128],
            repetitions=3,
            seed=3,
            predicted=lambda n: float(n),
            max_rounds=lambda n: 3000,
            adversary=lambda n: PlantInvalid(2, invalid_color=9),
        )
        assert len(result.points) == 2
        assert all(p.summary.count == 3 for p in result.points)

    def test_async_sweep_measures_ticks(self):
        result = sweep_first_passage(
            name="async",
            process_factory=lambda n: ThreeMajority(),
            workload=lambda n: Configuration.balanced(n, 2),
            stop=lambda n: Consensus(),
            n_values=[32, 64],
            repetitions=3,
            seed=5,
            predicted=lambda n: float(n) * n,
            scheduler="asynchronous",
        )
        # Ticks run ~n per synchronous-round equivalent.
        assert result.points[0].summary.mean > 32
