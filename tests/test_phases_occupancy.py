"""Tests for the Theorem-4 phase decomposition and occupancy formulas."""

import numpy as np
import pytest

from repro.analysis import (
    PhaseBreakdown,
    drift_slack_factor,
    estimate_coalescence_drift,
    expected_coalescence_drop,
    expected_occupied_nodes,
    measure_phases,
    paper_drift_lower_bound,
    phase1_target_colors,
)
from repro.graphs import CompleteGraph


class TestOccupancy:
    def test_occupied_single_throw(self):
        assert expected_occupied_nodes(10, 1) == pytest.approx(1.0)

    def test_occupied_zero_throws(self):
        assert expected_occupied_nodes(10, 0) == 0.0

    def test_occupied_monotone_in_x(self):
        values = [expected_occupied_nodes(50, x) for x in (1, 5, 20, 50)]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_occupied_bounded_by_both(self):
        assert expected_occupied_nodes(50, 30) <= 30
        assert expected_occupied_nodes(50, 100) <= 50

    def test_drop_two_walks_exact(self):
        # Two walks collide with probability 1/n.
        assert expected_coalescence_drop(100, 2) == pytest.approx(1 / 100)

    def test_drop_validates(self):
        with pytest.raises(ValueError):
            expected_coalescence_drop(10, 0)
        with pytest.raises(ValueError):
            expected_occupied_nodes(0, 1)

    @pytest.mark.parametrize("n", [16, 100, 1000])
    def test_paper_hypothesis_holds_everywhere(self, n):
        # Equation (7): exact drop >= x^2/(10n) for every 2 <= x <= n.
        for x in range(2, n + 1, max(1, n // 37)):
            assert expected_coalescence_drop(n, x) >= paper_drift_lower_bound(n, x), x

    def test_slack_factor_range(self):
        # ~ x(x-1)/2n vs x^2/10n: factor in (1, 5] for x <= n.
        for x in (2, 10, 50, 100):
            factor = drift_slack_factor(100, x)
            assert 1.0 <= factor <= 5.1, (x, factor)

    def test_slack_validates(self):
        with pytest.raises(ValueError):
            drift_slack_factor(10, 0)

    def test_matches_monte_carlo(self, rng):
        n, x = 64, 12
        drop, sem = estimate_coalescence_drift(CompleteGraph(n), x, 600, rng)
        assert abs(drop - expected_coalescence_drop(n, x)) < 4 * sem + 0.02


class TestPhases:
    def test_breakdown_fields(self):
        breakdown = measure_phases(256, rng=1)
        assert isinstance(breakdown, PhaseBreakdown)
        assert breakdown.boundary_colors == phase1_target_colors(256)
        assert breakdown.total_rounds == breakdown.phase1_rounds + breakdown.phase2_rounds
        assert 0.0 < breakdown.phase1_fraction <= 1.0

    def test_phase1_is_voter_like(self):
        # During phase 1 the collision probability ||x||^2 should be small
        # on average: most nodes act exactly like Voter (footnote 6).
        breakdown = measure_phases(1024, rng=2)
        assert breakdown.phase1_mean_collision_probability < 0.35

    def test_custom_boundary(self):
        breakdown = measure_phases(128, rng=3, boundary=2)
        assert breakdown.boundary_colors == 2

    def test_deterministic_given_seed(self):
        a = measure_phases(128, rng=9)
        b = measure_phases(128, rng=9)
        assert a == b

    def test_round_limit_enforced(self):
        with pytest.raises(RuntimeError):
            measure_phases(128, rng=1, max_rounds=0)

    def test_phase_rounds_scale(self):
        small = measure_phases(128, rng=5)
        large = measure_phases(2048, rng=5)
        assert large.total_rounds > small.total_rounds
