"""Tests for the asynchronous scheduler and ASCII plotting helpers."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import (
    ColorsAtMost,
    run_asynchronous,
    ticks_to_round_equivalents,
)
from repro.experiments import line_chart, log_log_chart, spark_line
from repro.graphs import CycleGraph
from repro.processes import GraphVoter, ThreeMajority, TwoChoices, Voter


class TestAsynchronous:
    def test_reaches_consensus(self):
        result = run_asynchronous(Voter(), Configuration.balanced(24, 3), rng=1)
        assert result.reached_consensus
        assert result.stopped
        assert result.ticks >= 1

    def test_round_equivalents(self):
        assert ticks_to_round_equivalents(100, 25) == 4.0
        with pytest.raises(ValueError):
            ticks_to_round_equivalents(10, 0)

    def test_three_majority_async(self):
        result = run_asynchronous(ThreeMajority(), Configuration.balanced(32, 4), rng=2)
        assert result.reached_consensus

    def test_two_choices_async(self):
        result = run_asynchronous(TwoChoices(), Configuration.balanced(24, 2), rng=3)
        assert result.reached_consensus

    def test_custom_stop(self):
        result = run_asynchronous(
            Voter(), Configuration.singletons(24), rng=4, stop=ColorsAtMost(6)
        )
        assert result.final.num_colors <= 6

    def test_tick_limit(self):
        result = run_asynchronous(
            Voter(), Configuration.balanced(24, 3), rng=5, max_ticks=3
        )
        assert result.ticks == 3 or result.stopped

    def test_check_every_validation(self):
        with pytest.raises(ValueError):
            run_asynchronous(Voter(), Configuration([2, 2]), check_every=0)

    def test_async_voter_comparable_to_sync_rounds(self):
        # n async ticks perform n adoption draws: round-equivalents should
        # be on the same scale as the synchronous consensus time.
        from repro.engine import repeat_first_passage, Consensus

        config = Configuration.balanced(32, 4)
        sync_mean = repeat_first_passage(
            Voter, config, Consensus(), 30, rng=7, backend="counts"
        ).mean()
        async_equivalents = [
            run_asynchronous(Voter(), config, rng=100 + s).round_equivalents()
            for s in range(15)
        ]
        ratio = np.mean(async_equivalents) / sync_mean
        assert 0.3 < ratio < 3.0

    def test_no_parity_trap_on_even_cycle(self):
        # The synchronous even-cycle oscillation disappears under the
        # asynchronous scheduler (sequential updates break the symmetry).
        n = 8
        process = GraphVoter(CycleGraph(n))
        initial = Configuration.from_assignment([i % 2 for i in range(n)])
        result = run_asynchronous(process, initial, rng=6, max_ticks=10**6)
        assert result.reached_consensus


class TestSparkLine:
    def test_monotone_series(self):
        line = spark_line([1, 2, 3, 4, 5], width=5)
        assert line[0] == " " and line[-1] == "█"

    def test_constant_series(self):
        assert spark_line([3, 3, 3], width=3) == "   "

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            spark_line([1, 0, 2], log_scale=True)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spark_line([])

    def test_resampling_width(self):
        assert len(spark_line(range(1000), width=32)) == 32


class TestLineChart:
    def test_contains_title_and_legend(self):
        chart = line_chart({"a": [1, 2, 3], "b": [3, 2, 1]}, title="demo")
        assert "demo" in chart
        assert "* a" in chart and "+ b" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})
        with pytest.raises(ValueError):
            line_chart({"a": [1]}, height=1)

    def test_log_log_chart(self):
        chart = log_log_chart([10, 100, 1000], {"t": [1, 10, 100]}, title="scaling")
        assert "scaling" in chart
        assert "log10" in chart

    def test_log_log_validation(self):
        with pytest.raises(ValueError):
            log_log_chart([0, 1], {"t": [1, 2]})
        with pytest.raises(ValueError):
            log_log_chart([1, 2], {"t": [1, -2]})
        with pytest.raises(ValueError):
            log_log_chart([1, 2], {"t": [1, 2, 3]})
