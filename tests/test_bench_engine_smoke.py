"""Tier-1 smoke wrapper for the engine-throughput benchmark.

Runs :mod:`benchmarks.bench_engine_throughput` in its ≤30 s smoke mode so
every tier-1 run notices an ensemble-engine performance or correctness
regression.  Deselect with ``-m "not bench_smoke"`` when only the
functional suite is wanted.
"""

import pathlib
import sys

import pytest

_BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS_DIR))

from bench_engine_throughput import run_benchmark  # noqa: E402

pytestmark = pytest.mark.bench_smoke


def test_engine_throughput_smoke(tmp_path):
    # Timing in tier-1 only guards against the ensemble path regressing to
    # *slower than sequential*; the real ≥10× target is enforced by the
    # committed BENCH_engine.json and `benchmarks/bench_engine_throughput.py`
    # (which scripts/check.sh runs with a 2× smoke floor).  The measurement
    # window at smoke scale is milliseconds, so a scheduler preemption can
    # distort one attempt — retry before declaring a regression.
    for attempt in range(3):
        report = run_benchmark(smoke=True, output=tmp_path / "BENCH_engine.json")
        assert report["mode"] == "smoke"
        headline = report["scenarios"][0]
        # Correctness gate (deterministic): per-replica rng must reproduce
        # the sequential samples exactly.
        assert headline["per_replica_rng_exact_match"] is True
        if headline["speedup"] > 1.0:
            break
    assert headline["speedup"] > 1.0, headline
    assert (tmp_path / "BENCH_engine.json").exists()
