"""Tier-1 smoke wrapper for the engine-throughput benchmark.

Runs :mod:`benchmarks.bench_engine_throughput` in its ≤30 s smoke mode so
every tier-1 run notices an ensemble-engine performance or correctness
regression.  Deselect with ``-m "not bench_smoke"`` when only the
functional suite is wanted.
"""

import pathlib
import sys

import pytest

_BENCHMARKS_DIR = pathlib.Path(__file__).resolve().parent.parent / "benchmarks"
if str(_BENCHMARKS_DIR) not in sys.path:
    sys.path.insert(0, str(_BENCHMARKS_DIR))

from bench_engine_throughput import run_benchmark  # noqa: E402

pytestmark = pytest.mark.bench_smoke


def test_engine_throughput_smoke(tmp_path):
    # Timing in tier-1 only guards against the ensemble paths regressing to
    # *slower than sequential*; the real ≥10×/≥5× targets are enforced by
    # the committed BENCH_engine.json and
    # `benchmarks/bench_engine_throughput.py` (which scripts/check.sh runs
    # with smoke floors).  The measurement window at smoke scale is
    # milliseconds, so a scheduler preemption can distort one attempt —
    # retry before declaring a regression.
    for attempt in range(3):
        report = run_benchmark(smoke=True, output=tmp_path / "BENCH_engine.json")
        assert report["mode"] == "smoke"
        headline = report["scenarios"][0]
        # Correctness gates (deterministic): per-replica rng must reproduce
        # the sequential samples exactly, and the sharded smoke (R=4 over
        # workers=2) must merge bit-for-bit the same results as workers=1 —
        # this exercises pool plumbing and seed derivation on every run.
        assert headline["per_replica_rng_exact_match"] is True
        assert all(
            w["times_match_workers1"] for w in report["sharded"]["workers"]
        ), report["sharded"]
        assert {w["workers"] for w in report["sharded"]["workers"]} == {1, 2}
        if (
            headline["speedup"] > 1.0
            and report["async"]["speedup"] > 1.0
            and report["adversary"]["speedup"] > 1.0
        ):
            break
    assert headline["speedup"] > 1.0, headline
    assert report["async"]["speedup"] > 1.0, report["async"]
    assert report["adversary"]["speedup"] > 1.0, report["adversary"]
    assert report["adversary"]["counts_all_valid"] is True
    # Study-layer correctness gates (deterministic): workers=2 must be
    # bit-for-bit the sequential run, and the second pass over the warm
    # result cache must replay every cell.
    study = report["study-parallel"]
    assert study["parallel_results_equal"] is True, study
    assert study["cache_hit_rate"] == 1.0, study
    # Every section records the runtime cost model's backend decision.
    assert headline["resolved_backend"] == "ensemble-counts"
    assert report["sharded"]["resolved_backend"].startswith(("ensemble-", "sharded-"))
    assert report["async"]["resolved_backend"] == "kernel-async"
    assert report["adversary"]["resolved_backend"] == "ensemble-adversary-counts"
    assert (tmp_path / "BENCH_engine.json").exists()
