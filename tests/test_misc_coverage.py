"""Cross-cutting coverage: auto-backend dispatch, bound shapes, edge cases."""

import math

import numpy as np
import pytest

from repro.analysis import (
    bcn16_consensus_upper,
    bcn14_three_majority_biased_upper,
    efk16_two_choices_biased_upper,
    three_majority_consensus_upper,
)
from repro.core import Configuration
from repro.engine import (
    Consensus,
    consensus_time,
    repeat_first_passage,
    run,
)
from repro.processes import HMajority, ThreeMajority, TwoChoices, Voter


class TestAutoBackendDispatch:
    def test_h_majority_wide_falls_back_to_agent(self):
        # 5-majority from 64 singletons: exact alpha not enumerable, auto
        # must pick the agent backend rather than crash.
        result = run(HMajority(5), Configuration.singletons(64), rng=3, backend="auto")
        assert result.backend == "agent"
        assert result.reached_consensus

    def test_h_majority_narrow_uses_counts(self):
        result = run(HMajority(5), Configuration.balanced(64, 4), rng=3, backend="auto")
        assert result.backend == "counts"
        assert result.reached_consensus

    def test_h_majority_backends_agree(self):
        config = Configuration.balanced(60, 5)
        counts_times = repeat_first_passage(
            lambda: HMajority(4), config, Consensus(), 40, rng=1, backend="counts"
        )
        agent_times = repeat_first_passage(
            lambda: HMajority(4), config, Consensus(), 40, rng=2, backend="agent"
        )
        pooled_sem = math.sqrt(
            counts_times.var(ddof=1) / 40 + agent_times.var(ddof=1) / 40
        )
        assert abs(counts_times.mean() - agent_times.mean()) < 4 * pooled_sem + 1.0

    def test_non_ac_always_agent_under_auto(self):
        result = run(TwoChoices(), Configuration.balanced(32, 2), rng=0, backend="auto")
        assert result.backend == "agent"


class TestBoundShapes:
    def test_bcn16_tracks_measured_small_k(self):
        # [BCN+16] Thm 3.1 (used for Theorem 4's phase 2): consensus from
        # k = o(n^{1/3}) colors must sit below the bound's scale with a
        # modest constant.
        n = 1000
        for k in (2, 4, 8):
            measured = repeat_first_passage(
                ThreeMajority,
                Configuration.balanced(n, k),
                Consensus(),
                10,
                rng=k,
                backend="counts",
            ).mean()
            assert measured < bcn16_consensus_upper(n, k)

    def test_biased_bounds_sublinear(self):
        n = 10**5
        assert efk16_two_choices_biased_upper(n, 8) < n
        assert bcn14_three_majority_biased_upper(n, 8) < n

    def test_theorem4_bound_beats_bcn16_for_large_k(self):
        # The point of Theorem 4: for k near n^{1/3} the old bound blows
        # past the new unconditional one.
        n = 10**6
        k = int(n ** (1 / 3) / 2)
        assert three_majority_consensus_upper(n) < bcn16_consensus_upper(n, k)


class TestEngineEdgeCases:
    def test_single_node_system(self):
        assert consensus_time(Voter(), Configuration([1]), rng=0) == 0

    def test_two_node_race(self):
        t = consensus_time(Voter(), Configuration([1, 1]), rng=5)
        assert t >= 1

    def test_consensus_time_with_zero_slots_padding(self):
        config = Configuration([5, 0, 5, 0])
        t = consensus_time(ThreeMajority(), config, rng=1)
        assert t >= 1

    def test_run_counts_keeps_slot_width(self):
        config = Configuration([3, 0, 3])
        result = run(Voter(), config, rng=2, backend="counts")
        assert result.final.num_slots == 3

    def test_repeat_first_passage_independent_of_factory_state(self):
        # Factories returning the same instance should still be safe for
        # stateless processes.
        shared = Voter()
        times = repeat_first_passage(
            lambda: shared, Configuration.balanced(20, 2), Consensus(), 5, rng=0
        )
        assert times.shape == (5,)


class TestConfigurationEdges:
    def test_biased_parity_message(self):
        with pytest.raises(ValueError, match="parity"):
            Configuration.biased(10, 2, bias=1)

    def test_biased_full_bias(self):
        c = Configuration.biased(10, 2, bias=10)
        assert c.counts_array().max() == 10
        assert c.bias == 10

    def test_balanced_k_equals_n(self):
        c = Configuration.balanced(7, 7)
        assert c.max_support == 1

    def test_monochromatic_with_padding(self):
        c = Configuration.monochromatic(5, color=2, num_slots=6)
        assert c.num_slots == 6
        assert c.support(2) == 5

    def test_canonical_idempotent(self):
        c = Configuration([0, 3, 1, 0, 3])
        assert c.canonical().canonical() == c.canonical()

    def test_singletons_canonical_is_self(self):
        c = Configuration.singletons(5)
        assert c.canonical() == c
