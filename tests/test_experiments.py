"""Tests for repro.experiments: workloads, harness, reporting."""

import numpy as np
import pytest

from repro.analysis import voter_reduction_upper
from repro.core import Configuration
from repro.engine import ColorsAtMost, Consensus
from repro.experiments import (
    Table,
    WORKLOADS,
    balanced,
    biased,
    bounded_support,
    format_table,
    power_law,
    random_composition,
    singletons,
    sweep_first_passage,
)
from repro.processes import Voter


class TestWorkloads:
    def test_singletons(self):
        c = singletons(10)
        assert c.num_colors == 10 and c.max_support == 1

    def test_balanced(self):
        c = balanced(100, 7)
        assert c.num_nodes == 100 and c.num_colors == 7 and c.bias <= 1

    def test_biased(self):
        c = biased(100, 5, bias=20)
        assert c.bias == 20

    def test_bounded_support_respects_cap(self, rng):
        c = bounded_support(200, max_support=8, rng=rng)
        assert c.num_nodes == 200
        assert c.max_support <= 8

    def test_bounded_support_validates(self):
        with pytest.raises(ValueError):
            bounded_support(10, 0)

    def test_power_law_shape(self, rng):
        c = power_law(1000, 10, exponent=2.0, rng=rng)
        assert c.num_nodes == 1000
        counts = sorted(c.counts, reverse=True)
        assert counts[0] > counts[-1]

    def test_power_law_validates(self):
        with pytest.raises(ValueError):
            power_law(10, 0)
        with pytest.raises(ValueError):
            power_law(10, 3, exponent=0.0)

    def test_random_composition_total(self, rng):
        c = random_composition(50, 7, rng=rng)
        assert c.num_nodes == 50 and c.num_colors == 7

    def test_random_composition_k_one(self, rng):
        assert random_composition(50, 1, rng=rng).is_consensus

    def test_random_composition_validates(self):
        with pytest.raises(ValueError):
            random_composition(3, 5)

    def test_registry(self):
        assert set(WORKLOADS) == {
            "singletons",
            "balanced",
            "biased",
            "bounded_support",
            "power_law",
            "random_composition",
        }


class TestSweep:
    def test_voter_reduction_sweep(self):
        result = sweep_first_passage(
            name="voter reduction to k=4",
            process_factory=lambda n: Voter(),
            workload=lambda n: Configuration.singletons(n),
            stop=lambda n: ColorsAtMost(4),
            n_values=[32, 64, 128],
            repetitions=10,
            seed=42,
            predicted=lambda n: voter_reduction_upper(n, 4),
        )
        assert len(result.points) == 3
        assert np.all(np.diff(result.means()) > 0)  # grows with n
        fit = result.fit()
        assert 0.3 < fit.exponent < 1.6

    def test_sweep_deterministic(self):
        def run_once():
            return sweep_first_passage(
                name="x",
                process_factory=lambda n: Voter(),
                workload=lambda n: Configuration.balanced(n, 4),
                stop=lambda n: Consensus(),
                n_values=[16, 32, 64],
                repetitions=5,
                seed=7,
                predicted=lambda n: float(n),
            )

        a, b = run_once(), run_once()
        for pa, pb in zip(a.points, b.points):
            assert np.array_equal(pa.samples, pb.samples)

    def test_table_rendering(self):
        result = sweep_first_passage(
            name="demo",
            process_factory=lambda n: Voter(),
            workload=lambda n: Configuration.balanced(n, 2),
            stop=lambda n: Consensus(),
            n_values=[16, 32, 64],
            repetitions=5,
            seed=1,
            predicted=lambda n: float(n),
        )
        text = result.to_table().render()
        assert "demo" in text
        assert "fit:" in text
        assert result.prediction_ratio_drift() >= 1.0


class TestReporting:
    def test_table_basics(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, 2.5)
        t.add_row("x", True)
        t.add_footnote("note")
        out = t.render()
        assert "T" in out and "note" in out and "yes" in out

    def test_row_width_validation(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ValueError):
            t.add_row(1)

    def test_format_table_alignment(self):
        out = format_table("t", ["col"], [("123456",)])
        lines = out.splitlines()
        assert any("123456" in line for line in lines)

    def test_float_formatting(self):
        t = Table(title="T", columns=["v"])
        t.add_row(123456.0)
        t.add_row(0.00001)
        t.add_row(0.0)
        text = t.render()
        assert "1.23e+05" in text or "123456" in text
        assert "1e-05" in text
        assert str(t) == text
