"""Tests for the lock-step adversarial ensemble (repro.adversary.robust_runner).

The load-bearing guarantee mirrors the synchronous ensemble's: with
``rng_mode="per-replica"`` the ensemble spawns one child generator per
replica and consumes it exactly as the sequential
:func:`run_with_adversary` would, so per-replica outcomes (rounds,
stabilisation, winner, fraction, validity) agree **bit-for-bit**.  The
batched agent and count-level backends are checked for distributional
agreement and invariants, and the vectorized / count-level corruption
laws against their sequential counterparts.
"""

import numpy as np
import pytest

from repro.adversary import (
    AdversarySchedule,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    run_with_adversary,
    run_with_adversary_ensemble,
)
from repro.core import Configuration
from repro.engine import spawn_generators
from repro.processes import ThreeMajority, TwoChoices, Voter


# ---------------------------------------------------------------------------
# Corruption laws: ensemble masks and count-level images.


class TestCorruptEnsemble:
    def test_random_noise_budget_and_colors(self, rng):
        colors = np.zeros((6, 100), dtype=np.int64)
        out = RandomNoise(budget=5, num_colors=3).corrupt_ensemble(colors, rng)
        assert out.shape == colors.shape
        changed = (out != colors).sum(axis=1)
        assert np.all(changed <= 5)
        assert out.max() < 3
        # Input untouched.
        assert colors.sum() == 0

    def test_plant_invalid_exact_budget_per_replica(self, rng):
        colors = np.zeros((4, 50), dtype=np.int64)
        out = PlantInvalid(budget=7, invalid_color=9).corrupt_ensemble(colors, rng)
        assert np.all((out == 9).sum(axis=1) == 7)

    def test_boost_runner_up_row_loop_fallback(self, rng):
        colors = np.tile(np.asarray([0] * 80 + [1] * 20), (3, 1))
        out = BoostRunnerUp(budget=10).corrupt_ensemble(colors, rng)
        assert np.all((out == 1).sum(axis=1) == 30)
        assert np.all((out == 0).sum(axis=1) == 70)

    def test_zero_budget_noop(self, rng):
        colors = np.arange(40).reshape(4, 10)
        for adversary in (RandomNoise(0, 2), PlantInvalid(0, 99)):
            assert np.array_equal(adversary.corrupt_ensemble(colors, rng), colors)

    def test_budget_larger_than_population(self, rng):
        colors = np.zeros((2, 5), dtype=np.int64)
        out = PlantInvalid(budget=50, invalid_color=3).corrupt_ensemble(colors, rng)
        assert np.all(out == 3)


class TestCorruptCounts:
    def test_population_preserved(self, rng):
        counts = np.tile(np.asarray([40, 30, 30, 0, 0]), (5, 1))
        for adversary in (
            RandomNoise(6, 3),
            PlantInvalid(6, invalid_color=4),
            BoostRunnerUp(6),
        ):
            assert adversary.supports_counts
            out = adversary.corrupt_counts(counts, rng)
            assert np.all(out.sum(axis=1) == 100)
            assert np.all(out >= 0)

    def test_plant_invalid_moves_exact_budget(self, rng):
        counts = np.tile(np.asarray([50, 50, 0]), (4, 1))
        out = PlantInvalid(5, invalid_color=2).corrupt_counts(counts, rng)
        assert np.all(out[:, 2] == 5)
        assert np.all(out.sum(axis=1) == 100)

    def test_boost_runner_up_deterministic_move(self, rng):
        counts = np.asarray([[70, 20, 10], [100, 0, 0]])
        out = BoostRunnerUp(8).corrupt_counts(counts, rng)
        # Row 0: leader 0 loses 8 to challenger 1.
        assert list(out[0]) == [62, 28, 10]
        # Row 1 (consensus): resurrect color 1.
        assert list(out[1]) == [92, 8, 0]

    def test_boost_runner_up_consensus_on_last_slot_is_noop(self, rng):
        counts = np.asarray([[0, 0, 100]])
        out = BoostRunnerUp(8).corrupt_counts(counts, rng)
        assert list(out[0]) == [0, 0, 100]

    def test_base_adversary_has_no_counts_law(self, rng):
        class Custom(RandomNoise):
            supports_counts = False

            def corrupt_counts(self, counts, rng):
                return super(RandomNoise, self).corrupt_counts(counts, rng)

        with pytest.raises(NotImplementedError):
            Custom(1, 2).corrupt_counts(np.asarray([[5, 5]]), rng)

    def test_color_ceilings(self):
        assert RandomNoise(1, 7).color_ceiling(3) == 7
        assert PlantInvalid(1, 9).color_ceiling(3) == 10
        assert BoostRunnerUp(1).color_ceiling(3) == 4

    def test_schedule_gates_ensemble_and_counts(self, rng):
        schedule = AdversarySchedule(PlantInvalid(5, 9), start=2, stop=4)
        colors = np.zeros((3, 20), dtype=np.int64)
        counts = np.tile(np.asarray([20, 0, 0, 0, 0, 0, 0, 0, 0, 0]), (3, 1))
        assert schedule.corrupt_ensemble(0, colors, rng) is colors
        assert np.all((schedule.corrupt_ensemble(2, colors, rng) == 9).sum(axis=1) == 5)
        assert schedule.corrupt_counts(4, counts, rng) is counts
        assert np.all(schedule.corrupt_counts(3, counts, rng)[:, 9] == 5)


# ---------------------------------------------------------------------------
# Per-replica mode: bit-for-bit agreement with the sequential runner.


@pytest.mark.parametrize(
    "make_adversary",
    [
        lambda: PlantInvalid(2, invalid_color=7),
        lambda: BoostRunnerUp(3),
        lambda: RandomNoise(2, 3),
    ],
)
def test_per_replica_matches_sequential(make_adversary):
    initial = Configuration.balanced(300, 3)
    repetitions = 6
    generators = spawn_generators(11, repetitions)
    sequential = [
        run_with_adversary(
            ThreeMajority(), initial, make_adversary(), rng=generator,
            max_rounds=3000, stable_fraction=0.9,
        )
        for generator in generators
    ]
    ensemble = run_with_adversary_ensemble(
        ThreeMajority(), initial, make_adversary(), repetitions, rng=11,
        max_rounds=3000, stable_fraction=0.9, rng_mode="per-replica",
    )
    assert ensemble.backend == "agent"
    assert ensemble.rng_mode == "per-replica"
    assert np.array_equal(ensemble.rounds, [s.rounds for s in sequential])
    assert np.array_equal(ensemble.stabilized, [s.stabilized for s in sequential])
    assert np.array_equal(
        ensemble.winning_color, [s.winning_color for s in sequential]
    )
    assert np.allclose(
        ensemble.winning_fraction, [s.winning_fraction for s in sequential]
    )
    assert np.array_equal(
        ensemble.winner_is_valid, [s.winner_is_valid for s in sequential]
    )
    assert ensemble.valid_colors == sequential[0].valid_colors
    # The round-trip view agrees field by field.
    as_results = ensemble.results()
    assert as_results[0].rounds == sequential[0].rounds
    assert as_results[0].valid_almost_all_consensus == (
        sequential[0].valid_almost_all_consensus
    )


def test_per_replica_with_schedule_window_matches_sequential():
    initial = Configuration.balanced(200, 2)
    repetitions = 5
    make_schedule = lambda: AdversarySchedule(BoostRunnerUp(10), start=3, stop=20)
    generators = spawn_generators(23, repetitions)
    sequential = [
        run_with_adversary(
            ThreeMajority(), initial, make_schedule(), rng=generator,
            max_rounds=2000,
        )
        for generator in generators
    ]
    ensemble = run_with_adversary_ensemble(
        ThreeMajority(), initial, make_schedule(), repetitions, rng=23,
        max_rounds=2000, rng_mode="per-replica",
    )
    assert np.array_equal(ensemble.rounds, [s.rounds for s in sequential])
    assert np.array_equal(
        ensemble.winning_color, [s.winning_color for s in sequential]
    )


# ---------------------------------------------------------------------------
# Batched agent and counts backends.


def test_auto_dispatch():
    initial = Configuration.balanced(200, 3)
    counts_run = run_with_adversary_ensemble(
        ThreeMajority(), initial, PlantInvalid(2, 7), 4, rng=1, max_rounds=2000,
        stable_fraction=0.9,
    )
    assert counts_run.backend == "counts"
    agent_run = run_with_adversary_ensemble(
        TwoChoices(), Configuration.biased(200, 3, 40), RandomNoise(2, 3), 4,
        rng=1, max_rounds=5000, stable_fraction=0.9,
    )
    assert agent_run.backend == "agent"
    with pytest.raises(TypeError):
        run_with_adversary_ensemble(
            TwoChoices(), initial, RandomNoise(2, 3), 4, rng=1, backend="counts"
        )
    with pytest.raises(ValueError):
        run_with_adversary_ensemble(
            ThreeMajority(), initial, RandomNoise(2, 3), 4, rng=1,
            backend="counts", rng_mode="per-replica",
        )
    with pytest.raises(ValueError):
        run_with_adversary_ensemble(
            ThreeMajority(), initial, RandomNoise(2, 3), 4, rng=1, backend="warp"
        )
    with pytest.raises(ValueError):
        run_with_adversary_ensemble(
            ThreeMajority(), initial, RandomNoise(2, 3), 0, rng=1
        )
    with pytest.raises(ValueError):
        run_with_adversary_ensemble(
            ThreeMajority(), initial, RandomNoise(2, 3), 4, rng=1,
            stable_fraction=0.3,
        )


def test_auto_dispatch_respects_count_backend_tractability():
    """auto must not pick the counts chain where the exact α is
    intractable (HMajority wide configs) or the slot space is huge —
    mirroring the shared engine dispatch rule."""
    from repro.processes import HMajority

    wide = Configuration.balanced(512, 64)
    process = HMajority(5)
    assert not process.supports_count_backend(wide)
    result = run_with_adversary_ensemble(
        process, wide, RandomNoise(1, 64), 2, rng=1, max_rounds=5,
    )
    assert result.backend == "agent"
    # Explicitly forcing counts on an intractable config is a TypeError.
    with pytest.raises(TypeError):
        run_with_adversary_ensemble(
            process, wide, RandomNoise(1, 64), 2, rng=1, backend="counts"
        )
    # A huge planted color id pushes the slot ceiling past the dense
    # count-matrix limit; auto falls back to agent.
    result = run_with_adversary_ensemble(
        ThreeMajority(), Configuration.balanced(100, 2),
        PlantInvalid(1, invalid_color=100_000), 2, rng=1, max_rounds=5,
    )
    assert result.backend == "agent"


def test_batched_agent_backend_valid_stabilization():
    result = run_with_adversary_ensemble(
        ThreeMajority(), Configuration.balanced(400, 3), PlantInvalid(2, 7),
        10, rng=3, max_rounds=3000, stable_fraction=0.9, backend="agent",
    )
    assert result.backend == "agent" and result.rng_mode == "batched"
    assert result.all_stabilized
    assert np.all(result.winner_is_valid)
    assert np.all(result.winning_fraction >= 0.9)
    assert np.all(result.rounds > 0)
    assert np.all(result.valid_almost_all_consensus)


def test_counts_backend_matches_sequential_distribution():
    initial = Configuration.balanced(400, 3)
    adversary = lambda: PlantInvalid(2, invalid_color=7)
    ensemble = run_with_adversary_ensemble(
        ThreeMajority(), initial, adversary(), 40, rng=3, max_rounds=3000,
        stable_fraction=0.9, backend="counts",
    )
    assert ensemble.backend == "counts"
    assert ensemble.all_stabilized
    assert np.all(ensemble.winner_is_valid)
    sequential_rounds = [
        run_with_adversary(
            ThreeMajority(), initial, adversary(), rng=100 + s,
            max_rounds=3000, stable_fraction=0.9,
        ).rounds
        for s in range(40)
    ]
    ratio = ensemble.rounds.mean() / np.mean(sequential_rounds)
    assert 0.5 < ratio < 2.0, (ensemble.rounds.mean(), np.mean(sequential_rounds))


def test_counts_backend_boost_runner_up_stalls_but_stabilizes():
    clean = run_with_adversary_ensemble(
        ThreeMajority(), Configuration.balanced(300, 2), RandomNoise(0, 2),
        8, rng=7, max_rounds=4000,
    )
    attacked = run_with_adversary_ensemble(
        ThreeMajority(), Configuration.balanced(300, 2), BoostRunnerUp(10),
        8, rng=7, max_rounds=4000,
    )
    assert attacked.rounds.mean() >= clean.rounds.mean()


def test_unstabilized_replicas_report_horizon():
    # Per-replica agent mode is bit-for-bit the sequential runner, whose
    # overwhelming-adversary behaviour test_adversary.py pins down.
    result = run_with_adversary_ensemble(
        ThreeMajority(), Configuration.balanced(100, 2), BoostRunnerUp(50),
        5, rng=9, max_rounds=50, rng_mode="per-replica",
    )
    assert not result.stabilized.any()
    assert np.all(result.rounds == 50)
    assert result.repetitions == 5


def test_boost_runner_up_counts_tie_break_matches_sequential(rng):
    """At an exact support tie the boost must tip the same way on both
    backends (the sequential argsort order: highest color id leads)."""
    counts = np.asarray([[0, 50, 50]])
    out = BoostRunnerUp(50).corrupt_counts(counts, rng)
    colors = np.asarray([1] * 50 + [2] * 50)
    seq = BoostRunnerUp(50).corrupt(colors, rng)
    assert list(out[0]) == [0, 100, 0]
    assert np.bincount(seq, minlength=3)[1] == 100


def test_voter_counts_backend_runs():
    """A second AC-process exercises the counts dispatch."""
    result = run_with_adversary_ensemble(
        Voter(), Configuration.balanced(200, 2), RandomNoise(1, 2), 6,
        rng=2, max_rounds=20_000, stable_fraction=0.9,
    )
    assert result.backend == "counts"
    assert result.stabilized.sum() >= 5
