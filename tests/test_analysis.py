"""Tests for repro.analysis: bounds, drift, expectation, concentration, stats."""

import math

import numpy as np
import pytest

from repro.analysis import (
    bcn16_consensus_upper,
    binomial_tail_exact,
    chernoff_upper_above_2mu,
    chernoff_upper_multiplicative,
    coalescence_drift_function,
    coalescence_expected_upper,
    coalescence_time_bound,
    empirical_mean_next_counts,
    estimate_coalescence_drift,
    exact_expected_counts_ac,
    exact_expected_counts_two_choices,
    fit_power_law,
    fit_power_law_with_log_correction,
    footnote2_identity_gap,
    mann_whitney_less,
    mean_confidence_interval,
    min_bias_three_majority,
    min_bias_two_choices,
    pairwise_meeting_probability,
    phase1_target_colors,
    phase_amplification_failure,
    theorem5_tail_bound,
    three_majority_consensus_upper,
    two_choices_symmetry_breaking_lower,
    two_choices_threshold,
    variable_drift_bound,
    voter_reduction_upper,
)
from repro.core import Configuration
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.graphs import CompleteGraph
from repro.processes import ThreeMajority, TwoChoices, Voter


class TestBounds:
    def test_three_majority_upper_sublinear(self):
        for n in (10**3, 10**4, 10**5):
            assert three_majority_consensus_upper(n) < n

    def test_three_majority_upper_monotone(self):
        values = [three_majority_consensus_upper(n) for n in (100, 1000, 10000)]
        assert values[0] < values[1] < values[2]

    def test_two_choices_threshold(self):
        assert two_choices_threshold(1, 1000, gamma=18.0) == math.ceil(18 * math.log(1000))
        assert two_choices_threshold(500, 1000, gamma=18.0) == 1000

    def test_two_choices_lower_grows_almost_linearly(self):
        lower_small = two_choices_symmetry_breaking_lower(10**3, 1)
        lower_big = two_choices_symmetry_breaking_lower(10**5, 1)
        # Growth ratio close to 100 / (log ratio).
        assert lower_big / lower_small > 40

    def test_voter_reduction_validates(self):
        with pytest.raises(ValueError):
            voter_reduction_upper(10, 0)

    def test_coalescence_constant(self):
        assert coalescence_expected_upper(100, 5) == pytest.approx(400.0)

    def test_bcn16_polynomial_in_k(self):
        assert bcn16_consensus_upper(10**6, 10) < bcn16_consensus_upper(10**6, 50)

    def test_phase1_target(self):
        n = 10**4
        target = phase1_target_colors(n)
        assert 1 <= target <= n
        assert target == pytest.approx(n**0.25 * math.log(n) ** 0.125, rel=0.1)

    def test_bias_scales_ordered(self):
        n = 10**4
        assert min_bias_two_choices(n) <= min_bias_three_majority(n, 4)


class TestDriftTheorem:
    def test_constant_drift_linear_time(self):
        # h(x) = c constant: E[T] <= x_min/c + (x0 - x_min)/c = x0/c.
        bound = variable_drift_bound(100.0, 1.0, lambda x: 0.5)
        assert bound == pytest.approx(200.0)

    def test_quadratic_drift_closed_form(self):
        # h(x) = x^2/(10n): bound = 10n/k + 10n(1/k - 1/n) <= 20n/k.
        n, k = 1000, 10
        bound = coalescence_time_bound(n, k)
        closed = 10 * n / k + 10 * n * (1 / k - 1 / n)
        assert bound == pytest.approx(closed, rel=1e-6)
        assert bound <= 20 * n / k

    def test_bound_zero_when_start_below_min(self):
        assert variable_drift_bound(1.0, 5.0, lambda x: 1.0) == 0.0

    def test_validates_x_min(self):
        with pytest.raises(ValueError):
            variable_drift_bound(10.0, 0.0, lambda x: 1.0)

    def test_drift_function_values(self):
        h = coalescence_drift_function(100)
        assert h(10) == pytest.approx(0.1)

    def test_meeting_probability(self):
        assert pairwise_meeting_probability(50) == pytest.approx(0.02)

    def test_empirical_drift_satisfies_paper_hypothesis(self, rng):
        # E[X_t - X_{t+1} | X_t = x] >= x^2/(10 n) on the complete graph.
        n, x = 100, 20
        drop, sem = estimate_coalescence_drift(CompleteGraph(n), x, 400, rng)
        paper = x * x / (10 * n)
        assert drop + 4 * sem > paper
        # And close to the exact birthday-ish value: E[drop] = x - E[#occupied].
        exact = x - n * (1 - (1 - 1 / n) ** x)
        assert abs(drop - exact) < 5 * sem + 0.05

    def test_empirical_drift_validates(self, rng):
        with pytest.raises(ValueError):
            estimate_coalescence_drift(CompleteGraph(10), 1, 10, rng)


class TestExpectation:
    def test_footnote2_zero_for_many_configs(self):
        for counts in ([5, 5], [9, 1], [4, 3, 2, 1], [1] * 10, [97, 2, 1]):
            assert footnote2_identity_gap(Configuration(counts)) < 1e-10

    def test_exact_ac_expectation(self):
        config = Configuration([6, 2])
        expected = exact_expected_counts_ac(VoterFunction(), config)
        assert expected == pytest.approx([6.0, 2.0])

    def test_two_choices_closed_form(self):
        config = Configuration([5, 5])
        expected = exact_expected_counts_two_choices(config)
        assert expected == pytest.approx([5.0, 5.0])

    def test_empirical_matches_exact_two_choices(self, rng):
        config = Configuration([12, 4])
        exact = exact_expected_counts_two_choices(config)
        empirical = empirical_mean_next_counts(TwoChoices(), config, 4000, rng)
        assert empirical == pytest.approx(exact, abs=0.25)

    def test_empirical_matches_exact_three_majority(self, rng):
        config = Configuration([12, 4])
        exact = exact_expected_counts_ac(ThreeMajorityFunction(), config)
        empirical = empirical_mean_next_counts(ThreeMajority(), config, 4000, rng)
        assert empirical == pytest.approx(exact, abs=0.25)

    def test_empirical_matches_exact_voter(self, rng):
        config = Configuration([10, 6])
        empirical = empirical_mean_next_counts(Voter(), config, 4000, rng)
        assert empirical == pytest.approx([10.0, 6.0], abs=0.25)

    def test_empirical_validates(self, rng):
        with pytest.raises(ValueError):
            empirical_mean_next_counts(Voter(), Configuration([2, 2]), 0, rng)


class TestConcentration:
    def test_chernoff_dominates_exact_binomial(self):
        n, p = 1000, 0.01
        mu = n * p
        for delta in (0.5, 1.0, 2.0):
            bound = chernoff_upper_multiplicative(mu, delta)
            exact = binomial_tail_exact(n, p, int(math.ceil((1 + delta) * mu)))
            assert bound >= exact - 1e-12

    def test_chernoff_validates(self):
        with pytest.raises(ValueError):
            chernoff_upper_multiplicative(-1.0, 1.0)
        with pytest.raises(ValueError):
            chernoff_upper_multiplicative(1.0, 0.0)

    def test_above_2mu_bound_dominates_exact(self):
        n, p = 2000, 0.002
        mu = n * p
        threshold = 30.0
        bound = chernoff_upper_above_2mu(mu, threshold)
        exact = binomial_tail_exact(n, p, int(max(threshold, 2 * mu)))
        assert bound >= exact - 1e-12

    def test_binomial_tail_edges(self):
        assert binomial_tail_exact(10, 0.5, 0) == 1.0
        assert binomial_tail_exact(10, 0.0, 1) == 0.0

    def test_phase_amplification(self):
        assert phase_amplification_failure(0.5, 10) == pytest.approx(2**-10)
        with pytest.raises(ValueError):
            phase_amplification_failure(0.0, 3)

    def test_theorem5_bound_is_whp(self):
        # The paper claims n^{-3} via a slightly loose Chernoff chain; our
        # rigorous variant (exponent (s - mu)/3 instead of s/3) still gives
        # the w.h.p. statement the theorem needs: o(n^{-2}) per color.
        for n in (10**3, 10**4, 10**5):
            assert theorem5_tail_bound(n, ell=1, gamma=18.0) <= n**-2.0

    def test_theorem5_bound_monotone_in_gamma(self):
        weak = theorem5_tail_bound(10**4, 1, gamma=18.0)
        strong = theorem5_tail_bound(10**4, 1, gamma=36.0)
        assert strong <= weak


class TestStatistics:
    def test_fit_recovers_exponent(self):
        x = np.asarray([100, 200, 400, 800, 1600], dtype=float)
        y = 3.0 * x**0.75
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(0.75, abs=1e-9)
        assert fit.prefactor == pytest.approx(3.0, rel=1e-6)
        assert fit.r_squared == pytest.approx(1.0)

    def test_fit_with_noise(self, rng):
        x = np.geomspace(64, 4096, 7)
        y = 2.0 * x**0.5 * np.exp(rng.normal(0, 0.05, size=7))
        fit = fit_power_law(x, y)
        lo, hi = fit.exponent_ci95()
        assert lo < 0.5 < hi or abs(fit.exponent - 0.5) < 0.1

    def test_fit_validates(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2, -3], [1, 2, 3])

    def test_log_correction(self):
        x = np.asarray([100, 400, 1600, 6400], dtype=float)
        y = x**0.75 * np.log(x) ** 0.875
        fit = fit_power_law_with_log_correction(x, y, 0.875)
        assert fit.exponent == pytest.approx(0.75, abs=1e-9)

    def test_predict(self):
        x = np.asarray([10, 100, 1000], dtype=float)
        fit = fit_power_law(x, 5 * x)
        assert fit.predict(50.0) == pytest.approx(250.0, rel=1e-6)

    def test_summary_string(self):
        x = np.asarray([10.0, 100.0, 1000.0])
        assert "R²" in fit_power_law(x, x).summary()

    def test_confidence_interval(self):
        mean, lo, hi = mean_confidence_interval(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert lo < mean < hi
        with pytest.raises(ValueError):
            mean_confidence_interval(np.asarray([1.0]))

    def test_mann_whitney_direction(self, rng):
        fast = rng.normal(10, 1, size=200)
        slow = rng.normal(20, 1, size=200)
        assert mann_whitney_less(fast, slow) < 1e-6
        assert mann_whitney_less(slow, fast) > 0.5
