"""Tests for the sharded multicore ensemble executor (repro.engine.sharded).

The load-bearing guarantees:

* ``workers=1`` runs in-process and is bit-for-bit identical to the
  plain ensemble engine (``backend="ensemble-*"``);
* with ``rng_mode="per-replica"`` the per-replica seed sequences are
  derived once, up front, so merged results are bit-for-bit invariant to
  the worker count (and therefore also to the sequential backend, through
  the existing ensemble guarantee);
* the ``sharded-*`` backends thread through ``repeat_first_passage`` and
  ``sweep_first_passage``.

Pool runs use tiny shapes (R≤8, workers=2) — the point is to exercise the
spawn/pickle/merge plumbing, not throughput.
"""

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import (
    Consensus,
    MaxSupportAbove,
    MetricRecorder,
    RoundLimitExceeded,
    ShardedEnsembleExecutor,
    repeat_first_passage,
    resolve_workers,
    run_ensemble,
    shard_bounds,
)
from repro.processes import ThreeMajority, TwoChoices


class TestShardBounds:
    def test_balanced_split(self):
        assert shard_bounds(10, 3) == [(0, 4), (4, 7), (7, 10)]
        assert shard_bounds(8, 2) == [(0, 4), (4, 8)]
        assert shard_bounds(5, 1) == [(0, 5)]

    def test_more_shards_than_replicas(self):
        assert shard_bounds(2, 8) == [(0, 1), (1, 2)]

    def test_covers_every_replica_exactly_once(self):
        for repetitions in (1, 7, 16, 33):
            for shards in (1, 2, 3, 5, 40):
                bounds = shard_bounds(repetitions, shards)
                covered = [i for lo, hi in bounds for i in range(lo, hi)]
                assert covered == list(range(repetitions))

    def test_validation(self):
        with pytest.raises(ValueError):
            shard_bounds(0, 2)
        with pytest.raises(ValueError):
            shard_bounds(4, 0)
        with pytest.raises(ValueError):
            resolve_workers(0)

    def test_resolve_workers_default_is_cpu_count(self):
        assert resolve_workers(None) >= 1
        assert resolve_workers(3) == 3


class TestInProcessFallback:
    def test_workers1_matches_ensemble_bit_for_bit(self):
        initial = Configuration.balanced(400, 3)
        executor = ShardedEnsembleExecutor(workers=1)
        for rng_mode in ("batched", "per-replica"):
            sharded = executor.run(
                ThreeMajority(), initial, 10, rng=42, rng_mode=rng_mode
            )
            plain = run_ensemble(
                ThreeMajority(), initial, 10, rng=42, rng_mode=rng_mode
            )
            assert np.array_equal(sharded.times, plain.times)
            assert np.array_equal(sharded.final_counts, plain.final_counts)
            assert sharded.backend == plain.backend

    def test_workers1_supports_recorder(self):
        recorder = MetricRecorder(names=("num_colors",))
        result = ShardedEnsembleExecutor(workers=1).run(
            ThreeMajority(),
            Configuration.balanced(200, 2),
            4,
            rng=1,
            recorder=recorder,
        )
        assert result.all_stopped
        assert len(recorder) >= 1

    def test_recorder_rejected_with_pool(self):
        with pytest.raises(ValueError):
            ShardedEnsembleExecutor(workers=2).run(
                ThreeMajority(),
                Configuration.balanced(200, 2),
                4,
                rng=1,
                recorder=MetricRecorder(),
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardedEnsembleExecutor(workers=1).run(
                ThreeMajority(), Configuration.balanced(20, 2), 0, rng=0
            )


@pytest.mark.bench_smoke
class TestPoolExecution:
    """Real multiprocessing runs — grouped so one pool spawn per guarantee."""

    def test_worker_count_invariance_per_replica(self):
        initial = Configuration.balanced(400, 3)
        reference = run_ensemble(
            ThreeMajority(), initial, 7, rng=42, rng_mode="per-replica"
        )
        sharded = ShardedEnsembleExecutor(workers=2).run(
            ThreeMajority(), initial, 7, rng=42, rng_mode="per-replica"
        )
        # Bit-for-bit: same replica streams regardless of sharding.
        assert np.array_equal(sharded.times, reference.times)
        assert np.array_equal(sharded.stopped, reference.stopped)
        assert np.array_equal(sharded.final_counts, reference.final_counts)

    def test_merged_summary_worker_invariance_and_agent_backend(self):
        """Agent backend through repeat_first_passage, workers=2 == workers=1."""
        initial = Configuration.biased(120, 4, 20)
        kwargs = dict(
            initial=initial,
            stop=Consensus(),
            repetitions=6,
            rng=7,
            max_rounds=5000,
            rng_mode="per-replica",
        )
        pooled = repeat_first_passage(
            lambda: TwoChoices(), backend="sharded-agent", workers=2, **kwargs
        )
        inproc = repeat_first_passage(
            lambda: TwoChoices(), backend="ensemble-agent", **kwargs
        )
        assert np.array_equal(pooled, inproc)
        assert pooled.mean() == inproc.mean()

    def test_batched_mode_deterministic_and_plausible(self):
        initial = Configuration.balanced(600, 2)
        executor = ShardedEnsembleExecutor(workers=2)
        a = executor.run(ThreeMajority(), initial, 8, rng=9)
        b = executor.run(ThreeMajority(), initial, 8, rng=9)
        assert np.array_equal(a.times, b.times)
        assert a.all_stopped
        assert np.all(a.times > 0)
        assert np.all(a.final_counts.sum(axis=1) == 600)

    def test_round_limit_raises_after_merge(self):
        with pytest.raises(RoundLimitExceeded):
            ShardedEnsembleExecutor(workers=2).run(
                TwoChoices(),
                Configuration.singletons(64),
                4,
                rng=0,
                max_rounds=1,
            )
        lenient = ShardedEnsembleExecutor(workers=2).run(
            TwoChoices(),
            Configuration.singletons(64),
            4,
            rng=0,
            stop=MaxSupportAbove(2),
            max_rounds=1,
            raise_on_limit=False,
        )
        assert lenient.repetitions == 4


def _sleep_then_echo(payload):
    import time as _time

    _time.sleep(3.0)
    return payload * 2


def _increment(payload):
    return payload + 1


class TestWorkerPoolDeath:
    """A worker killed mid-map must raise, name the loss, and respawn."""

    def test_killed_worker_raises_and_pool_respawns(self):
        import os
        import signal
        import threading

        from repro.engine import WorkerPoolError

        executor = ShardedEnsembleExecutor(workers=2)
        try:
            assert executor.map(_increment, [1, 2, 3, 4]) == [2, 3, 4, 5]
            pool = executor._ensure_pool()
            victim = pool._pool[0].pid
            timer = threading.Timer(0.5, os.kill, (victim, signal.SIGKILL))
            timer.start()
            try:
                with pytest.raises(WorkerPoolError) as excinfo:
                    executor.map(_sleep_then_echo, [10, 20, 30, 40])
            finally:
                timer.cancel()
            message = str(excinfo.value)
            assert str(victim) in message
            assert "shard" in message
            # The dead pool is retired, not wedged...
            assert not executor.pool_alive
            # ...and the next call lazily respawns a fresh one.
            assert executor.map(_increment, [7, 8, 9]) == [8, 9, 10]
            assert executor.pool_alive
        finally:
            executor.close()
