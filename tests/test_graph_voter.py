"""Tests for GraphVoter / LazyVoter (repro.processes.graph_voter)."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.engine import Consensus, consensus_time, repeat_first_passage, run_agent
from repro.graphs import CompleteGraph, CycleGraph
from repro.processes import GraphVoter, LazyVoter, Voter, counts_from_colors


class TestGraphVoter:
    def test_complete_graph_matches_voter_mean(self, rng):
        config = Configuration([30, 10])
        base = config.to_assignment()
        graph_voter = GraphVoter(CompleteGraph(40))
        reps = 3000
        acc = np.zeros(2)
        for _ in range(reps):
            acc += counts_from_colors(graph_voter.update(base, rng), 2)
        assert acc / reps == pytest.approx([30, 10], abs=0.6)

    def test_cycle_updates_use_neighbors_only(self, rng):
        n = 12
        graph_voter = GraphVoter(CycleGraph(n))
        colors = np.arange(n)
        out = graph_voter.update(colors, rng)
        diffs = (out - colors) % n
        assert set(np.unique(diffs)).issubset({1, n - 1})

    def test_reaches_consensus_on_odd_cycle(self):
        # Odd cycles are non-bipartite: no parity trap, consensus reachable.
        graph_voter = GraphVoter(CycleGraph(11))
        result = run_agent(
            graph_voter, Configuration.singletons(11), rng=4, max_rounds=500_000
        )
        assert result.reached_consensus

    def test_even_cycle_parity_trap(self):
        # Synchronous Voter on a bipartite graph can absorb into the
        # alternating 2-coloring and oscillate forever (see CycleGraph
        # docs); dually, coalescing walks at odd distance never meet.
        n = 12
        graph_voter = GraphVoter(CycleGraph(n))
        colors = np.asarray([i % 2 for i in range(n)], dtype=np.int64)
        rng = np.random.default_rng(0)
        out = graph_voter.update(colors, rng)
        assert np.array_equal(out, 1 - colors)  # deterministic flip
        assert np.array_equal(graph_voter.update(out, rng), colors)

    def test_size_mismatch_rejected(self, rng):
        graph_voter = GraphVoter(CompleteGraph(5))
        with pytest.raises(ValueError):
            graph_voter.update(np.zeros(7, dtype=np.int64), rng)

    def test_name_mentions_graph(self):
        assert "cyclegraph" in GraphVoter(CycleGraph(8)).name


class TestLazyVoter:
    def test_validation(self):
        with pytest.raises(ValueError):
            LazyVoter(laziness=1.0)
        with pytest.raises(ValueError):
            LazyVoter(laziness=-0.1)

    def test_zero_laziness_matches_voter_mean(self, rng):
        config = Configuration([20, 20])
        base = config.to_assignment()
        lazy = LazyVoter(laziness=0.0)
        reps = 2000
        acc = np.zeros(2)
        for _ in range(reps):
            acc += counts_from_colors(lazy.update(base, rng), 2)
        assert acc / reps == pytest.approx([20, 20], abs=0.8)

    def test_high_laziness_keeps_most_nodes(self, rng):
        colors = np.arange(1000)
        lazy = LazyVoter(laziness=0.9)
        out = lazy.update(colors, rng)
        assert np.mean(out == colors) > 0.85

    def test_graph_size_mismatch(self, rng):
        lazy = LazyVoter(graph=CompleteGraph(5))
        with pytest.raises(ValueError):
            lazy.update(np.zeros(7, dtype=np.int64), rng)

    def test_laziness_slowdown_factor(self):
        # §3.2's remark quantified.  In the coalescence dual, two walks
        # with independent 1/2-laziness meet with probability 0.75/n per
        # step (vs 1/n), so the predicted slowdown is 4/3 — not 2.
        config = Configuration.balanced(128, 8)
        plain = repeat_first_passage(
            Voter, config, Consensus(), 25, rng=1, backend="agent"
        ).mean()
        lazy = repeat_first_passage(
            LazyVoter, config, Consensus(), 25, rng=2, backend="agent"
        ).mean()
        assert 1.1 < lazy / plain < 1.8

    def test_consensus_reached(self):
        t = consensus_time(LazyVoter(), Configuration.balanced(64, 4), rng=3)
        assert t >= 1
