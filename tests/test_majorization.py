"""Unit + property tests for repro.core.majorization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.majorization import (
    all_integer_partition_configs,
    dalton_transfer_preserves,
    doubly_stochastic_mix,
    is_doubly_stochastic,
    lorenz_curve,
    majorization_gap,
    majorizes,
    random_doubly_stochastic,
    robin_hood_chain,
    schur_convex_violations,
    sorted_desc,
    standard_schur_convex_family,
    strictly_majorizes,
    t_transform,
    top_j_sums,
    weakly_submajorizes,
)

positive_vectors = st.lists(
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=8
)


class TestBasics:
    def test_sorted_desc(self):
        assert list(sorted_desc([1.0, 3.0, 2.0])) == [3.0, 2.0, 1.0]

    def test_sorted_desc_rejects_matrix(self):
        with pytest.raises(ValueError):
            sorted_desc(np.ones((2, 2)))

    def test_top_j_sums(self):
        assert list(top_j_sums([1, 3, 2])) == [3, 5, 6]

    def test_majorizes_reflexive(self):
        assert majorizes([3, 2, 1], [3, 2, 1])

    def test_majorizes_classic(self):
        assert majorizes([4, 0, 0], [2, 1, 1])
        assert not majorizes([2, 1, 1], [4, 0, 0])

    def test_majorizes_requires_equal_totals(self):
        assert not majorizes([5, 0], [2, 2])

    def test_majorizes_permutation_invariant(self):
        assert majorizes([0, 4, 1], [1, 4, 0])
        assert majorizes([1, 4, 0], [0, 4, 1])

    def test_majorizes_zero_padding(self):
        assert majorizes([3, 1], [2, 1, 1, 0])

    def test_weak_submajorization_ignores_total(self):
        assert weakly_submajorizes([5, 0], [2, 2])
        assert not weakly_submajorizes([1, 1], [3, 0])

    def test_strict(self):
        assert strictly_majorizes([4, 0], [2, 2])
        assert not strictly_majorizes([2, 2], [2, 2])
        assert not strictly_majorizes([0, 2, 2], [2, 2, 0])

    def test_gap_zero_when_majorizes(self):
        assert majorization_gap([4, 0], [2, 2]) == 0.0

    def test_gap_positive_when_fails(self):
        gap = majorization_gap([2, 2], [4, 0])
        assert gap == pytest.approx(2.0)

    def test_lorenz_curve_monotone(self):
        curve = lorenz_curve([1, 2, 3, 4])
        assert np.all(np.diff(curve) >= 0)
        assert curve[-1] == pytest.approx(1.0)

    def test_lorenz_rejects_zero_total(self):
        with pytest.raises(ValueError):
            lorenz_curve([0.0, 0.0])


class TestTTransform:
    def test_basic_transfer(self):
        out = t_transform([4.0, 0.0], 0, 1, 1.0)
        assert list(out) == [3.0, 1.0]

    def test_result_majorized(self):
        x = [5.0, 3.0, 1.0]
        y = t_transform(x, 0, 2, 1.5)
        assert majorizes(x, y)

    def test_rejects_same_index(self):
        with pytest.raises(ValueError):
            t_transform([1.0, 2.0], 1, 1, 0.1)

    def test_rejects_wrong_direction(self):
        with pytest.raises(ValueError):
            t_transform([1.0, 2.0], 0, 1, 0.1)

    def test_rejects_excessive_amount(self):
        with pytest.raises(ValueError):
            t_transform([4.0, 0.0], 0, 1, 3.0)

    def test_robin_hood_chain_is_descending(self, rng):
        chain = robin_hood_chain([8.0, 4.0, 2.0, 1.0], steps=6, rng=rng)
        for upper, lower in zip(chain, chain[1:]):
            assert majorizes(upper, lower, tol=1e-9)

    def test_robin_hood_rejects_bad_fraction(self, rng):
        with pytest.raises(ValueError):
            robin_hood_chain([1.0, 2.0], steps=1, rng=rng, max_fraction=0.0)


class TestDoublyStochastic:
    def test_identity_is_doubly_stochastic(self):
        assert is_doubly_stochastic(np.eye(3))

    def test_random_matrix_valid(self, rng):
        m = random_doubly_stochastic(5, rng)
        assert is_doubly_stochastic(m)

    def test_rejects_non_square(self):
        assert not is_doubly_stochastic(np.ones((2, 3)) / 3)

    def test_rejects_negative(self):
        m = np.asarray([[1.5, -0.5], [-0.5, 1.5]])
        assert not is_doubly_stochastic(m)

    def test_mix_is_majorized(self, rng):
        x = np.asarray([10.0, 5.0, 1.0, 0.0])
        m = random_doubly_stochastic(4, rng)
        y = doubly_stochastic_mix(x, m)
        assert majorizes(x, y, tol=1e-9)

    def test_mix_validates_matrix(self):
        with pytest.raises(ValueError):
            doubly_stochastic_mix([1.0, 2.0], np.asarray([[2.0, 0.0], [0.0, 0.0]]))

    def test_mix_validates_shape(self, rng):
        with pytest.raises(ValueError):
            doubly_stochastic_mix([1.0, 2.0, 3.0], random_doubly_stochastic(2, rng))


class TestSchurConvexFamily:
    def test_family_members_are_schur_convex(self, rng):
        for phi in standard_schur_convex_family(4):
            assert schur_convex_violations(phi, 4, rng, trials=100) == 0

    def test_violation_counter_catches_schur_concave(self, rng):
        def entropy(x):
            p = np.asarray(x) / np.asarray(x).sum()
            nz = p[p > 0]
            return float(-np.sum(nz * np.log(nz)))

        # Entropy is Schur-concave: should produce violations.
        assert schur_convex_violations(entropy, 4, rng, trials=200) > 0


class TestDaltonConstructive:
    def test_agrees_with_majorizes_positive(self):
        assert dalton_transfer_preserves([4, 0, 0], [2, 1, 1])

    def test_agrees_with_majorizes_negative(self):
        assert not dalton_transfer_preserves([2, 1, 1], [4, 0, 0])

    def test_unequal_totals(self):
        assert not dalton_transfer_preserves([4, 0], [3, 0])

    @given(positive_vectors, st.integers(min_value=0, max_value=4), st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_matches_prefix_criterion_on_chains(self, base, steps, seed):
        rng = np.random.default_rng(seed)
        chain = robin_hood_chain(base, steps=steps, rng=rng)
        x, y = chain[0], chain[-1]
        assert dalton_transfer_preserves(x, y) == majorizes(x, y)


class TestPartitions:
    def test_partitions_of_four(self):
        parts = set(all_integer_partition_configs(4))
        assert parts == {(4,), (3, 1), (2, 2), (2, 1, 1), (1, 1, 1, 1)}

    def test_partition_count_matches_oeis(self):
        # p(n) for n = 1..8: 1 1 2 3 5 7 11 15 22 (p(8)=22)
        assert len(list(all_integer_partition_configs(8))) == 22

    def test_max_parts_restriction(self):
        parts = list(all_integer_partition_configs(5, max_parts=2))
        assert all(len(p) <= 2 for p in parts)
        assert (3, 2) in parts and (1, 1, 1, 1, 1) not in parts

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            list(all_integer_partition_configs(0))


class TestHypothesisMajorization:
    @given(positive_vectors)
    @settings(max_examples=80, deadline=None)
    def test_reflexive(self, x):
        assert majorizes(x, x)

    @given(positive_vectors, st.integers(0, 2**31 - 1))
    @settings(max_examples=80, deadline=None)
    def test_transfer_chain_transitive(self, base, seed):
        rng = np.random.default_rng(seed)
        chain = robin_hood_chain(base, steps=3, rng=rng)
        # Transitivity along the chain: first majorizes last.
        assert majorizes(chain[0], chain[-1], tol=1e-8)

    @given(positive_vectors)
    @settings(max_examples=80, deadline=None)
    def test_sorted_and_original_equivalent(self, x):
        assert majorizes(x, list(reversed(x)))
        assert majorizes(list(reversed(x)), x)

    @given(positive_vectors, positive_vectors)
    @settings(max_examples=80, deadline=None)
    def test_antisymmetry_up_to_permutation(self, x, y):
        if majorizes(x, y, tol=1e-12) and majorizes(y, x, tol=1e-12):
            a = np.sort(np.pad(np.asarray(x, dtype=float), (0, max(0, len(y) - len(x)))))
            b = np.sort(np.pad(np.asarray(y, dtype=float), (0, max(0, len(x) - len(y)))))
            assert np.allclose(a, b, atol=1e-7)

    @given(positive_vectors)
    @settings(max_examples=80, deadline=None)
    def test_top_j_sums_superadditive_consistency(self, x):
        sums = top_j_sums(x)
        assert np.all(np.diff(sums) >= -1e-12)
