"""Tests for the declarative study layer (repro.study + repro.api).

The two contracts the ISSUE acceptance criteria name are enforced here:

* a ``StudySpec`` round-trips spec → TOML → spec losslessly, and
* ``run_study(spec, resume=...)`` after an interrupted run produces a
  RunRecord store bit-for-bit identical (``rng_mode="per-replica"``) to
  the uninterrupted run.
"""

import numpy as np
import pytest

import repro
from repro import StudySpec, api
from repro.engine import Consensus
from repro.core import Configuration
from repro.experiments import sweep_first_passage
from repro.study import (
    StudyStore,
    compile_study,
    dumps_spec,
    load_study_store,
    loads_spec,
    parse_stop,
    run_study,
    spec_hash,
    study_report,
)
from repro.study.compile import build_adversary, expand_axes
from repro.engine.stopping import BiasAtLeast, ColorsAtMost, MaxSupportAbove


def tiny_spec(**overrides):
    defaults = dict(
        name="tiny",
        seed=7,
        repetitions=3,
        axes={"process": ["3-majority", "voter"], "n": [24, 48]},
    )
    defaults.update(overrides)
    return StudySpec(**defaults)


def rich_spec():
    """A spec exercising every axis shape the serialiser must carry."""
    return StudySpec(
        name="rich",
        description="every axis form at once",
        seed=3,
        repetitions=2,
        expansion="zip",
        workers=1,
        stable_fraction=0.9,
        stable_rounds=2,
        raise_on_limit=False,
        record={"metrics": ["num_colors", "bias"], "stride": 2, "aggregate": "mean"},
        axes={
            "process": [{"name": "3-majority", "kwargs": {}}],
            "workload": [
                {"name": "balanced", "kwargs": {"k": 3}},
                {"name": "biased", "kwargs": {"k": 3, "bias": 4}},
            ],
            "n": [30, 60],
            "adversary": [
                "none",
                {"name": "plant-invalid", "budget": 2},
            ],
            "stop": ["consensus"],
            "max_rounds": [500, "none"],
            "backend": ["auto"],
            "rng_mode": ["batched"],
        },
    )


class TestSpec:
    def test_shorthands_normalise(self):
        spec = tiny_spec()
        assert spec.axes["process"][0] == {"name": "3-majority", "kwargs": {}}
        assert spec.axes["workload"] == [{"name": "singletons", "kwargs": {}}]
        assert spec.axes["adversary"] == [None]
        assert spec.axes["max_rounds"] == [None]

    def test_scalar_axis_is_singleton_list(self):
        spec = tiny_spec(axes={"process": "voter", "n": 16})
        assert spec.axes["process"] == [{"name": "voter", "kwargs": {}}]
        assert spec.axes["n"] == [16]

    def test_equality_is_canonical(self):
        a = tiny_spec(axes={"process": ["voter"], "n": [16]})
        b = tiny_spec(axes={"process": [{"name": "voter", "kwargs": {}}], "n": 16})
        assert a == b
        assert spec_hash(a) == spec_hash(b)

    @pytest.mark.parametrize(
        "axes",
        [
            {"n": [16]},  # missing process
            {"process": ["voter"]},  # missing n
            {"process": ["voter"], "n": [16], "warp": [1]},  # unknown axis
            {"process": ["voter"], "n": [1]},  # n too small
            {"process": ["voter"], "n": [16], "scheduler": ["sometimes"]},
            {"process": ["voter"], "n": [16], "rng_mode": ["psychic"]},
            {"process": ["voter"], "n": [16], "max_rounds": [0]},
            {"process": [{"nom": "voter"}], "n": [16]},
        ],
    )
    def test_invalid_axes_rejected(self, axes):
        with pytest.raises(ValueError):
            StudySpec(name="bad", axes=axes)

    def test_invalid_scalars_rejected(self):
        with pytest.raises(ValueError):
            tiny_spec(repetitions=0)
        with pytest.raises(ValueError):
            tiny_spec(expansion="diagonal")
        with pytest.raises(ValueError):
            tiny_spec(stable_fraction=0.2)
        with pytest.raises(ValueError):
            tiny_spec(record={"metrics": ["not-a-metric"]})

    def test_zip_requires_aligned_lengths(self):
        with pytest.raises(ValueError, match="zip expansion"):
            StudySpec(
                name="bad",
                expansion="zip",
                axes={"process": ["voter"], "n": [16, 32], "max_rounds": [1, 2, 3]},
            )

    def test_num_cells(self):
        assert tiny_spec().num_cells() == 4
        assert rich_spec().num_cells() == 2


class TestRoundTrip:
    @pytest.mark.parametrize("make", [tiny_spec, rich_spec])
    def test_toml_round_trip_is_lossless(self, make):
        spec = make()
        rebuilt = loads_spec(dumps_spec(spec))
        assert rebuilt == spec
        assert spec_hash(rebuilt) == spec_hash(spec)
        # A second hop is byte-stable, not merely equal.
        assert dumps_spec(rebuilt) == dumps_spec(spec)

    @pytest.mark.parametrize("make", [tiny_spec, rich_spec])
    def test_dict_round_trip_is_lossless(self, make):
        spec = make()
        assert StudySpec.from_dict(spec.to_dict()) == spec

    def test_toml_file_round_trip(self, tmp_path):
        from repro.study import load_spec, save_spec

        path = str(tmp_path / "spec.toml")
        save_spec(rich_spec(), path)
        assert load_spec(path) == rich_spec()

    def test_unknown_fields_rejected(self):
        payload = tiny_spec().to_dict()
        payload["turbo"] = True
        with pytest.raises(ValueError, match="unknown spec fields"):
            StudySpec.from_dict(payload)

    def test_invalid_toml_is_a_value_error(self):
        with pytest.raises(ValueError, match="invalid study TOML"):
            loads_spec("name = [unclosed")

    def test_shipped_example_spec_parses(self):
        from repro.study import load_spec

        spec = load_spec("studies/consensus_scaling.toml")
        assert spec.name == "consensus-scaling"
        assert spec.num_cells() == 9
        assert loads_spec(dumps_spec(spec)) == spec


class TestCompile:
    def test_grid_expansion_order_and_seeds(self):
        spec = tiny_spec()
        cells = compile_study(spec)
        assert [c.index for c in cells] == [0, 1, 2, 3]
        assert [c.params["n"] for c in cells] == [24, 48, 24, 48]
        assert [c.params["process"]["name"] for c in cells] == [
            "3-majority", "3-majority", "voter", "voter",
        ]
        # Seeds derive from (spec.seed, index) — stable and all distinct.
        assert len({c.params["seed"] for c in cells}) == 4
        again = compile_study(spec)
        assert [c.params["seed"] for c in again] == [c.params["seed"] for c in cells]
        assert [c.cell_id for c in again] == [c.cell_id for c in cells]

    def test_zip_expansion_broadcasts_singletons(self):
        cells = compile_study(rich_spec())
        assert len(cells) == 2
        first, second = (c.params for c in cells)
        assert first["workload"]["name"] == "balanced"
        assert second["workload"]["name"] == "biased"
        assert first["max_rounds"] == 500 and second["max_rounds"] is None
        assert first["adversary"] is None
        assert second["adversary"]["name"] == "plant-invalid"

    def test_adversary_budget_resolves_at_compile_time(self):
        spec = tiny_spec(
            axes={
                "process": ["3-majority"],
                "n": [64],
                "workload": [{"name": "balanced", "kwargs": {"k": 2}}],
                "adversary": ["random-noise"],
            },
        )
        (cell,) = compile_study(spec)
        assert cell.params["adversary"]["budget"] >= 1
        assert cell.plan.adversary is not None

    def test_unknown_backend_rejected_before_running(self):
        spec = tiny_spec(axes={"process": ["voter"], "n": [16], "backend": ["warp"]})
        with pytest.raises(ValueError, match="unknown backend"):
            compile_study(spec)

    def test_parse_stop_rules(self):
        assert isinstance(parse_stop("consensus"), Consensus)
        assert isinstance(parse_stop("colors<=4"), ColorsAtMost)
        assert isinstance(parse_stop("max-support>9"), MaxSupportAbove)
        assert isinstance(parse_stop("bias>=3"), BiasAtLeast)
        with pytest.raises(ValueError, match="unknown stop rule"):
            parse_stop("vibes")

    def test_build_adversary_forms(self):
        assert build_adversary(None, 64, 4) is None
        assert build_adversary("none", 64, 4) is None
        adversary = build_adversary({"name": "plant-invalid", "budget": 3}, 64, 4)
        assert adversary.budget == 3
        with pytest.raises(ValueError, match="unknown adversary"):
            build_adversary({"name": "chaos"}, 64, 4)


class TestRunAndResume:
    def test_resume_is_bit_for_bit(self, tmp_path):
        spec = tiny_spec()  # rng_mode defaults to per-replica
        assert spec.axes["rng_mode"] == ["per-replica"]
        full_path = str(tmp_path / "full.json")
        part_path = str(tmp_path / "part.json")
        full = run_study(spec, store_path=full_path)
        # Interrupt after 1 of 4 cells, then resume twice (idempotent).
        run_study(spec, store_path=part_path, max_cells=1)
        assert len(load_study_store(part_path)) == 1
        run_study(spec, store_path=part_path, resume=True, max_cells=2)
        resumed = run_study(spec, store_path=part_path, resume=True)
        assert len(resumed) == len(full) == 4
        assert resumed.results_equal(full)
        # ... and the on-disk stores agree record for record too.
        assert load_study_store(part_path).results_equal(load_study_store(full_path))

    def test_resume_out_of_order_execution_matches(self, tmp_path):
        """Seeds bind to cell indices, not execution order."""
        spec = tiny_spec()
        full = run_study(spec)
        # Build a store that already "has" the *last* cell only.
        cells = compile_study(spec)
        partial = StudyStore(spec)
        partial.add(full.get(cells[-1].cell_id))
        path = str(tmp_path / "weird.json")
        partial.save(path)
        resumed = run_study(spec, store_path=path, resume=True)
        assert resumed.results_equal(full)

    def test_resume_rejects_different_spec(self, tmp_path):
        path = str(tmp_path / "store.json")
        run_study(tiny_spec(), store_path=path)
        other = tiny_spec(seed=99)
        with pytest.raises(ValueError, match="refusing to resume"):
            run_study(other, store_path=path, resume=True)

    def test_fresh_run_refuses_existing_store(self, tmp_path):
        path = str(tmp_path / "store.json")
        run_study(tiny_spec(), store_path=path)
        with pytest.raises(ValueError, match="already exists"):
            run_study(tiny_spec(), store_path=path)

    def test_store_records_provenance(self):
        store = run_study(tiny_spec(repetitions=2))
        for record in store:
            assert record.resolved_backend in ("agent", "counts")
            assert record.unit == "rounds"
            assert record.times.shape == (2,)
            assert record.stopped.all()
            assert record.wall_time_s >= 0
        assert store.spec_hash == spec_hash(tiny_spec(repetitions=2))

    def test_store_round_trip_and_future_version_rejected(self, tmp_path):
        store = run_study(tiny_spec(repetitions=2))
        path = str(tmp_path / "s.json")
        store.save(path)
        rebuilt = load_study_store(path)
        assert rebuilt.results_equal(store)
        payload = rebuilt.to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="unsupported study-store"):
            StudyStore.from_dict(payload)

    def test_adversarial_cells_record_validity_extras(self):
        spec = StudySpec(
            name="adv",
            seed=5,
            repetitions=2,
            axes={
                "process": ["3-majority"],
                "n": [48],
                "workload": [{"name": "balanced", "kwargs": {"k": 3}}],
                "adversary": [{"name": "plant-invalid", "budget": 1}],
                "max_rounds": [4000],
            },
            stable_fraction=0.9,
        )
        (record,) = run_study(spec).records()
        assert record.extras is not None
        assert len(record.extras["winner_is_valid"]) == 2
        assert len(record.extras["valid_almost_all_consensus"]) == 2

    def test_recorded_trajectories_round_trip(self, tmp_path):
        spec = StudySpec(
            name="traj",
            seed=2,
            repetitions=1,
            record=["num_colors", "max_support"],
            axes={"process": ["voter"], "n": [24], "backend": ["ensemble-agent"]},
        )
        path = str(tmp_path / "t.json")
        (record,) = run_study(spec, store_path=path).records()
        assert record.trajectory is not None
        assert len(record.trajectory["num_colors"]) == len(record.trajectory["rounds"])
        rebuilt = load_study_store(path)
        assert rebuilt.records()[0].trajectory == record.trajectory

    def test_report_renders(self):
        spec = tiny_spec(axes={"process": ["voter"], "n": [16, 32, 64]})
        text = study_report(run_study(spec)).render()
        assert "study 'tiny'" in text
        assert "fit [voter]" in text


class TestApiFacade:
    def test_facade_is_reexported(self):
        assert repro.simulate is api.simulate
        assert repro.sweep is api.sweep
        assert repro.study is api.study

    def test_simulate_names_and_instances_agree(self):
        from repro.processes import ThreeMajority

        by_name = api.simulate("3-majority", n=64, seed=9)
        by_instance = api.simulate(ThreeMajority(), n=64, seed=9)
        assert np.array_equal(by_name.times, by_instance.times)

    def test_simulate_axes(self):
        result = api.simulate(
            "voter", n=32, workload={"name": "balanced", "kwargs": {"k": 2}},
            seed=4, repetitions=3, backend="ensemble-counts",
        )
        assert result.times.shape == (3,)
        assert result.backend == "ensemble-counts"
        asynchronous = api.simulate("voter", n=32, seed=4, scheduler="asynchronous")
        assert asynchronous.unit == "ticks"

    def test_sweep_matches_legacy_harness_bit_for_bit(self):
        legacy = sweep_first_passage(
            name="legacy",
            process_factory=lambda n: repro.make_process("3-majority"),
            workload=lambda n: Configuration.singletons(n),
            stop=lambda n: Consensus(),
            n_values=[16, 32],
            repetitions=3,
            seed=13,
            predicted=lambda n: float(n),
            backend="ensemble-counts",
            rng_mode="per-replica",
        )
        declarative = api.sweep(
            "3-majority",
            [16, 32],
            repetitions=3,
            seed=13,
            backend="ensemble-counts",
            rng_mode="per-replica",
            predicted=lambda n: float(n),
        )
        for a, b in zip(legacy.points, declarative.points):
            assert a.param == b.param
            assert np.array_equal(a.samples, b.samples)
            assert a.resolved_backend == b.resolved_backend

    def test_study_accepts_path_and_dict(self, tmp_path):
        from repro.study import save_spec

        spec = tiny_spec(axes={"process": ["voter"], "n": [16]}, repetitions=2)
        path = str(tmp_path / "spec.toml")
        save_spec(spec, path)
        from_path = api.study(path)
        from_dict = api.study(spec.to_dict())
        assert from_path.results_equal(from_dict)
        with pytest.raises(TypeError):
            api.study(42)
