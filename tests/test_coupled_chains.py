"""Tests for the executable Theorem-2 coupling (run_coupled_chains)."""

import numpy as np
import pytest

from repro.core import Configuration, run_coupled_chains
from repro.core.ac_process import (
    HMajorityFunction,
    PowerDriftFunction,
    ThreeMajorityFunction,
    VoterFunction,
)


class TestCoupledChains:
    def test_majorization_maintained_surely(self):
        # Lemma 2 executed: 3-Majority state majorizes Voter state at every
        # round of the coupled trajectory, for many seeds.
        initial = Configuration([1] * 6)
        for seed in range(10):
            trajectory = run_coupled_chains(
                ThreeMajorityFunction(),
                VoterFunction(),
                initial,
                rounds=15,
                rng=np.random.default_rng(seed),
            )
            assert trajectory.majorization_maintained(), seed
            assert trajectory.colors_never_more(), seed

    def test_rounds_and_shapes(self):
        trajectory = run_coupled_chains(
            ThreeMajorityFunction(),
            VoterFunction(),
            Configuration([2, 2, 2]),
            rounds=5,
            rng=np.random.default_rng(1),
        )
        assert trajectory.rounds() == 5
        assert len(trajectory.upper_states) == 6
        assert all(sum(state) == 6 for state in trajectory.upper_states)
        assert all(sum(state) == 6 for state in trajectory.lower_states)

    def test_zero_rounds(self):
        trajectory = run_coupled_chains(
            VoterFunction(),
            VoterFunction(),
            Configuration([3, 3]),
            rounds=0,
            rng=np.random.default_rng(0),
        )
        assert trajectory.rounds() == 0
        assert trajectory.majorization_maintained()

    def test_negative_rounds_rejected(self):
        with pytest.raises(ValueError):
            run_coupled_chains(
                VoterFunction(),
                VoterFunction(),
                Configuration([2, 2]),
                rounds=-1,
                rng=np.random.default_rng(0),
            )

    def test_power_drift_over_voter(self):
        trajectory = run_coupled_chains(
            PowerDriftFunction(2.0),
            VoterFunction(),
            Configuration([1] * 5),
            rounds=10,
            rng=np.random.default_rng(4),
        )
        assert trajectory.majorization_maintained()

    def test_infeasible_pair_raises(self):
        # 4-Majority does NOT dominate 3-Majority (Appendix B): starting at
        # a violating pair is impossible from a shared start, but the
        # coupling can hit a violating pair mid-run; force it directly by
        # starting at the symmetric two-color configuration, whose next
        # 4-Majority law cannot majorize 3-Majority's from a spread state.
        # Construct explicitly: run from (3,1,1,1) with fast=4M, slow=3M —
        # dominance fails at the Appendix-B pair, so either the run
        # completes (allowed) or raises; assert the checker catches the
        # documented violating pair when seeded to reach it.
        with pytest.raises((RuntimeError, ValueError)):
            # upper (3,3,0,0) vs lower (3,1,1,1) is the integer Appendix-B
            # pair; build the coupling there directly via a one-round run
            # from unequal starts is not supported — so emulate by checking
            # the LP directly through run_coupled_chains on a crafted
            # degenerate instance: fast=Voter, slow=3-Majority reverses the
            # dominance and must fail within a few rounds.
            for seed in range(20):
                run_coupled_chains(
                    VoterFunction(),
                    ThreeMajorityFunction(),
                    Configuration([4, 1, 1]),
                    rounds=8,
                    rng=np.random.default_rng(seed),
                )

    def test_consensus_is_absorbing_in_coupling(self):
        trajectory = run_coupled_chains(
            ThreeMajorityFunction(),
            VoterFunction(),
            Configuration([6, 0]),
            rounds=3,
            rng=np.random.default_rng(2),
        )
        assert all(state == (6,) for state in trajectory.upper_states)

    def test_h3_function_works_too(self):
        # The enumerated 3-majority function couples identically.
        trajectory = run_coupled_chains(
            HMajorityFunction(3),
            VoterFunction(),
            Configuration([2, 2, 1]),
            rounds=6,
            rng=np.random.default_rng(5),
        )
        assert trajectory.majorization_maintained()
