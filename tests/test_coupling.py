"""Tests for repro.core.coupling — Lemma 1 / Theorems 2-3 made constructive."""

import numpy as np
import pytest

from repro.core import Configuration
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.core.coupling import (
    FiniteDistribution,
    estimate_reduction_time_dominance,
    one_step_distribution,
    stochastic_majorization_certificate,
    strassen_coupling,
)


class TestFiniteDistribution:
    def test_validates_alignment(self):
        with pytest.raises(ValueError):
            FiniteDistribution(support=((1, 1),), probabilities=(0.5, 0.5))

    def test_validates_total(self):
        with pytest.raises(ValueError):
            FiniteDistribution(support=((1, 1), (2, 0)), probabilities=(0.5, 0.4))

    def test_expectation(self):
        dist = FiniteDistribution(support=((2, 0), (0, 2)), probabilities=(0.5, 0.5))
        assert dist.expectation() == pytest.approx([1.0, 1.0])

    def test_expect_functional(self):
        dist = FiniteDistribution(support=((2, 0), (1, 1)), probabilities=(0.25, 0.75))
        assert dist.expect(lambda v: float(v.max())) == pytest.approx(0.25 * 2 + 0.75 * 1)


class TestOneStepDistribution:
    def test_total_mass_and_support(self):
        dist = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        assert sum(dist.probabilities) == pytest.approx(1.0)
        assert all(sum(outcome) == 4 for outcome in dist.support)

    def test_expectation_matches_alpha(self):
        config = Configuration([3, 2])
        dist = one_step_distribution(ThreeMajorityFunction(), config)
        alpha = ThreeMajorityFunction().probabilities_for(config)
        assert dist.expectation() == pytest.approx(5 * alpha)

    def test_consensus_is_deterministic(self):
        dist = one_step_distribution(VoterFunction(), Configuration([4, 0]))
        assert len(dist) == 1
        assert dist.support[0] == (4, 0)

    def test_matches_sampler_frequencies(self, rng):
        config = Configuration([3, 1])
        func = VoterFunction()
        dist = one_step_distribution(func, config)
        lookup = dict(zip(dist.support, dist.probabilities))
        reps = 6000
        hits = {outcome: 0 for outcome in dist.support}
        for _ in range(reps):
            out = tuple(int(v) for v in func.step_counts(config.counts_array(), rng))
            hits[out] += 1
        for outcome, prob in lookup.items():
            assert hits[outcome] / reps == pytest.approx(prob, abs=0.03)


class TestStrassenCoupling:
    """Lemma 1: the coupling exists for dominating AC pairs — constructed here."""

    @pytest.mark.parametrize(
        "upper,lower",
        [
            ([3, 1], [2, 2]),
            ([4, 0], [2, 2]),
            ([3, 2, 1], [2, 2, 2]),
            ([4, 1, 1], [2, 2, 2]),
        ],
    )
    def test_three_majority_over_voter_coupling_exists(self, upper, lower):
        upper_cfg = Configuration(upper)
        lower_cfg = Configuration(lower)
        assert upper_cfg.majorizes(lower_cfg)
        upper_dist = one_step_distribution(ThreeMajorityFunction(), upper_cfg)
        lower_dist = one_step_distribution(VoterFunction(), lower_cfg)
        result = strassen_coupling(lower=lower_dist, upper=upper_dist)
        assert result.feasible
        assert result.verify()

    def test_joint_marginals_correct(self):
        upper_dist = one_step_distribution(ThreeMajorityFunction(), Configuration([3, 1]))
        lower_dist = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        result = strassen_coupling(lower=lower_dist, upper=upper_dist)
        joint = result.joint
        assert joint.sum(axis=1) == pytest.approx(np.asarray(lower_dist.probabilities), abs=1e-7)
        assert joint.sum(axis=0) == pytest.approx(np.asarray(upper_dist.probabilities), abs=1e-7)

    def test_infeasible_when_direction_reversed(self):
        # Voter on the LOWER config cannot stochastically majorize
        # 3-Majority on the UPPER config in the reversed direction: put the
        # better process below and swap roles to force failure.
        upper_dist = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        lower_dist = one_step_distribution(ThreeMajorityFunction(), Configuration([4, 0]))
        result = strassen_coupling(lower=lower_dist, upper=upper_dist)
        assert not result.feasible

    def test_identical_distributions_couple_on_diagonal(self):
        dist = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        result = strassen_coupling(lower=dist, upper=dist)
        assert result.feasible


class TestStochasticMajorizationCertificate:
    def test_certificate_holds_for_dominating_pair(self):
        upper = one_step_distribution(ThreeMajorityFunction(), Configuration([3, 1]))
        lower = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        holds, margins = stochastic_majorization_certificate(lower, upper)
        assert holds
        assert np.all(margins >= -1e-9)

    def test_certificate_fails_in_reverse(self):
        upper = one_step_distribution(ThreeMajorityFunction(), Configuration([4, 0]))
        lower = one_step_distribution(VoterFunction(), Configuration([2, 2]))
        holds, _ = stochastic_majorization_certificate(lower=upper, upper=lower)
        assert not holds

    def test_certificate_and_lp_agree(self):
        # On a grid of comparable pairs the LP feasibility and the top-j
        # certificate must never disagree in the "certificate fails" case
        # (certificate failure implies no coupling).
        pairs = [([3, 1], [2, 2]), ([4, 0], [3, 1]), ([4, 1, 1], [2, 2, 2])]
        for upper, lower in pairs:
            upper_dist = one_step_distribution(ThreeMajorityFunction(), Configuration(upper))
            lower_dist = one_step_distribution(VoterFunction(), Configuration(lower))
            holds, _ = stochastic_majorization_certificate(lower_dist, upper_dist)
            lp = strassen_coupling(lower=lower_dist, upper=upper_dist)
            if lp.feasible:
                assert holds


class TestReductionTimeDominance:
    """Theorem 2's conclusion, Monte-Carlo validated on small systems."""

    def test_three_majority_not_slower_than_voter(self, rng):
        comparison = estimate_reduction_time_dominance(
            fast=ThreeMajorityFunction(),
            slow=VoterFunction(),
            initial=Configuration([1] * 12),
            kappa=1,
            repetitions=300,
            rng=rng,
        )
        assert comparison.mean_gap() > 0
        assert comparison.empirical_cdf_dominates(slack=0.08)

    def test_kappa_validation(self, rng):
        with pytest.raises(ValueError):
            estimate_reduction_time_dominance(
                VoterFunction(), VoterFunction(), Configuration([2, 2]), 0, 5, rng
            )

    def test_round_limit_enforced(self, rng):
        with pytest.raises(RuntimeError):
            estimate_reduction_time_dominance(
                fast=VoterFunction(),
                slow=VoterFunction(),
                initial=Configuration([1] * 16),
                kappa=1,
                repetitions=2,
                rng=rng,
                max_rounds=1,
            )
