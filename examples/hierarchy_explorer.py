"""h-Majority hierarchy explorer: Conjecture 1 and the Appendix-B wall.

Run with::

    python examples/hierarchy_explorer.py

Three views of the general h-Majority family:

1. exact rational process functions ``α^{hM}(x)`` on a fixed
   configuration, showing the drift sharpen with ``h``;
2. an empirical race of h ∈ {1..7} from a balanced start (Conjecture 1
   predicts monotone speed-up);
3. the Appendix-B counterexample — why the paper's own machinery cannot
   prove the conjecture — with the exact ``7/12`` computation.
"""

from fractions import Fraction

import numpy as np

from repro.core import Configuration
from repro.core.hierarchy import (
    appendix_b_counterexample,
    equation_24_terms,
    hierarchy_probability_vectors,
)
from repro.engine import Consensus, repeat_first_passage
from repro.experiments import Table
from repro.processes import HMajority


def exact_drift_table():
    x = [Fraction(1, 2), Fraction(1, 4), Fraction(1, 4)]
    vectors = hierarchy_probability_vectors(x, [1, 2, 3, 5, 7])
    table = Table(
        title="exact α^{hM}(x) for x = (1/2, 1/4, 1/4)",
        columns=["h", "α_1", "α_2 = α_3", "α_1 as float"],
    )
    for h, alpha in vectors.items():
        table.add_row(h, str(alpha[0]), str(alpha[1]), float(alpha[0]))
    table.add_footnote("h = 1, 2 are exactly Voter; drift to the plurality grows with h.")
    print(table.render())


def empirical_race(n=512, k=8, reps=15):
    table = Table(
        title=f"mean consensus time, balanced k={k} start (n={n}, {reps} runs)",
        columns=["h", "mean rounds", "sem"],
    )
    for h in (1, 2, 3, 4, 5, 7):
        times = repeat_first_passage(
            lambda h=h: HMajority(h),
            Configuration.balanced(n, k),
            Consensus(),
            reps,
            rng=40 + h,
            backend="agent",
        )
        table.add_row(h, float(times.mean()), float(times.std(ddof=1) / np.sqrt(reps)))
    table.add_footnote("Conjecture 1: non-increasing in h (open for h ≥ 3 vs h + 1).")
    print()
    print(table.render())


def appendix_b():
    report = appendix_b_counterexample()
    print("\nAppendix B: why majorization cannot prove the hierarchy\n")
    print(f"  comparable inputs:  x̃ = {tuple(map(str, report.x_upper))}  ⪰  "
          f"x = {tuple(map(str, report.x_lower))}")
    print(f"  (h+1)-Majority on x̃ stays put: α = {tuple(map(str, report.alpha_upper))}")
    terms = " + ".join(str(t) for t in equation_24_terms())
    print(f"  3-Majority mass on x's top color (Eq. 24): {terms} = "
          f"{report.top_mass_lower}")
    print(f"  required α^(h+1)M(x̃) ⪰ α^hM(x): {report.images_majorize}  "
          f"(violated by {report.top_mass_lower - Fraction(1, 2)} at prefix 1)")
    print("\n  ⇒ Lemma 1's hypothesis fails; Conjecture 1 remains open.")


def main() -> None:
    exact_drift_table()
    empirical_race()
    appendix_b()


if __name__ == "__main__":
    main()
