"""Quickstart: simulate the paper's three processes on the complete graph.

Run with::

    python examples/quickstart.py [n]

Builds the n-color leader-election configuration, runs Voter, 2-Choices
and 3-Majority to consensus, and prints the round counts next to the
paper's headline bounds — the Theorem-1 separation in one screen of
output.
"""

import sys

from repro import (
    Configuration,
    ThreeMajority,
    TwoChoices,
    Voter,
    consensus_time,
)
from repro.analysis import three_majority_consensus_upper, two_choices_symmetry_breaking_lower
from repro.experiments import Table


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    start = Configuration.singletons(n)
    print(f"leader election on the complete graph: n = {n}, every node its own color\n")

    table = Table(
        title="consensus time (rounds), single seeded run per process",
        columns=["process", "rounds", "paper says"],
    )
    table.add_row(
        "voter",
        consensus_time(Voter(), start, rng=1),
        "Θ(n)",
    )
    table.add_row(
        "2-choices ('ignore')",
        consensus_time(TwoChoices(), start, rng=1, max_rounds=10**7),
        f"Ω(n/log n) ≈ {two_choices_symmetry_breaking_lower(n, 1):.0f}·γ²-ish",
    )
    table.add_row(
        "3-majority ('comply')",
        consensus_time(ThreeMajority(), start, rng=1, backend="agent"),
        f"O(n^0.75 log^0.875 n) ≈ {three_majority_consensus_upper(n):.0f}",
    )
    print(table.render())
    print(
        "\nBoth 2-Choices and 3-Majority have the SAME expected one-round\n"
        "behaviour (footnote 2) — the polynomial gap above is the paper's\n"
        "Theorem 1.  See examples/leader_election_race.py for the scaling\n"
        "picture and benchmarks/ for the full reproduction."
    )


if __name__ == "__main__":
    main()
