"""Quickstart: the public ``repro.api`` facade in one screen of output.

Run with::

    python examples/quickstart.py [n]

Three verbs cover the library:

* ``repro.simulate`` — one measurement (any process, workload, scheduler,
  adversary, backend);
* ``repro.sweep`` — a scaling sweep over ``n`` with a power-law fit;
* ``repro.study`` — a whole declarative experiment suite from a
  :class:`repro.StudySpec` (or a TOML file like
  ``studies/consensus_scaling.toml``), with a provenance-carrying result
  store you can save, resume bit-for-bit and re-report.

Here we race the paper's three processes from the n-color
leader-election start (the Theorem-1 separation), then run the same
comparison as a tiny in-memory study.
"""

import sys

import repro
from repro.analysis import three_majority_consensus_upper, two_choices_symmetry_breaking_lower
from repro.experiments import Table
from repro.study import study_report


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 2048
    print(f"leader election on the complete graph: n = {n}, every node its own color\n")

    # -- repro.simulate: one seeded measurement per process ---------------
    table = Table(
        title="consensus time (rounds), single seeded run per process",
        columns=["process", "rounds", "paper says"],
    )
    table.add_row(
        "voter",
        int(repro.simulate("voter", n=n, seed=1).times[0]),
        "Θ(n)",
    )
    table.add_row(
        "2-choices ('ignore')",
        int(repro.simulate("2-choices", n=n, seed=1, max_rounds=10**7).times[0]),
        f"Ω(n/log n) ≈ {two_choices_symmetry_breaking_lower(n, 1):.0f}·γ²-ish",
    )
    table.add_row(
        "3-majority ('comply')",
        int(repro.simulate("3-majority", n=n, seed=1, backend="agent").times[0]),
        f"O(n^0.75 log^0.875 n) ≈ {three_majority_consensus_upper(n):.0f}",
    )
    print(table.render())
    print(
        "\nBoth 2-Choices and 3-Majority have the SAME expected one-round\n"
        "behaviour (footnote 2) — the polynomial gap above is the paper's\n"
        "Theorem 1.\n"
    )

    # -- repro.study: the same race as a declarative 2×3-cell suite -------
    spec = repro.StudySpec(
        name="quickstart-race",
        seed=1,
        repetitions=3,
        axes={
            "process": ["3-majority", "voter"],
            "n": [max(64, n // 8), max(128, n // 4), max(256, n // 2)],
            "backend": ["ensemble-auto"],
        },
    )
    store = repro.study(spec)  # store_path="race.json" would checkpoint
    print(study_report(store).render())
    print(
        "\nThe same spec as TOML lives in studies/consensus_scaling.toml —\n"
        "run `python -m repro study run studies/consensus_scaling.toml`,\n"
        "kill it, and `python -m repro study resume` finishes the missing\n"
        "cells bit-for-bit.  See examples/leader_election_race.py for the\n"
        "scaling picture and benchmarks/ for the full reproduction."
    )


if __name__ == "__main__":
    main()
