"""Lemma 2, executed: a coupled run of 3-Majority and Voter.

Run with::

    python examples/coupling_lemma2.py

The paper proves (via Strassen's theorem) that a coupling *exists* under
which 3-Majority's configuration majorizes Voter's at every round — and
therefore never has more remaining colors.  This example *samples from
that coupling*: at each round it enumerates both one-step multinomial
laws, solves the Lemma-1 transportation LP, draws the next pair of
states jointly, and prints the two trajectories side by side with the
majorization check.
"""

import numpy as np

from repro.core import Configuration, run_coupled_chains
from repro.core.ac_process import ThreeMajorityFunction, VoterFunction
from repro.experiments import Table


def main() -> None:
    n = 6
    initial = Configuration.singletons(n)
    rng = np.random.default_rng(11)
    trajectory = run_coupled_chains(
        ThreeMajorityFunction(), VoterFunction(), initial, rounds=12, rng=rng
    )
    table = Table(
        title=f"coupled trajectories from {n} distinct colors (one joint sample path)",
        columns=["round", "3-majority state", "colors", "voter state", "colors", "3M ⪰ V"],
    )
    from repro.core import majorizes

    for t, (upper, lower) in enumerate(
        zip(trajectory.upper_states, trajectory.lower_states)
    ):
        table.add_row(
            t,
            str(tuple(sorted(upper, reverse=True))),
            sum(1 for v in upper if v),
            str(tuple(sorted(lower, reverse=True))),
            sum(1 for v in lower if v),
            majorizes(np.asarray(upper, float), np.asarray(lower, float)),
        )
    print(table.render())
    print(
        f"\nmajorization maintained at every round: {trajectory.majorization_maintained()}"
        f"\n3-Majority never has more colors:       {trajectory.colors_never_more()}"
    )
    print(
        "\nEvery round solved the Lemma-1 Strassen LP and sampled the joint\n"
        "law — the coupling the paper proves to exist, made executable.\n"
        "(Exponential in n: a verification tool, not a simulator.)"
    )

    # Replay over several seeds: the guarantee is sure, not statistical.
    for seed in range(4):
        replay = run_coupled_chains(
            ThreeMajorityFunction(),
            VoterFunction(),
            initial,
            rounds=10,
            rng=np.random.default_rng(seed),
        )
        assert replay.majorization_maintained()
    print("replayed over 4 more seeds: majorization held surely each time.")


if __name__ == "__main__":
    main()
