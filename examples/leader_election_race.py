"""Leader election race: the Theorem-1 separation across system sizes.

Run with::

    python examples/leader_election_race.py [max_n]

For a geometric sweep of ``n``, races Voter, 2-Choices and 3-Majority
from the n-color configuration (repeating over seeds), prints the mean
consensus times with fitted growth exponents, and renders an ASCII
trajectory of the number of remaining colors for the largest ``n`` —
making the "ignore vs comply" dynamics visible round by round.
"""

import sys

import numpy as np

from repro import Configuration, MetricRecorder, ThreeMajority, TwoChoices, Voter, run
from repro.analysis import fit_power_law
from repro.engine import repeat_first_passage, Consensus
from repro.experiments import Table

PROCESSES = [
    ("voter", Voter),
    ("2-choices", TwoChoices),
    ("3-majority", ThreeMajority),
]


def scaling_table(n_values, repetitions=3, seed=7):
    table = Table(
        title="mean consensus time from n distinct colors",
        columns=["n"] + [name for name, _ in PROCESSES],
    )
    means = {name: [] for name, _ in PROCESSES}
    for n in n_values:
        row = [n]
        for name, factory in PROCESSES:
            times = repeat_first_passage(
                factory,
                Configuration.singletons(n),
                Consensus(),
                repetitions,
                rng=seed,
                backend="agent",
                max_rounds=10**7,
            )
            means[name].append(times.mean())
            row.append(float(times.mean()))
        table.add_row(*row)
    for name, _ in PROCESSES:
        fit = fit_power_law(np.asarray(n_values, dtype=float), np.asarray(means[name]))
        table.add_footnote(f"{name}: {fit.summary()}")
    return table


def ascii_trajectory(n, width=64, seed=3):
    print(f"\nremaining colors over time at n = {n} (log-scaled bars)\n")
    for name, factory in PROCESSES:
        recorder = MetricRecorder(names=("num_colors",), stride=1)
        run(
            factory(),
            Configuration.singletons(n),
            rng=seed,
            recorder=recorder,
            backend="agent",
            max_rounds=10**7,
        )
        series = recorder.series("num_colors").astype(float)
        # Sample the trajectory at `width` evenly spaced rounds.
        idx = np.linspace(0, series.size - 1, num=min(width, series.size)).astype(int)
        bars = ""
        for value in series[idx]:
            level = int(np.clip(np.log(value) / np.log(n) * 8, 0, 8))
            bars += " ▁▂▃▄▅▆▇█"[level]
        print(f"{name:>12} |{bars}| {series.size - 1} rounds")
    print("\n(each bar column is one sampled round; height ~ log #colors)")


def main() -> None:
    max_n = int(sys.argv[1]) if len(sys.argv) > 1 else 4096
    n_values = [256]
    while n_values[-1] * 2 <= max_n:
        n_values.append(n_values[-1] * 2)
    print(scaling_table(n_values).render())
    ascii_trajectory(n_values[-1])


if __name__ == "__main__":
    main()
