"""Byzantine agreement demo: 3-Majority against dynamic adversaries (§5).

Run with::

    python examples/byzantine_agreement.py

Pits 3-Majority against the three adversaries from the fault model the
paper discusses in Section 5 — random noise, a stalling adversary that
boosts the runner-up, and one that plants an *invalid* color — at
corruption budgets around the [BCN+16] tolerance scale, then shows the
footnote-5 contrast: the ordered-color 2-Median process electing a value
no honest node ever held.
"""

import numpy as np

from repro import Configuration, ThreeMajority, TwoMedian
from repro.adversary import (
    AdversarySchedule,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
    run_with_adversary,
)
from repro.experiments import Table


def three_majority_resilience(n=1024, k=3, seeds=5):
    budget = max(1, recommended_corruption_budget(n, k))
    table = Table(
        title=f"3-Majority under dynamic adversaries (n={n}, k={k}, budget scale {budget})",
        columns=["adversary", "F", "stabilized", "valid winner", "mean rounds"],
    )
    for label, adversary in (
        ("random noise", RandomNoise(4 * budget, k)),
        ("boost runner-up", BoostRunnerUp(4 * budget)),
        ("plant invalid color", PlantInvalid(4 * budget, invalid_color=k + 9)),
    ):
        stabilized = valid = 0
        rounds = []
        for seed in range(seeds):
            result = run_with_adversary(
                ThreeMajority(),
                Configuration.balanced(n, k),
                adversary,
                rng=seed,
                max_rounds=10_000,
                stable_fraction=0.9,
            )
            stabilized += int(result.stabilized)
            valid += int(result.stabilized and result.winner_is_valid)
            rounds.append(result.rounds)
        table.add_row(
            label, adversary.budget, f"{stabilized}/{seeds}", f"{valid}/{seeds}",
            float(np.mean(rounds)),
        )
    print(table.render())


def two_median_validity_failure(n=512, seeds=8):
    print(
        "\nfootnote 5: 2-Median cannot guarantee validity.  Honest values sit\n"
        "at 0 and 200; the adversary plants the midpoint 100 for 60 rounds.\n"
    )
    counts = np.zeros(201, dtype=np.int64)
    counts[0] = n // 2
    counts[200] = n - n // 2
    initial = Configuration(counts)
    schedule = AdversarySchedule(PlantInvalid(n // 32, invalid_color=100), stop=60)
    table = Table(
        title="midpoint attack outcomes",
        columns=["process", "stabilized", "won with INVALID value"],
    )
    for name, factory in (("2-median", TwoMedian), ("3-majority", ThreeMajority)):
        stabilized = invalid = 0
        for seed in range(seeds):
            result = run_with_adversary(
                factory(), initial, schedule, rng=seed,
                max_rounds=30_000, stable_fraction=0.9,
            )
            stabilized += int(result.stabilized)
            invalid += int(result.stabilized and not result.winner_is_valid)
        table.add_row(name, f"{stabilized}/{seeds}", f"{invalid}/{seeds}")
    print(table.render())
    print(
        "\n2-Median's total order lets a planted middle value become the\n"
        "median of honest extremes; 3-Majority only ever amplifies existing\n"
        "support, so the invalid color dies once the adversary stops."
    )


def main() -> None:
    three_majority_resilience()
    two_median_validity_failure()


if __name__ == "__main__":
    main()
