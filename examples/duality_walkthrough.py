"""Figure 1, executable: the Voter / coalescing-random-walks duality.

Run with::

    python examples/duality_walkthrough.py

Draws one shared matrix of pull choices on a small complete graph,
then shows — node by node — that running coalescing random walks forward
and the Voter process on the time-reversed choices produces the *same*
map, exactly as the paper's Figure 1 depicts.  Then verifies the count
identity ``T^k_V = T^k_C`` statistically on a larger instance.
"""

import numpy as np

from repro.coalescing import (
    CoalescingWalks,
    run_duality_coupling,
    voter_opinions_reversed,
    walk_positions_forward,
)
from repro.core import Configuration
from repro.engine import ColorsAtMost, repeat_first_passage
from repro.experiments import Table
from repro.graphs import CompleteGraph
from repro.processes import Voter


def tiny_walkthrough(n=8, horizon=4, seed=5):
    graph = CompleteGraph(n)
    rng = np.random.default_rng(seed)
    pulls = graph.pull_matrix(horizon, rng)

    print(f"shared randomness: Y[t][u] = node u's pull in round t (n={n}, T={horizon})\n")
    header = "        " + "".join(f"u={u:<4}" for u in range(n))
    print(header)
    for t in range(horizon):
        print(f"  Y[{t}]  " + "".join(f"{pulls[t][u]:<5}" for u in range(n)))

    walks = walk_positions_forward(pulls)
    opinions = voter_opinions_reversed(pulls)
    print("\nforward coalescing walks  X_T(u) = Y[T-1](...Y[0](u)):")
    print("        " + "".join(f"{walks[u]:<5}" for u in range(n)))
    print("reversed-order Voter opinions O(u):")
    print("        " + "".join(f"{opinions[u]:<5}" for u in range(n)))
    identical = np.array_equal(walks, opinions)
    print(f"\nmaps identical: {identical}   "
          f"(surviving walks = remaining opinions = {np.unique(walks).size})")
    assert identical


def statistical_identity(n=256, k=8, reps=30):
    print(f"\ndistributional identity T^{k}_V = T^{k}_C at n={n} ({reps} runs each)\n")
    voter_times = repeat_first_passage(
        Voter, Configuration.singletons(n), ColorsAtMost(k), reps, rng=11
    )
    walker = CoalescingWalks(CompleteGraph(n))
    walk_times = np.asarray(
        [walker.run_until(k, np.random.default_rng(500 + s)).rounds for s in range(reps)]
    )
    table = Table(title="reduction to k colors / k walks", columns=["process", "mean", "median"])
    table.add_row("voter T^k_V", float(voter_times.mean()), float(np.median(voter_times)))
    table.add_row("coalescence T^k_C", float(walk_times.mean()), float(np.median(walk_times)))
    print(table.render())


def main() -> None:
    tiny_walkthrough()
    for seed in range(3):
        witness = run_duality_coupling(CompleteGraph(64), 32, np.random.default_rng(seed))
        assert witness.maps_identical
    print("\n(replayed on n=64, T=32 over 3 seeds: coupled maps identical every time)")
    statistical_identity()


if __name__ == "__main__":
    main()
