"""Saving and loading experiment results as JSON.

Sweeps are cheap to re-run but not free; persisting them lets EXPERIMENTS.md
tables be regenerated, diffed and post-processed without re-simulating.
The format is deliberately plain JSON — one object per sweep with raw
per-point samples — so downstream tooling needs nothing but the standard
library to consume it.

Schema versions
---------------

* **1** — the original layout: ``name``, ``param_name``, ``points`` of
  ``{param, samples, predicted}``.  Still readable; the PR-4 provenance
  fields default (``rng_mode="batched"``, ``resolved_backend=None``).
* **2** (current) — adds the execution provenance version 1 dropped:
  ``rng_mode`` at the sweep level and ``resolved_backend`` per point,
  both round-tripped losslessly.  A point with no paper-scale prediction
  (NaN in memory, e.g. a default :func:`repro.api.sweep` call) is
  written as ``null`` so the file stays strict JSON.

Versions newer than :data:`FORMAT_VERSION` are rejected with a clear
error — a file a future repro wrote may carry semantics this build
cannot honour, and silently dropping fields is how provenance rots.
"""

from __future__ import annotations

import json
import math
import os

import numpy as np

from ..engine.batch import summarize
from .harness import SweepPoint, SweepResult

__all__ = [
    "FORMAT_VERSION",
    "sweep_to_dict",
    "sweep_from_dict",
    "save_sweep",
    "load_sweep",
]

FORMAT_VERSION = 2

#: Versions this build can read (older layouts upgrade on load).
_READABLE_VERSIONS = (1, 2)


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialise a :class:`SweepResult` (raw samples included)."""
    return {
        "format_version": FORMAT_VERSION,
        "name": result.name,
        "param_name": result.param_name,
        "rng_mode": result.rng_mode,
        "points": [
            {
                "param": int(point.param),
                "samples": [int(v) for v in point.samples],
                "predicted": (
                    float(point.predicted)
                    if math.isfinite(point.predicted)
                    else None
                ),
                "resolved_backend": point.resolved_backend,
            }
            for point in result.points
        ],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` from :func:`sweep_to_dict` output.

    Summaries are recomputed from the raw samples, so files edited by
    hand stay internally consistent (or fail loudly on bad samples).
    """
    version = payload.get("format_version")
    if version not in _READABLE_VERSIONS:
        raise ValueError(
            f"unsupported sweep format version {version!r}; this build reads "
            f"versions {list(_READABLE_VERSIONS)} (a newer repro probably "
            "wrote the file — upgrade to read it)"
        )
    points = []
    for entry in payload["points"]:
        samples = np.asarray(entry["samples"], dtype=np.int64)
        points.append(
            SweepPoint(
                param=int(entry["param"]),
                samples=samples,
                summary=summarize(samples),
                predicted=(
                    float(entry["predicted"])
                    if entry["predicted"] is not None
                    else float("nan")
                ),
                resolved_backend=entry.get("resolved_backend"),
            )
        )
    return SweepResult(
        name=str(payload["name"]),
        param_name=str(payload["param_name"]),
        points=points,
        rng_mode=str(payload.get("rng_mode", "batched")),
    )


def save_sweep(result: SweepResult, path: str) -> None:
    """Write a sweep to ``path`` as pretty-printed JSON (atomically)."""
    payload = sweep_to_dict(result)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def load_sweep(path: str) -> SweepResult:
    """Read a sweep previously written by :func:`save_sweep`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return sweep_from_dict(payload)
