"""Saving and loading experiment results as JSON.

Sweeps are cheap to re-run but not free; persisting them lets EXPERIMENTS.md
tables be regenerated, diffed and post-processed without re-simulating.
The format is deliberately plain JSON — one object per sweep with raw
per-point samples — so downstream tooling needs nothing but the standard
library to consume it.
"""

from __future__ import annotations

import json
import os
from typing import Any

import numpy as np

from ..engine.batch import summarize
from .harness import SweepPoint, SweepResult

__all__ = ["sweep_to_dict", "sweep_from_dict", "save_sweep", "load_sweep"]

_FORMAT_VERSION = 1


def sweep_to_dict(result: SweepResult) -> dict:
    """Serialise a :class:`SweepResult` (raw samples included)."""
    return {
        "format_version": _FORMAT_VERSION,
        "name": result.name,
        "param_name": result.param_name,
        "points": [
            {
                "param": int(point.param),
                "samples": [int(v) for v in point.samples],
                "predicted": float(point.predicted),
            }
            for point in result.points
        ],
    }


def sweep_from_dict(payload: dict) -> SweepResult:
    """Rebuild a :class:`SweepResult` from :func:`sweep_to_dict` output.

    Summaries are recomputed from the raw samples, so files edited by
    hand stay internally consistent (or fail loudly on bad samples).
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported sweep format version: {version!r}")
    points = []
    for entry in payload["points"]:
        samples = np.asarray(entry["samples"], dtype=np.int64)
        points.append(
            SweepPoint(
                param=int(entry["param"]),
                samples=samples,
                summary=summarize(samples),
                predicted=float(entry["predicted"]),
            )
        )
    return SweepResult(
        name=str(payload["name"]),
        param_name=str(payload["param_name"]),
        points=points,
    )


def save_sweep(result: SweepResult, path: str) -> None:
    """Write a sweep to ``path`` as pretty-printed JSON (atomically)."""
    payload = sweep_to_dict(result)
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp_path, path)


def load_sweep(path: str) -> SweepResult:
    """Read a sweep previously written by :func:`save_sweep`."""
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    return sweep_from_dict(payload)
