"""Initial-configuration (workload) generators.

Each generator produces the starting configurations the paper's
statements quantify over:

* ``singletons`` — the n-color leader-election start (Theorems 1, 4, 5);
* ``balanced`` — ``k`` colors with (near-)equal support, no bias
  ([BCN+16]'s regime);
* ``biased`` — a plurality color ahead by a prescribed bias (the regime
  of [BCN+14]/[EFK+16] where 2-Choices and 3-Majority behave alike);
* ``bounded_support`` — every color supported by at most ``ℓ`` nodes
  (Theorem 5's hypothesis class, including random such configurations);
* ``power_law`` — heavy-tailed supports, an off-theorem stress workload.
"""

from __future__ import annotations

import numpy as np

from ..core.configuration import Configuration
from ..engine.rng import RandomSource, as_generator

__all__ = [
    "singletons",
    "balanced",
    "biased",
    "bounded_support",
    "power_law",
    "random_composition",
    "resolve_workload",
    "WORKLOADS",
]


def singletons(n: int) -> Configuration:
    """All nodes pairwise distinct — the hardest symmetric start."""
    return Configuration.singletons(n)


def balanced(n: int, k: int) -> Configuration:
    """``k`` colors, supports differing by at most one (bias ≤ 1)."""
    return Configuration.balanced(n, k)


def biased(n: int, k: int, bias: int) -> Configuration:
    """Near-balanced ``k``-color configuration with a prescribed bias."""
    return Configuration.biased(n, k, bias)


def bounded_support(
    n: int, max_support: int, rng: RandomSource = None
) -> Configuration:
    """A random configuration with every color supported by ≤ ``max_support``.

    Theorem 5's statement covers every such configuration; sampling them
    uniformly-ish (greedy random fill) exercises the theorem beyond the
    singleton special case.
    """
    if max_support < 1:
        raise ValueError("max_support must be positive")
    generator = as_generator(rng)
    remaining = n
    counts = []
    while remaining > 0:
        take = int(generator.integers(1, min(max_support, remaining) + 1))
        counts.append(take)
        remaining -= take
    return Configuration(np.asarray(counts, dtype=np.int64))


def power_law(n: int, k: int, exponent: float = 2.0, rng: RandomSource = None) -> Configuration:
    """Heavy-tailed supports ``∝ rank^{−exponent}`` over ``k`` colors."""
    if k < 1 or k > n:
        raise ValueError("need 1 <= k <= n")
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    weights = 1.0 / np.arange(1, k + 1, dtype=float) ** exponent
    weights /= weights.sum()
    counts = np.floor(weights * n).astype(np.int64)
    counts[counts == 0] = 1
    # Repair rounding drift while preserving the shape.
    excess = int(counts.sum()) - n
    generator = as_generator(rng)
    while excess > 0:
        candidates = np.flatnonzero(counts > 1)
        victim = int(generator.choice(candidates))
        counts[victim] -= 1
        excess -= 1
    while excess < 0:
        counts[0] += 1
        excess += 1
    return Configuration(counts)


def random_composition(n: int, k: int, rng: RandomSource = None) -> Configuration:
    """A uniformly random composition of ``n`` into ``k`` positive parts.

    Stars-and-bars sampling; gives irregular but unbiased-on-average
    workloads for property-style integration tests.
    """
    if not 1 <= k <= n:
        raise ValueError("need 1 <= k <= n")
    generator = as_generator(rng)
    if k == 1:
        return Configuration([n])
    cuts = np.sort(generator.choice(n - 1, size=k - 1, replace=False)) + 1
    boundaries = np.concatenate([[0], cuts, [n]])
    return Configuration(np.diff(boundaries).astype(np.int64))


#: Name → generator registry used by harness code and examples.
WORKLOADS = {
    "singletons": singletons,
    "balanced": balanced,
    "biased": biased,
    "bounded_support": bounded_support,
    "power_law": power_law,
    "random_composition": random_composition,
}


def resolve_workload(value, n: int) -> Configuration:
    """A declarative workload value → a start configuration for ``n`` nodes.

    ``value`` is a registry name, or the study layer's canonical
    ``{"name": ..., "kwargs": {...}}`` form where the kwargs are the
    generator's arguments beyond ``n`` (e.g. ``{"name": "balanced",
    "kwargs": {"k": 2}}``).  This is how :class:`~repro.study.StudySpec`
    axes, the CLI's flags and the examples all name their start
    configurations through one vocabulary.
    """
    if isinstance(value, str):
        value = {"name": value, "kwargs": {}}
    name = value["name"]
    try:
        generator = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; available: {', '.join(sorted(WORKLOADS))}"
        ) from None
    try:
        return generator(n, **value.get("kwargs", {}))
    except TypeError as exc:
        raise ValueError(f"workload {name!r}: {exc}") from exc
