"""Rendering experiment results as aligned text tables.

The paper has no numeric tables of its own, so these renderers produce
the tables EXPERIMENTS.md and the benchmark harness report: one row per
parameter point, columns for measured statistics and the paper's
predicted scale, plus fitted-exponent footers for the scaling sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_table"]


@dataclass
class Table:
    """A simple column-aligned text table with a title and footnotes."""

    title: str
    columns: Sequence
    rows: list = field(default_factory=list)
    footnotes: list = field(default_factory=list)

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells; table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(_format_cell(v) for v in values))

    def add_footnote(self, text: str) -> None:
        self.footnotes.append(text)

    def render(self) -> str:
        return format_table(self.title, self.columns, self.rows, self.footnotes)

    def __str__(self) -> str:
        return self.render()


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def format_table(title, columns, rows, footnotes=()) -> str:
    """Render rows as an aligned monospace table."""
    header = [str(c) for c in columns]
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def _line(cells):
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [title, rule, _line(header), rule]
    lines.extend(_line(row) for row in rows)
    lines.append(rule)
    lines.extend(f"  * {note}" for note in footnotes)
    return "\n".join(lines)
