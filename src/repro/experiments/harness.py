"""Parameter sweeps over system size — the experiment harness core.

Every scaling experiment in EXPERIMENTS.md has the same shape: for each
``n`` in a geometric sweep, repeat a first-passage measurement over
independent seeds, summarise, fit a growth exponent, and compare with the
paper's predicted scale.  :func:`sweep_first_passage` implements the
shape once; the per-experiment benchmark modules configure it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.configuration import Configuration
from ..engine.batch import BatchSummary, repeat_first_passage, summarize
from ..engine.rng import RandomSource, derive_seed
from ..engine.stopping import StoppingCondition
from ..processes.base import AgentProcess
from ..analysis.statistics import PowerLawFit, fit_power_law
from .reporting import Table

__all__ = ["SweepPoint", "SweepResult", "sweep_first_passage"]


@dataclass
class SweepPoint:
    """Measurements at a single parameter value."""

    param: int
    samples: np.ndarray
    summary: BatchSummary
    predicted: float


@dataclass
class SweepResult:
    """A full sweep: one :class:`SweepPoint` per parameter value."""

    name: str
    param_name: str
    points: "list[SweepPoint]"

    def params(self) -> np.ndarray:
        return np.asarray([p.param for p in self.points], dtype=float)

    def means(self) -> np.ndarray:
        return np.asarray([p.summary.mean for p in self.points])

    def predictions(self) -> np.ndarray:
        return np.asarray([p.predicted for p in self.points])

    def fit(self) -> PowerLawFit:
        """Power-law fit of the mean first-passage time vs the parameter."""
        return fit_power_law(self.params(), self.means())

    def prediction_ratio_drift(self) -> float:
        """Max/min of measured-over-predicted across the sweep.

        Close to 1 means the measured curve tracks the paper's scale with
        a stable constant; large drift signals a different exponent.
        """
        ratio = self.means() / self.predictions()
        return float(ratio.max() / ratio.min())

    def to_table(self, predicted_label: str = "paper scale") -> Table:
        table = Table(
            title=self.name,
            columns=[self.param_name, "runs", "mean", "sem", "median", "max", predicted_label, "mean/scale"],
        )
        for point in self.points:
            table.add_row(
                point.param,
                point.summary.count,
                point.summary.mean,
                point.summary.sem,
                point.summary.median,
                point.summary.maximum,
                point.predicted,
                point.summary.mean / point.predicted if point.predicted else float("nan"),
            )
        if len(self.points) >= 3:
            fit = self.fit()
            table.add_footnote(f"fit: {fit.summary()}")
        else:
            table.add_footnote("fit: n/a (need at least three sweep points)")
        return table


def sweep_first_passage(
    name: str,
    process_factory: "Callable[[int], AgentProcess]",
    workload: "Callable[[int], Configuration]",
    stop: "Callable[[int], StoppingCondition]",
    n_values: Sequence,
    repetitions: int,
    seed: RandomSource,
    predicted: "Callable[[int], float]",
    max_rounds: "Callable[[int], int] | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    param_name: str = "n",
    workers: "int | None" = None,
    scheduler: str = "synchronous",
    adversary=None,
) -> SweepResult:
    """Run a first-passage scaling sweep.

    Parameters are callables of ``n`` so a single harness covers all the
    experiments: ``process_factory(n)`` builds the protocol (some need
    ``n``, e.g. for thresholds), ``workload(n)`` the start configuration,
    ``stop(n)`` the stopping condition, ``predicted(n)`` the paper's
    scale.  Seeds derive deterministically from ``seed`` per sweep point.

    Every execution knob of :func:`repeat_first_passage` threads through:
    ``backend`` is any runtime registry name or alias (``"ensemble-auto"``
    runs each sweep point's repetitions lock-step, ``"sharded-auto"``
    spreads them over ``workers`` pool processes, the sequential names
    remain the exactness reference), ``rng_mode="per-replica"``
    reproduces sequential sample streams bit-for-bit on every backend
    that supports it, and the model axes make scenario sweeps
    first-class: ``scheduler="asynchronous"`` measures first-passage
    *ticks* of the one-node-per-tick model, and ``adversary`` (an
    :class:`~repro.adversary.adversary.Adversary` instance or a callable
    of ``n`` building one per sweep point) measures §5
    rounds-to-stabilisation.
    """
    points = []
    for index, n in enumerate(n_values):
        n = int(n)
        point_seed = derive_seed(seed, index)
        samples = repeat_first_passage(
            process_factory=lambda n=n: process_factory(n),
            initial=workload(n),
            stop=stop(n),
            repetitions=repetitions,
            rng=point_seed,
            max_rounds=max_rounds(n) if max_rounds is not None else None,
            backend=backend,
            rng_mode=rng_mode,
            workers=workers,
            scheduler=scheduler,
            adversary=adversary(n) if callable(adversary) else adversary,
        )
        points.append(
            SweepPoint(
                param=n,
                samples=samples,
                summary=summarize(samples),
                predicted=float(predicted(n)),
            )
        )
    return SweepResult(name=name, param_name=param_name, points=points)
