"""Parameter sweeps over system size — the experiment harness core.

Every scaling experiment in EXPERIMENTS.md has the same shape: for each
``n`` in a geometric sweep, repeat a first-passage measurement over
independent seeds, summarise, fit a growth exponent, and compare with the
paper's predicted scale.

Since the declarative study layer (:mod:`repro.study`) became the public
API, this module is a *consumer* of it: :func:`sweep_first_passage`
compiles its per-``n`` callables into study cells and executes them
through the same :func:`~repro.study.runner.execute_cells` loop that
:func:`~repro.study.runner.run_study` uses, so sweeps inherit the
runtime's provenance (resolved backend per point) for free.  New code
should prefer the declarative front doors — :func:`repro.api.sweep` for
the common named-process/named-workload case, or a full
:class:`~repro.study.StudySpec` when the grid has more axes — and treat
this callable-parameterised entry point as the legacy escape hatch for
experiments whose thresholds are arbitrary functions of ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.configuration import Configuration
from ..engine.batch import BatchSummary, first_passage_plan, summarize
from ..engine.rng import RandomSource, derive_seed
from ..engine.stopping import StoppingCondition
from ..processes.base import AgentProcess
from ..analysis.statistics import PowerLawFit, fit_power_law
from .reporting import Table

__all__ = [
    "SweepPoint",
    "SweepResult",
    "sweep_first_passage",
    "sweep_result_from_records",
]


@dataclass
class SweepPoint:
    """Measurements at a single parameter value."""

    param: int
    samples: np.ndarray
    summary: BatchSummary
    predicted: float
    #: Which backend the runtime's cost model actually executed (PR 4
    #: provenance; ``None`` on points loaded from version-1 files).
    resolved_backend: "str | None" = None


@dataclass
class SweepResult:
    """A full sweep: one :class:`SweepPoint` per parameter value."""

    name: str
    param_name: str
    points: "list[SweepPoint]"
    #: Randomness regime the sweep ran under (``"batched"`` on legacy files).
    rng_mode: str = "batched"

    def params(self) -> np.ndarray:
        return np.asarray([p.param for p in self.points], dtype=float)

    def means(self) -> np.ndarray:
        return np.asarray([p.summary.mean for p in self.points])

    def predictions(self) -> np.ndarray:
        return np.asarray([p.predicted for p in self.points])

    def fit(self) -> PowerLawFit:
        """Power-law fit of the mean first-passage time vs the parameter."""
        return fit_power_law(self.params(), self.means())

    def prediction_ratio_drift(self) -> float:
        """Max/min of measured-over-predicted across the sweep.

        Close to 1 means the measured curve tracks the paper's scale with
        a stable constant; large drift signals a different exponent.
        """
        ratio = self.means() / self.predictions()
        return float(ratio.max() / ratio.min())

    def to_table(self, predicted_label: str = "paper scale") -> Table:
        table = Table(
            title=self.name,
            columns=[self.param_name, "runs", "mean", "sem", "median", "max", predicted_label, "mean/scale"],
        )
        for point in self.points:
            table.add_row(
                point.param,
                point.summary.count,
                point.summary.mean,
                point.summary.sem,
                point.summary.median,
                point.summary.maximum,
                point.predicted,
                point.summary.mean / point.predicted if point.predicted else float("nan"),
            )
        if len(self.points) >= 3:
            fit = self.fit()
            table.add_footnote(f"fit: {fit.summary()}")
        else:
            table.add_footnote("fit: n/a (need at least three sweep points)")
        return table


def sweep_result_from_records(
    name: str,
    param_name: str,
    records,
    predicted: "Callable[[int], float]",
    rng_mode: str = "batched",
) -> SweepResult:
    """Study :class:`~repro.study.store.RunRecord`\\ s → a :class:`SweepResult`.

    The bridge the spec-driven front doors use to keep the sweep-report
    machinery (tables, power-law fits, persistence): each record becomes
    one sweep point at its ``params["n"]``, and the paper-scale
    prediction — a presentation concern, not provenance — is evaluated
    at conversion time.
    """
    points = [
        SweepPoint(
            param=int(record.params["n"]),
            samples=record.times,
            summary=summarize(record.times),
            predicted=float(predicted(int(record.params["n"]))),
            resolved_backend=record.resolved_backend,
        )
        for record in records
    ]
    return SweepResult(
        name=name, param_name=param_name, points=points, rng_mode=rng_mode
    )


def sweep_first_passage(
    name: str,
    process_factory: "Callable[[int], AgentProcess]",
    workload: "Callable[[int], Configuration]",
    stop: "Callable[[int], StoppingCondition]",
    n_values: Sequence,
    repetitions: int,
    seed: RandomSource,
    predicted: "Callable[[int], float]",
    max_rounds: "Callable[[int], int] | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    param_name: str = "n",
    workers: "int | None" = None,
    scheduler: str = "synchronous",
    adversary=None,
) -> SweepResult:
    """Run a first-passage scaling sweep (legacy callable-parameterised API).

    Parameters are callables of ``n`` so a single harness covers all the
    experiments: ``process_factory(n)`` builds the protocol (some need
    ``n``, e.g. for thresholds), ``workload(n)`` the start configuration,
    ``stop(n)`` the stopping condition, ``predicted(n)`` the paper's
    scale.  Seeds derive deterministically from ``seed`` per sweep point.

    Every execution knob of the unified runtime threads through
    (``backend``, ``rng_mode``, ``workers``, ``scheduler``,
    ``adversary`` — an instance or a callable of ``n``); see
    :func:`repro.engine.batch.repeat_first_passage` for their meanings.

    .. deprecated:: 1.1
        This is now a shim over the study layer: each sweep point is
        compiled to a study cell and executed by
        :func:`repro.study.runner.execute_cells`.  Prefer
        :func:`repro.api.sweep` (declarative arguments, same result
        type) or a :class:`repro.study.StudySpec` with a ``zip``
        expansion when thresholds vary per ``n``.
    """
    from ..study.compile import StudyCell, cell_hash
    from ..study.runner import execute_cells

    cells = []
    for index, n in enumerate(n_values):
        n = int(n)
        point_seed = derive_seed(seed, index)
        plan = first_passage_plan(
            process_factory=lambda n=n: process_factory(n),
            initial=workload(n),
            stop=stop(n),
            repetitions=repetitions,
            rng=point_seed,
            max_rounds=max_rounds(n) if max_rounds is not None else None,
            backend=backend,
            rng_mode=rng_mode,
            workers=workers,
            scheduler=scheduler,
            adversary=adversary(n) if callable(adversary) else adversary,
        )
        params = {
            "sweep": name,
            "param_name": param_name,
            "n": n,
            "seed": point_seed,
            "repetitions": repetitions,
            "backend": backend,
            "rng_mode": rng_mode,
            "scheduler": scheduler,
        }
        cells.append(
            StudyCell(
                index=index, cell_id=cell_hash(params), params=params, plan=plan
            )
        )
    records = execute_cells(cells)
    return sweep_result_from_records(
        name, param_name, records, predicted, rng_mode=rng_mode
    )
