"""Dependency-free ASCII plotting for trajectories and sweeps.

The environment reproduces a theory paper; its "figures" are series of
numbers.  These helpers render them as monospace charts so examples and
benchmark logs can show shapes (drift curves, scaling laws, phase
boundaries) without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["spark_line", "line_chart", "log_log_chart"]

_SPARK_LEVELS = " ▁▂▃▄▅▆▇█"


def spark_line(values: Sequence, width: int = 64, log_scale: bool = False) -> str:
    """A one-line sparkline of ``values``, resampled to ``width`` columns."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot sparkline an empty series")
    if log_scale:
        if np.any(arr <= 0):
            raise ValueError("log-scale sparkline needs positive values")
        arr = np.log(arr)
    idx = np.linspace(0, arr.size - 1, num=min(width, arr.size)).astype(int)
    sampled = arr[idx]
    lo = float(sampled.min())
    hi = float(sampled.max())
    span = hi - lo
    chars = []
    for value in sampled:
        level = 0 if span == 0 else int(round((value - lo) / span * (len(_SPARK_LEVELS) - 1)))
        chars.append(_SPARK_LEVELS[level])
    return "".join(chars)


def line_chart(
    series: dict,
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """A multi-series ASCII line chart; each series is a sequence of y values.

    Series are resampled to a common ``width``; each gets a distinct
    marker.  Y axis is shared and linear.
    """
    if not series:
        raise ValueError("need at least one series")
    if height < 3 or width < 8:
        raise ValueError("chart too small to draw")
    markers = "*+ox#@%&"
    resampled = {}
    lo, hi = math.inf, -math.inf
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size == 0:
            raise ValueError(f"series {name!r} is empty")
        idx = np.linspace(0, arr.size - 1, num=min(width, arr.size)).astype(int)
        sampled = arr[idx]
        resampled[name] = sampled
        lo = min(lo, float(sampled.min()))
        hi = max(hi, float(sampled.max()))
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    for slot, (name, sampled) in enumerate(resampled.items()):
        marker = markers[slot % len(markers)]
        for x, value in enumerate(sampled):
            y = int(round((value - lo) / span * (height - 1)))
            grid[height - 1 - y][x] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{hi:10.3g} ┐")
    for row in grid:
        lines.append(" " * 11 + "│" + "".join(row))
    lines.append(f"{lo:10.3g} ┴" + "─" * width)
    legend = "   ".join(
        f"{markers[i % len(markers)]} {name}" for i, name in enumerate(resampled)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def log_log_chart(
    x: Sequence,
    series: dict,
    height: int = 12,
    width: int = 64,
    title: str = "",
) -> str:
    """Scaling-law view: both axes log-transformed before charting.

    Straight lines correspond to power laws; the slope difference between
    the 2-Choices and 3-Majority series *is* the paper's Theorem 1.
    """
    x_arr = np.asarray(list(x), dtype=float)
    if np.any(x_arr <= 0):
        raise ValueError("log-log chart needs positive x")
    transformed = {}
    for name, values in series.items():
        arr = np.asarray(list(values), dtype=float)
        if arr.size != x_arr.size:
            raise ValueError(f"series {name!r} length does not match x")
        if np.any(arr <= 0):
            raise ValueError(f"series {name!r} must be positive for log-log")
        transformed[name] = np.log10(arr)
    chart = line_chart(transformed, height=height, width=width, title=title)
    footer = (
        f"            x: log10 from {x_arr.min():g} to {x_arr.max():g}; "
        "y: log10 of each series"
    )
    return chart + "\n" + footer
