"""Experiment harness: workloads, sweeps, reporting."""

from .harness import (
    SweepPoint,
    SweepResult,
    sweep_first_passage,
    sweep_result_from_records,
)
from .persistence import (
    FORMAT_VERSION,
    load_sweep,
    save_sweep,
    sweep_from_dict,
    sweep_to_dict,
)
from .plotting import line_chart, log_log_chart, spark_line
from .reporting import Table, format_table
from .workloads import (
    WORKLOADS,
    balanced,
    biased,
    bounded_support,
    power_law,
    random_composition,
    resolve_workload,
    singletons,
)

__all__ = [
    "FORMAT_VERSION",
    "SweepPoint",
    "SweepResult",
    "Table",
    "WORKLOADS",
    "balanced",
    "biased",
    "bounded_support",
    "format_table",
    "line_chart",
    "load_sweep",
    "log_log_chart",
    "power_law",
    "random_composition",
    "resolve_workload",
    "save_sweep",
    "spark_line",
    "singletons",
    "sweep_first_passage",
    "sweep_from_dict",
    "sweep_result_from_records",
    "sweep_to_dict",
]
