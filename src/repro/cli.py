"""Command-line interface: ``python -m repro <command>``.

Three subcommands cover the common interactive uses of the library:

``simulate``
    Run one process from a chosen workload and print the outcome (and,
    with ``--trace``, the remaining-colors trajectory).

``sweep``
    A consensus-time scaling sweep over ``n`` for one process, with a
    power-law fit — the quick-look version of benchmark E1/E3.  With
    ``--output`` the raw sweep is saved as JSON (see
    :mod:`repro.experiments.persistence`).  The execution strategy is any
    runtime registry backend (``--backend``, choices derived from
    :func:`repro.engine.runtime.backend_choices`), and the model axes are
    plan fields: ``--scheduler asynchronous`` sweeps the one-node-per-
    tick model (tick counts), ``--adversary plant-invalid --budget 4``
    sweeps §5 rounds-to-stabilisation under a dynamic adversary.

``counterexample``
    Print the Appendix-B report (the exact ``7/12`` computation).

The CLI is a thin shell over the public API; everything it does is a
few lines of library calls (shown in ``examples/``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .adversary import (
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
)
from .analysis import fit_power_law, three_majority_consensus_upper
from .core import Configuration
from .core.hierarchy import appendix_b_counterexample, equation_24_terms
from .engine import Consensus, MetricRecorder, repeat_first_passage, run
from .engine.plan import SCHEDULERS
from .engine.runtime import backend_choices
from .experiments import Table
from .experiments.persistence import save_sweep
from .experiments.harness import sweep_first_passage
from .processes import available_processes, make_process

#: §5 adversary strategies the sweep subcommand can instantiate per n.
_ADVERSARIES = {
    "plant-invalid": lambda budget, colors: PlantInvalid(
        budget, invalid_color=colors + 5
    ),
    "boost-runner-up": lambda budget, colors: BoostRunnerUp(budget),
    "random-noise": lambda budget, colors: RandomNoise(budget, colors),
}

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Ignore or Comply? On Breaking Symmetry in "
            "Consensus' (PODC 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one process to consensus")
    simulate.add_argument("process", help=f"one of: {', '.join(available_processes())}")
    simulate.add_argument("--nodes", "-n", type=int, default=1024)
    simulate.add_argument(
        "--colors", "-k", type=int, default=None,
        help="initial number of colors (default: n, i.e. leader election)",
    )
    simulate.add_argument("--bias", type=int, default=0, help="initial bias (needs -k)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-rounds", type=int, default=None)
    simulate.add_argument("--trace", action="store_true", help="print the trajectory")

    sweep = sub.add_parser("sweep", help="consensus-time scaling sweep over n")
    sweep.add_argument("process", help=f"one of: {', '.join(available_processes())}")
    sweep.add_argument("--min-n", type=int, default=256)
    sweep.add_argument("--max-n", type=int, default=2048)
    sweep.add_argument("--repetitions", "-r", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--output", "-o", default=None, help="save raw sweep JSON here")
    sweep.add_argument(
        "--backend",
        default="ensemble-auto",
        choices=list(backend_choices()),
        help=(
            "execution strategy, resolved through the runtime's backend "
            "registry (default: ensemble-auto, the lock-step vectorized "
            "family); the *-auto aliases pick within a family by the "
            "registry's cost model, sharded-* names run on the persistent "
            "multiprocessing pool (see --workers), and the sequential "
            "names are the bit-for-bit reference paths"
        ),
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the sharded-* backends (default: all "
            "cores; 1 = in-process, bit-for-bit the ensemble-* backend)"
        ),
    )
    sweep.add_argument(
        "--scheduler",
        default="synchronous",
        choices=list(SCHEDULERS),
        help=(
            "scheduling model: synchronous rounds (the paper's), or the "
            "asynchronous one-node-per-tick companion model (the sweep "
            "then measures first-passage ticks; predictions are scaled "
            "by n to match)"
        ),
    )
    sweep.add_argument(
        "--colors", "-k",
        type=int,
        default=None,
        help="balanced k-color start (default: n singleton colors)",
    )
    sweep.add_argument(
        "--adversary",
        default=None,
        choices=sorted(_ADVERSARIES),
        help=(
            "run the §5 robust model: corrupt up to --budget nodes per "
            "round with this strategy and measure rounds until a stable "
            "almost-all consensus regime"
        ),
    )
    sweep.add_argument(
        "--budget",
        type=int,
        default=None,
        help=(
            "adversary corruption budget F per round (default: the "
            "[BCN+16] tolerance scale for each sweep point)"
        ),
    )
    sweep.add_argument(
        "--rng-mode",
        default="batched",
        choices=["batched", "per-replica"],
        help=(
            "randomness regime: batched (fastest) or per-replica "
            "(reproduces the sequential reference streams bit-for-bit)"
        ),
    )

    sub.add_parser("counterexample", help="print the Appendix-B 7/12 report")
    return parser


def _initial_configuration(args: argparse.Namespace) -> Configuration:
    if args.colors is None:
        if args.bias:
            raise SystemExit("--bias requires --colors")
        return Configuration.singletons(args.nodes)
    if args.bias:
        return Configuration.biased(args.nodes, args.colors, args.bias)
    return Configuration.balanced(args.nodes, args.colors)


def _cmd_simulate(args: argparse.Namespace) -> int:
    process = make_process(args.process)
    initial = _initial_configuration(args)
    recorder = MetricRecorder(names=("num_colors", "max_support")) if args.trace else None
    result = run(
        process,
        initial,
        rng=args.seed,
        stop=Consensus(),
        max_rounds=args.max_rounds,
        recorder=recorder,
    )
    print(
        f"{process.name}: consensus after {result.rounds} rounds "
        f"(n={initial.num_nodes}, start colors={initial.num_colors}, "
        f"backend={result.backend})"
    )
    if recorder is not None:
        table = Table(title="trajectory", columns=["round", "colors", "max support"])
        data = recorder.as_dict()
        stride = max(1, len(recorder) // 20)
        for i in range(0, len(recorder), stride):
            table.add_row(int(data["rounds"][i]), int(data["num_colors"][i]), int(data["max_support"][i]))
        print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.min_n < 2 or args.max_n < args.min_n:
        raise SystemExit("need 2 <= min-n <= max-n")
    if args.colors is not None and args.colors < 2:
        raise SystemExit("--colors must be at least 2")
    if args.adversary is not None and args.scheduler != "synchronous":
        raise SystemExit(
            "--adversary needs the synchronous scheduler (the §5 fault "
            "model corrupts after each synchronous round)"
        )
    n_values = [args.min_n]
    while n_values[-1] * 2 <= args.max_n:
        n_values.append(n_values[-1] * 2)

    if args.colors is None:
        workload, start = Configuration.singletons, "n distinct colors"
    else:
        workload = lambda n: Configuration.balanced(n, args.colors)
        start = f"{args.colors} balanced colors"

    adversary = None
    quantity, predicted_label = "consensus time", "Thm-4 scale"
    # Ticks perform n adoption draws per synchronous-round equivalent, so
    # the paper-scale prediction column is multiplied by n under the
    # asynchronous scheduler.
    tick_scale = (
        (lambda n: n) if args.scheduler == "asynchronous" else (lambda n: 1)
    )
    if args.scheduler == "asynchronous":
        quantity, predicted_label = "consensus ticks", "Thm-4 scale × n"
    if args.adversary is not None:
        make_adversary = _ADVERSARIES[args.adversary]

        def adversary(n: int):
            colors = args.colors if args.colors is not None else n
            budget = (
                args.budget
                if args.budget is not None
                else max(1, recommended_corruption_budget(n, colors))
            )
            return make_adversary(budget, colors)

        quantity = f"rounds to a stable valid regime vs {args.adversary}"
        predicted_label = "Thm-4 scale"

    try:
        result = sweep_first_passage(
            name=f"{quantity} of {args.process} from {start}",
            process_factory=lambda n: make_process(args.process),
            workload=workload,
            stop=lambda n: Consensus(),
            n_values=n_values,
            repetitions=args.repetitions,
            seed=args.seed,
            predicted=lambda n: three_majority_consensus_upper(n) * tick_scale(n),
            # Adversarial runs can stall (that is the phenomenon under
            # study); keep their horizon at the §5 runner's default instead
            # of the sweep's generous consensus budget.
            max_rounds=lambda n: 50_000 if adversary is not None else 10**7,
            backend=args.backend,
            rng_mode=args.rng_mode,
            workers=args.workers,
            scheduler=args.scheduler,
            adversary=adversary,
        )
    except (TypeError, ValueError) as exc:
        # Backend/axis mismatches surface as runtime rejections; present
        # them as usage errors, not tracebacks.
        raise SystemExit(f"cannot run this sweep: {exc}") from exc
    print(result.to_table(predicted_label=predicted_label).render())
    if args.output:
        save_sweep(result, args.output)
        print(f"raw sweep saved to {args.output}")
    return 0


def _cmd_counterexample() -> int:
    report = appendix_b_counterexample()
    terms = " + ".join(str(t) for t in equation_24_terms())
    print("Appendix B (exact rational arithmetic):")
    print(f"  inputs      x̃ = {tuple(map(str, report.x_upper))} ⪰ x = {tuple(map(str, report.x_lower))}: {report.inputs_comparable}")
    print(f"  α⁴ᴹ(x̃)     = {tuple(map(str, report.alpha_upper))}")
    print(f"  α³ᴹ(x)[0]  = {terms} = {report.top_mass_lower}   (Equation 24)")
    print(f"  α⁴ᴹ(x̃) ⪰ α³ᴹ(x): {report.images_majorize}  →  Lemma-1 hypothesis fails: {report.lemma1_hypothesis_fails()}")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "counterexample":
        return _cmd_counterexample()
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
