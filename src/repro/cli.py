"""Command-line interface: ``python -m repro <command>``.

Four subcommands, all thin shells over the public :mod:`repro.api`
facade (everything they do is a few lines of library calls, shown in
``examples/``):

``simulate``
    Run one process from a chosen workload and print the outcome (and,
    with ``--trace``, the remaining-colors trajectory).

``sweep``
    A consensus-time scaling sweep over ``n`` for one process, with a
    power-law fit — the quick-look version of benchmark E1/E3, via
    :func:`repro.api.sweep`.  With ``--output`` the raw sweep is saved
    as schema-versioned JSON (see :mod:`repro.experiments.persistence`).
    The execution strategy is any runtime registry backend
    (``--backend``), and the model axes are plan fields:
    ``--scheduler asynchronous`` sweeps the one-node-per-tick model,
    ``--adversary plant-invalid --budget 4`` sweeps §5
    rounds-to-stabilisation under a dynamic adversary.

``study``
    The declarative suite runner: ``study run spec.toml`` executes a
    :class:`~repro.study.StudySpec` and checkpoints a provenance-carrying
    result store after every cell — ``--workers N`` schedules cells
    concurrently (bit-for-bit equal to sequential) and ``--cache`` /
    ``--no-cache`` controls the shared content-addressed result cache;
    ``study resume`` completes an interrupted store bit-for-bit;
    ``study validate`` compiles a spec's whole grid without running it;
    ``study report`` renders a saved store without re-simulating;
    ``study cache stats`` / ``study cache gc`` inspect and bound the
    shared cache.  The service verbs — ``study submit`` / ``status`` /
    ``watch`` / ``results`` / ``cancel`` — talk to a running daemon
    over its JSON wire protocol (``--url``, default
    ``$REPRO_SERVE_URL`` or ``http://127.0.0.1:8321``).

``serve``
    The study-execution daemon (:mod:`repro.serve`): accepts specs over
    HTTP, queues them through a single-writer executor, streams
    progress, and survives kill/restart on the same ``--state-dir``
    with bit-for-bit resume.

``counterexample``
    Print the Appendix-B report (the exact ``7/12`` computation).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Sequence

from . import api
from .analysis import three_majority_consensus_upper
from .core.hierarchy import appendix_b_counterexample, equation_24_terms
from .engine import MetricRecorder
from .engine.plan import RNG_MODES, SCHEDULERS
from .engine.runtime import backend_choices
from .experiments import Table
from .experiments.persistence import save_sweep
from .faults import parse_fault_cli
from .processes import available_processes
from .study import (
    ADVERSARY_NAMES,
    journal_path,
    load_spec,
    load_study_store,
    study_report,
)

__all__ = ["main", "build_parser"]

#: The daemon's conventional port (any free port works; ``--port 0``
#: binds an ephemeral one and announces it on stdout).
DEFAULT_SERVE_PORT = 8321


def _serve_base_url(args: argparse.Namespace) -> str:
    if args.url:
        return args.url
    return os.environ.get(
        "REPRO_SERVE_URL", f"http://127.0.0.1:{DEFAULT_SERVE_PORT}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Ignore or Comply? On Breaking Symmetry in "
            "Consensus' (PODC 2017)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="run one process to consensus")
    simulate.add_argument("process", help=f"one of: {', '.join(available_processes())}")
    simulate.add_argument("--nodes", "-n", type=int, default=1024)
    simulate.add_argument(
        "--colors", "-k", type=int, default=None,
        help="initial number of colors (default: n, i.e. leader election)",
    )
    simulate.add_argument("--bias", type=int, default=0, help="initial bias (needs -k)")
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--max-rounds", type=int, default=None)
    simulate.add_argument("--trace", action="store_true", help="print the trajectory")

    sweep = sub.add_parser("sweep", help="consensus-time scaling sweep over n")
    sweep.add_argument("process", help=f"one of: {', '.join(available_processes())}")
    sweep.add_argument("--min-n", type=int, default=256)
    sweep.add_argument("--max-n", type=int, default=2048)
    sweep.add_argument("--repetitions", "-r", type=int, default=3)
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--output", "-o", default=None, help="save raw sweep JSON here")
    sweep.add_argument(
        "--backend",
        default="ensemble-auto",
        choices=list(backend_choices()),
        help=(
            "execution strategy, resolved through the runtime's backend "
            "registry (default: ensemble-auto, the lock-step vectorized "
            "family); the *-auto aliases pick within a family by the "
            "registry's cost model, sharded-* names run on the persistent "
            "multiprocessing pool (see --workers), and the sequential "
            "names are the bit-for-bit reference paths"
        ),
    )
    sweep.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for the sharded-* backends (default: all "
            "cores; 1 = in-process, bit-for-bit the ensemble-* backend)"
        ),
    )
    sweep.add_argument(
        "--scheduler",
        default="synchronous",
        choices=list(SCHEDULERS),
        help=(
            "scheduling model: synchronous rounds (the paper's), or the "
            "asynchronous one-node-per-tick companion model (the sweep "
            "then measures first-passage ticks; predictions are scaled "
            "by n to match)"
        ),
    )
    sweep.add_argument(
        "--colors", "-k",
        type=int,
        default=None,
        help="balanced k-color start (default: n singleton colors)",
    )
    sweep.add_argument(
        "--adversary",
        default=None,
        choices=list(ADVERSARY_NAMES),
        help=(
            "run the §5 robust model: corrupt up to --budget nodes per "
            "round with this strategy and measure rounds until a stable "
            "almost-all consensus regime"
        ),
    )
    sweep.add_argument(
        "--budget",
        type=int,
        default=None,
        help=(
            "adversary corruption budget F per round (default: the "
            "[BCN+16] tolerance scale for each sweep point)"
        ),
    )
    sweep.add_argument(
        "--rng-mode",
        default="batched",
        choices=list(RNG_MODES),
        help=(
            "randomness regime: batched (fastest) or per-replica "
            "(reproduces the sequential reference streams bit-for-bit)"
        ),
    )
    sweep.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "inject node faults each round: 'crash:p=0.01' (crash-stop), "
            "'crash:p=0.01,recover=0.1' (crash-recovery), "
            "'loss:p=0.05' (message loss), 'byzantine:p=0.02' (hostile "
            "rewrites; add color=C for a fixed hostile color); add "
            "start=/stop= to window the injection (synchronous scheduler "
            "only)"
        ),
    )
    sweep.add_argument(
        "--loss",
        type=float,
        default=None,
        metavar="P",
        help="per-round message-loss probability (merges with --faults)",
    )

    study = sub.add_parser(
        "study", help="run / resume / report declarative study specs"
    )
    study_sub = study.add_subparsers(dest="study_command", required=True)

    run = study_sub.add_parser(
        "run", help="execute a StudySpec TOML and checkpoint its result store"
    )
    run.add_argument("spec", help="path to a StudySpec TOML file")
    run.add_argument(
        "--store", "-o", default=None,
        help="result store path (default: <spec>.store.json next to the spec)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="continue into an existing store instead of refusing to clobber it",
    )
    run.add_argument(
        "--max-cells", type=int, default=None,
        help="run at most this many new cells, then checkpoint and exit",
    )
    run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help=(
            "wall-clock budget per cell attempt; a cell exceeding it is "
            "killed and recorded as status=timeout (overrides the spec's "
            "[execution] table)"
        ),
    )
    run.add_argument(
        "--max-attempts", type=int, default=None, metavar="N",
        help=(
            "total attempts per cell for transient/unknown errors "
            "(overrides the spec's [execution] table; default 2)"
        ),
    )
    run.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help=(
            "schedule up to N cells concurrently (default: the spec's "
            "[parallel] table, else sequential); results are bit-for-bit "
            "identical to a sequential run"
        ),
    )
    run.add_argument(
        "--max-inflight", type=int, default=None, metavar="N",
        help=(
            "cap on cells in flight at once under --workers "
            "(default: 2 x workers)"
        ),
    )
    run.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None,
        help=(
            "consult/populate the shared content-addressed result cache "
            "($REPRO_CACHE_DIR, default ~/.cache/repro); --no-cache forces "
            "it off even for a spec whose [cache] table enables it "
            "(default: the spec's table, else off)"
        ),
    )
    run.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="use DIR as the result cache (implies --cache)",
    )
    run.add_argument(
        "--quiet", action="store_true", help="suppress the final report table"
    )

    resume = study_sub.add_parser(
        "resume", help="complete an interrupted study store bit-for-bit"
    )
    resume.add_argument("spec", help="path to the StudySpec TOML file")
    resume.add_argument(
        "--store", "-o", default=None,
        help="store to complete (default: <spec>.store.json next to the spec)",
    )
    resume.add_argument("--max-cells", type=int, default=None)
    resume.add_argument("--deadline", type=float, default=None, metavar="SECONDS")
    resume.add_argument("--max-attempts", type=int, default=None, metavar="N")
    resume.add_argument("--workers", type=int, default=None, metavar="N")
    resume.add_argument("--max-inflight", type=int, default=None, metavar="N")
    resume.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=None
    )
    resume.add_argument("--cache-dir", default=None, metavar="DIR")
    resume.add_argument("--quiet", action="store_true")

    report = study_sub.add_parser(
        "report", help="render a saved study store (no simulation)"
    )
    report.add_argument("store", help="path to a study store JSON file")

    validate = study_sub.add_parser(
        "validate", help="compile a spec's whole grid without running it"
    )
    validate.add_argument("spec", help="path to a StudySpec TOML file")
    validate.add_argument(
        "--cells", action="store_true", help="also list every compiled cell"
    )

    def _serve_url(sub_parser):
        sub_parser.add_argument(
            "--url", default=None, metavar="URL",
            help=(
                "daemon address (default: $REPRO_SERVE_URL, else "
                f"http://127.0.0.1:{DEFAULT_SERVE_PORT})"
            ),
        )

    submit = study_sub.add_parser(
        "submit", help="submit a spec to a running repro serve daemon"
    )
    submit.add_argument("spec", help="path to a StudySpec TOML file")
    submit.add_argument(
        "--watch", action="store_true",
        help="stay attached and stream progress until the job finishes",
    )
    _serve_url(submit)

    status = study_sub.add_parser("status", help="one job's state and cell counts")
    status.add_argument("job", help="job id (the spec_hash from submit)")
    _serve_url(status)

    watch = study_sub.add_parser(
        "watch", help="stream a job's progress events until it finishes"
    )
    watch.add_argument("job", help="job id (the spec_hash from submit)")
    _serve_url(watch)

    results = study_sub.add_parser(
        "results", help="fetch a job's result store from the daemon"
    )
    results.add_argument("job", help="job id (the spec_hash from submit)")
    results.add_argument(
        "--output", "-o", default=None,
        help="save the store as JSON here instead of rendering the report",
    )
    _serve_url(results)

    cancel = study_sub.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job", help="job id (the spec_hash from submit)")
    _serve_url(cancel)

    cache = study_sub.add_parser(
        "cache", help="inspect / garbage-collect the shared result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entries, bytes, and the hit rate since the last gc"
    )
    cache_stats.add_argument(
        "--dir", default=None, metavar="DIR",
        help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    cache_gc = cache_sub.add_parser(
        "gc", help="expire old entries and bound the cache size"
    )
    cache_gc.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="drop entries not used for more than this many seconds",
    )
    cache_gc.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="evict least-recently-used entries down to this many bytes",
    )
    cache_gc.add_argument("--dir", default=None, metavar="DIR")

    serve = sub.add_parser(
        "serve", help="run the study-execution daemon (see repro.serve)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=DEFAULT_SERVE_PORT,
                       help=f"listen port (0 = ephemeral; default {DEFAULT_SERVE_PORT})")
    serve.add_argument(
        "--state-dir", default="repro-serve", metavar="DIR",
        help=(
            "durable service state: the job journal, one store per job, "
            "and the daemon's result cache (default: ./repro-serve); a "
            "restarted daemon on the same dir resumes in-flight jobs "
            "bit-for-bit"
        ),
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="schedule up to N cells of the running job concurrently",
    )
    serve.add_argument("--max-inflight", type=int, default=None, metavar="N")
    serve.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "keep a result cache inside the state dir so resubmitted "
            "specs replay at 100%% hits (default: on)"
        ),
    )
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="use DIR as the cache instead of <state-dir>/cache")
    serve.add_argument(
        "--verbose", action="store_true", help="log each HTTP request"
    )

    sub.add_parser("counterexample", help="print the Appendix-B 7/12 report")
    return parser


def _workload_value(args: argparse.Namespace) -> dict:
    """The CLI's -n/-k/--bias flags as a declarative workload value."""
    bias = getattr(args, "bias", 0)
    if args.colors is None:
        if bias:
            raise SystemExit("--bias requires --colors")
        return {"name": "singletons", "kwargs": {}}
    if bias:
        return {"name": "biased", "kwargs": {"k": args.colors, "bias": bias}}
    return {"name": "balanced", "kwargs": {"k": args.colors}}


def _cmd_simulate(args: argparse.Namespace) -> int:
    recorder = MetricRecorder(names=("num_colors", "max_support")) if args.trace else None
    result = api.simulate(
        args.process,
        n=args.nodes,
        workload=_workload_value(args),
        seed=args.seed,
        max_rounds=args.max_rounds,
        recorder=recorder,
    )
    initial = result.plan.initial
    print(
        f"{result.plan.spawn_process().name}: consensus after "
        f"{int(result.times[0])} {result.unit} "
        f"(n={initial.num_nodes}, start colors={initial.num_colors}, "
        f"backend={result.backend})"
    )
    if recorder is not None:
        table = Table(title="trajectory", columns=["round", "colors", "max support"])
        data = recorder.as_dict()
        stride = max(1, len(recorder) // 20)
        for i in range(0, len(recorder), stride):
            table.add_row(int(data["rounds"][i]), int(data["num_colors"][i]), int(data["max_support"][i]))
        print(table.render())
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.min_n < 2 or args.max_n < args.min_n:
        raise SystemExit("need 2 <= min-n <= max-n")
    if args.colors is not None and args.colors < 2:
        raise SystemExit("--colors must be at least 2")
    if args.adversary is not None and args.scheduler != "synchronous":
        raise SystemExit(
            "--adversary needs the synchronous scheduler (the §5 fault "
            "model corrupts after each synchronous round)"
        )
    try:
        faults = parse_fault_cli(args.faults, loss=args.loss)
    except ValueError as exc:
        raise SystemExit(f"bad --faults/--loss value: {exc}") from exc
    if faults is not None and args.scheduler != "synchronous":
        raise SystemExit(
            "--faults/--loss need the synchronous scheduler (fault masks "
            "gate each synchronous update)"
        )
    if faults is not None and args.adversary is not None:
        raise SystemExit(
            "--faults/--loss and --adversary are mutually exclusive axes; "
            "sweep them separately"
        )
    n_values = [args.min_n]
    while n_values[-1] * 2 <= args.max_n:
        n_values.append(n_values[-1] * 2)

    workload = _workload_value(args)
    start = (
        "n distinct colors"
        if workload["name"] == "singletons"
        else f"{args.colors} balanced colors"
    )

    quantity, predicted_label = "consensus time", "Thm-4 scale"
    # Ticks perform n adoption draws per synchronous-round equivalent, so
    # the paper-scale prediction column is multiplied by n under the
    # asynchronous scheduler.
    tick_scale = (
        (lambda n: n) if args.scheduler == "asynchronous" else (lambda n: 1)
    )
    if args.scheduler == "asynchronous":
        quantity, predicted_label = "consensus ticks", "Thm-4 scale × n"
    adversary = None
    if args.adversary is not None:
        # Declarative §5 scenario; a missing budget resolves to the
        # [BCN+16] tolerance scale per sweep point at compile time.
        adversary = {"name": args.adversary, "budget": args.budget}
        quantity = f"rounds to a stable valid regime vs {args.adversary}"
        predicted_label = "Thm-4 scale"

    try:
        result = api.sweep(
            args.process,
            n_values,
            repetitions=args.repetitions,
            seed=args.seed,
            workload=workload,
            scheduler=args.scheduler,
            adversary=adversary,
            faults=faults,
            backend=args.backend,
            rng_mode=args.rng_mode,
            workers=args.workers,
            predicted=lambda n: three_majority_consensus_upper(n) * tick_scale(n),
            name=f"{quantity} of {args.process} from {start}",
            # Adversarial runs can stall (that is the phenomenon under
            # study); keep their horizon at the §5 runner's default instead
            # of the sweep's generous consensus budget.
            max_rounds=50_000 if adversary is not None else 10**7,
        )
    except (KeyError, TypeError, ValueError) as exc:
        # Backend/axis mismatches surface as compile-time or runtime
        # rejections; present them as usage errors, not tracebacks.
        raise SystemExit(f"cannot run this sweep: {exc}") from exc
    print(result.to_table(predicted_label=predicted_label).render())
    if args.output:
        save_sweep(result, args.output)
        print(f"raw sweep saved to {args.output}")
    return 0


def _default_store_path(spec_path: str) -> str:
    stem, _ = os.path.splitext(spec_path)
    return f"{stem}.store.json"


def _progress_printer(total: int):
    def progress(cell, record) -> None:
        if record.status == "timeout":
            error = record.error or {}
            print(
                f"[{cell.index + 1}/{total}] {cell.label()}: TIMEOUT — "
                f"exceeded deadline_s={error.get('deadline_s')} "
                f"({record.wall_time_s:.2f}s; resume to retry)"
            )
            return
        if not record.ok:
            error = record.error or {}
            print(
                f"[{cell.index + 1}/{total}] {cell.label()}: FAILED after "
                f"{error.get('attempts', '?')} attempt(s) — "
                f"{error.get('type', 'Error')}: {error.get('message', '')} "
                f"({record.wall_time_s:.2f}s)"
            )
            return
        backend = record.resolved_backend
        if record.cache_hit:
            backend += " (cached)"
        if record.degraded_from:
            backend += f" (degraded from {record.degraded_from})"
        print(
            f"[{cell.index + 1}/{total}] {cell.label()}: "
            f"mean {float(record.times.mean()):.1f} {record.unit} "
            f"({backend}, {record.wall_time_s:.2f}s)"
        )

    return progress


def _cmd_study_cache(args: argparse.Namespace) -> int:
    from .study import ResultCache

    cache = ResultCache(args.dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        rate = stats["hit_rate"]
        rate_text = f"{rate:.1%}" if rate is not None else "n/a (no lookups)"
        print(f"cache dir : {stats['dir']}")
        print(f"entries   : {stats['entries']}")
        print(f"bytes     : {stats['bytes']}")
        print(
            f"hit rate  : {rate_text} "
            f"({stats['hits']} hits / {stats['misses']} misses since last gc)"
        )
        return 0
    swept = cache.gc(max_age_s=args.max_age, max_bytes=args.max_bytes)
    print(
        f"gc removed {swept['removed']} entr"
        f"{'y' if swept['removed'] == 1 else 'ies'}; "
        f"{swept['entries']} kept ({swept['bytes']} bytes); "
        "hit/miss counters reset"
    )
    return 0


def _cmd_study_validate(args: argparse.Namespace) -> int:
    try:
        summary = api.validate(args.spec)
    except (OSError, KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"invalid spec: {exc}") from exc
    print(
        f"{summary['name']}: {summary['num_cells']} cells x "
        f"{summary['repetitions']} repetitions (spec_hash {summary['spec_hash']})"
    )
    if args.cells:
        for cell in summary["cells"]:
            print(f"  [{cell['index']}] {cell['cell_id']}  {cell['label']}")
    return 0


def _print_job(view: dict) -> None:
    counts = view["counts"]
    done = counts["ok"] + counts["failed"] + counts["timeout"]
    line = (
        f"job {view['id']} ({view['name']}): {view['state']} — "
        f"{done}/{view['num_cells']} cells"
    )
    detail = [
        f"{counts[key]} {key}"
        for key in ("failed", "timeout", "cached", "degraded")
        if counts.get(key)
    ]
    if detail:
        line += f" ({', '.join(detail)})"
    if view.get("error"):
        line += f" — {view['error']}"
    print(line)


def _print_event(event: dict, total: int) -> None:
    index = event["index"] + 1
    if event["status"] != "ok":
        print(f"[{index}/{total}] cell {event['cell_id']}: {event['status'].upper()} "
              f"({event['wall_time_s']:.2f}s; resubmit to retry)")
        return
    backend = event["backend"]
    if event["cache_hit"]:
        backend += " (cached)"
    if event["degraded_from"]:
        backend += f" (degraded from {event['degraded_from']})"
    print(
        f"[{index}/{total}] cell {event['cell_id']}: "
        f"mean {event['mean']:.1f} {event['unit']} "
        f"({backend}, {event['wall_time_s']:.2f}s)"
    )


def _cmd_study_serve_verb(args: argparse.Namespace) -> int:
    from .serve import ServeClient, ServeError

    client = ServeClient(_serve_base_url(args))
    try:
        if args.study_command == "submit":
            try:
                spec = load_spec(args.spec)
            except (OSError, ValueError) as exc:
                raise SystemExit(f"cannot load spec: {exc}") from exc
            view = client.submit(spec)
            verb = "attached to" if view["attached"] else "submitted"
            print(f"{verb} job {view['id']} ({view['state']}, "
                  f"{view['num_cells']} cells)")
            if not args.watch:
                return 0
            args.job = view["id"]
        if args.study_command in ("watch", "submit"):
            total = client.status(args.job)["num_cells"]
            final = client.wait(args.job, progress=lambda e: _print_event(e, total))
            _print_job(final)
            return 0 if final["state"] == "done" else 1
        if args.study_command == "status":
            _print_job(client.status(args.job))
            return 0
        if args.study_command == "cancel":
            _print_job(client.cancel(args.job))
            return 0
        # results
        payload = client.results(args.job)
        if args.output:
            from .study import StudyStore

            StudyStore.from_dict(payload["store"]).save(args.output)
            print(f"store saved to {args.output} (job state: {payload['state']})")
            return 0
        from .study import StudyStore

        print(study_report(StudyStore.from_dict(payload["store"])).render())
        return 0
    except ServeError as exc:
        raise SystemExit(f"daemon error: {exc}") from exc


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import serve

    cache = args.cache
    if args.cache_dir is not None and cache is not False:
        cache = args.cache_dir
    return serve(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        max_inflight=args.max_inflight,
        cache=cache,
        verbose=args.verbose,
    )


def _cmd_study(args: argparse.Namespace) -> int:
    if args.study_command == "cache":
        return _cmd_study_cache(args)
    if args.study_command == "validate":
        return _cmd_study_validate(args)
    if args.study_command in ("submit", "status", "watch", "results", "cancel"):
        return _cmd_study_serve_verb(args)
    if args.study_command == "report":
        try:
            store = load_study_store(args.store)
        except (OSError, KeyError, ValueError) as exc:
            raise SystemExit(f"cannot load store: {exc}") from exc
        print(study_report(store).render())
        return 0
    try:
        spec = load_spec(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load spec: {exc}") from exc
    store_path = args.store or _default_store_path(args.spec)
    resume = args.study_command == "resume" or args.resume
    if (
        args.study_command == "resume"
        and not os.path.exists(store_path)
        and not os.path.exists(journal_path(store_path))
    ):
        raise SystemExit(
            f"no store to resume at {store_path} (run `repro study run` first)"
        )
    cache = args.cache
    if args.cache_dir is not None and cache is not False:
        cache = args.cache_dir
    try:
        store = api.study(
            spec,
            store_path=store_path,
            resume=resume,
            max_cells=args.max_cells,
            progress=_progress_printer(spec.num_cells()),
            max_attempts=args.max_attempts,
            deadline_s=args.deadline,
            workers=args.workers,
            max_inflight=args.max_inflight,
            cache=cache,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(f"cannot run this study: {exc}") from exc
    broken = store.failed()
    timeouts = sum(1 for r in broken if r.status == "timeout")
    failed, total = len(broken), spec.num_cells()
    done = len(store) - failed
    if failed:
        breakdown = f"{failed - timeouts} failed"
        if timeouts:
            breakdown += f", {timeouts} timed out"
        state = (
            f"{done}/{total} cells ok, {breakdown} "
            "(resume to retry the failures)"
        )
    elif done == total:
        state = "complete"
    elif store.interrupted:
        # A graceful SIGTERM/SIGINT: the cell in flight was checkpointed
        # and the journal compacted, so this is a clean exit, not a crash.
        state = (
            f"{done}/{total} cells — interrupted, checkpoint intact "
            "(`repro study resume` continues bit-for-bit)"
        )
    else:
        state = f"{done}/{total} cells (resumable)"
    hits = sum(1 for record in store.records() if record.cache_hit)
    if hits:
        state += f" ({hits} cell{'s' if hits != 1 else ''} from cache)"
    print(f"store saved to {store_path} — {state}")
    if not args.quiet:
        print(study_report(store).render())
    return 0


def _cmd_counterexample() -> int:
    report = appendix_b_counterexample()
    terms = " + ".join(str(t) for t in equation_24_terms())
    print("Appendix B (exact rational arithmetic):")
    print(f"  inputs      x̃ = {tuple(map(str, report.x_upper))} ⪰ x = {tuple(map(str, report.x_lower))}: {report.inputs_comparable}")
    print(f"  α⁴ᴹ(x̃)     = {tuple(map(str, report.alpha_upper))}")
    print(f"  α³ᴹ(x)[0]  = {terms} = {report.top_mass_lower}   (Equation 24)")
    print(f"  α⁴ᴹ(x̃) ⪰ α³ᴹ(x): {report.images_majorize}  →  Lemma-1 hypothesis fails: {report.lemma1_hypothesis_fails()}")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "study":
        return _cmd_study(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "counterexample":
        return _cmd_counterexample()
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
