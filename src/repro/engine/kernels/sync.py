"""Fused synchronous agent kernel: exact switch-and-redistribute lumping.

The agent-level ensemble advances an ``(R, n)`` color matrix — an
``O(R·n·s)`` gather per round.  For processes in switch-and-redistribute
form (:meth:`~repro.processes.base.AgentProcess.kernel_switch_law`) the
whole round lumps *exactly in distribution* to an ``(R, k)`` counts
chain:

    switchers ~ Bin(c, σ(x))          (per class, independent)
    arrivals  ~ Mult(Σ switchers, q(x))
    c'        = c − switchers + arrivals

Exactness: on the complete graph under Uniform Pull every node's samples
are iid ``x = c/n`` and nodes act independently given ``x``; within a
class all nodes are exchangeable, so the number of leavers is binomial
and the leavers' destinations are iid ``q`` — nothing about individual
node identities survives into the next counts vector.  For AC-processes
``σ ≡ 1`` and ``q = α(x)``, recovering ``c' ~ Mult(n, α(c))``
(Definition 1); for 2-Choices — *not* an AC-process — ``σ = ‖x‖²`` and
``q = x²/‖x‖²`` lump the keep-own-color branch exactly, which is what
makes the agent acceptance scenario ``O(R·k)`` instead of ``O(R·n)``.

Two entry points:

* :func:`run_fused_agent_ensemble` — the ``kernel-agent`` backend: the
  lumped chain with the ensemble engine's stopping/retirement contract,
  plus **active-slot compaction** (zero-support columns drop out of the
  working matrix, shrinking per-round work from ``O(k)`` to
  ``O(k_alive)`` on wide slot spaces).
* :func:`fused_colors_step` — one batched synchronous round that *keeps*
  the ``(R, n)`` per-node colors (counts → law → one inverse-cdf draw
  per node), for consumers that need node identities, e.g. the §5
  adversary's corruption masks.

Randomness always comes from the caller's generator; numba (when
active — see :mod:`.numba_support`) only accelerates the deterministic
inverse-cdf transform, so both modes produce identical streams.
"""

from __future__ import annotations

import numpy as np

from ...core.configuration import Configuration
from ...processes.base import AgentProcess
from ..ensemble import EnsembleResult, _check_args, _finalize
from ..metrics import MetricRecorder
from ..rng import RandomSource, as_generator
from ..simulator import default_round_limit
from ..stopping import AllOf, AnyOf, BiasAtLeast, ColorsAtMost, Consensus, MaxSupportAbove, StoppingCondition
from .numba_support import kernel_mode, njit_or_none

__all__ = [
    "compaction_safe",
    "fused_colors_step",
    "kernel_eligible",
    "kernel_step_counts",
    "run_fused_agent_ensemble",
]

#: Compaction drops all-zero columns, so it is only valid for stopping
#: conditions invariant under removing zero entries from the count vector.
#: Every built-in qualifies (they are functions of the multiset of
#: non-zero counts); user conditions keyed to absolute color indices
#: would not, so unknown classes disable compaction.
_COMPACTION_SAFE_LEAVES = (Consensus, ColorsAtMost, MaxSupportAbove, BiasAtLeast)

#: Don't bother compacting narrow matrices — the bookkeeping outweighs it.
_COMPACTION_MIN_SLOTS = 32


def compaction_safe(condition: StoppingCondition) -> bool:
    """Whether ``condition`` is invariant under dropping zero columns."""
    if isinstance(condition, (AnyOf, AllOf)):
        return all(compaction_safe(inner) for inner in condition.conditions)
    return isinstance(condition, _COMPACTION_SAFE_LEAVES)


def kernel_eligible(process: AgentProcess, initial: Configuration) -> bool:
    """Whether the fused kernels may represent this run at all.

    Needs the switch-and-redistribute law, tractable at this width, and
    the *default* color representation — a process with auxiliary per-node
    state (overridden ``initial_colors``/``configuration_of``) is not a
    pure function of the counts, so the lumping argument breaks.
    """
    return (
        process.has_kernel_form
        and process.kernel_supported(initial)
        and type(process).initial_colors is AgentProcess.initial_colors
        and type(process).configuration_of is AgentProcess.configuration_of
    )


def kernel_step_counts(
    process: AgentProcess, counts: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """One exact lumped round for an ``(R, k)`` counts matrix."""
    sigma, q = process.kernel_switch_law(counts)
    if sigma is None:
        # σ ≡ 1: everyone redraws — one broadcast multinomial (the AC law).
        return rng.multinomial(counts.sum(axis=1), q)
    switchers = rng.binomial(counts, sigma)
    arrivals = rng.multinomial(switchers.sum(axis=1), q)
    return counts - switchers + arrivals


def _invert_rows_numpy(cum: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Row-wise inverse-cdf: ``out[r, i] = searchsorted(cum[r], u[r, i])``.

    One flat ``searchsorted`` over all rows at once: row ``r``'s cdf is
    shifted into ``[r, r+1]`` and so are its uniforms, making the
    concatenated array globally sorted — every earlier row's entries sit
    strictly below ``u + r``, so subtracting ``r·k`` recovers the
    in-row index.
    """
    reps, k = cum.shape
    n = u.shape[1]
    row_shift = np.arange(reps, dtype=np.float64)[:, None]
    flat_idx = np.searchsorted(
        (cum + row_shift).ravel(), (u + row_shift).ravel(), side="right"
    )
    return (flat_idx - np.repeat(np.arange(reps) * k, n)).reshape(reps, n)


def _invert_rows_scalar(cum, u, out):  # pragma: no cover - compiled path
    reps, n = u.shape
    k = cum.shape[1]
    for r in range(reps):
        for i in range(n):
            lo, hi = 0, k
            value = u[r, i]
            while lo < hi:
                mid = (lo + hi) // 2
                if value < cum[r, mid]:
                    hi = mid
                else:
                    lo = mid + 1
            out[r, i] = lo


_invert_rows_numba = njit_or_none(_invert_rows_scalar)


def _invert_rows(cum: np.ndarray, u: np.ndarray) -> np.ndarray:
    if kernel_mode() == "numba":
        out = np.empty(u.shape, dtype=np.int64)
        _invert_rows_numba(cum, u, out)
        return out
    return _invert_rows_numpy(cum, u)


def fused_colors_step(
    process: AgentProcess,
    colors: np.ndarray,
    num_slots: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """One batched synchronous round that keeps per-node colors.

    Counts the ``(R, n)`` matrix, evaluates the switch-and-redistribute
    law once per replica, and replaces the per-node sample gathers with a
    single inverse-cdf draw per node — identically distributed to
    ``process.update_ensemble`` (nodes redraw iid from ``q``, and with a
    class-dependent ``σ`` each node keeps its color on an independent
    coin), at ``O(R·(n + k))`` instead of ``O(R·n·s)``.
    """
    reps, n = colors.shape
    offsets = (np.arange(reps, dtype=np.int64) * num_slots)[:, None]
    counts = np.bincount(
        (colors.astype(np.int64, copy=False) + offsets).ravel(),
        minlength=reps * num_slots,
    ).reshape(reps, num_slots)
    sigma, q = process.kernel_switch_law(counts)
    cum = np.cumsum(q, axis=1)
    cum[:, -1] = 1.0
    destinations = _invert_rows(cum, rng.random((reps, n)))
    destinations = destinations.astype(colors.dtype, copy=False)
    if sigma is None:
        return destinations
    own_sigma = sigma.ravel().take(colors.astype(np.int64, copy=False) + offsets)
    switch = rng.random((reps, n)) < own_sigma
    return np.where(switch, destinations, colors)


def run_fused_agent_ensemble(
    process: AgentProcess,
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    rng_mode: str = "batched",
    raise_on_limit: bool = True,
    recorder: "MetricRecorder | None" = None,
    compact: "bool | None" = None,
) -> EnsembleResult:
    """The fused agent ensemble: exact lumped counts chain + compaction.

    Semantics match :func:`repro.engine.ensemble.run_agent_ensemble` in
    distribution (first-passage times, stop masks, final counts), at the
    counts chain's ``O(R·k)`` per-round cost.  Batched-only: the lumping
    reorders how the stream is consumed, so ``rng_mode="per-replica"``
    plans must use the exact-stream engines instead — the runtime routes
    them there automatically.

    ``compact`` controls active-slot compaction (``None`` = automatic:
    on for wide matrices with absorbing support, compaction-safe stopping
    conditions and no recorder).  Dropped columns are remembered in a
    slot map and every replica's ``final_counts`` row is scattered back
    to the full initial width.
    """
    _check_args(repetitions, rng_mode)
    if rng_mode != "batched":
        raise ValueError(
            "the fused kernel is batched-only; per-replica exact streams "
            "run on the agent/counts engines"
        )
    if not kernel_eligible(process, initial):
        raise TypeError(
            f"{process.name} has no tractable switch-and-redistribute "
            "kernel form for this configuration"
        )
    condition = stop if stop is not None else Consensus()
    limit = (
        max_rounds if max_rounds is not None else default_round_limit(initial.num_nodes)
    )
    master = as_generator(rng)
    num_slots = initial.num_slots

    compactable = (
        process.kernel_absorbing_support
        and compaction_safe(condition)
        and recorder is None
    )
    if compact is True and not compactable:
        raise ValueError(
            "compaction requires absorbing support, a compaction-safe "
            "stopping condition and no recorder"
        )
    if compact is None:
        compact = compactable and num_slots >= _COMPACTION_MIN_SLOTS

    counts = np.tile(initial.counts_array(), (repetitions, 1))
    times = np.zeros(repetitions, dtype=np.int64)
    stopped = np.zeros(repetitions, dtype=bool)
    final_counts = counts.copy()
    active = np.arange(repetitions)
    slot_map = None  # None ⇒ identity (no columns dropped yet)

    def retire(mask: np.ndarray, rounds: int) -> None:
        nonlocal active, counts
        done = active[mask]
        times[done] = rounds
        stopped[done] = True
        if slot_map is None:
            final_counts[done] = counts[mask]
        else:
            restored = np.zeros((done.size, num_slots), dtype=final_counts.dtype)
            restored[:, slot_map] = counts[mask]
            final_counts[done] = restored
        active = active[~mask]
        counts = counts[~mask]

    if recorder is not None:
        recorder.observe_ensemble(0, counts, active)
    retire(condition.satisfied_ensemble(counts), 0)

    rounds = 0
    while active.size and rounds < limit:
        counts = kernel_step_counts(process, counts, master)
        rounds += 1
        if recorder is not None:
            recorder.observe_ensemble(rounds, counts, active)
        mask = condition.satisfied_ensemble(counts)
        if mask.any():
            retire(mask, rounds)
        if compact and counts.shape[1] > 8 and active.size:
            alive = counts.any(axis=0)
            if not alive.all():
                counts = np.ascontiguousarray(counts[:, alive])
                slot_map = (
                    np.flatnonzero(alive)
                    if slot_map is None
                    else slot_map[alive]
                )
    if active.size:
        times[active] = rounds
        if slot_map is None:
            final_counts[active] = counts
        else:
            restored = np.zeros((active.size, num_slots), dtype=final_counts.dtype)
            restored[:, slot_map] = counts
            final_counts[active] = restored
    return _finalize(
        process, condition, "kernel-agent", rng_mode, times, stopped,
        final_counts, limit, raise_on_limit,
    )
