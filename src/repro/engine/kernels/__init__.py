"""Fused kernels: single-pass vectorized inner loops for the hot engines.

The counts backend dominates BENCH_engine.json because its whole round is
one broadcast multinomial; the agent and async paths paid per-node
gathers and a per-tick Python loop.  This package closes that gap with
three kernels, each registered through the runtime's backend registry
(:mod:`repro.engine.runtime`) so ``backend="auto"`` routes to them via
the cost model:

* :func:`~repro.engine.kernels.sync.run_fused_agent_ensemble`
  (``kernel-agent``) — the synchronous agent ensemble lumped *exactly in
  distribution* to an ``(R, k)`` switch-and-redistribute counts chain,
  with active-slot compaction shrinking wide matrices to their live
  columns.
* :func:`~repro.engine.kernels.asynchronous.run_fused_asynchronous_ensemble`
  (``kernel-async``) — the one-node-per-tick scheduler resolved in
  conflict-free wavefronts instead of a Python tick loop, with provably
  sequential semantics.
* :func:`~repro.engine.kernels.sync.fused_colors_step` — a colors-
  preserving fused round (counts → law → one inverse-cdf draw per node)
  the §5 adversary runner uses for its honest step.

Every kernel is pure numpy by default; numba, when importable and not
disabled via ``REPRO_NO_NUMBA=1``, accelerates only deterministic
transforms so both modes consume the caller's generator identically
(:mod:`.numba_support`).  ``rng_mode="per-replica"`` plans never reach a
kernel: the kernels reorder stream consumption, so the runtime routes
exact-stream requests to the established engines and the bit-for-bit
runtime-matrix contract is untouched.

Writing a kernel
----------------

A kernel is an alternative *executor* for semantics some engine already
defines; the registry treats it as just another backend (see
"Writing a new backend" in :mod:`repro.engine.runtime`).  The discipline
that keeps kernels trustworthy, in the order that caught real bugs while
building these three:

1. **Name the invariant before vectorizing.**  State exactly what the
   kernel preserves and in which sense — bit-for-bit (same generator
   stream, same results), exact in distribution (the SR lumping), or
   statistical.  The wavefront kernel's first draft fired a tick when no
   *earlier* pending tick wrote its read set; the sequential semantics
   also forbid a *later* writer overtaking a pending reader, and only a
   bitwise replay test against the naive per-tick loop exposed it.
2. **Keep every random draw on the caller's generator, in a documented
   shape order.**  Drawing ``(R, B)`` activations then ``(R, B, s)``
   samples — the same order as the engine being replaced — is what makes
   the bitwise test even possible.  Never draw inside numba: its stream
   is not the numpy stream, and the mode flag must stay a speed knob
   (``REPRO_NO_NUMBA=1`` flips the implementation, never the numbers'
   distribution).
3. **Gate eligibility on declared capabilities, not process names.**
   These kernels key off ``has_kernel_form`` / ``has_sample_update``
   plus the default color representation; a new process opts in by
   implementing the law, not by being added to a list.
4. **Ship the numpy fallback first and register the backend with an
   honest cost.**  The registry's ``auto`` only routes well if the
   kernel's cost formula sits where measurements put it (slightly above
   the counts chain, far below the agent gather); BENCH_engine.json's
   ``kernels`` section and the ``kernels-smoke`` step of
   ``scripts/check.sh`` keep the recorded numbers honest.
"""

from .asynchronous import async_kernel_eligible, run_fused_asynchronous_ensemble
from .numba_support import HAVE_NUMBA, force_numpy, kernel_mode
from .sync import (
    compaction_safe,
    fused_colors_step,
    kernel_eligible,
    kernel_step_counts,
    run_fused_agent_ensemble,
)

__all__ = [
    "HAVE_NUMBA",
    "async_kernel_eligible",
    "compaction_safe",
    "force_numpy",
    "fused_colors_step",
    "kernel_eligible",
    "kernel_mode",
    "kernel_step_counts",
    "run_fused_agent_ensemble",
    "run_fused_asynchronous_ensemble",
]
