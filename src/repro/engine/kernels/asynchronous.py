"""Fused asynchronous kernel: dependency-wavefront tick batching.

:func:`repro.engine.asynchronous.run_asynchronous_ensemble` batches its
randomness but still walks a Python loop of ``B`` ticks per check
stride — each tick a handful of ``O(R)`` array ops, so interpreter
dispatch dominates for small ``R``.  This kernel replaces the loop with
*conflict-free wavefronts*: all ``R·B`` ticks of a chunk are resolved in
a few vectorized passes, each pass firing every tick whose dependencies
are already settled.

Exact sequential semantics
--------------------------

A tick activates node ``a`` and reads sampled nodes ``sm``.  Firing tick
``t`` is safe once every earlier tick it conflicts with has fired:

* an earlier *writer* of ``a`` (write-write),
* an earlier *writer* of any node in ``sm`` (``t`` must read their
  post-update values… i.e. must wait for them — write-read),
* an earlier *reader* of ``a`` (they must read the pre-``t`` value —
  read-write).

Within a wave all fired ticks are mutually conflict-free, every gather
happens against the pre-wave state and every write target is distinct,
so the wave equals *some* sequential order — and chaining the three
blocking rules makes it equal *the* sequential order.  The test-suite
pins this bitwise: for processes whose sample rule draws no extra
randomness, the kernel reproduces the per-tick engine exactly, final
colors and all.

The vectorized pass tracks, per node, the earliest pending activation
(``first_act``, a reversed scatter — last write wins, so the smallest
position lands) and the earliest pending read (``first_read``); a tick
fires when it owns its node's earliest activation, no sampled node has
an earlier pending activation, and no earlier pending read covers its
own node.  Ticks are processed in chunks smaller than the check stride:
conflict-chain depth grows with chunk length, and ~1/8 of ``n`` ticks
per chunk keeps the wave count low while the arrays stay wide enough to
amortise numpy dispatch.

With numba active (:mod:`.numba_support`) the wave *schedule* — a
deterministic function of the drawn ticks — is computed by a single
compiled scan instead of iterated array passes; the grouping it produces
is provably the same, so both modes consume the generator identically.
"""

from __future__ import annotations

import numpy as np

from ...core.configuration import Configuration
from ...processes.base import AgentProcess
from ..asynchronous import AsyncEnsembleResult, _default_tick_limit
from ..ensemble import _counts_matrix_fast, narrow_int_dtype
from ..rng import RandomSource, as_generator
from ..stopping import Consensus, StoppingCondition
from .numba_support import kernel_mode, njit_or_none

__all__ = ["async_kernel_eligible", "run_fused_asynchronous_ensemble"]


def async_kernel_eligible(process: AgentProcess) -> bool:
    """The wavefront needs the pure sample rule and default representation."""
    return (
        process.has_sample_update
        and type(process).initial_colors is AgentProcess.initial_colors
        and type(process).configuration_of is AgentProcess.configuration_of
    )


def _chunk_ticks(reps: int, n: int, batch: int) -> int:
    """Ticks resolved per wavefront: bounded by ``n/8`` (conflict-chain
    depth grows with chunk length) and sized so ``reps·chunk`` stays wide
    enough to amortise numpy dispatch."""
    target = max(64, 16384 // max(reps, 1))
    cap = max(64, n // 8)
    return max(1, min(batch, target, cap))


def _wave_schedule_scalar(a, sm, last_act, last_read, wave):  # pragma: no cover
    m, s = sm.shape
    w = 0
    for t in range(m):
        w = last_act[a[t]]
        if last_read[a[t]] > w:
            w = last_read[a[t]]
        for j in range(s):
            lw = last_act[sm[t, j]]
            if lw > w:
                w = lw
        w += 1
        wave[t] = w
        last_act[a[t]] = w
        for j in range(s):
            if w > last_read[sm[t, j]]:
                last_read[sm[t, j]] = w
    return w if m else 0


_wave_schedule_numba = njit_or_none(_wave_schedule_scalar)


class _WaveBuffers:
    """Per-node scratch arrays, reallocated only when the flat size changes."""

    def __init__(self):
        self.size = -1

    def ensure(self, size: int) -> None:
        if size == self.size:
            return
        self.size = size
        self.big = np.iinfo(np.int64).max
        self.first_act = np.full(size, self.big, dtype=np.int64)
        self.first_read = np.full(size, self.big, dtype=np.int64)
        self.last_act = np.zeros(size, dtype=np.int64)
        self.last_read = np.zeros(size, dtype=np.int64)


def _apply_chunk_numpy(process, flat, a, sm, p, rng, buffers) -> None:
    """Dynamic wavefront: fire, apply, compact, repeat until drained."""
    first_act = buffers.first_act
    first_read = buffers.first_read
    big = buffers.big
    s = sm.shape[1]
    while a.size:
        reversed_p = p[::-1]
        first_act[a[::-1]] = reversed_p
        # One scatter with ticks descending: the last write per node is the
        # earliest pending read.  (Per-column scatters would let a later
        # column overwrite an earlier tick's position.)
        first_read[sm[::-1].ravel()] = np.repeat(reversed_p, s)
        candidate = (first_act[a] == p) & (first_read[a] >= p)
        ci = np.flatnonzero(candidate)
        sm_c = sm[ci]
        blocked = first_act[sm_c[:, 0]] < p[ci]
        for j in range(1, s):
            blocked |= first_act[sm_c[:, j]] < p[ci]
        fire = ci[~blocked]
        targets = a[fire]
        flat[targets] = process.update_from_samples(
            flat[targets], flat[sm[fire]], rng
        )
        first_act[targets] = big
        for j in range(s):
            first_read[sm[fire, j]] = big
        keep = np.ones(a.size, dtype=bool)
        keep[fire] = False
        a = a[keep]
        p = p[keep]
        sm = sm[keep]


def _apply_chunk_numba(process, flat, a, sm, p, rng, buffers) -> None:
    """Scheduled wavefront: one compiled scan yields each tick's wave, the
    groups are then applied in wave order — the identical grouping (and
    within-wave original order) the dynamic pass produces."""
    if a.size == 0:
        return
    wave = np.empty(a.size, dtype=np.int64)
    _wave_schedule_numba(a, sm, buffers.last_act, buffers.last_read, wave)
    buffers.last_act[a] = 0
    for j in range(sm.shape[1]):
        buffers.last_read[sm[:, j]] = 0
    order = np.argsort(wave, kind="stable")
    bounds = np.searchsorted(wave[order], np.arange(2, wave[order[-1]] + 2))
    lo = 0
    for hi in bounds:
        fire = order[lo:hi]
        lo = hi
        if fire.size == 0:
            continue
        targets = a[fire]
        flat[targets] = process.update_from_samples(
            flat[targets], flat[sm[fire]], rng
        )


def run_fused_asynchronous_ensemble(
    process: AgentProcess,
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_ticks: "int | None" = None,
    check_every: "int | None" = None,
    recorder=None,
) -> AsyncEnsembleResult:
    """Wavefront-batched one-node-per-tick scheduler for ``R`` replicas.

    The engine contract (stopping at check strides, replica retirement,
    recorder observations, tick accounting) matches
    :func:`~repro.engine.asynchronous.run_asynchronous_ensemble`; the
    per-stride randomness is drawn in the same shapes and order, so for
    processes whose sample rule consumes no extra randomness the two are
    bit-for-bit identical — the wavefront is purely a faster application
    order within each stride.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if not async_kernel_eligible(process):
        raise TypeError(
            f"{process.name} has no pure sample rule; the wavefront kernel "
            "needs update_from_samples and the default color representation"
        )
    generator = as_generator(rng)
    condition = stop if stop is not None else Consensus()
    n = initial.num_nodes
    limit = max_ticks if max_ticks is not None else _default_tick_limit(n)
    stride = check_every if check_every is not None else n
    if stride < 1:
        raise ValueError("check_every must be positive")
    num_slots = initial.num_slots
    samples = max(1, int(process.samples_per_round))

    dtype = narrow_int_dtype(max(n, num_slots + 1))
    colors = np.tile(
        process.initial_colors(initial).astype(dtype, copy=False),
        (repetitions, 1),
    )
    counts = _counts_matrix_fast(colors, num_slots)
    ticks = np.zeros(repetitions, dtype=np.int64)
    stopped = np.zeros(repetitions, dtype=bool)
    final_counts = counts.copy()
    active = np.arange(repetitions)
    buffers = _WaveBuffers()

    if recorder is not None:
        recorder.observe_ensemble(0, counts, active)

    def retire(mask: np.ndarray, tick: int) -> None:
        nonlocal active, colors, counts
        done = active[mask]
        ticks[done] = tick
        stopped[done] = True
        final_counts[done] = counts[mask]
        active = active[~mask]
        colors = colors[~mask]
        counts = counts[~mask]

    retire(condition.satisfied_ensemble(counts), 0)

    apply_chunk = (
        _apply_chunk_numba if kernel_mode() == "numba" else _apply_chunk_numpy
    )
    tick = 0
    while active.size and tick < limit:
        batch = min(stride, limit - tick)
        reps = active.size
        base = (np.arange(reps, dtype=np.int64) * n)[:, None]
        # Same draw shapes and order as the per-tick engine — the streams
        # coincide, only the application strategy differs.
        activated = generator.integers(0, n, size=(reps, batch))
        sampled = generator.integers(0, n, size=(reps, batch, samples))
        buffers.ensure(reps * n)
        flat = colors.ravel()
        chunk = _chunk_ticks(reps, n, batch)
        for lo in range(0, batch, chunk):
            hi = min(lo + chunk, batch)
            a = (activated[:, lo:hi] + base).ravel()
            sm = (sampled[:, lo:hi] + base[:, :, None]).reshape(-1, samples)
            p = np.broadcast_to(
                np.arange(hi - lo, dtype=np.int64), (reps, hi - lo)
            ).ravel()
            apply_chunk(process, flat, a, sm, p, generator, buffers)
        tick += batch
        counts = _counts_matrix_fast(colors, num_slots)
        if recorder is not None:
            recorder.observe_ensemble(tick, counts, active)
        retire(condition.satisfied_ensemble(counts), tick)

    if active.size:
        ticks[active] = tick
        final_counts[active] = counts
    return AsyncEnsembleResult(
        process_name=process.name,
        num_nodes=n,
        ticks=ticks,
        stopped=stopped,
        final_counts=final_counts,
        stop_label=condition.label,
    )
