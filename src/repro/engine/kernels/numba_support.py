"""Optional numba acceleration for the fused kernels.

The kernels in this package are written twice where it pays:

* a **pure-numpy** implementation — always present, always correct, the
  reference the test-suite validates;
* an optional **numba** ``@njit`` implementation of the draw-free inner
  transforms (wave scheduling, row-wise cdf inversion).

The split keeps one hard invariant: **all randomness is drawn from the
caller's ``numpy.random.Generator``**, never inside numba.  Numba's own
RNG is a separate stream, so a draw inside an ``@njit`` body would make
results depend on which mode is active.  By jitting only deterministic
transforms, both modes consume the generator identically and produce
*identical* results — the mode is purely a speed knob.

Selection happens at import: numba is used when importable and the
``REPRO_NO_NUMBA`` environment variable is unset/``0``.  Tests (and
benchmarks comparing modes) can force the numpy path in-process with
:func:`force_numpy`, which is what lets one pytest run exercise both
implementations on a machine that has numba installed.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

__all__ = ["HAVE_NUMBA", "NUMBA_DISABLED", "force_numpy", "kernel_mode", "njit_or_none"]

#: ``REPRO_NO_NUMBA=1`` (or any non-``0`` value) disables numba even when
#: it is importable — the support-matrix escape hatch.
NUMBA_DISABLED = os.environ.get("REPRO_NO_NUMBA", "").strip() not in ("", "0")

try:
    if NUMBA_DISABLED:
        raise ImportError("numba disabled via REPRO_NO_NUMBA")
    import numba as _numba  # noqa: F401

    HAVE_NUMBA = True
except ImportError:
    _numba = None
    HAVE_NUMBA = False

# Runtime override depth (force_numpy nests safely).
_FORCED_NUMPY = 0


def kernel_mode() -> str:
    """The implementation the kernels will dispatch to: ``"numba"`` or ``"numpy"``."""
    return "numba" if (HAVE_NUMBA and not _FORCED_NUMPY) else "numpy"


@contextmanager
def force_numpy():
    """Temporarily dispatch every kernel to its pure-numpy implementation.

    A no-op when numba is absent (the numpy path is already active); used
    by the test-suite to cross-validate both modes in one process.
    """
    global _FORCED_NUMPY
    _FORCED_NUMPY += 1
    try:
        yield
    finally:
        _FORCED_NUMPY -= 1


def njit_or_none(function):
    """``numba.njit(cache=True)`` when numba is active at import, else ``None``.

    Kernels keep the compiled variant alongside the numpy one and pick at
    call time via :func:`kernel_mode` — never baking the decision in, so
    :func:`force_numpy` works after import.
    """
    if not HAVE_NUMBA:
        return None
    return _numba.njit(cache=True)(function)
