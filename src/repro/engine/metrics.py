"""Per-round metrics of consensus trajectories.

All metrics are pure functions of the count vector, matching the
quantities the paper reasons about: the number of remaining colors (the
object of Theorem 2), the bias (footnote 3), the maximum support (the
``ℓ`` of Theorem 5), the collision probability ``‖x‖₂²`` (Equations (1),
(2)), and the Shannon entropy as a smooth summary of symmetry.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

__all__ = [
    "num_colors",
    "bias",
    "max_support",
    "collision_probability",
    "entropy",
    "monochromatic_fraction",
    "METRICS",
    "MetricRecorder",
    "EnsembleMetricRecorder",
]


def num_colors(counts: np.ndarray) -> int:
    """Number of remaining colors (non-zero entries)."""
    return int(np.count_nonzero(counts))


def bias(counts: np.ndarray) -> int:
    """Gap between the supports of the top two colors (footnote 3)."""
    if counts.size == 1:
        return int(counts[0])
    top_two = np.partition(counts, counts.size - 2)[-2:]
    return int(top_two[1] - top_two[0])


def max_support(counts: np.ndarray) -> int:
    """Support of the plurality color (the ``ℓ`` of Theorem 5)."""
    return int(counts.max())


def collision_probability(counts: np.ndarray) -> float:
    """``‖c/n‖₂²`` — the chance two uniform samples share a color."""
    x = counts / counts.sum()
    return float(np.dot(x, x))


def entropy(counts: np.ndarray) -> float:
    """Shannon entropy (nats) of the color distribution."""
    x = counts / counts.sum()
    nz = x[x > 0]
    return float(-np.sum(nz * np.log(nz)))


def monochromatic_fraction(counts: np.ndarray) -> float:
    """Fraction of nodes on the plurality color."""
    return float(counts.max() / counts.sum())


#: Name → metric function registry used by recorders and reports.
METRICS: "Dict[str, Callable[[np.ndarray], float]]" = {
    "num_colors": num_colors,
    "bias": bias,
    "max_support": max_support,
    "collision_probability": collision_probability,
    "entropy": entropy,
    "monochromatic_fraction": monochromatic_fraction,
}


class MetricRecorder:
    """Accumulates selected metrics round by round.

    Parameters
    ----------
    names:
        Metric names from :data:`METRICS`.  Defaults to the three the paper
        tracks most closely: remaining colors, bias, and max support.
    stride:
        Record every ``stride``-th round (round 0 is always recorded).
    """

    def __init__(self, names=("num_colors", "bias", "max_support"), stride: int = 1):
        unknown = [name for name in names if name not in METRICS]
        if unknown:
            raise KeyError(f"unknown metrics: {unknown}; available: {sorted(METRICS)}")
        if stride < 1:
            raise ValueError("stride must be at least 1")
        self.names = tuple(names)
        self.stride = int(stride)
        self.rounds: list = []
        self._values: "Dict[str, list]" = {name: [] for name in self.names}

    def observe(self, round_index: int, counts: np.ndarray) -> None:
        """Record the configuration of ``round_index`` if on-stride."""
        if round_index % self.stride != 0:
            return
        self.rounds.append(int(round_index))
        for name in self.names:
            self._values[name].append(METRICS[name](counts))

    def observe_ensemble(
        self, round_index: int, counts: np.ndarray, active: np.ndarray
    ) -> None:
        """Ensemble-engine hook: record one replica from an ``(A, k)`` matrix.

        ``counts`` holds the still-active replicas' count vectors and
        ``active`` their (sorted) global replica indices.  The base recorder
        follows replica 0 while it is active — the natural "trace one
        trajectory out of the ensemble" behaviour; see
        :class:`EnsembleMetricRecorder` for a designated replica or
        ensemble-aggregated series.
        """
        position = np.searchsorted(active, 0)
        if position < active.size and active[position] == 0:
            self.observe(round_index, counts[position])

    def series(self, name: str) -> np.ndarray:
        """The recorded series of metric ``name`` as an array."""
        return np.asarray(self._values[name])

    def as_dict(self) -> dict:
        """All recorded series keyed by metric name, plus ``rounds``."""
        out = {"rounds": np.asarray(self.rounds, dtype=np.int64)}
        for name in self.names:
            out[name] = self.series(name)
        return out

    def __len__(self) -> int:
        return len(self.rounds)


class EnsembleMetricRecorder(MetricRecorder):
    """Per-round metrics of an ensemble run (the lock-step engines' hook).

    Two recording modes:

    * ``aggregate=None`` (default) — follow the count vector of the
      ``replica`` with the given global index; recording stops at that
      replica's stopping round (its final configuration is included).
    * ``aggregate="mean"`` — record each metric averaged over the replicas
      still active at the round, an ensemble-level trajectory summary.

    Either way the trajectory metrics the ROADMAP tracks no longer force
    the sequential path: pass an instance as ``recorder=`` to
    :func:`repro.engine.ensemble.run_ensemble` (or the counts/agent
    variants, or the asynchronous ensemble, where the index is the tick).
    """

    _AGGREGATES = (None, "mean")

    def __init__(
        self,
        names=("num_colors", "bias", "max_support"),
        stride: int = 1,
        replica: int = 0,
        aggregate: "str | None" = None,
    ):
        super().__init__(names=names, stride=stride)
        if replica < 0:
            raise ValueError("replica index must be non-negative")
        if aggregate not in self._AGGREGATES:
            raise ValueError(
                f"unknown aggregate {aggregate!r}; pick one of {self._AGGREGATES}"
            )
        if aggregate is not None and replica != 0:
            raise ValueError(
                "replica= and aggregate= are mutually exclusive: an "
                "aggregated series records no single replica"
            )
        self.replica = int(replica)
        self.aggregate = aggregate

    def observe_ensemble(
        self, round_index: int, counts: np.ndarray, active: np.ndarray
    ) -> None:
        if self.aggregate is None:
            position = np.searchsorted(active, self.replica)
            if position < active.size and active[position] == self.replica:
                self.observe(round_index, counts[position])
            return
        if round_index % self.stride != 0 or counts.shape[0] == 0:
            return
        self.rounds.append(int(round_index))
        for name in self.names:
            metric = METRICS[name]
            self._values[name].append(
                float(np.mean([metric(row) for row in counts]))
            )
