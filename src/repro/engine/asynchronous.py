"""Asynchronous (one-node-per-tick) scheduling — a library extension.

The paper's model is fully synchronous: all nodes update simultaneously
each round.  A standard companion model in the gossip literature
activates one uniformly random node per *tick* (equivalently, nodes hold
independent Poisson clocks).  This module runs any
:class:`~repro.processes.base.AgentProcess` under that scheduler by
letting the activated node perform its usual update against the current
state.

Two facts make this a useful extension rather than a new model:

* for AC-processes, ``n`` asynchronous ticks perform ``n`` adoption draws
  — the same *expected* motion as one synchronous round, so measured
  tick counts divided by ``n`` are comparable to round counts;
* asynchrony removes the parity artifacts of synchronous dynamics on
  bipartite graphs (see :class:`~repro.graphs.graph.CycleGraph`), which
  is why the gossip literature often prefers it.

Execution paths:

* :func:`run_asynchronous` — one replica.  A tick computes *only the
  activated node's* update: processes exposing
  :meth:`~repro.processes.base.AgentProcess.update_from_samples` pay
  ``O(samples_per_round)`` per tick; the generic fallback runs the full
  synchronous rule and keeps one entry (correct for every process).
* :func:`run_asynchronous_ensemble` — ``R`` replicas lock-step.  The
  randomness for a *batch* of ``B`` ticks (activated nodes and update
  samples for every replica) is drawn in one vectorized step, after which
  each tick is a handful of ``O(R)`` array operations; counts are
  maintained incrementally, finished replicas retire from the active
  matrix, and stopping is checked on the ``check_every`` stride exactly
  like the sequential scheduler.

Results report ticks; :func:`ticks_to_round_equivalents` converts.

Through the unified runtime these paths are the ``async`` and
``ensemble-async`` backends (plus ``sharded-async`` via generic replica
sharding), so ``scheduler="asynchronous"`` is a first-class plan axis in
:func:`~repro.engine.batch.repeat_first_passage`, the sweep harness and
the CLI.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import AgentProcess
from .ensemble import _counts_matrix, narrow_int_dtype
from .rng import RandomSource, as_generator
from .stopping import Consensus, StoppingCondition

__all__ = [
    "AsyncResult",
    "AsyncEnsembleResult",
    "run_asynchronous",
    "run_asynchronous_ensemble",
    "ticks_to_round_equivalents",
]


@dataclass
class AsyncResult:
    """Outcome of an asynchronous (one-node-per-tick) run."""

    process_name: str
    ticks: int
    final: Configuration
    stopped: bool

    @property
    def reached_consensus(self) -> bool:
        return self.final.is_consensus

    def round_equivalents(self) -> float:
        """Ticks divided by n — comparable to synchronous round counts."""
        return ticks_to_round_equivalents(self.ticks, self.final.num_nodes)


@dataclass
class AsyncEnsembleResult:
    """Outcome of a lock-step asynchronous run of ``R`` replicas."""

    process_name: str
    num_nodes: int
    #: ``(R,)`` first-passage tick per replica (the tick limit where a
    #: replica never stopped).
    ticks: np.ndarray
    #: ``(R,)`` boolean mask — did the stopping condition fire?
    stopped: np.ndarray
    #: ``(R, k)`` counts matrix at each replica's stopping tick.
    final_counts: np.ndarray
    stop_label: str

    @property
    def repetitions(self) -> int:
        return int(self.ticks.size)

    @property
    def all_stopped(self) -> bool:
        return bool(np.all(self.stopped))

    def round_equivalents(self) -> np.ndarray:
        """Per-replica ticks divided by n — synchronous-round scale."""
        return self.ticks / float(self.num_nodes)

    def finals(self) -> "list[Configuration]":
        return [Configuration(row) for row in self.final_counts]


def ticks_to_round_equivalents(ticks: int, n: int) -> float:
    """Convert asynchronous ticks to synchronous-round equivalents."""
    if n <= 0:
        raise ValueError("n must be positive")
    return ticks / n


def _default_tick_limit(n: int) -> int:
    return 400 * n * n + 10_000


def run_asynchronous(
    process: AgentProcess,
    initial: Configuration,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_ticks: "int | None" = None,
    check_every: "int | None" = None,
) -> AsyncResult:
    """Run ``process`` with one uniformly random node activated per tick.

    The activated node's new color is its local rule applied to fresh
    uniform samples — updates depend only on the node's own samples, so
    :meth:`~repro.processes.base.AgentProcess.update_node` computes just
    that entry (``O(1)`` for sample-rule processes, full-round fallback
    otherwise).  ``check_every`` controls how often the stopping condition
    is evaluated (default: every ``n`` ticks).
    """
    generator = as_generator(rng)
    condition = stop if stop is not None else Consensus()
    n = initial.num_nodes
    limit = max_ticks if max_ticks is not None else _default_tick_limit(n)
    stride = check_every if check_every is not None else n
    if stride < 1:
        raise ValueError("check_every must be positive")
    colors = process.initial_colors(initial)
    num_slots = initial.num_slots
    ticks = 0
    counts = process.configuration_of(colors, num_slots).counts_array()
    stopped = condition.satisfied(counts)
    while not stopped and ticks < limit:
        node = int(generator.integers(n))
        colors[node] = process.update_node(colors, node, generator)
        ticks += 1
        if ticks % stride == 0:
            counts = process.configuration_of(colors, num_slots).counts_array()
            stopped = condition.satisfied(counts)
    counts = process.configuration_of(colors, num_slots).counts_array()
    stopped = condition.satisfied(counts)
    return AsyncResult(
        process_name=process.name,
        ticks=ticks,
        final=Configuration(counts),
        stopped=stopped,
    )


def run_asynchronous_ensemble(
    process: AgentProcess,
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_ticks: "int | None" = None,
    check_every: "int | None" = None,
    recorder=None,
) -> AsyncEnsembleResult:
    """``R`` lock-step replicas of the one-node-per-tick scheduler.

    Per check-stride batch, the engine draws every replica's activated
    nodes and update samples in one vectorized step; each tick then costs
    a handful of ``O(R)`` array operations (gather the sampled colors,
    apply :meth:`~repro.processes.base.AgentProcess.update_from_samples`,
    scatter the new colors, bump the incremental counts) instead of a full
    ``process.update`` per replica.  Processes without a sample rule fall
    back to :meth:`~repro.processes.base.AgentProcess.update_node` per
    replica — same semantics, sequential speed.

    Replicas whose stopping condition fires at a stride check retire from
    the active matrix (recording their tick), mirroring the synchronous
    ensemble's compaction.  All replicas share one ``rng`` stream; each
    tick consumes fresh variates per replica, so replicas are independent.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    generator = as_generator(rng)
    condition = stop if stop is not None else Consensus()
    n = initial.num_nodes
    limit = max_ticks if max_ticks is not None else _default_tick_limit(n)
    stride = check_every if check_every is not None else n
    if stride < 1:
        raise ValueError("check_every must be positive")
    num_slots = initial.num_slots
    projected = (
        type(process).configuration_of is not AgentProcess.configuration_of
    )
    sample_rule = process.has_sample_update

    dtype = narrow_int_dtype(max(n, num_slots + 1))
    colors = np.tile(
        process.initial_colors(initial).astype(dtype, copy=False),
        (repetitions, 1),
    )

    counts = _counts_matrix(process, colors, num_slots, projected)
    ticks = np.zeros(repetitions, dtype=np.int64)
    stopped = np.zeros(repetitions, dtype=bool)
    final_counts = counts.copy()
    active = np.arange(repetitions)

    if recorder is not None:
        recorder.observe_ensemble(0, counts, active)

    def retire(mask: np.ndarray, tick: int) -> None:
        nonlocal active, colors, counts
        done = active[mask]
        ticks[done] = tick
        stopped[done] = True
        final_counts[done] = counts[mask]
        active = active[~mask]
        colors = colors[~mask]
        counts = counts[~mask]

    retire(condition.satisfied_ensemble(counts), 0)

    tick = 0
    samples = max(1, int(process.samples_per_round))
    while active.size and tick < limit:
        batch = min(stride, limit - tick)
        reps = active.size
        rows = np.arange(reps)
        if sample_rule:
            activated = generator.integers(0, n, size=(reps, batch))
            sampled = generator.integers(0, n, size=(reps, batch, samples))
            base = rows.astype(np.int64) * n
            row_offsets = base[:, None]
            flat = colors.ravel()
            for j in range(batch):
                flat_nodes = base + activated[:, j]
                picks = flat.take(sampled[:, j, :] + row_offsets)
                own = flat[flat_nodes]
                new = process.update_from_samples(own, picks, generator)
                flat[flat_nodes] = new
                if not projected:
                    # Incremental counts: exactly one node per replica
                    # changes per tick, and each (row, color) pair below is
                    # unique (one entry per replica row), so plain fancy
                    # indexing is an exact scatter-add.
                    counts[rows, own] -= 1
                    counts[rows, new] += 1
        else:
            for j in range(batch):
                nodes = generator.integers(0, n, size=reps)
                for r in range(reps):
                    node = int(nodes[r])
                    old = colors[r, node]
                    new = process.update_node(colors[r], node, generator)
                    colors[r, node] = new
                    if not projected:
                        counts[r, old] -= 1
                        counts[r, new] += 1
        tick += batch
        if projected:
            counts = _counts_matrix(process, colors, num_slots, projected)
        if recorder is not None:
            recorder.observe_ensemble(tick, counts, active)
        retire(condition.satisfied_ensemble(counts), tick)

    if active.size:
        # The loop only exits with survivors at the tick limit, and the
        # last batch already ran a stride check there — so the remaining
        # replicas are genuinely unstopped; just record their final state.
        ticks[active] = tick
        final_counts[active] = counts
    return AsyncEnsembleResult(
        process_name=process.name,
        num_nodes=n,
        ticks=ticks,
        stopped=stopped,
        final_counts=final_counts,
        stop_label=condition.label,
    )
