"""Asynchronous (sequential) scheduling — a library extension beyond the paper.

The paper's model is fully synchronous: all nodes update simultaneously
each round.  A standard companion model in the gossip literature
activates one uniformly random node per *tick* (equivalently, nodes hold
independent Poisson clocks).  This module runs any
:class:`~repro.processes.base.AgentProcess` under that scheduler by
letting the activated node perform its usual update against the current
state.

Two facts make this a useful extension rather than a new model:

* for AC-processes, ``n`` asynchronous ticks perform ``n`` adoption draws
  — the same *expected* motion as one synchronous round, so measured
  tick counts divided by ``n`` are comparable to round counts;
* asynchrony removes the parity artifacts of synchronous dynamics on
  bipartite graphs (see :class:`~repro.graphs.graph.CycleGraph`), which
  is why the gossip literature often prefers it.

Results report ticks; :func:`ticks_to_round_equivalents` converts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import AgentProcess, counts_from_colors
from .rng import RandomSource, as_generator
from .stopping import Consensus, StoppingCondition

__all__ = ["AsyncResult", "run_asynchronous", "ticks_to_round_equivalents"]


@dataclass
class AsyncResult:
    """Outcome of an asynchronous (one-node-per-tick) run."""

    process_name: str
    ticks: int
    final: Configuration
    stopped: bool

    @property
    def reached_consensus(self) -> bool:
        return self.final.is_consensus

    def round_equivalents(self) -> float:
        """Ticks divided by n — comparable to synchronous round counts."""
        return ticks_to_round_equivalents(self.ticks, self.final.num_nodes)


def ticks_to_round_equivalents(ticks: int, n: int) -> float:
    """Convert asynchronous ticks to synchronous-round equivalents."""
    if n <= 0:
        raise ValueError("n must be positive")
    return ticks / n


def run_asynchronous(
    process: AgentProcess,
    initial: Configuration,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_ticks: "int | None" = None,
    check_every: "int | None" = None,
) -> AsyncResult:
    """Run ``process`` with one uniformly random node activated per tick.

    The activated node's new color is computed by running the process's
    synchronous update on the full state and keeping only that node's
    entry — which is exactly the node's local rule, since updates depend
    only on the node's own samples.  ``check_every`` controls how often
    the stopping condition is evaluated (default: every ``n`` ticks).
    """
    generator = as_generator(rng)
    condition = stop if stop is not None else Consensus()
    n = initial.num_nodes
    limit = max_ticks if max_ticks is not None else 400 * n * n + 10_000
    stride = check_every if check_every is not None else n
    if stride < 1:
        raise ValueError("check_every must be positive")
    colors = process.initial_colors(initial)
    num_slots = initial.num_slots
    ticks = 0
    counts = process.configuration_of(colors, num_slots).counts_array()
    stopped = condition.satisfied(counts)
    while not stopped and ticks < limit:
        node = int(generator.integers(n))
        updated = process.update(colors, generator)
        colors = colors.copy()
        colors[node] = updated[node]
        ticks += 1
        if ticks % stride == 0:
            counts = process.configuration_of(colors, num_slots).counts_array()
            stopped = condition.satisfied(counts)
    counts = process.configuration_of(colors, num_slots).counts_array()
    stopped = condition.satisfied(counts)
    return AsyncResult(
        process_name=process.name,
        ticks=ticks,
        final=Configuration(counts),
        stopped=stopped,
    )
