"""The round-synchronous simulation engine.

Two backends implement the paper's model:

* :func:`run_agent` — the literal protocol: an ``n``-vector of per-node
  colors updated by the process's rule every round.  Works for every
  process, including non-AC ones (2-Choices, 2-Median, Undecided).
* :func:`run_counts` — the exact count-level chain available for
  AC-processes (one ``Mult(n, α(c))`` draw per round, Section 2.2).
  Dramatically cheaper when the color space is small and *exactly* the
  same process in distribution; the test-suite verifies the agreement.

:func:`run` dispatches between them (``backend="auto"`` prefers the
count-level chain whenever the process allows it and the slot count is
moderate), and the first-passage helpers :func:`consensus_time`,
:func:`reduction_time` and :func:`symmetry_breaking_time` express the
paper's three target quantities directly.

Backend dispatch across the engine:

* ``"agent"`` — faithful for every process; cost ``O(n)`` array work per
  round per replica.  The only choice for non-AC processes and for AC
  configurations wider than ``_COUNT_BACKEND_SLOT_LIMIT`` slots.
* ``"counts"`` — exact and far cheaper when the slot count is small
  (``O(k)`` per round); AC-processes only.
* ensemble variants (:mod:`repro.engine.ensemble`) — the same two
  semantics but advancing *all repetitions lock-step in one array*; wins
  whenever a measurement repeats runs (benchmarks, sweeps, CDFs), which
  is nearly always.

Repeated-measurement dispatch lives in the unified runtime
(:mod:`repro.engine.runtime`): these two functions are registered as the
``agent`` / ``counts`` sequential backends, and
:func:`prefers_counts_backend` remains the representation rule the
registry's cost model mirrors for the ``*-auto`` aliases.  The
sequential path is the reference for exactness cross-checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import ACAgentProcess, AgentProcess, counts_from_colors
from .metrics import MetricRecorder
from .rng import RandomSource, as_generator
from .stopping import ColorsAtMost, Consensus, MaxSupportAbove, StoppingCondition

__all__ = [
    "SimulationResult",
    "RoundLimitExceeded",
    "run",
    "run_agent",
    "run_counts",
    "prefers_counts_backend",
    "consensus_time",
    "reduction_time",
    "symmetry_breaking_time",
    "default_round_limit",
]

#: Count-level simulation keeps a dense slot vector; beyond this many slots
#: the agent-level backend is usually faster and leaner.
_COUNT_BACKEND_SLOT_LIMIT = 4096


class RoundLimitExceeded(RuntimeError):
    """A run hit its round limit before its stopping condition fired."""

    def __init__(self, process_name: str, limit: int, label: str):
        super().__init__(
            f"{process_name} did not reach '{label}' within {limit} rounds"
        )
        self.process_name = process_name
        self.limit = limit
        self.label = label


@dataclass
class SimulationResult:
    """Outcome of one simulation run."""

    process_name: str
    rounds: int
    final: Configuration
    stopped: bool
    stop_label: str
    backend: str
    recorder: "Optional[MetricRecorder]" = None
    final_colors: "Optional[np.ndarray]" = field(default=None, repr=False)

    @property
    def reached_consensus(self) -> bool:
        return self.final.is_consensus

    def metric(self, name: str) -> np.ndarray:
        """Recorded metric series (requires a recorder)."""
        if self.recorder is None:
            raise ValueError("run was executed without a metric recorder")
        return self.recorder.series(name)


def default_round_limit(n: int) -> int:
    """A generous default limit: well beyond Voter's Θ(n) consensus time.

    Voter's expected consensus time on the complete graph is ≈ 2n (the
    coalescence time of n random walks); we allow 200·n + 10⁴ so that even
    heavy-tailed runs finish, while true non-termination still surfaces as
    :class:`RoundLimitExceeded` instead of an infinite loop.
    """
    return 200 * int(n) + 10_000


def _resolve_stop(stop: "StoppingCondition | None") -> StoppingCondition:
    return stop if stop is not None else Consensus()


def prefers_counts_backend(
    process: AgentProcess, initial: Configuration, backend: str
) -> bool:
    """The shared backend-dispatch rule of :func:`run` and the ensemble engine.

    ``backend`` must be ``"auto"``, ``"agent"`` or ``"counts"``.  True when
    the exact count-level chain should be used: forced by ``"counts"``, or
    chosen by ``"auto"`` for AC-processes with a moderate slot count.
    """
    if backend not in ("auto", "agent", "counts"):
        raise ValueError(f"unknown backend {backend!r}")
    return backend == "counts" or (
        backend == "auto"
        and isinstance(process, ACAgentProcess)
        and initial.num_slots <= _COUNT_BACKEND_SLOT_LIMIT
        and process.supports_count_backend(initial)
    )


def run_agent(
    process: AgentProcess,
    initial: Configuration,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    recorder: "Optional[MetricRecorder]" = None,
    raise_on_limit: bool = True,
    faults=None,
) -> SimulationResult:
    """Agent-level simulation until ``stop`` fires or ``max_rounds`` pass.

    ``faults`` is an optional :class:`~repro.faults.FaultSchedule` (or a
    bare model): each round the schedule's victim mask is drawn *before*
    the honest update; frozen victims are then reverted to their
    previous color (silenced, but still visible to samplers) and
    Byzantine victims overwritten with their hostile replacement.
    """
    from ..faults import as_fault_schedule

    generator = as_generator(rng)
    condition = _resolve_stop(stop)
    limit = max_rounds if max_rounds is not None else default_round_limit(initial.num_nodes)
    schedule = as_fault_schedule(faults)
    num_slots = initial.num_slots
    fault_runtime = (
        schedule.agent_runtime(num_slots) if schedule is not None else None
    )
    colors = process.initial_colors(initial)
    counts = _agent_counts(process, colors, num_slots)
    if recorder is not None:
        recorder.observe(0, counts)
    rounds = 0
    stopped = condition.satisfied(counts)
    while not stopped and rounds < limit:
        if fault_runtime is not None:
            fault_runtime.round_mask(rounds, generator, colors.shape)
            previous = colors.copy()
            colors = process.update(colors, generator)
            colors = fault_runtime.resolve(previous, colors, generator)
        else:
            colors = process.update(colors, generator)
        rounds += 1
        counts = _agent_counts(process, colors, num_slots)
        if recorder is not None:
            recorder.observe(rounds, counts)
        stopped = condition.satisfied(counts)
    if not stopped and raise_on_limit:
        raise RoundLimitExceeded(process.name, limit, condition.label)
    return SimulationResult(
        process_name=process.name,
        rounds=rounds,
        final=Configuration(counts),
        stopped=stopped,
        stop_label=condition.label,
        backend="agent",
        recorder=recorder,
        final_colors=colors,
    )


def _agent_counts(process: AgentProcess, colors: np.ndarray, num_slots: int) -> np.ndarray:
    """Counts of an agent state, honouring process-specific projections."""
    config = process.configuration_of(colors, num_slots)
    return config.counts_array()


def run_counts(
    process: "ACAgentProcess",
    initial: Configuration,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    recorder: "Optional[MetricRecorder]" = None,
    raise_on_limit: bool = True,
    faults=None,
) -> SimulationResult:
    """Exact count-level simulation (AC-processes only).

    With ``faults`` the transition becomes the exact faulty chain
    ``c' = f + Mult(n − |claimed|, α(c)) + Σ rewrites`` where ``f`` are
    the round's frozen nodes per color and rewriting models re-insert
    their victims at hostile colors (see :mod:`repro.faults.schedule`).
    """
    from ..faults import as_fault_schedule

    if not isinstance(process, ACAgentProcess):
        raise TypeError(
            f"count-level simulation requires an AC-process; {process.name} is not one"
        )
    generator = as_generator(rng)
    condition = _resolve_stop(stop)
    limit = max_rounds if max_rounds is not None else default_round_limit(initial.num_nodes)
    schedule = as_fault_schedule(faults)
    fault_runtime = (
        schedule.counts_runtime(process.process_function)
        if schedule is not None
        else None
    )
    counts = initial.counts_array().copy()
    if recorder is not None:
        recorder.observe(0, counts)
    rounds = 0
    stopped = condition.satisfied(counts)
    while not stopped and rounds < limit:
        if fault_runtime is not None:
            counts = fault_runtime.step_row(counts, generator, rounds)
        else:
            counts = process.step_counts(counts, generator)
        rounds += 1
        if recorder is not None:
            recorder.observe(rounds, counts)
        stopped = condition.satisfied(counts)
    if not stopped and raise_on_limit:
        raise RoundLimitExceeded(process.name, limit, condition.label)
    return SimulationResult(
        process_name=process.name,
        rounds=rounds,
        final=Configuration(counts),
        stopped=stopped,
        stop_label=condition.label,
        backend="counts",
        recorder=recorder,
    )


def run(
    process: AgentProcess,
    initial: Configuration,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    recorder: "Optional[MetricRecorder]" = None,
    backend: str = "auto",
    raise_on_limit: bool = True,
    faults=None,
) -> SimulationResult:
    """Simulate ``process`` from ``initial`` until ``stop`` fires.

    ``backend`` is one of ``"auto"``, ``"agent"``, ``"counts"``.  Auto
    picks the exact count-level chain for AC-processes with a moderate slot
    count, else the agent-level backend.
    """
    if prefers_counts_backend(process, initial, backend):
        if isinstance(process, ACAgentProcess):
            return run_counts(
                process,
                initial,
                rng=rng,
                stop=stop,
                max_rounds=max_rounds,
                recorder=recorder,
                raise_on_limit=raise_on_limit,
                faults=faults,
            )
        if backend == "counts":
            raise TypeError(
                f"{process.name} is not an AC-process; use the agent backend"
            )
    return run_agent(
        process,
        initial,
        rng=rng,
        stop=stop,
        max_rounds=max_rounds,
        recorder=recorder,
        raise_on_limit=raise_on_limit,
        faults=faults,
    )


def consensus_time(
    process: AgentProcess,
    initial: Configuration,
    rng: RandomSource = None,
    max_rounds: "int | None" = None,
    backend: str = "auto",
) -> int:
    """``T¹``: rounds until all nodes share one color."""
    result = run(
        process,
        initial,
        rng=rng,
        stop=Consensus(),
        max_rounds=max_rounds,
        backend=backend,
    )
    return result.rounds


def reduction_time(
    process: AgentProcess,
    initial: Configuration,
    kappa: int,
    rng: RandomSource = None,
    max_rounds: "int | None" = None,
    backend: str = "auto",
) -> int:
    """``T^κ``: rounds until at most ``kappa`` colors remain (Theorem 2)."""
    result = run(
        process,
        initial,
        rng=rng,
        stop=ColorsAtMost(kappa),
        max_rounds=max_rounds,
        backend=backend,
    )
    return result.rounds


def symmetry_breaking_time(
    process: AgentProcess,
    initial: Configuration,
    threshold: int,
    rng: RandomSource = None,
    max_rounds: "int | None" = None,
    backend: str = "auto",
    raise_on_limit: bool = True,
) -> "tuple[int, bool]":
    """First round with ``max_i c_i > threshold`` (the ``T`` of Theorem 5).

    Returns ``(rounds, fired)``; with ``raise_on_limit=False`` a run that
    never breaks symmetry within the limit reports ``fired=False`` —
    exactly the event Theorem 5 says is overwhelmingly likely for
    2-Choices within ``n/(γ ℓ')`` rounds.
    """
    result = run(
        process,
        initial,
        rng=rng,
        stop=MaxSupportAbove(threshold),
        max_rounds=max_rounds,
        backend=backend,
        raise_on_limit=raise_on_limit,
    )
    return result.rounds, result.stopped
