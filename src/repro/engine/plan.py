"""Declarative simulation plans — the single payload of the runtime layer.

A :class:`SimulationPlan` captures *what* to simulate (process, initial
configuration, stopping condition, repetitions) and under *which model
axes* (scheduler, adversary, randomness regime, horizon, worker budget)
without committing to *how* — the execution strategy is resolved by
:func:`repro.engine.runtime.resolve_backend` from the backend registry's
capability declarations and cost model.

This is what lets the asynchronous scheduler and the §5 adversaries be
first-class experiment axes: a sweep or a CLI invocation builds one plan
per measurement and the runtime picks the fastest registered backend that
can honour every axis (lock-step ensembles and sharded pools included).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Union

from ..core.configuration import Configuration
from ..processes.base import AgentProcess
from .rng import RandomSource
from .stopping import StoppingCondition

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine ↔ adversary)
    from ..adversary.adversary import Adversary, AdversarySchedule
    from ..faults import FaultModel, FaultSchedule
    from .metrics import MetricRecorder

__all__ = ["SCHEDULERS", "RNG_MODES", "SimulationPlan"]

#: Supported scheduler axes: the paper's round-synchronous model and the
#: one-node-per-tick companion model from the gossip literature.
SCHEDULERS = ("synchronous", "asynchronous")

#: Randomness regimes: one shared stream ("batched", fastest) or one
#: spawned child stream per replica ("per-replica", reproduces the
#: sequential reference bit-for-bit wherever an engine supports it).
RNG_MODES = ("batched", "per-replica")

#: A process instance, or a zero-argument factory building one (the
#: sequential backends call the factory once per replica, so processes
#: with mutable internals stay independent across repetitions).
ProcessSource = Union[AgentProcess, Callable[[], AgentProcess]]


@dataclass(frozen=True)
class SimulationPlan:
    """Everything needed to execute one (possibly repeated) measurement.

    Fields
    ------
    process:
        An :class:`~repro.processes.base.AgentProcess` or a zero-argument
        factory.  Ensemble backends share one instance across lock-step
        replicas; sequential backends build a fresh one per repetition
        when a factory is given.
    initial:
        Start configuration (shared by every replica).
    stop:
        Stopping condition; ``None`` means consensus.  Ignored by
        adversarial plans, whose stopping criterion is the §5 stable
        regime (``stable_fraction`` / ``stable_rounds``).
    repetitions:
        Number of independent replicas to measure.
    scheduler:
        ``"synchronous"`` (the paper's model) or ``"asynchronous"``
        (one uniformly random node activated per tick).
    adversary:
        ``None``, or an :class:`~repro.adversary.adversary.Adversary` /
        :class:`~repro.adversary.adversary.AdversarySchedule` for §5
        robust runs (synchronous scheduler only).
    faults:
        ``None``, or a :class:`~repro.faults.FaultModel` /
        :class:`~repro.faults.FaultSchedule` injecting crash-stop,
        crash-recovery or message-loss node faults (synchronous
        scheduler only; mutually exclusive with ``adversary``).
    rng / rng_mode:
        Seed material and the randomness regime (:data:`RNG_MODES`).
    recorder:
        Optional per-round metric recorder; supported by the in-process
        backends (sequential backends require ``repetitions == 1``).
    max_rounds:
        Horizon in scheduler units: rounds under ``"synchronous"``,
        *ticks* under ``"asynchronous"``.  ``None`` picks the engine's
        generous default.
    check_every:
        Stopping-check stride for asynchronous plans (default: ``n``).
    workers:
        Worker-process budget for the sharded backends (``None`` = all
        cores once a sharded backend is selected; the ``"auto"`` alias
        only considers sharding when ``workers`` is explicitly > 1).
    backend:
        A registered backend name, or one of the resolution aliases
        (``"auto"``, ``"sequential-auto"``, ``"ensemble-auto"``,
        ``"sharded-auto"``) — see :func:`repro.engine.runtime.resolve_backend`.
    stable_fraction / stable_rounds:
        The §5 stable-regime thresholds (adversarial plans only).
    raise_on_limit:
        Whether synchronous non-adversarial runs raise
        :class:`~repro.engine.simulator.RoundLimitExceeded` when a replica
        exhausts the horizon (asynchronous and adversarial runs always
        report instead of raising).
    """

    process: ProcessSource
    initial: Configuration
    stop: "StoppingCondition | None" = None
    repetitions: int = 1
    scheduler: str = "synchronous"
    adversary: "Adversary | AdversarySchedule | None" = None
    faults: "FaultModel | FaultSchedule | None" = None
    rng: RandomSource = None
    rng_mode: str = "batched"
    recorder: "MetricRecorder | None" = None
    max_rounds: "int | None" = None
    check_every: "int | None" = None
    workers: "int | None" = None
    backend: str = "auto"
    stable_fraction: float = 0.95
    stable_rounds: int = 3
    raise_on_limit: bool = True

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be positive")
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; pick one of {SCHEDULERS}"
            )
        if self.rng_mode not in RNG_MODES:
            raise ValueError(
                f"unknown rng_mode {self.rng_mode!r}; pick one of {RNG_MODES}"
            )
        if self.adversary is not None and self.scheduler != "synchronous":
            raise ValueError(
                "adversarial plans use the synchronous scheduler (the §5 "
                "fault model corrupts after each synchronous round)"
            )
        if self.faults is not None:
            if self.scheduler != "synchronous":
                raise ValueError(
                    "fault injection is defined on the synchronous round "
                    "model (crash/loss masks gate each synchronous update)"
                )
            if self.adversary is not None:
                raise ValueError(
                    "faults and adversary are mutually exclusive plan axes; "
                    "run them in separate plans"
                )
            from ..faults import as_fault_schedule

            as_fault_schedule(self.faults)  # type-check eagerly
        if not 0.5 < self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must lie in (0.5, 1]")
        if self.stable_rounds < 1:
            raise ValueError("stable_rounds must be positive")
        if self.workers is not None and self.workers < 1:
            raise ValueError("workers must be positive")
        if self.max_rounds is not None and self.max_rounds < 1:
            raise ValueError("max_rounds must be positive")

    def spawn_process(self) -> AgentProcess:
        """A process instance for one replica (fresh when given a factory)."""
        if isinstance(self.process, AgentProcess):
            return self.process
        return self.process()

    def schedule(self) -> "AdversarySchedule":
        """The plan's adversary normalised to an :class:`AdversarySchedule`."""
        from ..adversary.adversary import AdversarySchedule

        if self.adversary is None:
            raise ValueError("plan has no adversary")
        if isinstance(self.adversary, AdversarySchedule):
            return self.adversary
        return AdversarySchedule(self.adversary)

    def fault_schedule(self) -> "FaultSchedule | None":
        """The plan's ``faults`` axis normalised to a live schedule.

        Trivial schedules (all rates zero) collapse to ``None`` so the
        engines take the exact fault-free path — the rate-0 bit-for-bit
        contract.
        """
        from ..faults import as_fault_schedule

        return as_fault_schedule(self.faults)

    def describe(self) -> str:
        """A short human-readable summary (used in resolution errors)."""
        axes = [
            f"scheduler={self.scheduler}",
            f"repetitions={self.repetitions}",
            f"rng_mode={self.rng_mode}",
        ]
        if self.adversary is not None:
            axes.append(f"adversary={self.adversary!r}")
        if self.faults is not None:
            axes.append(f"faults={self.faults!r}")
        if self.workers is not None:
            axes.append(f"workers={self.workers}")
        if self.recorder is not None:
            axes.append("recorder=yes")
        return ", ".join(axes)
