"""Sharded multicore ensembles: one ensemble, many worker processes.

The vectorized ensemble engine (:mod:`repro.engine.ensemble`) saturates a
single core; this module scales past it by splitting an ``R``-replica
ensemble into per-worker *shards*, running each shard through the
existing :func:`~repro.engine.ensemble.run_ensemble` in a
``multiprocessing`` pool, and merging the shard results back into one
:class:`~repro.engine.ensemble.EnsembleResult` in replica order.

Reproducibility is seed-derived, not scheduler-derived:

* Replica streams are spawned once, up front, with
  :func:`repro.engine.rng.replica_seed_sequences` — exactly the children
  the in-process engine would spawn — and each shard receives its
  replicas' sequences.  With ``rng_mode="per-replica"`` every replica
  therefore consumes the same stream no matter how the ensemble is
  sharded: results are **bit-for-bit invariant to the worker count** (and
  equal to the sequential backend, the existing engine guarantee).
* With ``rng_mode="batched"`` a shard shares one stream (its first
  replica's sequence), so results are deterministic for a fixed
  ``(seed, workers)`` pair and statistically equivalent across worker
  counts.
* ``workers=1`` skips the pool entirely and runs in-process — bit-for-bit
  identical to ``backend="ensemble-*"``.

Workers are started with the ``spawn`` method (fork-safety: no inherited
locks or rng state; the payloads — process object, configuration,
stopping condition, seed sequences — are all plain picklable values).

The pool is **persistent**: first use spawns it, subsequent ``.run()`` /
``.map()`` calls reuse it, so the ~1 s spawn cost is paid once per
executor instead of once per call — this is what makes sharding pay for
mid-size ensembles.  Reassigning :attr:`ShardedEnsembleExecutor.workers`
retires the old pool and lazily respawns at the next use; the executor is
a context manager (``with ShardedEnsembleExecutor(4) as ex: ...``) and
also tears its pool down on garbage collection.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
import weakref
from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import AgentProcess
from .ensemble import EnsembleResult, run_ensemble
from .rng import RandomSource, replica_seed_sequences
from .simulator import RoundLimitExceeded, default_round_limit
from .stopping import StoppingCondition

__all__ = [
    "ShardedEnsembleExecutor",
    "WorkerPoolError",
    "resolve_workers",
    "shard_bounds",
]


class WorkerPoolError(RuntimeError):
    """A pool worker died mid-map (OOM kill, external signal, hard crash).

    ``multiprocessing.Pool`` silently replaces dead workers, but any task
    in flight on the dead process is lost forever — a bare ``pool.map``
    would block on it indefinitely.  The executor detects the death,
    tears its pool down (the next call respawns lazily), and raises this
    error naming the dead worker pids and the shard indices whose
    results were lost, so callers can retry the whole map.
    """

    #: Retrying (or degrading to an in-process backend) can genuinely
    #: succeed — the study runner's error classifier keys off this.
    transient = True


def resolve_workers(workers: "int | None") -> int:
    """Normalise a ``workers`` request (``None`` → all available cores)."""
    if workers is None:
        return os.cpu_count() or 1
    if workers < 1:
        raise ValueError("workers must be positive")
    return int(workers)


def shard_bounds(repetitions: int, shards: int) -> "list[tuple[int, int]]":
    """Split ``repetitions`` replicas into ``shards`` contiguous ranges.

    Balanced to within one replica; earlier shards take the remainder.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if shards < 1:
        raise ValueError("shards must be positive")
    shards = min(shards, repetitions)
    base, extra = divmod(repetitions, shards)
    bounds = []
    start = 0
    for index in range(shards):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


@dataclass(frozen=True)
class _ShardPayload:
    """Everything one worker needs; shipped through pickle to the pool."""

    process: AgentProcess
    initial: Configuration
    repetitions: int
    rng: object  # SeedSequence (batched) or list of SeedSequences (per-replica)
    stop: "StoppingCondition | None"
    max_rounds: "int | None"
    backend: str
    rng_mode: str


def _run_shard(payload: _ShardPayload) -> EnsembleResult:
    """Pool worker: one in-process ensemble run over the shard's replicas.

    Round limits are *reported*, not raised, so a straggler shard cannot
    poison the pool with an exception; the merge step re-raises once the
    full ensemble view is assembled.
    """
    return run_ensemble(
        payload.process,
        payload.initial,
        payload.repetitions,
        rng=payload.rng,
        stop=payload.stop,
        max_rounds=payload.max_rounds,
        backend=payload.backend,
        rng_mode=payload.rng_mode,
        raise_on_limit=False,
    )


def _terminate_pool(pool) -> None:
    """Finalizer: tear a worker pool down (no reference back to the owner)."""
    pool.terminate()
    pool.join()


class ShardedEnsembleExecutor:
    """Run ensembles sharded across a persistent pool of worker processes.

    Parameters
    ----------
    workers:
        Worker-process count; ``None`` means one per available core.
        ``workers=1`` executes in-process (no pool, no pickling) and is
        bit-for-bit identical to calling
        :func:`~repro.engine.ensemble.run_ensemble` directly.  The
        attribute is writable: assigning a new count retires the current
        pool and lazily respawns one at the next use.
    mp_context:
        ``multiprocessing`` start method; ``"spawn"`` (default) is safe
        everywhere.  Workers inherit the parent environment, so
        ``PYTHONPATH``-based source checkouts work unchanged.
    """

    def __init__(self, workers: "int | None" = None, mp_context: str = "spawn"):
        self._workers = resolve_workers(workers)
        self.mp_context = mp_context
        self._pool = None
        self._finalizer = None
        # Pool lifecycle is lock-guarded: with the study runner's cell
        # scheduler, several worker threads may race the first map (both
        # spawning a pool and leaking one) or a deadline's pool teardown
        # may race an inflight spawn.  Mapping itself needs no guard —
        # ``apply_async`` is thread-safe — only create/teardown does.
        self._pool_lock = threading.RLock()

    @property
    def workers(self) -> int:
        return self._workers

    @workers.setter
    def workers(self, value: "int | None") -> None:
        value = resolve_workers(value)
        if value != self._workers:
            self._workers = value
            self.close()  # lazy respawn at the next map()/run()

    @property
    def pool_alive(self) -> bool:
        """Whether a worker pool is currently warm (spawned and reusable)."""
        return self._pool is not None

    def _ensure_pool(self):
        with self._pool_lock:
            if self._pool is None:
                context = multiprocessing.get_context(self.mp_context)
                self._pool = context.Pool(processes=self._workers)
                self._finalizer = weakref.finalize(
                    self, _terminate_pool, self._pool
                )
            return self._pool

    def close(self) -> None:
        """Tear the worker pool down (a later call respawns it lazily)."""
        with self._pool_lock:
            if self._pool is not None:
                self._finalizer.detach()
                _terminate_pool(self._pool)
                self._pool = None
                self._finalizer = None

    def __enter__(self) -> "ShardedEnsembleExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def map(self, fn, payloads: list) -> list:
        """Run ``fn`` over picklable payloads on the (persistent) pool.

        With one worker or one payload the map happens in-process — no
        pool, no pickling.  This is the primitive the runtime's generic
        sharded backends use to spread *any* plan family (synchronous,
        asynchronous, adversarial) over the same pool.

        Dispatch is per-payload (``apply_async``) with a worker-health
        poll: if any worker process dies mid-map (OOM kill, signal) a
        :class:`WorkerPoolError` naming the dead pids and lost shard
        indices is raised instead of blocking forever, and the pool is
        torn down so the next call respawns a fresh one.
        """
        if self._workers == 1 or len(payloads) <= 1:
            return [fn(payload) for payload in payloads]
        pool = self._ensure_pool()
        workers = list(pool._pool)
        known_pids = {worker.pid for worker in workers}
        pending = [pool.apply_async(fn, (payload,)) for payload in payloads]
        while not all(task.ready() for task in pending):
            current = list(pool._pool)
            dead_pids = sorted(
                {w.pid for w in workers if w.exitcode is not None}
                | (known_pids - {w.pid for w in current})
            )
            if dead_pids:
                lost = [i for i, task in enumerate(pending) if not task.ready()]
                self.close()  # lazy respawn at the next map()/run()
                raise WorkerPoolError(
                    f"worker process(es) {dead_pids} died mid-map; "
                    f"shard(s) {lost} of {len(payloads)} were lost. "
                    "The pool has been torn down and will respawn on the "
                    "next call; re-run the map to retry."
                )
            workers = current
            time.sleep(0.02)
        return [task.get() for task in pending]

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(workers={self.workers}, "
            f"mp_context={self.mp_context!r}, "
            f"pool={'warm' if self.pool_alive else 'cold'})"
        )

    def run(
        self,
        process: AgentProcess,
        initial: Configuration,
        repetitions: int,
        rng: RandomSource = None,
        stop: "StoppingCondition | None" = None,
        max_rounds: "int | None" = None,
        backend: str = "auto",
        rng_mode: str = "batched",
        raise_on_limit: bool = True,
        recorder=None,
    ) -> EnsembleResult:
        """Simulate ``R`` replicas, sharded over the executor's workers.

        Accepts the :func:`~repro.engine.ensemble.run_ensemble` surface;
        ``recorder`` is only supported in-process (``workers=1``), since a
        recorder mutated inside pool workers would be lost on pickling.
        """
        if repetitions < 1:
            raise ValueError("repetitions must be positive")
        shards = min(self.workers, repetitions)
        if shards == 1:
            return run_ensemble(
                process,
                initial,
                repetitions,
                rng=rng,
                stop=stop,
                max_rounds=max_rounds,
                backend=backend,
                rng_mode=rng_mode,
                raise_on_limit=raise_on_limit,
                recorder=recorder,
            )
        if recorder is not None:
            raise ValueError(
                "metric recording requires workers=1 (recorders cannot be "
                "merged across pool workers)"
            )
        sequences = replica_seed_sequences(rng, repetitions)
        payloads = []
        for lo, hi in shard_bounds(repetitions, shards):
            shard_rng = (
                sequences[lo:hi] if rng_mode == "per-replica" else sequences[lo]
            )
            payloads.append(
                _ShardPayload(
                    process=process,
                    initial=initial,
                    repetitions=hi - lo,
                    rng=shard_rng,
                    stop=stop,
                    max_rounds=max_rounds,
                    backend=backend,
                    rng_mode=rng_mode,
                )
            )
        shard_results = self.map(_run_shard, payloads)
        return self._merge(
            process, stop, initial, max_rounds, shard_results, raise_on_limit
        )

    @staticmethod
    def _merge(
        process: AgentProcess,
        stop: "StoppingCondition | None",
        initial: Configuration,
        max_rounds: "int | None",
        shard_results: "list[EnsembleResult]",
        raise_on_limit: bool,
    ) -> EnsembleResult:
        """Concatenate shard results back into global replica order."""
        first = shard_results[0]
        times = np.concatenate([r.times for r in shard_results])
        stopped = np.concatenate([r.stopped for r in shard_results])
        final_counts = np.vstack([r.final_counts for r in shard_results])
        if raise_on_limit and not np.all(stopped):
            limit = (
                max_rounds
                if max_rounds is not None
                else default_round_limit(initial.num_nodes)
            )
            raise RoundLimitExceeded(process.name, limit, first.stop_label)
        return EnsembleResult(
            process_name=first.process_name,
            times=times,
            stopped=stopped,
            final_counts=final_counts,
            backend=first.backend,
            stop_label=first.stop_label,
            rng_mode=first.rng_mode,
        )
