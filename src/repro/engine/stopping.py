"""Stopping conditions for simulation runs.

The paper's statements are all first-passage times of simple functionals:

* consensus (``T¹``, Theorems 1/4),
* the number of remaining colors dropping to ``κ`` (``T^κ``, Theorem 2,
  Lemmas 2/3),
* the maximum support exceeding a threshold (``T_i``/``T`` in Theorem 5).

Stopping conditions are small callable objects evaluated on the count
vector after every round; the simulator stops at the first round whose
post-round configuration satisfies the condition (or at the round limit).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = [
    "StoppingCondition",
    "Consensus",
    "ColorsAtMost",
    "MaxSupportAbove",
    "BiasAtLeast",
    "AnyOf",
    "AllOf",
]


class StoppingCondition(abc.ABC):
    """Predicate on the post-round count vector."""

    #: Short label used in results and reports.
    label: str = "stop"

    @abc.abstractmethod
    def satisfied(self, counts: np.ndarray) -> bool:
        """True iff the run should stop in this configuration."""

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        """Vectorized predicate over an ``(R, k)`` counts matrix.

        Returns an ``(R,)`` boolean mask — entry ``r`` is
        ``satisfied(counts[r])``.  The base implementation loops
        :meth:`satisfied` row-wise so custom conditions work in the
        ensemble engine unchanged; the built-in conditions override with
        one-pass array reductions.
        """
        counts = np.asarray(counts)
        return np.fromiter(
            (self.satisfied(counts[r]) for r in range(counts.shape[0])),
            dtype=bool,
            count=counts.shape[0],
        )

    def __call__(self, counts: np.ndarray) -> bool:
        return self.satisfied(counts)

    def __or__(self, other: "StoppingCondition") -> "AnyOf":
        return AnyOf(self, other)

    def __and__(self, other: "StoppingCondition") -> "AllOf":
        return AllOf(self, other)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.label!r})"


class Consensus(StoppingCondition):
    """Stop when a single color supports every node (``T¹``)."""

    label = "consensus"

    def satisfied(self, counts: np.ndarray) -> bool:
        return int(np.count_nonzero(counts)) <= 1

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        return np.count_nonzero(counts, axis=1) <= 1


class ColorsAtMost(StoppingCondition):
    """Stop when at most ``kappa`` colors remain (``T^κ``)."""

    def __init__(self, kappa: int):
        if kappa < 1:
            raise ValueError("kappa must be at least 1")
        self.kappa = int(kappa)
        self.label = f"colors<={kappa}"

    def satisfied(self, counts: np.ndarray) -> bool:
        return int(np.count_nonzero(counts)) <= self.kappa

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        return np.count_nonzero(counts, axis=1) <= self.kappa


class MaxSupportAbove(StoppingCondition):
    """Stop when some color's support strictly exceeds ``threshold``.

    This is the symmetry-breaking event of Theorem 5 (support above
    ``ℓ' = max(2ℓ, γ log n)``).
    """

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = int(threshold)
        self.label = f"max_support>{threshold}"

    def satisfied(self, counts: np.ndarray) -> bool:
        return int(counts.max()) > self.threshold

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        return np.max(counts, axis=1) > self.threshold


class BiasAtLeast(StoppingCondition):
    """Stop when the bias (top-two support gap) reaches ``threshold``."""

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = int(threshold)
        self.label = f"bias>={threshold}"

    def satisfied(self, counts: np.ndarray) -> bool:
        if counts.size == 1:
            return int(counts[0]) >= self.threshold
        top_two = np.partition(counts, counts.size - 2)[-2:]
        return int(top_two[1] - top_two[0]) >= self.threshold

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        counts = np.asarray(counts)
        if counts.shape[1] == 1:
            return counts[:, 0] >= self.threshold
        top_two = np.partition(counts, counts.shape[1] - 2, axis=1)[:, -2:]
        return (top_two[:, 1] - top_two[:, 0]) >= self.threshold


class AnyOf(StoppingCondition):
    """Disjunction of conditions (stop when any fires)."""

    def __init__(self, *conditions: StoppingCondition):
        if not conditions:
            raise ValueError("AnyOf needs at least one condition")
        self.conditions = tuple(conditions)
        self.label = " | ".join(c.label for c in conditions)

    def satisfied(self, counts: np.ndarray) -> bool:
        return any(c.satisfied(counts) for c in self.conditions)

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        mask = self.conditions[0].satisfied_ensemble(counts)
        for condition in self.conditions[1:]:
            mask = mask | condition.satisfied_ensemble(counts)
        return mask


class AllOf(StoppingCondition):
    """Conjunction of conditions (stop when all hold simultaneously)."""

    def __init__(self, *conditions: StoppingCondition):
        if not conditions:
            raise ValueError("AllOf needs at least one condition")
        self.conditions = tuple(conditions)
        self.label = " & ".join(c.label for c in conditions)

    def satisfied(self, counts: np.ndarray) -> bool:
        return all(c.satisfied(counts) for c in self.conditions)

    def satisfied_ensemble(self, counts: np.ndarray) -> np.ndarray:
        mask = self.conditions[0].satisfied_ensemble(counts)
        for condition in self.conditions[1:]:
            mask = mask & condition.satisfied_ensemble(counts)
        return mask
