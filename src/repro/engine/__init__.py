"""Round-synchronous simulation engine.

* :mod:`repro.engine.rng` — deterministic seeding and stream spawning;
* :mod:`repro.engine.simulator` — agent-level and exact count-level runs,
  first-passage helpers for the paper's target quantities;
* :mod:`repro.engine.stopping` — stopping conditions (consensus, ``T^κ``,
  symmetry breaking);
* :mod:`repro.engine.metrics` — per-round trajectory metrics;
* :mod:`repro.engine.batch` — repetitions, summaries, CDF dominance;
* :mod:`repro.engine.ensemble` — vectorized lock-step simulation of a
  whole ensemble of replicas (the fast path for repeated measurements).
"""

from .asynchronous import AsyncResult, run_asynchronous, ticks_to_round_equivalents
from .ensemble import (
    EnsembleResult,
    run_agent_ensemble,
    run_counts_ensemble,
    run_ensemble,
)
from .batch import (
    BatchSummary,
    cdf_dominates,
    empirical_cdf,
    repeat_first_passage,
    summarize,
)
from .metrics import METRICS, MetricRecorder
from .rng import as_generator, derive_seed, spawn_generators
from .simulator import (
    RoundLimitExceeded,
    SimulationResult,
    consensus_time,
    default_round_limit,
    reduction_time,
    run,
    run_agent,
    run_counts,
    symmetry_breaking_time,
)
from .stopping import (
    AllOf,
    AnyOf,
    BiasAtLeast,
    ColorsAtMost,
    Consensus,
    MaxSupportAbove,
    StoppingCondition,
)

__all__ = [
    "AllOf",
    "AsyncResult",
    "AnyOf",
    "BatchSummary",
    "BiasAtLeast",
    "ColorsAtMost",
    "Consensus",
    "EnsembleResult",
    "METRICS",
    "MaxSupportAbove",
    "MetricRecorder",
    "RoundLimitExceeded",
    "SimulationResult",
    "StoppingCondition",
    "as_generator",
    "cdf_dominates",
    "consensus_time",
    "default_round_limit",
    "derive_seed",
    "empirical_cdf",
    "reduction_time",
    "run_asynchronous",
    "repeat_first_passage",
    "run",
    "run_agent",
    "run_agent_ensemble",
    "run_counts",
    "run_counts_ensemble",
    "run_ensemble",
    "spawn_generators",
    "summarize",
    "symmetry_breaking_time",
    "ticks_to_round_equivalents",
]
