"""Simulation engine: execution strategies behind one unified runtime.

* :mod:`repro.engine.rng` — deterministic seeding and stream spawning;
* :mod:`repro.engine.simulator` — agent-level and exact count-level runs,
  first-passage helpers for the paper's target quantities;
* :mod:`repro.engine.stopping` — stopping conditions (consensus, ``T^κ``,
  symmetry breaking);
* :mod:`repro.engine.metrics` — per-round trajectory metrics (with
  ensemble-aware recorders);
* :mod:`repro.engine.batch` — repetitions, summaries, CDF dominance;
* :mod:`repro.engine.ensemble` — vectorized lock-step simulation of a
  whole ensemble of replicas (the fast path for repeated measurements);
* :mod:`repro.engine.sharded` — the persistent multicore worker pool the
  sharded backends run on;
* :mod:`repro.engine.asynchronous` — the one-node-per-tick companion
  scheduler, sequential and lock-step ensemble;
* :mod:`repro.engine.kernels` — fused single-pass kernels: the agent
  ensemble lumped exactly to a counts chain, the async tick loop resolved
  in conflict-free wavefronts (registered as ``kernel-agent`` /
  ``kernel-async``, pure numpy with optional numba acceleration);
* :mod:`repro.engine.plan` / :mod:`repro.engine.runtime` — the unified
  runtime: declarative :class:`SimulationPlan`\\ s executed by the
  cheapest registered :class:`Backend` whose declared capabilities
  (scheduler kind, adversary support, counts tractability) cover the
  plan.  ``execute(plan)`` is the single entry point behind
  :func:`repeat_first_passage`, the sweep harness, and the CLI.
"""

from .asynchronous import (
    AsyncEnsembleResult,
    AsyncResult,
    run_asynchronous,
    run_asynchronous_ensemble,
    ticks_to_round_equivalents,
)
from .ensemble import (
    EnsembleResult,
    narrow_int_dtype,
    run_agent_ensemble,
    run_counts_ensemble,
    run_ensemble,
)
from .sharded import (
    ShardedEnsembleExecutor,
    WorkerPoolError,
    resolve_workers,
    shard_bounds,
)
from .batch import (
    BatchSummary,
    cdf_dominates,
    empirical_cdf,
    repeat_first_passage,
    summarize,
)
from .kernels import (
    run_fused_agent_ensemble,
    run_fused_asynchronous_ensemble,
)
from .metrics import METRICS, EnsembleMetricRecorder, MetricRecorder
from .plan import RNG_MODES, SCHEDULERS, SimulationPlan
from .runtime import (
    Backend,
    BackendSpec,
    ExecutionResult,
    backend_choices,
    backend_names,
    backend_specs,
    execute,
    get_backend,
    register_backend,
    resolve_backend,
    shared_executor,
    shutdown_pools,
)
from .rng import (
    as_generator,
    derive_seed,
    per_replica_generators,
    replica_seed_sequences,
    spawn_generators,
)
from .simulator import (
    RoundLimitExceeded,
    SimulationResult,
    consensus_time,
    default_round_limit,
    reduction_time,
    run,
    run_agent,
    run_counts,
    symmetry_breaking_time,
)
from .stopping import (
    AllOf,
    AnyOf,
    BiasAtLeast,
    ColorsAtMost,
    Consensus,
    MaxSupportAbove,
    StoppingCondition,
)

__all__ = [
    "AllOf",
    "AsyncEnsembleResult",
    "AsyncResult",
    "AnyOf",
    "Backend",
    "BackendSpec",
    "BatchSummary",
    "BiasAtLeast",
    "ColorsAtMost",
    "Consensus",
    "EnsembleMetricRecorder",
    "EnsembleResult",
    "ExecutionResult",
    "METRICS",
    "MaxSupportAbove",
    "MetricRecorder",
    "RNG_MODES",
    "RoundLimitExceeded",
    "SCHEDULERS",
    "ShardedEnsembleExecutor",
    "SimulationPlan",
    "SimulationResult",
    "StoppingCondition",
    "WorkerPoolError",
    "as_generator",
    "backend_choices",
    "backend_names",
    "backend_specs",
    "execute",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "shared_executor",
    "shutdown_pools",
    "cdf_dominates",
    "consensus_time",
    "default_round_limit",
    "derive_seed",
    "empirical_cdf",
    "narrow_int_dtype",
    "per_replica_generators",
    "reduction_time",
    "replica_seed_sequences",
    "resolve_workers",
    "run_asynchronous",
    "run_asynchronous_ensemble",
    "run_fused_agent_ensemble",
    "run_fused_asynchronous_ensemble",
    "repeat_first_passage",
    "run",
    "run_agent",
    "run_agent_ensemble",
    "run_counts",
    "run_counts_ensemble",
    "run_ensemble",
    "shard_bounds",
    "spawn_generators",
    "summarize",
    "symmetry_breaking_time",
    "ticks_to_round_equivalents",
]
