"""Unified execution runtime: a backend registry behind every engine.

PR 1–2 grew five execution paths (sequential runs, lock-step ensembles,
sharded pools, the asynchronous scheduler, the §5 adversary runners)
selected by string-prefix parsing duplicated across the batch helpers,
the sweep harness and the CLI — and the async/adversary engines were not
reachable from sweeps at all.  This module replaces that with one layer:

* a :class:`SimulationPlan` (see :mod:`repro.engine.plan`) declares the
  measurement and its model axes;
* every execution strategy is a :class:`Backend` registered with a
  :class:`BackendSpec` declaring its capabilities (scheduler kind,
  adversary support, count-chain tractability requirement) and a cost
  model;
* :func:`resolve_backend` picks the cheapest registered backend whose
  capabilities cover the plan — ``"auto"`` is an explicit, testable cost
  decision instead of a hand-rolled ``startswith`` chain;
* :func:`execute` runs the plan and returns a uniform
  :class:`ExecutionResult` (per-replica first-passage times, stop masks,
  final counts, plus the family's raw result object).

Sharding is generic: a sharded backend splits any plan's replicas into
per-worker sub-plans, executes each through the matching in-process
backend on a **persistent** ``multiprocessing`` pool, and merges in
replica order — so the asynchronous and adversarial ensembles get the
multicore path for free, with the same seed-derivation guarantee as the
synchronous one (``rng_mode="per-replica"`` results are bit-for-bit
invariant to the worker count).

Writing a new backend
---------------------

A backend is any object with a ``spec``, ``supports``/``eligible``,
``cost`` and ``execute`` — duck-typed against the :class:`Backend`
protocol::

    class MyBackend:
        spec = BackendSpec(
            name="my-backend",
            kind="ensemble",
            scheduler="synchronous",
            adversary=False,
            representation="agent",
            requires_counts_tractable=False,
            description="my strategy",
        )

        def supports(self, plan):          # can it run this plan at all?
            return plan.scheduler == "synchronous" and plan.adversary is None

        def eligible(self, plan, family_forced=False):  # may "auto" pick it?
            return self.supports(plan)

        def cost(self, plan):              # estimated element-ops, lower wins
            return plan.repetitions * plan.initial.num_nodes

        def execute(self, plan):
            ...
            return ExecutionResult(plan=plan, backend=self.spec.name, ...)

    register_backend(MyBackend())

After registration the backend is resolvable by name everywhere a plan is
executed (``repeat_first_passage``, ``sweep_first_passage``, the CLI —
whose ``--backend`` choices are derived from this registry).
"""

from __future__ import annotations

import atexit
import threading
from dataclasses import dataclass, field, replace
from typing import Protocol

import numpy as np

from ..processes.base import ACAgentProcess, AgentProcess
from .asynchronous import (
    AsyncEnsembleResult,
    _default_tick_limit,
    run_asynchronous,
    run_asynchronous_ensemble,
)
from .ensemble import EnsembleResult, run_ensemble
from .kernels import (
    async_kernel_eligible,
    kernel_eligible,
    run_fused_agent_ensemble,
    run_fused_asynchronous_ensemble,
)
from .plan import SimulationPlan
from .rng import per_replica_generators, replica_seed_sequences
from .sharded import ShardedEnsembleExecutor, resolve_workers, shard_bounds
from .simulator import (
    _COUNT_BACKEND_SLOT_LIMIT,
    RoundLimitExceeded,
    default_round_limit,
    run,
)

__all__ = [
    "Backend",
    "BackendSpec",
    "ExecutionResult",
    "backend_choices",
    "backend_names",
    "backend_specs",
    "degradation_ladder",
    "execute",
    "get_backend",
    "register_backend",
    "resolve_backend",
    "shared_executor",
    "shutdown_pools",
]

#: Default horizon of the §5 robust runner (kept in sync with
#: :func:`repro.adversary.robust_runner.run_with_adversary`).
_ADVERSARY_DEFAULT_HORIZON = 50_000

# ---------------------------------------------------------------------------
# Cost model.
#
# Costs are crude *relative* estimates in "array elements touched over the
# whole run" — they only need to rank strategies, not predict wall time.
# The constants encode the measured regimes of BENCH_engine.json: python
# dispatch overhead per interpreter round (what the lock-step ensembles
# amortise), the multinomial-vs-gather per-element gap (why the counts
# chain wins at small k), and the one-off pool-spawn price (why sharding
# needs heavy ensembles or a warm pool to pay).

#: Interpreter overhead of one per-replica python round, in element units.
_SEQ_OVERHEAD = 400.0
#: Interpreter overhead of one vectorized whole-ensemble round.
_ROUND_OVERHEAD = 400.0
#: A count-chain element costs ~a quarter of an agent-gather element.
_COUNTS_FACTOR = 0.25
#: A fused-kernel counts element: the switch-and-redistribute chain draws
#: a binomial alongside the multinomial, so it sits slightly above the
#: plain count chain — AC-processes keep resolving to ``ensemble-counts``
#: and the kernel wins exactly where it is the only counts-shaped option.
_KERNEL_FACTOR = 0.35
#: Mild edge of the ensemble per-replica loop over the sequential loop
#: (shared stopping masks + retirement compaction).
_ENSEMBLE_LOOP_FACTOR = 0.9
#: Spawning a fresh ``spawn``-method pool costs ~1 s ≈ this many elements.
_POOL_SPAWN_COST = 2.5e8


def _sync_horizon(plan: SimulationPlan) -> float:
    """Expected synchronous rounds actually executed (for amortisation).

    Calibrated against measured first-passage round counts rather than
    worst-case limits: consensus-type runs finish in ``O(log n)`` rounds
    with a width-driven ``√k`` term for many-color starts (≈16 rounds at
    ``n = 10⁴, k = 2``; ≈21 at ``n = 2048, k = 8``; ≈110 at
    ``k = 1024``).  The previous ``6√n + 48`` overestimated these by
    6–40×, which inflated every synchronous cost uniformly — harmless for
    ranking sync backends against each other, but it distorted the
    amortisation against one-off costs like pool spawning.
    """
    n = plan.initial.num_nodes
    k = plan.initial.num_slots
    if plan.adversary is not None:
        limit = plan.max_rounds or _ADVERSARY_DEFAULT_HORIZON
    else:
        limit = plan.max_rounds if plan.max_rounds is not None else default_round_limit(n)
    return float(min(limit, 2.0 * np.log(n) + 3.0 * np.sqrt(k) + 8.0))


def _async_horizon(plan: SimulationPlan) -> float:
    """Expected asynchronous ticks actually executed."""
    n = plan.initial.num_nodes
    limit = plan.max_rounds if plan.max_rounds is not None else _default_tick_limit(n)
    return float(min(limit, n * (6.0 * np.sqrt(n) + 48.0)))


# ---------------------------------------------------------------------------
# Capability predicates shared by the specs.


def _counts_capable(plan: SimulationPlan, process: AgentProcess) -> bool:
    """Can the exact count-level chain represent this plan at all?"""
    return isinstance(process, ACAgentProcess)


def _counts_tractable(plan: SimulationPlan, process: AgentProcess) -> bool:
    """Should ``auto`` consider the count chain (tractable α, narrow slots)?"""
    return (
        isinstance(process, ACAgentProcess)
        and process.supports_count_backend(plan.initial)
        and plan.initial.num_slots <= _COUNT_BACKEND_SLOT_LIMIT
    )


def _adversary_counts_capable(plan: SimulationPlan, process: AgentProcess) -> bool:
    """The count-level robust chain's validity rule (mirrors the runner)."""
    schedule = plan.schedule()
    return (
        isinstance(process, ACAgentProcess)
        and schedule.adversary.supports_counts
        and type(process).initial_colors is AgentProcess.initial_colors
        and process.supports_count_backend(plan.initial)
    )


# ---------------------------------------------------------------------------
# Spec, protocol, result.


@dataclass(frozen=True)
class BackendSpec:
    """Declared capabilities of one registered execution strategy."""

    #: Registry key (also the user-facing ``backend=`` name).
    name: str
    #: Execution family: ``"sequential"`` | ``"ensemble"`` | ``"kernel"``
    #: | ``"sharded"``.
    kind: str
    #: Scheduler this backend implements (one of :data:`~repro.engine.plan.SCHEDULERS`).
    scheduler: str
    #: True when the backend runs §5 adversarial plans (and only those).
    adversary: bool
    #: State representation: ``"agent"`` or ``"counts"``.
    representation: str
    #: True when ``auto`` must additionally verify count-chain tractability.
    requires_counts_tractable: bool
    #: One-line summary (surfaced by the CLI and the ROADMAP table).
    description: str
    #: True when the backend honours the plan's ``faults=`` axis
    #: (crash/recovery/message-loss injection).
    faults: bool = False


class Backend(Protocol):
    """The protocol every registered execution strategy implements."""

    spec: BackendSpec

    def supports(self, plan: SimulationPlan) -> bool:
        """Whether this backend can execute ``plan`` at all."""

    def eligible(self, plan: SimulationPlan, family_forced: bool = False) -> bool:
        """Whether cost-based resolution may pick this backend for ``plan``."""

    def cost(self, plan: SimulationPlan) -> float:
        """Relative cost estimate (element-ops); lower wins resolution."""

    def execute(self, plan: SimulationPlan) -> "ExecutionResult":
        """Run the plan and return its uniform result."""


@dataclass
class ExecutionResult:
    """Uniform outcome of :func:`execute`, whatever the backend family.

    ``times`` holds the per-replica first-passage measurement in
    ``unit`` — synchronous rounds, asynchronous ticks, or rounds-to-
    stabilisation for adversarial plans; ``stopped`` whether the plan's
    criterion fired (stopping condition, or the §5 stable regime).
    ``raw`` keeps the family's full result object
    (:class:`~repro.engine.ensemble.EnsembleResult`,
    :class:`~repro.engine.asynchronous.AsyncEnsembleResult`, or
    :class:`~repro.adversary.robust_runner.RobustEnsembleResult`) for
    consumers that need more than the first-passage view.
    """

    plan: SimulationPlan
    backend: str
    unit: str
    times: np.ndarray
    stopped: np.ndarray
    final_counts: "np.ndarray | None"
    raw: object = field(repr=False, default=None)

    @property
    def repetitions(self) -> int:
        return int(self.times.size)

    @property
    def all_stopped(self) -> bool:
        return bool(np.all(self.stopped))


# ---------------------------------------------------------------------------
# Registry.

_REGISTRY: "dict[str, Backend]" = {}

#: Resolution aliases: family-restricted cost-model picks.  ``None``
#: means "any family" (the fully automatic decision).
_ALIAS_FAMILIES = {
    "auto": None,
    "sequential-auto": "sequential",
    "ensemble-auto": "ensemble",
    "kernel-auto": "kernel",
    "sharded-auto": "sharded",
}


def register_backend(backend: Backend, replace_existing: bool = False) -> Backend:
    """Add a backend to the registry under ``backend.spec.name``."""
    name = backend.spec.name
    if name in _ALIAS_FAMILIES:
        raise ValueError(f"{name!r} is a reserved resolution alias")
    if name in _REGISTRY and not replace_existing:
        raise ValueError(f"backend {name!r} is already registered")
    _REGISTRY[name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Look a backend up by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}; "
            f"aliases: {', '.join(_ALIAS_FAMILIES)}"
        ) from None


def backend_names() -> "tuple[str, ...]":
    """Registered backend names, in registration (preference) order."""
    return tuple(_REGISTRY)


def backend_specs() -> "tuple[BackendSpec, ...]":
    """The capability declarations of every registered backend."""
    return tuple(backend.spec for backend in _REGISTRY.values())


def backend_choices() -> "tuple[str, ...]":
    """Every name a plan's ``backend`` field accepts (registry + aliases)."""
    return tuple(_ALIAS_FAMILIES) + tuple(_REGISTRY)


def resolve_backend(plan: SimulationPlan) -> Backend:
    """The explicit backend decision: capabilities filter, cost ranks.

    A concrete registry name must support the plan or resolution raises
    with the mismatch; an alias picks the cheapest eligible backend of
    its family (``"auto"`` across all families — sharded backends only
    compete there when the plan requests ``workers > 1``, since a pool
    is never an implicit default).
    """
    name = plan.backend
    if name not in _ALIAS_FAMILIES:
        backend = get_backend(name)
        if not backend.supports(plan):
            raise backend.rejection(plan)
        return backend
    family = _ALIAS_FAMILIES[name]
    candidates = [
        backend
        for backend in _REGISTRY.values()
        if (family is None or backend.spec.kind == family)
        and backend.eligible(plan, family_forced=family is not None)
    ]
    if not candidates:
        raise ValueError(
            f"no registered backend can execute this plan via {name!r} "
            f"({plan.describe()}); registered: {', '.join(_REGISTRY)}"
        )
    costs = [backend.cost(plan) for backend in candidates]
    return candidates[int(np.argmin(costs))]


def execute(plan: SimulationPlan) -> ExecutionResult:
    """Resolve the plan's backend and run it."""
    return resolve_backend(plan).execute(plan)


#: The single-process backend each ensemble family degrades to when even
#: in-process execution is suspect (e.g. the ensemble path itself OOMs).
_SEQUENTIAL_FALLBACKS = {
    "ensemble-agent": "agent",
    "ensemble-counts": "counts",
    "ensemble-async": "async",
    "ensemble-adversary-agent": "adversary",
    "ensemble-adversary-counts": "adversary",
    "kernel-agent": "agent",
    "kernel-async": "async",
}


def degradation_ladder(name: str) -> "tuple[str, ...]":
    """Backends to fall back to when ``name`` keeps failing transiently.

    The capability ladder runs ``sharded-* → ensemble-* → sequential``:
    a sharded backend first sheds its worker pool (its inner ensemble
    backend computes the identical per-replica streams in-process), then
    the ensemble path drops to the one-replica-at-a-time sequential
    engine.  Sequential backends have nothing below them — the ladder is
    empty — and an unknown name degrades nowhere rather than raising
    (degradation is best-effort by definition).
    """
    backend = _REGISTRY.get(name)
    if backend is None:
        return ()
    inner = getattr(backend, "inner_name", None)
    if inner is not None:
        sequential = _SEQUENTIAL_FALLBACKS.get(inner)
        return (inner,) + ((sequential,) if sequential else ())
    sequential = _SEQUENTIAL_FALLBACKS.get(name)
    return (sequential,) if sequential else ()


# ---------------------------------------------------------------------------
# Shared persistent pool (the sharded backends' substrate).

_SHARED_EXECUTOR: "ShardedEnsembleExecutor | None" = None

#: Guards the module-global executor slot: the study runner's cell
#: scheduler may reach it from several worker threads at once.
_SHARED_EXECUTOR_LOCK = threading.Lock()


def shared_executor(workers: int) -> ShardedEnsembleExecutor:
    """The runtime's persistent pool, respawned lazily on count changes."""
    global _SHARED_EXECUTOR
    with _SHARED_EXECUTOR_LOCK:
        if _SHARED_EXECUTOR is None:
            _SHARED_EXECUTOR = ShardedEnsembleExecutor(workers=workers)
        else:
            _SHARED_EXECUTOR.workers = workers
        return _SHARED_EXECUTOR


def pool_is_warm(workers: int) -> bool:
    """Whether a reusable pool of exactly ``workers`` processes is live."""
    return (
        _SHARED_EXECUTOR is not None
        and _SHARED_EXECUTOR.pool_alive
        and _SHARED_EXECUTOR.workers == workers
    )


def shutdown_pools() -> None:
    """Tear the shared pool down (safe to call repeatedly, any thread)."""
    global _SHARED_EXECUTOR
    with _SHARED_EXECUTOR_LOCK:
        executor, _SHARED_EXECUTOR = _SHARED_EXECUTOR, None
    if executor is not None:
        executor.close()


atexit.register(shutdown_pools)


# ---------------------------------------------------------------------------
# Backend implementations.


def _stack_counts(finals: "list[np.ndarray]") -> np.ndarray:
    """Stack per-replica count vectors, zero-padding to the widest.

    Processes with auxiliary states (e.g. Undecided dynamics) can project
    final configurations wider than the initial slot count.
    """
    width = max(f.size for f in finals)
    stacked = np.zeros((len(finals), width), dtype=np.int64)
    for row, counts in enumerate(finals):
        stacked[row, : counts.size] = counts
    return stacked


class _BackendBase:
    """Shared plumbing: spec storage, default eligibility, rejections."""

    def __init__(self, spec: BackendSpec):
        self.spec = spec

    def _faults_supported(self, plan: SimulationPlan) -> bool:
        """Capability gate for the plan's ``faults=`` axis."""
        if plan.faults is None:
            return True
        if not self.spec.faults:
            return False
        if self.spec.representation == "counts":
            schedule = plan.fault_schedule()
            if schedule is not None and not schedule.supports_counts:
                return False
        return True

    def eligible(self, plan: SimulationPlan, family_forced: bool = False) -> bool:
        if not self.supports(plan):
            return False
        if self.spec.requires_counts_tractable:
            process = plan.spawn_process()
            if self.spec.adversary:
                if plan.initial.num_slots > _COUNT_BACKEND_SLOT_LIMIT:
                    return False
                ceiling = plan.schedule().adversary.color_ceiling(
                    plan.initial.num_slots
                )
                if ceiling > _COUNT_BACKEND_SLOT_LIMIT:
                    return False
            elif not _counts_tractable(plan, process):
                return False
        return True

    def rejection(self, plan: SimulationPlan) -> Exception:
        """The error raised when this backend is named but unsupported."""
        spec = self.spec
        if spec.representation == "counts" and not isinstance(
            plan.spawn_process(), ACAgentProcess
        ):
            return TypeError(
                f"backend {spec.name!r} needs an AC-process; "
                f"{plan.spawn_process().name} is not one"
            )
        wants = "adversarial" if spec.adversary else "non-adversarial"
        return ValueError(
            f"backend {spec.name!r} ({spec.scheduler}, {wants}) cannot "
            f"execute this plan ({plan.describe()}); pick one of "
            f"{', '.join(backend_choices())}"
        )

    def __repr__(self) -> str:
        return f"<backend {self.spec.name!r}: {self.spec.description}>"


class SequentialSyncBackend(_BackendBase):
    """The reference path: one :func:`repro.engine.simulator.run` per replica.

    Inherently per-replica (one spawned child stream per repetition,
    fresh process instances from factories), so ``rng_mode`` is moot —
    every other backend's ``"per-replica"`` mode is defined as
    reproducing *this* backend bit-for-bit.
    """

    def supports(self, plan: SimulationPlan) -> bool:
        if plan.scheduler != "synchronous" or plan.adversary is not None:
            return False
        if not self._faults_supported(plan):
            return False
        if plan.recorder is not None and plan.repetitions > 1:
            return False
        if self.spec.representation == "counts":
            return _counts_capable(plan, plan.spawn_process())
        return True

    def cost(self, plan: SimulationPlan) -> float:
        if self.spec.representation == "counts":
            per = _COUNTS_FACTOR * plan.initial.num_slots
        else:
            per = float(plan.initial.num_nodes)
        return plan.repetitions * (per + _SEQ_OVERHEAD) * _sync_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        generators = per_replica_generators(plan.rng, plan.repetitions)
        times = np.empty(plan.repetitions, dtype=np.int64)
        stopped = np.zeros(plan.repetitions, dtype=bool)
        finals = []
        stop_label = "consensus"
        for index, generator in enumerate(generators):
            result = run(
                plan.spawn_process(),
                plan.initial,
                rng=generator,
                stop=plan.stop,
                max_rounds=plan.max_rounds,
                recorder=plan.recorder,
                backend=self.spec.representation,
                raise_on_limit=plan.raise_on_limit,
                faults=plan.faults,
            )
            times[index] = result.rounds
            stopped[index] = result.stopped
            finals.append(result.final.counts_array())
            stop_label = result.stop_label
        final_counts = _stack_counts(finals)
        raw = EnsembleResult(
            process_name=plan.spawn_process().name,
            times=times,
            stopped=stopped,
            final_counts=final_counts,
            backend=self.spec.representation,
            stop_label=stop_label,
            rng_mode="per-replica",
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="rounds",
            times=times,
            stopped=stopped,
            final_counts=final_counts,
            raw=raw,
        )


class EnsembleSyncBackend(_BackendBase):
    """Lock-step vectorized replicas (:func:`repro.engine.ensemble.run_ensemble`)."""

    def supports(self, plan: SimulationPlan) -> bool:
        if plan.scheduler != "synchronous" or plan.adversary is not None:
            return False
        if not self._faults_supported(plan):
            return False
        if self.spec.representation == "counts":
            return _counts_capable(plan, plan.spawn_process())
        return True

    def cost(self, plan: SimulationPlan) -> float:
        process = plan.spawn_process()
        if self.spec.representation == "counts":
            per = _COUNTS_FACTOR * plan.initial.num_slots
            batched = plan.rng_mode == "batched"
        else:
            per = float(plan.initial.num_nodes)
            batched = plan.rng_mode == "batched" and process.has_vectorized_ensemble
        if batched:
            per_round = plan.repetitions * per + _ROUND_OVERHEAD
        else:
            per_round = (
                plan.repetitions * (per + _SEQ_OVERHEAD) * _ENSEMBLE_LOOP_FACTOR
            )
        return per_round * _sync_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        result = run_ensemble(
            plan.spawn_process(),
            plan.initial,
            plan.repetitions,
            rng=plan.rng,
            stop=plan.stop,
            max_rounds=plan.max_rounds,
            backend=self.spec.representation,
            rng_mode=plan.rng_mode,
            raise_on_limit=plan.raise_on_limit,
            recorder=plan.recorder,
            faults=plan.faults,
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="rounds",
            times=result.times,
            stopped=result.stopped,
            final_counts=result.final_counts,
            raw=result,
        )


class AsyncSequentialBackend(_BackendBase):
    """One :func:`run_asynchronous` per replica — the async reference path."""

    def supports(self, plan: SimulationPlan) -> bool:
        return (
            plan.scheduler == "asynchronous"
            and plan.adversary is None
            and plan.recorder is None
        )

    def cost(self, plan: SimulationPlan) -> float:
        process = plan.spawn_process()
        per = (
            float(process.samples_per_round)
            if process.has_sample_update
            else float(plan.initial.num_nodes)
        )
        return plan.repetitions * (per + _SEQ_OVERHEAD) * _async_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        generators = per_replica_generators(plan.rng, plan.repetitions)
        ticks = np.empty(plan.repetitions, dtype=np.int64)
        stopped = np.zeros(plan.repetitions, dtype=bool)
        finals = []
        name = plan.spawn_process().name
        for index, generator in enumerate(generators):
            result = run_asynchronous(
                plan.spawn_process(),
                plan.initial,
                rng=generator,
                stop=plan.stop,
                max_ticks=plan.max_rounds,
                check_every=plan.check_every,
            )
            ticks[index] = result.ticks
            stopped[index] = result.stopped
            finals.append(result.final.counts_array())
        final_counts = _stack_counts(finals)
        raw = AsyncEnsembleResult(
            process_name=name,
            num_nodes=plan.initial.num_nodes,
            ticks=ticks,
            stopped=stopped,
            final_counts=final_counts,
            stop_label=plan.stop.label if plan.stop is not None else "consensus",
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="ticks",
            times=ticks,
            stopped=stopped,
            final_counts=final_counts,
            raw=raw,
        )


class AsyncEnsembleBackend(_BackendBase):
    """Lock-step async replicas (:func:`run_asynchronous_ensemble`)."""

    def supports(self, plan: SimulationPlan) -> bool:
        return (
            plan.scheduler == "asynchronous"
            and plan.adversary is None
            and plan.rng_mode == "batched"
        )

    def cost(self, plan: SimulationPlan) -> float:
        process = plan.spawn_process()
        if process.has_sample_update:
            per_tick = 4.0 * plan.repetitions + 8.0
        else:
            per_tick = plan.repetitions * (
                plan.initial.num_nodes + _SEQ_OVERHEAD
            )
        return per_tick * _async_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        result = run_asynchronous_ensemble(
            plan.spawn_process(),
            plan.initial,
            plan.repetitions,
            rng=plan.rng,
            stop=plan.stop,
            max_ticks=plan.max_rounds,
            check_every=plan.check_every,
            recorder=plan.recorder,
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="ticks",
            times=result.ticks,
            stopped=result.stopped,
            final_counts=result.final_counts,
            raw=result,
        )


class KernelSyncBackend(_BackendBase):
    """The fused agent kernel (:mod:`repro.engine.kernels.sync`).

    Runs the agent-level ensemble as its exact switch-and-redistribute
    counts lumping — identical in distribution to ``ensemble-agent`` at
    the counts chain's per-round cost.  Batched-only by construction: the
    lumping reorders stream consumption, so ``"per-replica"`` plans stay
    on the bit-for-bit engines.
    """

    def supports(self, plan: SimulationPlan) -> bool:
        return (
            plan.scheduler == "synchronous"
            and plan.adversary is None
            and plan.faults is None
            and plan.rng_mode == "batched"
            and kernel_eligible(plan.spawn_process(), plan.initial)
        )

    def cost(self, plan: SimulationPlan) -> float:
        per_round = (
            plan.repetitions * _KERNEL_FACTOR * plan.initial.num_slots
            + _ROUND_OVERHEAD
        )
        return per_round * _sync_horizon(plan)

    def rejection(self, plan: SimulationPlan) -> Exception:
        process = plan.spawn_process()
        if not kernel_eligible(process, plan.initial):
            return TypeError(
                f"backend 'kernel-agent' needs a switch-and-redistribute "
                f"kernel form (AgentProcess.kernel_switch_law); "
                f"{process.name} does not declare one for this configuration"
            )
        if plan.rng_mode != "batched":
            return ValueError(
                "backend 'kernel-agent' is batched-only: the lumped chain "
                "reorders stream consumption, so per-replica exact streams "
                "run on the agent/counts engines"
            )
        return super().rejection(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        result = run_fused_agent_ensemble(
            plan.spawn_process(),
            plan.initial,
            plan.repetitions,
            rng=plan.rng,
            stop=plan.stop,
            max_rounds=plan.max_rounds,
            rng_mode=plan.rng_mode,
            raise_on_limit=plan.raise_on_limit,
            recorder=plan.recorder,
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="rounds",
            times=result.times,
            stopped=result.stopped,
            final_counts=result.final_counts,
            raw=result,
        )


class KernelAsyncBackend(_BackendBase):
    """The wavefront async kernel (:mod:`repro.engine.kernels.asynchronous`).

    Same semantics as ``ensemble-async`` — bit-for-bit for processes whose
    sample rule draws no extra randomness — with the per-tick Python loop
    replaced by conflict-free wavefront batches.
    """

    def supports(self, plan: SimulationPlan) -> bool:
        return (
            plan.scheduler == "asynchronous"
            and plan.adversary is None
            and plan.rng_mode == "batched"
            and async_kernel_eligible(plan.spawn_process())
        )

    def cost(self, plan: SimulationPlan) -> float:
        # Measured ~2× under ensemble-async's 4R+8 per-tick slope: the
        # wavefront amortises the tick loop but pays scatter bookkeeping.
        per_tick = 2.0 * plan.repetitions + 8.0
        return per_tick * _async_horizon(plan)

    def rejection(self, plan: SimulationPlan) -> Exception:
        process = plan.spawn_process()
        if not async_kernel_eligible(process):
            return TypeError(
                f"backend 'kernel-async' needs a pure per-sample rule "
                f"(AgentProcess.update_from_samples); {process.name} does "
                "not expose one"
            )
        return super().rejection(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        result = run_fused_asynchronous_ensemble(
            plan.spawn_process(),
            plan.initial,
            plan.repetitions,
            rng=plan.rng,
            stop=plan.stop,
            max_ticks=plan.max_rounds,
            check_every=plan.check_every,
            recorder=plan.recorder,
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="ticks",
            times=result.ticks,
            stopped=result.stopped,
            final_counts=result.final_counts,
            raw=result,
        )


class AdversarySequentialBackend(_BackendBase):
    """One :func:`run_with_adversary` per replica — the §5 reference path."""

    def supports(self, plan: SimulationPlan) -> bool:
        return (
            plan.scheduler == "synchronous"
            and plan.adversary is not None
            and plan.recorder is None
        )

    def cost(self, plan: SimulationPlan) -> float:
        n = plan.initial.num_nodes
        return plan.repetitions * (n + _SEQ_OVERHEAD) * _sync_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        from ..adversary.robust_runner import RobustEnsembleResult, run_with_adversary

        schedule = plan.schedule()
        generators = per_replica_generators(plan.rng, plan.repetitions)
        results = [
            run_with_adversary(
                plan.spawn_process(),
                plan.initial,
                schedule,
                rng=generator,
                max_rounds=plan.max_rounds or _ADVERSARY_DEFAULT_HORIZON,
                stable_fraction=plan.stable_fraction,
                stable_rounds=plan.stable_rounds,
            )
            for generator in generators
        ]
        raw = RobustEnsembleResult(
            process_name=results[0].process_name,
            adversary_repr=results[0].adversary_repr,
            rounds=np.asarray([r.rounds for r in results], dtype=np.int64),
            stabilized=np.asarray([r.stabilized for r in results], dtype=bool),
            winning_color=np.asarray(
                [r.winning_color for r in results], dtype=np.int64
            ),
            winning_fraction=np.asarray(
                [r.winning_fraction for r in results], dtype=float
            ),
            winner_is_valid=np.asarray(
                [r.winner_is_valid for r in results], dtype=bool
            ),
            valid_colors=results[0].valid_colors,
            backend="agent",
            rng_mode="per-replica",
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="rounds",
            times=raw.rounds,
            stopped=raw.stabilized,
            final_counts=None,
            raw=raw,
        )


class AdversaryEnsembleBackend(_BackendBase):
    """Lock-step §5 robust runs (:func:`run_with_adversary_ensemble`)."""

    def supports(self, plan: SimulationPlan) -> bool:
        if (
            plan.scheduler != "synchronous"
            or plan.adversary is None
            or plan.recorder is not None
        ):
            return False
        if self.spec.representation == "counts":
            return plan.rng_mode == "batched" and _adversary_counts_capable(
                plan, plan.spawn_process()
            )
        return True

    def cost(self, plan: SimulationPlan) -> float:
        process = plan.spawn_process()
        if self.spec.representation == "counts":
            width = plan.schedule().adversary.color_ceiling(plan.initial.num_slots)
            per_round = plan.repetitions * _COUNTS_FACTOR * width + _ROUND_OVERHEAD
        elif plan.rng_mode == "batched" and process.has_vectorized_ensemble:
            per_round = plan.repetitions * plan.initial.num_nodes + _ROUND_OVERHEAD
        else:
            per_round = (
                plan.repetitions
                * (plan.initial.num_nodes + _SEQ_OVERHEAD)
                * _ENSEMBLE_LOOP_FACTOR
            )
        return per_round * _sync_horizon(plan)

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        from ..adversary.robust_runner import run_with_adversary_ensemble

        result = run_with_adversary_ensemble(
            plan.spawn_process(),
            plan.initial,
            plan.schedule(),
            plan.repetitions,
            rng=plan.rng,
            max_rounds=plan.max_rounds or _ADVERSARY_DEFAULT_HORIZON,
            stable_fraction=plan.stable_fraction,
            stable_rounds=plan.stable_rounds,
            backend=self.spec.representation,
            rng_mode=plan.rng_mode,
        )
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit="rounds",
            times=result.rounds,
            stopped=result.stabilized,
            final_counts=None,
            raw=result,
        )


def _execute_shard(payload: "tuple[str, SimulationPlan]"):
    """Pool worker: run one sub-plan through its in-process backend."""
    inner_name, subplan = payload
    return get_backend(inner_name).execute(subplan)


def _merge_raw(raws: list):
    """Merge per-shard raw results back into one family result object."""
    first = raws[0]
    if isinstance(first, EnsembleResult):
        return EnsembleResult(
            process_name=first.process_name,
            times=np.concatenate([r.times for r in raws]),
            stopped=np.concatenate([r.stopped for r in raws]),
            final_counts=np.vstack([r.final_counts for r in raws]),
            backend=first.backend,
            stop_label=first.stop_label,
            rng_mode=first.rng_mode,
        )
    if isinstance(first, AsyncEnsembleResult):
        return AsyncEnsembleResult(
            process_name=first.process_name,
            num_nodes=first.num_nodes,
            ticks=np.concatenate([r.ticks for r in raws]),
            stopped=np.concatenate([r.stopped for r in raws]),
            final_counts=np.vstack([r.final_counts for r in raws]),
            stop_label=first.stop_label,
        )
    from ..adversary.robust_runner import RobustEnsembleResult

    if isinstance(first, RobustEnsembleResult):
        return RobustEnsembleResult(
            process_name=first.process_name,
            adversary_repr=first.adversary_repr,
            rounds=np.concatenate([r.rounds for r in raws]),
            stabilized=np.concatenate([r.stabilized for r in raws]),
            winning_color=np.concatenate([r.winning_color for r in raws]),
            winning_fraction=np.concatenate([r.winning_fraction for r in raws]),
            winner_is_valid=np.concatenate([r.winner_is_valid for r in raws]),
            valid_colors=first.valid_colors,
            backend=first.backend,
            rng_mode=first.rng_mode,
        )
    return list(raws)


class ShardedBackend(_BackendBase):
    """Generic replica sharding of any in-process ensemble backend.

    Splits the plan's replicas into per-worker sub-plans (seed sequences
    derived once, up front, so ``rng_mode="per-replica"`` results are
    bit-for-bit invariant to the worker count), executes each through the
    wrapped backend on the shared persistent pool, and merges in replica
    order.  This is how the asynchronous and adversarial ensembles get
    the multicore path without bespoke ``sharded-*`` engines.
    """

    def __init__(self, spec: BackendSpec, inner_name: str):
        super().__init__(spec)
        self.inner_name = inner_name

    def _inner(self) -> Backend:
        return get_backend(self.inner_name)

    def supports(self, plan: SimulationPlan) -> bool:
        if not self._inner().supports(plan):
            return False
        shards = min(resolve_workers(plan.workers), plan.repetitions)
        return plan.recorder is None or shards == 1

    def eligible(self, plan: SimulationPlan, family_forced: bool = False) -> bool:
        if not self._inner().eligible(plan, family_forced=family_forced):
            return False
        if not self.supports(plan):
            return False
        # A multiprocessing pool is never an implicit default: the fully
        # automatic decision considers sharding only when the plan asks
        # for workers; "sharded-auto" (family_forced) keeps the legacy
        # workers=None → all-cores meaning.
        return family_forced or (plan.workers is not None and plan.workers > 1)

    def cost(self, plan: SimulationPlan) -> float:
        workers = resolve_workers(plan.workers)
        shards = min(workers, plan.repetitions)
        spawn = 0.0 if (shards == 1 or pool_is_warm(workers)) else _POOL_SPAWN_COST
        return self._inner().cost(plan) / shards + spawn

    def execute(self, plan: SimulationPlan) -> ExecutionResult:
        workers = resolve_workers(plan.workers)
        shards = min(workers, plan.repetitions)
        if shards == 1:
            inner_result = self._inner().execute(plan)
            return replace(inner_result, backend=self.spec.name)
        if plan.recorder is not None:
            raise ValueError(
                "metric recording requires a single shard (recorders cannot "
                "be merged across pool workers)"
            )
        process = plan.spawn_process()
        sequences = replica_seed_sequences(plan.rng, plan.repetitions)
        payloads = []
        for lo, hi in shard_bounds(plan.repetitions, shards):
            shard_rng = (
                sequences[lo:hi] if plan.rng_mode == "per-replica" else sequences[lo]
            )
            payloads.append(
                (
                    self.inner_name,
                    replace(
                        plan,
                        process=process,
                        repetitions=hi - lo,
                        rng=shard_rng,
                        workers=1,
                        backend=self.inner_name,
                        raise_on_limit=False,
                    ),
                )
            )
        shard_results = shared_executor(workers).map(_execute_shard, payloads)
        times = np.concatenate([r.times for r in shard_results])
        stopped = np.concatenate([r.stopped for r in shard_results])
        if shard_results[0].final_counts is None:
            final_counts = None
        else:
            final_counts = np.vstack([r.final_counts for r in shard_results])
        raw = _merge_raw([r.raw for r in shard_results])
        if (
            plan.raise_on_limit
            and self.spec.scheduler == "synchronous"
            and not self.spec.adversary
            and not np.all(stopped)
        ):
            limit = (
                plan.max_rounds
                if plan.max_rounds is not None
                else default_round_limit(plan.initial.num_nodes)
            )
            raise RoundLimitExceeded(process.name, limit, raw.stop_label)
        return ExecutionResult(
            plan=plan,
            backend=self.spec.name,
            unit=shard_results[0].unit,
            times=times,
            stopped=stopped,
            final_counts=final_counts,
            raw=raw,
        )


# ---------------------------------------------------------------------------
# Default registry.  Registration order is the resolution tie-break:
# sequential reference paths first, then the in-process ensembles, then
# the sharded wrappers.


def _spec(
    name, kind, scheduler, adversary, representation, tractable, description,
    faults=False,
):
    return BackendSpec(
        name=name,
        kind=kind,
        scheduler=scheduler,
        adversary=adversary,
        representation=representation,
        requires_counts_tractable=tractable,
        description=description,
        faults=faults,
    )


def _register_default_backends() -> None:
    register_backend(SequentialSyncBackend(_spec(
        "agent", "sequential", "synchronous", False, "agent", False,
        "one agent-level run per replica (reference path, every process)",
        faults=True,
    )))
    register_backend(SequentialSyncBackend(_spec(
        "counts", "sequential", "synchronous", False, "counts", True,
        "one exact count-level run per replica (AC-processes)",
        faults=True,
    )))
    register_backend(AsyncSequentialBackend(_spec(
        "async", "sequential", "asynchronous", False, "agent", False,
        "one one-node-per-tick run per replica (async reference path)",
    )))
    register_backend(AdversarySequentialBackend(_spec(
        "adversary", "sequential", "synchronous", True, "agent", False,
        "one §5 robust run per replica (adversary reference path)",
    )))
    register_backend(EnsembleSyncBackend(_spec(
        "ensemble-agent", "ensemble", "synchronous", False, "agent", False,
        "(R, n) color matrix, lock-step replicas",
        faults=True,
    )))
    register_backend(EnsembleSyncBackend(_spec(
        "ensemble-counts", "ensemble", "synchronous", False, "counts", True,
        "(R, k) counts matrix, one broadcast multinomial per round",
        faults=True,
    )))
    register_backend(AsyncEnsembleBackend(_spec(
        "ensemble-async", "ensemble", "asynchronous", False, "agent", False,
        "(R, n) matrix, batch-drawn one-node-per-tick scheduler",
    )))
    register_backend(AdversaryEnsembleBackend(_spec(
        "ensemble-adversary-agent", "ensemble", "synchronous", True, "agent", False,
        "(R, n) robust runs, vectorized corruption masks",
    )))
    register_backend(AdversaryEnsembleBackend(_spec(
        "ensemble-adversary-counts", "ensemble", "synchronous", True, "counts", True,
        "(R, k) robust runs, exact count-level corruption laws",
    )))
    register_backend(KernelSyncBackend(_spec(
        "kernel-agent", "kernel", "synchronous", False, "counts", False,
        "fused agent rounds: exact switch-and-redistribute counts lumping",
    )))
    register_backend(KernelAsyncBackend(_spec(
        "kernel-async", "kernel", "asynchronous", False, "agent", False,
        "fused async ticks: conflict-free dependency wavefronts",
    )))
    for inner, name in [
        ("ensemble-agent", "sharded-agent"),
        ("ensemble-counts", "sharded-counts"),
        ("ensemble-async", "sharded-async"),
        ("ensemble-adversary-agent", "sharded-adversary-agent"),
        ("ensemble-adversary-counts", "sharded-adversary-counts"),
    ]:
        inner_spec = _REGISTRY[inner].spec
        register_backend(ShardedBackend(_spec(
            name, "sharded", inner_spec.scheduler, inner_spec.adversary,
            inner_spec.representation, inner_spec.requires_counts_tractable,
            f"{inner} sharded over the persistent worker pool",
            faults=inner_spec.faults,
        ), inner))


_register_default_backends()
