"""Vectorized ensemble engine: all replicas advance lock-step in one array.

The paper's statements are about *distributions* of first-passage times,
so every benchmark repeats a run over tens-to-hundreds of independent
replicas.  The sequential path (:func:`repro.engine.simulator.run` looped
by :func:`repro.engine.batch.repeat_first_passage`) pays Python-call and
tiny-numpy overhead once per replica per round; this module amortises it
across the whole ensemble:

* **count-level** (:func:`run_counts_ensemble`) — an ``(R, k)`` counts
  matrix advanced by a row-wise ``α`` (vectorized for the closed-form
  process functions) and a single broadcast multinomial draw per round.
* **agent-level** (:func:`run_agent_ensemble`) — an ``(R, n)`` color
  matrix advanced by the process's batched ``update_ensemble`` rule
  (3-Majority, 2-Choices, Voter, …); processes without a vectorized rule
  fall back to a per-replica loop, so every process works day one.

Per-replica stopping masks (:meth:`StoppingCondition.satisfied_ensemble`)
record each replica's first-passage round, and finished replicas are
*compacted out* of the active matrix so they stop paying for rounds.

Both entry points are registered with the unified runtime as the
``ensemble-agent`` / ``ensemble-counts`` backends (see
:mod:`repro.engine.runtime`), which is how sweeps, the CLI and the
sharded pool reach them.

RNG regimes
-----------
``rng_mode="batched"`` (default) draws all replicas' randomness from one
shared stream — fastest, statistically equivalent (each row consumes
fresh variates).  ``rng_mode="per-replica"`` spawns one child generator
per replica exactly like :func:`repeat_first_passage` does, and consumes
each stream exactly as the sequential backend would: on the count-level
backend the resulting first-passage samples are *bit-identical* to the
sequential ones (one ``Mult(n, α(c))`` draw per replica per active
round), which the test-suite verifies.  The same guarantee holds for the
agent-level per-replica loop, since each replica's ``update`` sees the
same generator state sequence as a sequential run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import ACAgentProcess, AgentProcess
from .metrics import MetricRecorder
from .rng import RandomSource, as_generator, per_replica_generators
from .simulator import (
    RoundLimitExceeded,
    default_round_limit,
    prefers_counts_backend,
)
from .stopping import Consensus, StoppingCondition

__all__ = [
    "EnsembleResult",
    "narrow_int_dtype",
    "run_ensemble",
    "run_agent_ensemble",
    "run_counts_ensemble",
]

_RNG_MODES = ("batched", "per-replica")


def narrow_int_dtype(max_value: int) -> np.dtype:
    """The narrowest of ``int32``/``int64`` that can hold ``max_value``.

    The agent-level ensemble stores its ``(R, n)`` color matrix and
    ``(R, k)`` counts with this dtype: color ids are bounded by the slot
    count and counts by ``n``, so ``int32`` is safe for every ``n`` up to
    ``2³¹ − 1`` (in particular the 10⁸-node production target) and halves
    the memory bandwidth of the per-round gather.
    """
    return np.dtype(np.int32 if max_value <= np.iinfo(np.int32).max else np.int64)


@dataclass
class EnsembleResult:
    """Outcome of one lock-step ensemble run of ``R`` replicas."""

    process_name: str
    #: ``(R,)`` first-passage round per replica (the round limit where a
    #: replica never stopped and ``raise_on_limit`` was off).
    times: np.ndarray
    #: ``(R,)`` boolean mask — did the stopping condition fire?
    stopped: np.ndarray
    #: ``(R, k)`` counts matrix at each replica's stopping round.
    final_counts: np.ndarray
    backend: str
    stop_label: str
    #: RNG regime that actually ran — a ``"batched"`` request downgrades to
    #: ``"per-replica"`` for processes without a vectorized ensemble rule.
    rng_mode: str

    @property
    def repetitions(self) -> int:
        return int(self.times.size)

    @property
    def all_stopped(self) -> bool:
        return bool(np.all(self.stopped))

    def finals(self) -> "list[Configuration]":
        """The stopping configurations as :class:`Configuration` objects."""
        return [Configuration(row) for row in self.final_counts]


def _check_args(repetitions: int, rng_mode: str) -> None:
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if rng_mode not in _RNG_MODES:
        raise ValueError(f"unknown rng_mode {rng_mode!r}; pick one of {_RNG_MODES}")


def _finalize(
    process: AgentProcess,
    condition: StoppingCondition,
    backend: str,
    rng_mode: str,
    times: np.ndarray,
    stopped: np.ndarray,
    final_counts: np.ndarray,
    limit: int,
    raise_on_limit: bool,
) -> EnsembleResult:
    if raise_on_limit and not np.all(stopped):
        raise RoundLimitExceeded(process.name, limit, condition.label)
    return EnsembleResult(
        process_name=process.name,
        times=times,
        stopped=stopped,
        final_counts=final_counts,
        backend=backend,
        stop_label=condition.label,
        rng_mode=rng_mode,
    )


def _retire(
    mask: np.ndarray,
    active: np.ndarray,
    rounds: int,
    counts_matrix: np.ndarray,
    times: np.ndarray,
    stopped: np.ndarray,
    final_counts: np.ndarray,
) -> np.ndarray:
    """Record finished replicas and return the surviving active indices."""
    done = active[mask]
    times[done] = rounds
    stopped[done] = True
    final_counts[done] = counts_matrix[mask]
    return active[~mask]


def run_counts_ensemble(
    process: "ACAgentProcess",
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    rng_mode: str = "batched",
    raise_on_limit: bool = True,
    recorder: "MetricRecorder | None" = None,
    faults=None,
) -> EnsembleResult:
    """Exact count-level chain for ``R`` replicas lock-step (AC-processes).

    Every replica starts from ``initial`` and performs one ``Mult(n, α(c))``
    transition per round; with ``rng_mode="batched"`` the whole ensemble's
    draws happen in a single broadcast multinomial call per round.

    ``recorder`` receives :meth:`MetricRecorder.observe_ensemble` every
    round (counts of the still-active replicas plus their indices), so
    per-round trajectory metrics ride the fast path.

    ``faults`` (a :class:`~repro.faults.FaultSchedule` or bare model)
    switches every transition to the exact faulty chain
    ``c' = f + Mult(n − |f|, α(c))``; per-replica mode keeps one fault
    state per replica so the samples stay bit-identical to faulty
    sequential runs.
    """
    from ..faults import as_fault_schedule

    if not isinstance(process, ACAgentProcess):
        raise TypeError(
            f"count-level simulation requires an AC-process; {process.name} is not one"
        )
    _check_args(repetitions, rng_mode)
    fault_schedule = as_fault_schedule(faults)
    condition = stop if stop is not None else Consensus()
    limit = max_rounds if max_rounds is not None else default_round_limit(initial.num_nodes)

    counts = np.tile(initial.counts_array(), (repetitions, 1))
    times = np.zeros(repetitions, dtype=np.int64)
    stopped = np.zeros(repetitions, dtype=bool)
    final_counts = counts.copy()
    active = np.arange(repetitions)

    if rng_mode == "per-replica":
        generators = per_replica_generators(rng, repetitions)
        master = None
    else:
        generators = None
        master = as_generator(rng)

    if fault_schedule is None:
        fault_matrix = None
        fault_rows = None
    elif master is not None:
        fault_matrix = fault_schedule.counts_runtime(process.process_function)
        fault_rows = None
    else:
        fault_matrix = None
        fault_rows = [
            fault_schedule.counts_runtime(process.process_function)
            for _ in range(repetitions)
        ]

    if recorder is not None:
        recorder.observe_ensemble(0, counts, active)
    mask = condition.satisfied_ensemble(counts)
    active = _retire(mask, active, 0, counts, times, stopped, final_counts)
    counts = counts[~mask]
    if fault_rows is not None:
        fault_rows = [rt for rt, done in zip(fault_rows, mask) if not done]

    rounds = 0
    while active.size and rounds < limit:
        if master is not None:
            if fault_matrix is not None:
                counts = fault_matrix.step_matrix(counts, master, rounds)
            else:
                counts = process.step_counts_ensemble(counts, master)
        elif fault_rows is not None:
            for row, replica in enumerate(active):
                counts[row] = fault_rows[row].step_row(
                    counts[row], generators[replica], rounds
                )
        else:
            for row, replica in enumerate(active):
                counts[row] = process.step_counts(counts[row], generators[replica])
        rounds += 1
        if recorder is not None:
            recorder.observe_ensemble(rounds, counts, active)
        mask = condition.satisfied_ensemble(counts)
        if mask.any():
            active = _retire(mask, active, rounds, counts, times, stopped, final_counts)
            counts = counts[~mask]
            if fault_matrix is not None:
                fault_matrix.compact(~mask)
            if fault_rows is not None:
                fault_rows = [rt for rt, done in zip(fault_rows, mask) if not done]
    if active.size:
        times[active] = rounds
        final_counts[active] = counts
    return _finalize(
        process, condition, "counts", rng_mode, times, stopped, final_counts,
        limit, raise_on_limit,
    )


def _counts_matrix_fast(colors: np.ndarray, num_slots: int) -> np.ndarray:
    """Row-wise bincount of an ``(R, n)`` color matrix in one pass."""
    reps = colors.shape[0]
    offsets = (np.arange(reps, dtype=np.int64) * num_slots)[:, None]
    flat = (colors.astype(np.int64, copy=False) + offsets).ravel()
    return np.bincount(flat, minlength=reps * num_slots).reshape(reps, num_slots)


def _counts_matrix(
    process: AgentProcess, colors: np.ndarray, num_slots: int, projected: bool
) -> np.ndarray:
    """Per-replica counts, honouring process-specific projections."""
    if not projected:
        return _counts_matrix_fast(colors, num_slots)
    return np.stack(
        [
            process.configuration_of(colors[r], num_slots).counts_array()
            for r in range(colors.shape[0])
        ]
    )


def run_agent_ensemble(
    process: AgentProcess,
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    rng_mode: str = "batched",
    raise_on_limit: bool = True,
    recorder: "MetricRecorder | None" = None,
    faults=None,
) -> EnsembleResult:
    """Agent-level simulation of ``R`` replicas as one ``(R, n)`` matrix.

    Processes with a vectorized :meth:`AgentProcess.update_ensemble`
    advance all replicas per round in a handful of array operations; other
    processes fall back to a per-replica ``update`` loop (still sharing
    the stopping-mask and compaction machinery).  ``rng_mode="per-replica"``
    forces the loop with spawned child generators, reproducing sequential
    runs exactly for *any* process.

    The color matrix (and the derived counts) are stored at the narrowest
    safe integer dtype — ``int32`` for every ``n`` below ``2³¹`` — which
    halves the memory traffic of the ``O(R·n)`` per-round gather without
    touching the rng streams (indices stay ``int64``), so per-replica runs
    remain bit-for-bit equal to the sequential backend.

    ``faults`` draws a victim mask per round (vectorized over the whole
    ``(R, n)`` matrix in batched mode, one flat mask per replica stream
    in per-replica mode); after the honest update, frozen victims revert
    to their previous color and Byzantine victims take their hostile
    replacement.
    """
    from ..faults import as_fault_schedule

    _check_args(repetitions, rng_mode)
    fault_schedule = as_fault_schedule(faults)
    condition = stop if stop is not None else Consensus()
    limit = max_rounds if max_rounds is not None else default_round_limit(initial.num_nodes)
    num_slots = initial.num_slots
    projected = type(process).configuration_of is not AgentProcess.configuration_of

    batched = process.has_vectorized_ensemble and rng_mode == "batched"
    if batched:
        generators = None
        master = as_generator(rng)
    else:
        # Processes without a vectorized rule always take per-replica
        # streams; report the mode that actually ran.
        rng_mode = "per-replica"
        generators = per_replica_generators(rng, repetitions)
        master = None

    dtype = narrow_int_dtype(max(initial.num_nodes, num_slots + 1))
    colors = np.tile(
        process.initial_colors(initial).astype(dtype, copy=False),
        (repetitions, 1),
    )
    counts = _counts_matrix(process, colors, num_slots, projected).astype(
        dtype, copy=False
    )
    times = np.zeros(repetitions, dtype=np.int64)
    stopped = np.zeros(repetitions, dtype=bool)
    final_counts = counts.copy()
    active = np.arange(repetitions)

    if fault_schedule is None:
        fault_matrix = None
        fault_rows = None
    elif batched:
        fault_matrix = fault_schedule.agent_runtime(num_slots)
        fault_rows = None
    else:
        fault_matrix = None
        fault_rows = [
            fault_schedule.agent_runtime(num_slots) for _ in range(repetitions)
        ]

    if recorder is not None:
        recorder.observe_ensemble(0, counts, active)
    mask = condition.satisfied_ensemble(counts)
    active = _retire(mask, active, 0, counts, times, stopped, final_counts)
    colors = colors[~mask]
    counts = counts[~mask]
    if fault_rows is not None:
        fault_rows = [rt for rt, done in zip(fault_rows, mask) if not done]

    rounds = 0
    while active.size and rounds < limit:
        if batched:
            if fault_matrix is not None:
                fault_matrix.round_mask(rounds, master, colors.shape)
                previous = colors.copy()
                colors = process.update_ensemble(colors, master)
                colors = fault_matrix.resolve(previous, colors, master)
            else:
                colors = process.update_ensemble(colors, master)
        elif fault_rows is not None:
            for row, replica in enumerate(active):
                generator = generators[replica]
                fault_rows[row].round_mask(
                    rounds, generator, colors[row].shape
                )
                previous = colors[row].copy()
                updated = process.update(colors[row], generator)
                colors[row] = fault_rows[row].resolve(previous, updated, generator)
        else:
            for row, replica in enumerate(active):
                colors[row] = process.update(colors[row], generators[replica])
        rounds += 1
        counts = _counts_matrix(process, colors, num_slots, projected).astype(
            dtype, copy=False
        )
        if recorder is not None:
            recorder.observe_ensemble(rounds, counts, active)
        mask = condition.satisfied_ensemble(counts)
        if mask.any():
            active = _retire(mask, active, rounds, counts, times, stopped, final_counts)
            colors = colors[~mask]
            counts = counts[~mask]
            if fault_matrix is not None:
                fault_matrix.compact(~mask)
            if fault_rows is not None:
                fault_rows = [rt for rt, done in zip(fault_rows, mask) if not done]
    if active.size:
        times[active] = rounds
        final_counts[active] = counts
    return _finalize(
        process, condition, "agent", rng_mode, times, stopped, final_counts,
        limit, raise_on_limit,
    )


def run_ensemble(
    process: AgentProcess,
    initial: Configuration,
    repetitions: int,
    rng: RandomSource = None,
    stop: "StoppingCondition | None" = None,
    max_rounds: "int | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    raise_on_limit: bool = True,
    recorder: "MetricRecorder | None" = None,
    faults=None,
) -> EnsembleResult:
    """Simulate ``R`` independent replicas of ``process`` lock-step.

    ``backend`` is ``"auto"``, ``"agent"`` or ``"counts"``, with the same
    dispatch rule as the sequential :func:`repro.engine.simulator.run`:
    auto prefers the exact count-level chain for AC-processes with a
    moderate slot count, else the agent-level matrix.
    """
    if prefers_counts_backend(process, initial, backend):
        if isinstance(process, ACAgentProcess):
            return run_counts_ensemble(
                process,
                initial,
                repetitions,
                rng=rng,
                stop=stop,
                max_rounds=max_rounds,
                rng_mode=rng_mode,
                raise_on_limit=raise_on_limit,
                recorder=recorder,
                faults=faults,
            )
        raise TypeError(
            f"{process.name} is not an AC-process; use the agent backend"
        )
    return run_agent_ensemble(
        process,
        initial,
        repetitions,
        rng=rng,
        stop=stop,
        max_rounds=max_rounds,
        rng_mode=rng_mode,
        raise_on_limit=raise_on_limit,
        recorder=recorder,
        faults=faults,
    )
