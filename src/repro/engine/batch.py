"""Batched repetitions and summary statistics.

The paper's statements are about distributions of first-passage times, so
experiments always repeat runs over independent seeds.  This module
provides the repetition entry point (:func:`repeat_first_passage`, a thin
wrapper over the unified runtime of :mod:`repro.engine.runtime`), robust
summaries, and empirical-CDF utilities used to test stochastic dominance
claims (Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import AgentProcess
from .plan import SimulationPlan
from .rng import RandomSource
from .runtime import execute
from .simulator import prefers_counts_backend
from .stopping import StoppingCondition

__all__ = [
    "BatchSummary",
    "summarize",
    "first_passage_plan",
    "repeat_first_passage",
    "empirical_cdf",
    "cdf_dominates",
]


@dataclass(frozen=True)
class BatchSummary:
    """Five-number-plus summary of a sample of first-passage times."""

    count: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return float("nan")
        return self.std / np.sqrt(self.count)

    def mean_ci95(self) -> "tuple[float, float]":
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def format_row(self, label: str) -> str:
        lo, hi = self.mean_ci95()
        return (
            f"{label:<28} mean={self.mean:10.2f} ±{hi - self.mean:8.2f} "
            f"median={self.median:10.1f} max={self.maximum:10.0f}"
        )


def summarize(samples: Sequence[float]) -> BatchSummary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return BatchSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q25=float(np.quantile(arr, 0.25)),
        median=float(np.quantile(arr, 0.5)),
        q75=float(np.quantile(arr, 0.75)),
        maximum=float(arr.max()),
    )


def repeat_first_passage(
    process_factory: "Callable[[], AgentProcess]",
    initial: Configuration,
    stop: StoppingCondition,
    repetitions: int,
    rng: RandomSource,
    max_rounds: "int | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    workers: "int | None" = None,
    scheduler: str = "synchronous",
    adversary=None,
) -> np.ndarray:
    """Sample the first-passage time of ``stop`` over independent runs.

    A thin wrapper over the unified runtime: the arguments are packed
    into a :class:`~repro.engine.plan.SimulationPlan` and executed by
    whichever registered backend
    :func:`~repro.engine.runtime.resolve_backend` picks.  ``backend``
    accepts any registry name or resolution alias
    (:func:`~repro.engine.runtime.backend_choices`); the family aliases
    keep their historical meanings:

    * ``"auto"`` — the sequential reference path (one run per repetition
      with its own spawned child generator; the streams every other
      backend's ``rng_mode="per-replica"`` reproduces bit-for-bit).
      With ``scheduler="asynchronous"`` or an ``adversary``, where no
      historical stream contract exists, ``"auto"`` is the runtime's
      full cost-model decision instead.
    * ``"ensemble-auto"`` / ``"ensemble-agent"`` / ``"ensemble-counts"``
      — the vectorized lock-step path, ~an order of magnitude faster at
      production replica counts.
    * ``"sharded-auto"`` / ``"sharded-agent"`` / ``"sharded-counts"`` —
      the ensemble path split over the persistent ``multiprocessing``
      pool of ``workers`` processes (``None`` = every core; ``workers=1``
      is bit-for-bit the matching ``ensemble-*`` backend, and
      ``rng_mode="per-replica"`` results are bit-for-bit invariant to
      the worker count).

    ``scheduler="asynchronous"`` measures first-passage *ticks* of the
    one-node-per-tick companion model (``max_rounds`` then bounds ticks);
    passing an ``adversary`` measures rounds-to-stabilisation of the §5
    robust runs.  Both axes resolve to their own registered backends, so
    sweeps and the CLI run them through this same entry point.

    On the sequential paths ``process_factory`` builds a fresh process
    per run so that processes with mutable internals stay independent
    across repetitions; the ensemble and sharded paths build one process
    and require it to be safe to share across lock-step replicas (true
    for all built-ins, which keep no per-run state).
    """
    plan = first_passage_plan(
        process_factory=process_factory,
        initial=initial,
        stop=stop,
        repetitions=repetitions,
        rng=rng,
        max_rounds=max_rounds,
        backend=backend,
        rng_mode=rng_mode,
        workers=workers,
        scheduler=scheduler,
        adversary=adversary,
    )
    return execute(plan).times


def first_passage_plan(
    process_factory: "Callable[[], AgentProcess]",
    initial: Configuration,
    stop: "StoppingCondition | None",
    repetitions: int,
    rng: RandomSource,
    max_rounds: "int | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    workers: "int | None" = None,
    scheduler: str = "synchronous",
    adversary=None,
    faults=None,
    recorder=None,
    check_every: "int | None" = None,
    stable_fraction: float = 0.95,
    stable_rounds: int = 3,
    raise_on_limit: bool = True,
) -> SimulationPlan:
    """Pack first-passage measurement arguments into a plan.

    The shared plan builder behind :func:`repeat_first_passage` and the
    declarative study compiler (:func:`repro.study.compile.compile_study`)
    — one place for the historical ``"auto"`` contract, so imperative and
    spec-driven entry points produce byte-identical plans.
    """
    if backend == "auto" and scheduler == "synchronous" and adversary is None:
        # Historical contract: plain "auto" is the sequential reference
        # path with the simulator's own representation rule, keeping
        # pre-runtime sample streams bit-for-bit intact (the runtime's
        # "sequential-auto" alias is cost-ranked and may legitimately
        # disagree on exotic wider-than-n slot spaces).
        backend = (
            "counts"
            if prefers_counts_backend(process_factory(), initial, "auto")
            else "agent"
        )
    return SimulationPlan(
        process=process_factory,
        initial=initial,
        stop=stop,
        repetitions=repetitions,
        scheduler=scheduler,
        adversary=adversary,
        faults=faults,
        rng=rng,
        rng_mode=rng_mode,
        recorder=recorder,
        max_rounds=max_rounds,
        check_every=check_every,
        workers=workers,
        backend=backend,
        stable_fraction=stable_fraction,
        stable_rounds=stable_rounds,
        raise_on_limit=raise_on_limit,
    )


def empirical_cdf(samples: np.ndarray) -> "Callable[[float], float]":
    """The empirical CDF of ``samples`` as a callable."""
    arr = np.sort(np.asarray(samples, dtype=float))

    def cdf(t: float) -> float:
        return float(np.searchsorted(arr, t, side="right")) / arr.size

    return cdf


def cdf_dominates(
    fast_samples: np.ndarray, slow_samples: np.ndarray, slack: float = 0.0
) -> bool:
    """Check ``T_fast ≤_st T_slow`` on empirical CDFs with tolerance.

    True iff ``P[T_fast ≤ t] ≥ P[T_slow ≤ t] − slack`` at every observed
    time ``t``.  ``slack`` absorbs Monte-Carlo noise; the benchmarks report
    the worst violation alongside the verdict.

    Both empirical CDFs are evaluated on the merged grid with a single
    ``searchsorted`` per sample array (the grid is sorted, so one binary
    search batch covers every grid point).
    """
    fast = np.sort(np.asarray(fast_samples, dtype=float))
    slow = np.sort(np.asarray(slow_samples, dtype=float))
    grid = np.unique(np.concatenate([fast, slow]))
    cdf_fast = np.searchsorted(fast, grid, side="right") / fast.size
    cdf_slow = np.searchsorted(slow, grid, side="right") / slow.size
    return bool(np.all(cdf_fast >= cdf_slow - slack))
