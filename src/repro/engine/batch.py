"""Batched repetitions and summary statistics.

The paper's statements are about distributions of first-passage times, so
experiments always repeat runs over independent seeds.  This module
provides the repetition loop (with :mod:`repro.engine.rng` seed spawning),
robust summaries, and empirical-CDF utilities used to test stochastic
dominance claims (Theorem 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..core.configuration import Configuration
from ..processes.base import AgentProcess
from .ensemble import run_ensemble
from .rng import RandomSource, spawn_generators
from .sharded import ShardedEnsembleExecutor
from .simulator import run
from .stopping import StoppingCondition

__all__ = [
    "BatchSummary",
    "summarize",
    "repeat_first_passage",
    "empirical_cdf",
    "cdf_dominates",
]


@dataclass(frozen=True)
class BatchSummary:
    """Five-number-plus summary of a sample of first-passage times."""

    count: int
    mean: float
    std: float
    minimum: float
    q25: float
    median: float
    q75: float
    maximum: float

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return float("nan")
        return self.std / np.sqrt(self.count)

    def mean_ci95(self) -> "tuple[float, float]":
        """Normal-approximation 95% confidence interval for the mean."""
        half = 1.96 * self.sem
        return (self.mean - half, self.mean + half)

    def format_row(self, label: str) -> str:
        lo, hi = self.mean_ci95()
        return (
            f"{label:<28} mean={self.mean:10.2f} ±{hi - self.mean:8.2f} "
            f"median={self.median:10.1f} max={self.maximum:10.0f}"
        )


def summarize(samples: Sequence[float]) -> BatchSummary:
    """Summary statistics of a non-empty sample."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return BatchSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        q25=float(np.quantile(arr, 0.25)),
        median=float(np.quantile(arr, 0.5)),
        q75=float(np.quantile(arr, 0.75)),
        maximum=float(arr.max()),
    )


def repeat_first_passage(
    process_factory: "Callable[[], AgentProcess]",
    initial: Configuration,
    stop: StoppingCondition,
    repetitions: int,
    rng: RandomSource,
    max_rounds: "int | None" = None,
    backend: str = "auto",
    rng_mode: str = "batched",
    workers: "int | None" = None,
) -> np.ndarray:
    """Sample the first-passage time of ``stop`` over independent runs.

    ``backend`` picks the execution strategy:

    * ``"auto"`` / ``"agent"`` / ``"counts"`` — the sequential path: one
      :func:`repro.engine.simulator.run` per repetition, each with its own
      spawned child generator.
    * ``"ensemble-auto"`` / ``"ensemble-agent"`` / ``"ensemble-counts"`` —
      the vectorized lock-step path (:mod:`repro.engine.ensemble`): all
      replicas advance in one array, which is ~an-order-of-magnitude
      faster at production replica counts.  ``rng_mode`` is forwarded to
      the ensemble engine; ``"per-replica"`` reproduces the sequential
      samples bit-for-bit on the count-level backend, ``"batched"``
      (default) is fastest and statistically equivalent.
    * ``"sharded-auto"`` / ``"sharded-agent"`` / ``"sharded-counts"`` —
      the ensemble path split across a ``multiprocessing`` pool of
      ``workers`` processes (:mod:`repro.engine.sharded`); the multicore
      fast path for heavy ensembles.  ``workers=None`` uses every core;
      ``workers=1`` is bit-for-bit the matching ``ensemble-*`` backend,
      and ``rng_mode="per-replica"`` results are bit-for-bit invariant to
      the worker count.

    On the sequential path ``process_factory`` builds a fresh process per
    run so that processes with mutable internals stay independent across
    repetitions; the ensemble and sharded paths build one process and
    require it to be safe to share across lock-step replicas (true for
    all built-ins, which keep no per-run state).
    """
    if repetitions < 1:
        raise ValueError("repetitions must be positive")
    if backend.startswith("sharded-"):
        executor = ShardedEnsembleExecutor(workers=workers)
        result = executor.run(
            process_factory(),
            initial,
            repetitions,
            rng=rng,
            stop=stop,
            max_rounds=max_rounds,
            backend=backend[len("sharded-"):],
            rng_mode=rng_mode,
        )
        return result.times
    if backend.startswith("ensemble-"):
        result = run_ensemble(
            process_factory(),
            initial,
            repetitions,
            rng=rng,
            stop=stop,
            max_rounds=max_rounds,
            backend=backend[len("ensemble-"):],
            rng_mode=rng_mode,
        )
        return result.times
    generators = spawn_generators(rng, repetitions)
    times = np.empty(repetitions, dtype=np.int64)
    for i, generator in enumerate(generators):
        process = process_factory()
        result = run(
            process,
            initial,
            rng=generator,
            stop=stop,
            max_rounds=max_rounds,
            backend=backend,
        )
        times[i] = result.rounds
    return times


def empirical_cdf(samples: np.ndarray) -> "Callable[[float], float]":
    """The empirical CDF of ``samples`` as a callable."""
    arr = np.sort(np.asarray(samples, dtype=float))

    def cdf(t: float) -> float:
        return float(np.searchsorted(arr, t, side="right")) / arr.size

    return cdf


def cdf_dominates(
    fast_samples: np.ndarray, slow_samples: np.ndarray, slack: float = 0.0
) -> bool:
    """Check ``T_fast ≤_st T_slow`` on empirical CDFs with tolerance.

    True iff ``P[T_fast ≤ t] ≥ P[T_slow ≤ t] − slack`` at every observed
    time ``t``.  ``slack`` absorbs Monte-Carlo noise; the benchmarks report
    the worst violation alongside the verdict.

    Both empirical CDFs are evaluated on the merged grid with a single
    ``searchsorted`` per sample array (the grid is sorted, so one binary
    search batch covers every grid point).
    """
    fast = np.sort(np.asarray(fast_samples, dtype=float))
    slow = np.sort(np.asarray(slow_samples, dtype=float))
    grid = np.unique(np.concatenate([fast, slow]))
    cdf_fast = np.searchsorted(fast, grid, side="right") / fast.size
    cdf_slow = np.searchsorted(slow, grid, side="right") / slow.size
    return bool(np.all(cdf_fast >= cdf_slow - slack))
