"""Deterministic randomness plumbing for the simulation engine.

Every stochastic entry point in the library takes either an integer seed
or a ``numpy.random.Generator``.  This module centralises the conversion
and the derivation of independent child streams, so that

* a single seed reproduces an entire experiment (sweeps, repetitions,
  multiple processes) bit-for-bit, and
* parallel repetitions use *statistically independent* streams derived
  through :class:`numpy.random.SeedSequence` spawning rather than ad-hoc
  seed arithmetic.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

__all__ = [
    "RandomSource",
    "as_generator",
    "spawn_generators",
    "replica_seed_sequences",
    "per_replica_generators",
    "derive_seed",
]

#: Anything accepted where randomness is needed.
RandomSource = Union[int, np.random.Generator, np.random.SeedSequence, None]


def as_generator(source: RandomSource) -> np.random.Generator:
    """Normalise ``source`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator (only sensible for
    interactive exploration; tests and experiments should pass seeds).
    """
    if isinstance(source, np.random.Generator):
        return source
    if isinstance(source, np.random.SeedSequence):
        return np.random.default_rng(source)
    if source is None:
        return np.random.default_rng()
    if isinstance(source, (int, np.integer)):
        if source < 0:
            raise ValueError("integer seeds must be non-negative")
        return np.random.default_rng(int(source))
    raise TypeError(f"cannot build a Generator from {type(source).__name__}")


def replica_seed_sequences(source: RandomSource, count: int) -> list:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence`\\ s.

    This is the derivation underlying :func:`spawn_generators`, exposed so
    callers that ship streams across process boundaries (the sharded
    ensemble executor) can hand each worker exactly the sequences the
    in-process engine would have spawned — replica ``i`` receives the same
    stream no matter how the ensemble is sharded.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if isinstance(source, np.random.Generator):
        seed_seq = source.bit_generator.seed_seq
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            seed_seq = np.random.SeedSequence(int(source.integers(2**63)))
        return seed_seq.spawn(count)
    if isinstance(source, np.random.SeedSequence):
        return source.spawn(count)
    return np.random.SeedSequence(
        int(source) if source is not None else None
    ).spawn(count)


def spawn_generators(source: RandomSource, count: int) -> list:
    """Derive ``count`` independent child generators from ``source``.

    Child streams are produced with ``SeedSequence.spawn``, which guarantees
    independence regardless of how many children are drawn.  When handed an
    existing ``Generator`` we spawn from its bit generator's seed sequence,
    so repeated calls hand out fresh, non-overlapping streams.
    """
    return [
        np.random.default_rng(child)
        for child in replica_seed_sequences(source, count)
    ]


def per_replica_generators(source, count: int) -> list:
    """One generator per replica, honouring pre-derived stream lists.

    ``source`` may be any :data:`RandomSource` (spawn ``count`` children as
    :func:`spawn_generators` does) or a list/tuple of exactly ``count``
    sources, one per replica — the hand-off used by the sharded executor so
    a shard's replicas keep their global stream identities.
    """
    if isinstance(source, (list, tuple)):
        if len(source) != count:
            raise ValueError(
                f"need exactly {count} per-replica rng sources, got {len(source)}"
            )
        return [as_generator(item) for item in source]
    return spawn_generators(source, count)


def derive_seed(source: RandomSource, stream: int) -> int:
    """A stable 63-bit integer seed for stream index ``stream``.

    Useful when an API boundary (e.g. a subprocess or a benchmark fixture)
    wants plain integers instead of generator objects.
    """
    if stream < 0:
        raise ValueError("stream index must be non-negative")
    if isinstance(source, np.random.Generator):
        base = source.bit_generator.seed_seq
        seq = base if base is not None else np.random.SeedSequence()
    elif isinstance(source, np.random.SeedSequence):
        seq = source
    else:
        seq = np.random.SeedSequence(int(source) if source is not None else None)
    child = seq.spawn(stream + 1)[stream]
    return int(child.generate_state(1, dtype=np.uint64)[0] >> 1)
