"""Compile a :class:`StudySpec` into executable study cells.

``compile_study`` is the bridge between the declarative layer and the
unified runtime: each cell resolves one axis assignment into a
:class:`~repro.engine.plan.SimulationPlan`, with

* a stable per-cell seed derived from the spec seed and the cell index
  (:func:`repro.engine.rng.derive_seed` — the same derivation the sweep
  harness has always used, so a single-``n``-axis study reproduces the
  historical sweep streams bit-for-bit);
* a content hash (``cell_id``) over the resolved parameters, which is
  what the resume machinery matches completed cells by;
* the adversary budget resolved at compile time (``budget = None`` means
  the [BCN+16] recommended tolerance scale for the cell's ``n`` and
  color count), so provenance records concrete numbers.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import re
from dataclasses import dataclass, field

from ..adversary.adversary import (
    Adversary,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
)
from ..engine.batch import first_passage_plan
from ..engine.metrics import EnsembleMetricRecorder
from ..engine.plan import SimulationPlan
from ..engine.rng import derive_seed
from ..engine.runtime import backend_choices
from ..engine.stopping import (
    BiasAtLeast,
    ColorsAtMost,
    Consensus,
    MaxSupportAbove,
    StoppingCondition,
)
from ..experiments.workloads import resolve_workload
from ..faults import build_fault_schedule, encode_fault_value
from ..processes.registry import make_process
from .spec import AXIS_NAMES, StudySpec, spec_hash

__all__ = [
    "ADVERSARY_NAMES",
    "StudyCell",
    "build_adversary",
    "cell_hash",
    "compile_study",
    "describe_axes",
    "expand_axes",
    "parse_stop",
    "validate_study",
]

#: §5 adversary strategies a spec (or the CLI) can name declaratively.
#: Each builder takes the resolved budget, the cell's initial color count
#: and any explicit kwargs from the spec.
_ADVERSARY_BUILDERS = {
    "plant-invalid": lambda budget, colors, kwargs: PlantInvalid(
        budget, invalid_color=kwargs.get("invalid_color", colors + 5)
    ),
    "boost-runner-up": lambda budget, colors, kwargs: BoostRunnerUp(budget),
    "random-noise": lambda budget, colors, kwargs: RandomNoise(
        budget, kwargs.get("num_colors", colors)
    ),
}

ADVERSARY_NAMES = tuple(sorted(_ADVERSARY_BUILDERS))

_STOP_PATTERNS = (
    (re.compile(r"^colors<=(\d+)$"), lambda k: ColorsAtMost(int(k))),
    (re.compile(r"^max-support>(\d+)$"), lambda t: MaxSupportAbove(int(t))),
    (re.compile(r"^bias>=(\d+)$"), lambda t: BiasAtLeast(int(t))),
)


def parse_stop(rule: str) -> StoppingCondition:
    """A declarative stopping rule string → a stopping condition.

    ``"consensus"`` plus the threshold forms ``"colors<=K"``,
    ``"max-support>K"`` and ``"bias>=K"``.
    """
    if rule == "consensus":
        return Consensus()
    for pattern, build in _STOP_PATTERNS:
        match = pattern.match(rule)
        if match:
            return build(match.group(1))
    raise ValueError(
        f"unknown stop rule {rule!r}; expected 'consensus', 'colors<=K', "
        "'max-support>K' or 'bias>=K'"
    )


def build_adversary(
    value: "dict | str | None", n: int, colors: int
) -> "Adversary | None":
    """A canonical adversary axis value → an :class:`Adversary` instance.

    ``value`` is the spec's canonical dict (``{"name", "budget",
    "kwargs"}``), a bare strategy name, or ``None``; a missing budget
    resolves to ``max(1, recommended_corruption_budget(n, colors))``.
    """
    if value is None or value == "none":
        return None
    if isinstance(value, str):
        value = {"name": value, "budget": None, "kwargs": {}}
    name = value["name"]
    try:
        builder = _ADVERSARY_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown adversary {name!r}; available: {', '.join(ADVERSARY_NAMES)}"
        ) from None
    budget = value.get("budget")
    if budget is None:
        budget = max(1, recommended_corruption_budget(n, colors))
    return builder(int(budget), colors, value.get("kwargs", {}))


def expand_axes(spec: StudySpec) -> "list[dict]":
    """The spec's axis assignments per cell, in execution order."""
    axes = spec.axes
    if spec.expansion == "zip":
        length = max(len(values) for values in axes.values())
        cells = []
        for i in range(length):
            cells.append(
                {
                    axis: values[i if len(values) > 1 else 0]
                    for axis, values in axes.items()
                }
            )
        return cells
    combos = itertools.product(*(axes[axis] for axis in AXIS_NAMES))
    return [dict(zip(AXIS_NAMES, combo)) for combo in combos]


def cell_hash(params: dict) -> str:
    """Content hash of one cell's fully resolved parameters."""
    canonical = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def describe_axes(params: dict) -> str:
    """The non-default axis assignments beyond (process, n), for display.

    The one formatting rule shared by :meth:`StudyCell.label` (progress
    lines) and :func:`repro.study.report.study_report` (the ``axes``
    column), so the two can never drift.  Tolerates partial params (the
    legacy sweep harness records a reduced set).
    """
    bits = []
    workload = params.get("workload")
    if workload is not None and (
        workload["name"] != "singletons" or workload["kwargs"]
    ):
        kwargs = ",".join(f"{k}={v}" for k, v in workload["kwargs"].items())
        bits.append(workload["name"] + (f"({kwargs})" if kwargs else ""))
    if params.get("scheduler", "synchronous") != "synchronous":
        bits.append(params["scheduler"])
    adversary = params.get("adversary")
    if adversary is not None:
        bits.append(f"{adversary['name']} F={adversary['budget']}")
    if params.get("stop", "consensus") != "consensus":
        bits.append(params["stop"])
    faults = params.get("faults")
    if faults is not None:
        encoded = encode_fault_value(faults)
        inner = ",".join(f"{k}={v}" for k, v in encoded.items())
        bits.append(f"faults({inner})")
    return " ".join(bits)


@dataclass
class StudyCell:
    """One compiled cell: resolved parameters plus the executable plan."""

    index: int
    cell_id: str
    params: dict
    plan: SimulationPlan = field(repr=False)

    def label(self) -> str:
        """A short human-readable cell summary (for reports and logs)."""
        parts = [self.params["process"]["name"], f"n={self.params['n']}"]
        axes = describe_axes(self.params)
        if axes:
            parts.append(axes)
        return " ".join(parts)


def _cell_recorder(spec: StudySpec):
    if spec.record is None:
        return None
    return EnsembleMetricRecorder(
        names=tuple(spec.record["metrics"]),
        stride=spec.record["stride"],
        replica=spec.record["replica"],
        aggregate=spec.record["aggregate"],
    )


def compile_study(spec: StudySpec) -> "list[StudyCell]":
    """Expand a spec into compiled cells, validating every axis value.

    Validation happens eagerly for the *whole* grid before anything runs,
    so a typo in the last cell surfaces before hours of simulation.
    """
    cells = []
    for index, assignment in enumerate(expand_axes(spec)):
        if assignment["backend"] not in backend_choices():
            raise ValueError(
                f"cell {index}: unknown backend {assignment['backend']!r}; "
                f"valid: {', '.join(backend_choices())}"
            )
        n = assignment["n"]
        initial = resolve_workload(assignment["workload"], n)
        process_value = assignment["process"]
        # Build one instance eagerly to validate the name/kwargs...
        make_process(process_value["name"], **process_value["kwargs"])
        # ...but hand the plan a factory, so sequential backends get a
        # fresh instance per replica (the factory contract of the plan).
        factory = _process_factory(process_value)
        adversary_value = assignment["adversary"]
        adversary = build_adversary(adversary_value, n, initial.num_colors)
        if adversary is not None:
            # Record the resolved budget in the cell's provenance.
            adversary_value = {
                "name": adversary_value["name"],
                "budget": int(adversary.budget),
                "kwargs": dict(adversary_value["kwargs"]),
            }
        stop = parse_stop(assignment["stop"])
        faults_value = assignment["faults"]
        faults = build_fault_schedule(faults_value)
        params = {
            **assignment,
            "adversary": adversary_value,
            "repetitions": spec.repetitions,
            "workers": spec.workers,
            "check_every": spec.check_every,
            "stable_fraction": spec.stable_fraction,
            "stable_rounds": spec.stable_rounds,
            "raise_on_limit": spec.raise_on_limit,
            "record": spec.record,
        }
        if faults_value is None:
            # Elide the default so fault-free cells keep their pre-fault
            # cell_ids — the hashes resume matches completed cells by.
            del params["faults"]
        seed = derive_seed(spec.seed, index)
        params["seed"] = seed
        plan = first_passage_plan(
            process_factory=factory,
            initial=initial,
            stop=stop,
            repetitions=spec.repetitions,
            rng=seed,
            max_rounds=assignment["max_rounds"],
            backend=assignment["backend"],
            rng_mode=assignment["rng_mode"],
            workers=spec.workers,
            scheduler=assignment["scheduler"],
            adversary=adversary,
            faults=faults,
            recorder=_cell_recorder(spec),
            check_every=spec.check_every,
            stable_fraction=spec.stable_fraction,
            stable_rounds=spec.stable_rounds,
            raise_on_limit=spec.raise_on_limit,
        )
        cells.append(
            StudyCell(index=index, cell_id=cell_hash(params), params=params, plan=plan)
        )
    return cells


def _process_factory(value: dict):
    name, kwargs = value["name"], value["kwargs"]
    return lambda: make_process(name, **kwargs)


def validate_study(spec: StudySpec) -> dict:
    """Compile-only validation: the whole grid is expanded, nothing runs.

    The shared gate behind ``repro study validate`` and the daemon's
    ``POST /jobs`` path: every axis value of every cell is resolved
    eagerly (:func:`compile_study`'s contract), so a typo in the last
    cell of a large grid is rejected *before* a job is accepted or an
    hour of simulation starts.  Returns a summary a client can print or
    a server can ship::

        {"name", "spec_hash", "num_cells", "repetitions", "cells"}

    where ``cells`` is the per-cell ``(index, cell_id, label)`` listing.
    Invalid specs raise the compiler's ``ValueError``/``KeyError``/
    ``TypeError`` unchanged.
    """
    cells = compile_study(spec)
    return {
        "name": spec.name,
        "spec_hash": spec_hash(spec),
        "num_cells": len(cells),
        "repetitions": int(spec.repetitions),
        "cells": [
            {"index": cell.index, "cell_id": cell.cell_id, "label": cell.label()}
            for cell in cells
        ],
    }
