"""Declarative studies: spec-driven experiment suites with provenance.

The paper's experiment grid — consensus-time scaling of 3-Majority /
2-Choices / Voter, the asynchronous scheduler, the §5 adversaries — is a
*set of cells*, each one :class:`~repro.engine.plan.SimulationPlan`.
This package makes the set itself a first-class artifact:

* :class:`StudySpec` (``spec.py``) — a plain dataclass declaring named
  axes (process, workload, ``n``, scheduler, adversary, stopping rule,
  horizon, backend, rng regime, fault schedule) plus a ``grid``/``zip``
  expansion rule;
  round-trippable to/from TOML and JSON, content-addressed by
  :func:`spec_hash`.
* :func:`compile_study` (``compile.py``) — expands a spec into
  :class:`StudyCell`\\ s, each carrying its derived seed and compiled
  :class:`~repro.engine.plan.SimulationPlan`.
* :class:`StudyStore` / :class:`RunRecord` (``store.py``) — the columnar
  result store with full provenance (spec hash, per-cell seed entropy,
  resolved backend, wall time, package version).
* :func:`run_study` (``runner.py``) — executes the cells through the
  unified runtime (:func:`repro.engine.runtime.execute`, shared pool and
  all) under an :class:`ExecutionPolicy` (``policy.py``: per-cell
  deadlines, classified backoff retries, backend degradation), isolates
  per-cell failures as ``status="failed"`` / ``"timeout"`` records,
  journals each record crash-safely, and supports bit-for-bit
  ``resume=`` of interrupted runs (broken cells are re-attempted).
* :class:`CellScheduler` (``scheduler.py``) — concurrent cell dispatch
  (``workers`` / ``max_inflight``, the ``[parallel]`` spec table):
  independent cells run on a bounded worker set while the store keeps a
  single writer and ``results_equal`` stays bit-for-bit vs sequential.
* :class:`ResultCache` (``cache.py``) — the shared content-addressed
  result cache (the ``[cache]`` spec table, ``$REPRO_CACHE_DIR``):
  overlapping studies replay clean records (``cache_hit=True``) instead
  of re-simulating.
* :func:`study_report` (``report.py``) — renders a store as tables.

The user-facing entry points are re-exported by :mod:`repro.api`
(``simulate`` / ``sweep`` / ``study``).
"""

from .cache import (
    CACHE_KEYS,
    ResultCache,
    canonical_cache_value,
    default_cache_dir,
    encode_cache_value,
    resolve_cache,
)
from .compile import (
    ADVERSARY_NAMES,
    StudyCell,
    build_adversary,
    compile_study,
    parse_stop,
    validate_study,
)
from .policy import (
    POLICY_KEYS,
    CellDeadlineExceeded,
    ExecutionPolicy,
    as_execution_policy,
    canonical_policy_value,
    encode_policy_value,
    resolve_policy,
)
from .report import study_report
from .runner import execute_cells, run_study
from .scheduler import (
    PARALLEL_KEYS,
    CellScheduler,
    canonical_parallel_value,
    encode_parallel_value,
    resolve_parallel,
)
from .spec import AXIS_NAMES, StudySpec, spec_hash
from .store import (
    STORE_FORMAT_VERSION,
    JournalReader,
    RunRecord,
    StoreCorruptError,
    StudyStore,
    journal_path,
    load_study_store,
)
from .toml_io import load_spec, loads_spec, dumps_spec, save_spec

__all__ = [
    "ADVERSARY_NAMES",
    "AXIS_NAMES",
    "CACHE_KEYS",
    "PARALLEL_KEYS",
    "POLICY_KEYS",
    "CellDeadlineExceeded",
    "CellScheduler",
    "ExecutionPolicy",
    "JournalReader",
    "ResultCache",
    "RunRecord",
    "STORE_FORMAT_VERSION",
    "StoreCorruptError",
    "StudyCell",
    "StudySpec",
    "StudyStore",
    "as_execution_policy",
    "build_adversary",
    "canonical_cache_value",
    "canonical_parallel_value",
    "canonical_policy_value",
    "compile_study",
    "default_cache_dir",
    "dumps_spec",
    "encode_cache_value",
    "encode_parallel_value",
    "encode_policy_value",
    "execute_cells",
    "journal_path",
    "load_spec",
    "load_study_store",
    "loads_spec",
    "parse_stop",
    "resolve_cache",
    "resolve_parallel",
    "resolve_policy",
    "run_study",
    "save_spec",
    "spec_hash",
    "study_report",
    "validate_study",
]
