"""The :class:`ExecutionPolicy` — supervision rules for cell execution.

A study cell can fail three ways, and each deserves different handling:

* **transient** faults of the execution substrate — a pool worker
  OOM-killed (:class:`~repro.engine.sharded.WorkerPoolError`), a
  ``MemoryError``, an ``OSError`` — recover on retry (with backoff,
  so a struggling machine gets air) and, failing that, on a *degraded*
  backend further down the capability ladder;
* **fatal** configuration errors — ``ValueError`` and friends raised at
  plan-compile or backend-resolution time — are deterministic, so every
  retry would waste the same wall time and fail the same way: fail fast;
* **unknown** errors (anything else, e.g.
  :class:`~repro.engine.simulator.RoundLimitExceeded` on a stochastic
  run) keep the historical behaviour: retry on a jittered sub-seed.

The policy is a plain dataclass of plain values, so it rides a
:class:`~repro.study.spec.StudySpec` as an optional ``[execution]`` TOML
table with the same default-elision contract as the faults axis: a
policy equal to the defaults serialises to *nothing*, keeping every
pre-existing ``spec_hash`` (and therefore every existing store and cell
id) valid.  The policy itself never enters cell params — it changes how
cells are *supervised*, never what they *measure*.

Backoff is deterministic: the delay before retry ``attempt`` is
``backoff_s * 2**(attempt-1)`` capped at ``backoff_max_s`` and jittered
into ``[1-jitter, 1+jitter]`` by a uniform variate derived from
``(cell seed, attempt)`` via :func:`~repro.engine.rng.derive_seed` — a
re-run of the same study sleeps the same schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..engine.rng import derive_seed
from ..engine.sharded import WorkerPoolError

__all__ = [
    "POLICY_KEYS",
    "CellDeadlineExceeded",
    "ExecutionPolicy",
    "as_execution_policy",
    "backoff_delay",
    "canonical_policy_value",
    "classify_error",
    "encode_policy_value",
    "resolve_policy",
]

#: Canonical key order with default values (mirrors ``FAULT_KEYS``).
POLICY_KEYS = (
    ("deadline_s", None),
    ("max_attempts", 2),
    ("backoff_s", 0.05),
    ("backoff_max_s", 30.0),
    ("jitter", 0.5),
    ("degrade", True),
)

#: Exception types whose failures are infrastructure, not model, errors:
#: a retry (or a degraded backend) can genuinely succeed.
TRANSIENT_ERRORS = (WorkerPoolError, MemoryError, OSError)

#: Deterministic configuration errors: retrying replays the same failure.
FATAL_ERRORS = (
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    IndexError,
    NotImplementedError,
    ZeroDivisionError,
)


class CellDeadlineExceeded(RuntimeError):
    """A cell ran past its :attr:`ExecutionPolicy.deadline_s` and was killed.

    Raised by the runner's watchdog (never by the engines themselves);
    the cell lands in the store as ``status="timeout"`` and ``resume``
    re-attempts it like any other non-ok cell.
    """

    def __init__(self, deadline_s: float):
        super().__init__(
            f"cell exceeded its {deadline_s:g}s execution deadline"
        )
        self.deadline_s = deadline_s


@dataclass(frozen=True)
class ExecutionPolicy:
    """How the runner supervises one cell (see the module docstring).

    All-default instances are the implicit policy of every pre-existing
    spec: two attempts, no deadline, degradation on — exactly the PR 6
    retry behaviour plus the new escape hatches.
    """

    #: Wall-clock budget per *attempt*, seconds; ``None`` = unlimited.
    #: A timed-out cell is recorded as ``status="timeout"`` without
    #: further in-run attempts (a hang would burn the budget again);
    #: ``resume`` re-attempts it.
    deadline_s: "float | None" = None
    #: Total attempts per cell (first attempt included).
    max_attempts: int = 2
    #: Base backoff delay before the first retry, seconds.
    backoff_s: float = 0.05
    #: Cap on the exponentially-growing backoff delay, seconds.
    backoff_max_s: float = 30.0
    #: Multiplicative jitter half-width in ``[0, 1]``: the delay is
    #: scaled into ``[1-jitter, 1+jitter]`` deterministically.
    jitter: float = 0.5
    #: Re-resolve down the capability ladder (sharded → ensemble →
    #: sequential) when transient retries exhaust.
    degrade: bool = True

    def __post_init__(self) -> None:
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise ValueError("execution.deadline_s must be positive")
        if int(self.max_attempts) < 1:
            raise ValueError("execution.max_attempts must be positive")
        object.__setattr__(self, "max_attempts", int(self.max_attempts))
        if self.backoff_s < 0:
            raise ValueError("execution.backoff_s must be non-negative")
        if self.backoff_max_s < 0:
            raise ValueError("execution.backoff_max_s must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("execution.jitter must lie in [0, 1]")


def canonical_policy_value(value) -> "dict | None":
    """Normalise a declarative execution value to its canonical dict.

    Accepts ``None``, an :class:`ExecutionPolicy`, or a mapping with any
    subset of the canonical keys.  A value equal to the all-defaults
    policy collapses to ``None`` — same supervision, same encoding, same
    ``spec_hash`` — mirroring the rate-0 collapse of the faults axis.
    """
    if value is None:
        return None
    if isinstance(value, ExecutionPolicy):
        items = {key: getattr(value, key) for key, _default in POLICY_KEYS}
    else:
        try:
            items = dict(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"execution must be a table or ExecutionPolicy, got {value!r}"
            ) from None
    known = {key for key, _default in POLICY_KEYS}
    unknown = set(items) - known
    if unknown:
        raise KeyError(
            f"unknown execution keys {sorted(unknown)}; known keys are "
            f"{sorted(known)}"
        )
    out = {}
    for key, default in POLICY_KEYS:
        raw = items.get(key, default)
        if key == "deadline_s":
            if raw == "none":
                raw = None
            if raw is not None:
                raw = float(raw)
        elif key == "max_attempts":
            raw = int(raw)
        elif key == "degrade":
            raw = bool(raw)
        else:
            raw = float(raw)
        out[key] = raw
    ExecutionPolicy(**out)  # validation lives in one place
    if out == dict(POLICY_KEYS):
        return None
    return out


def encode_policy_value(value) -> "dict | None":
    """JSON/TOML-friendly form: drop default-valued keys; defaults vanish."""
    value = canonical_policy_value(value)
    if value is None:
        return None
    return {
        key: value[key]
        for key, default in POLICY_KEYS
        if value[key] != default
    }


def as_execution_policy(value) -> ExecutionPolicy:
    """Compile a declarative execution value into a live policy."""
    if isinstance(value, ExecutionPolicy):
        return value
    value = canonical_policy_value(value)
    if value is None:
        return ExecutionPolicy()
    return ExecutionPolicy(**value)


def resolve_policy(
    policy=None,
    spec_value=None,
    *,
    max_attempts: "int | None" = None,
    deadline_s: "float | None" = None,
) -> ExecutionPolicy:
    """The runner's precedence rule: explicit policy > spec table > defaults.

    ``max_attempts`` / ``deadline_s`` are the CLI-flag overrides; they
    patch whichever base policy won.
    """
    base = as_execution_policy(policy if policy is not None else spec_value)
    overrides = {}
    if max_attempts is not None:
        overrides["max_attempts"] = int(max_attempts)
    if deadline_s is not None:
        overrides["deadline_s"] = float(deadline_s)
    return replace(base, **overrides) if overrides else base


def classify_error(exc: BaseException) -> str:
    """``"transient"`` | ``"fatal"`` | ``"unknown"`` (see module docstring).

    An exception type can opt into transience by setting a ``transient``
    class attribute (the way :class:`WorkerPoolError` does) — useful for
    exceptions that are also ``ValueError`` subclasses.  The transient
    check runs first so, e.g., an ``OSError`` subclass used as a config
    error would need explicit ``transient = False``.
    """
    if getattr(exc, "transient", False):
        return "transient"
    if isinstance(exc, TRANSIENT_ERRORS):
        return "transient"
    if isinstance(exc, FATAL_ERRORS):
        return "fatal"
    return "unknown"


def backoff_delay(policy: ExecutionPolicy, cell_seed: int, attempt: int) -> float:
    """Deterministic jittered delay before retry ``attempt`` (1-based).

    Exponential in the attempt number, capped, and jittered into
    ``[1-jitter, 1+jitter]`` by a uniform variate derived from the cell
    seed — two runs of the same study back off identically, but two
    cells (or two attempts) never sleep in lock-step.
    """
    if attempt < 1:
        return 0.0
    base = min(policy.backoff_s * (2.0 ** (attempt - 1)), policy.backoff_max_s)
    if base == 0.0:
        return 0.0
    uniform = derive_seed(cell_seed, attempt) / float(2**63)
    return base * (1.0 - policy.jitter + 2.0 * policy.jitter * uniform)
