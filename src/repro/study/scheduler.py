"""The :class:`CellScheduler` — concurrent cell dispatch for ``run_study``.

Study cells are independent by construction: every cell's seed derives
from ``(spec_seed, cell_index)`` (:mod:`repro.study.compile`), never
from execution order, and each compiled cell carries its *own* recorder
instance.  Scheduling them concurrently therefore changes wall time and
nothing else — record identity is ``cell_id``, the store sorts by cell
index on read, and ``results_equal`` stays bit-for-bit.

The scheduler is Executor-shaped — :meth:`~CellScheduler.submit`
returns a :class:`concurrent.futures.Future`, :meth:`shutdown` retires
the workers — but is built on plain *daemon* threads rather than
:class:`~concurrent.futures.ThreadPoolExecutor` for one supervision
reason: abandonment.  Off the main thread the runner's ``_CellDeadline``
cannot use ``SIGALRM`` and falls back to a timer that tears down the
shared spawn pools — which interrupts pool-*based* cells (the teardown
surfaces in-attempt as a transient :class:`WorkerPoolError` →
``CellDeadlineExceeded``), but cannot interrupt a pure in-process cell
that never returns.  For that shape the scheduler keeps a per-future
watchdog: a future still running past its budget is *abandoned* — its
cell is reported timed-out, a replacement worker is spawned to keep the
level of parallelism, and the wedged daemon thread is left behind where
it can block neither the study nor interpreter exit.

Threading model: worker threads only ever *execute* cells (the
``run_cell`` callable given at construction); the consumer of
:meth:`run` — the runner's main loop — remains the store's single
writer, journaling each record the moment its future completes, in
completion order.  Pool-based cells all ride the one shared spawn pool
(`repro.engine.runtime.shared_executor`), whose lifecycle is lock-
guarded for exactly this use.

Like ``[execution]``, the declarative ``[parallel]`` table rides
:class:`~repro.study.spec.StudySpec` default-elided: a sequential spec
serialises to nothing, keeping every pre-existing ``spec_hash`` valid,
and the table never enters cell params — parallelism changes how cells
are *scheduled*, never what they measure.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, wait

__all__ = [
    "PARALLEL_KEYS",
    "CellScheduler",
    "canonical_parallel_value",
    "encode_parallel_value",
    "resolve_parallel",
]

#: Canonical key order with default values (mirrors ``POLICY_KEYS``).
PARALLEL_KEYS = (
    ("workers", None),
    ("max_inflight", None),
)

#: How often the watchdog sweeps inflight futures, seconds.
_WATCHDOG_TICK = 0.1


def canonical_parallel_value(value) -> "dict | None":
    """Normalise a declarative parallel value to its canonical dict.

    Accepts ``None``, an int (a worker count), or a mapping with any
    subset of the canonical keys.  A value equal to the all-defaults
    table (sequential, unbounded by nothing) collapses to ``None`` —
    same schedule, same encoding, same ``spec_hash``.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise TypeError("parallel must be a table or worker count, not a bool")
    if isinstance(value, int):
        items = {"workers": value}
    else:
        try:
            items = dict(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"parallel must be a table or worker count, got {value!r}"
            ) from None
    known = {key for key, _default in PARALLEL_KEYS}
    unknown = set(items) - known
    if unknown:
        raise KeyError(
            f"unknown parallel keys {sorted(unknown)}; known keys are "
            f"{sorted(known)}"
        )
    out = {}
    for key, default in PARALLEL_KEYS:
        raw = items.get(key, default)
        if raw == "none":
            raw = None
        if raw is not None:
            raw = int(raw)
            if raw < 1:
                raise ValueError(f"parallel.{key} must be positive, got {raw}")
        out[key] = raw
    if out["workers"] == 1:
        out["workers"] = None  # one worker *is* the sequential default
    if out == dict(PARALLEL_KEYS):
        return None
    return out


def encode_parallel_value(value) -> "dict | None":
    """JSON/TOML-friendly form: drop default-valued keys; defaults vanish."""
    value = canonical_parallel_value(value)
    if value is None:
        return None
    return {
        key: value[key]
        for key, default in PARALLEL_KEYS
        if value[key] != default
    }


def resolve_parallel(
    spec_value=None,
    *,
    workers: "int | None" = None,
    max_inflight: "int | None" = None,
) -> "tuple[int, int]":
    """The runner's precedence rule: explicit args > spec table > defaults.

    Returns the resolved ``(workers, max_inflight)`` pair; ``workers``
    defaults to 1 (the sequential path), ``max_inflight`` to twice the
    worker count — enough queued work to keep every worker fed without
    materialising the whole study's plans at once.
    """
    base = canonical_parallel_value(spec_value) or dict(PARALLEL_KEYS)
    resolved_workers = workers if workers is not None else base["workers"]
    resolved_workers = 1 if resolved_workers is None else int(resolved_workers)
    if resolved_workers < 1:
        raise ValueError(f"workers must be positive, got {resolved_workers}")
    resolved_inflight = (
        max_inflight if max_inflight is not None else base["max_inflight"]
    )
    if resolved_inflight is None:
        resolved_inflight = 2 * resolved_workers
    resolved_inflight = int(resolved_inflight)
    if resolved_inflight < 1:
        raise ValueError(
            f"max_inflight must be positive, got {resolved_inflight}"
        )
    return resolved_workers, max(resolved_inflight, resolved_workers)


class CellScheduler:
    """Dispatch compiled cells onto a bounded set of daemon worker threads.

    ``run_cell`` is the one supervised-execution entry point (the
    runner's ``_record_cell`` with its policy already resolved); it is
    called once per cell on a worker thread and must return the cell's
    record or raise.  ``watchdog_s`` is the per-cell abandonment budget
    for cells the deadline fallback cannot interrupt (see the module
    docstring); ``None`` disables the watchdog.
    """

    def __init__(
        self,
        run_cell,
        workers: int,
        *,
        max_inflight: "int | None" = None,
        watchdog_s: "float | None" = None,
    ):
        self._run_cell = run_cell
        self.workers = int(workers)
        if self.workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.max_inflight = (
            2 * self.workers if max_inflight is None else int(max_inflight)
        )
        self.max_inflight = max(self.max_inflight, self.workers)
        self.watchdog_s = watchdog_s
        self.abandoned = 0
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._threads: "list[threading.Thread]" = []
        self._lost: "set[threading.Thread]" = set()
        self._closed = False
        for _ in range(self.workers):
            self._spawn_worker()

    # -- the worker side ----------------------------------------------

    def _spawn_worker(self) -> None:
        thread = threading.Thread(
            target=self._worker,
            name=f"repro-cell-worker-{len(self._threads)}",
            daemon=True,
        )
        thread.start()
        self._threads.append(thread)

    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            cell, future = item
            if not future.set_running_or_notify_cancel():
                continue
            future.repro_started = time.monotonic()
            future.repro_thread = threading.current_thread()
            try:
                result = self._run_cell(cell)
            except BaseException as exc:  # delivered via future.result()
                future.set_exception(exc)
            else:
                future.set_result(result)

    # -- the Executor-shaped face -------------------------------------

    def submit(self, cell) -> Future:
        """Enqueue one cell; its record (or exception) rides the future."""
        if self._closed:
            raise RuntimeError("cannot submit to a shut-down CellScheduler")
        future: Future = Future()
        self._queue.put((cell, future))
        return future

    def shutdown(self, wait_for_workers: bool = True) -> None:
        """Retire the workers (idempotent).

        Wedged threads that the watchdog abandoned are *not* joined —
        they are daemons and die with the process.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._queue.put(None)
        if wait_for_workers:
            for thread in self._threads:
                if thread not in self._lost:
                    thread.join()

    def __enter__(self) -> "CellScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    # -- the consumer loop --------------------------------------------

    def run(self, cells, *, abandon=None):
        """Yield ``(cell, record)`` in completion order, inflight-bounded.

        Pulls lazily from ``cells`` so at most ``max_inflight`` compiled
        plans are materialised at once.  A worker exception propagates
        from the generator (the ``on_error="raise"`` contract); pending
        futures are cancelled on the way out, and cells a cancelled
        future never ran simply stay unrun — resume picks them up.

        With a ``watchdog_s`` budget and an ``abandon(cell, elapsed)``
        callback, a future still running past its budget is abandoned:
        the callback's return value is yielded as the cell's record, a
        replacement worker keeps the parallelism, and the wedged thread
        is written off.
        """
        pending: "dict[Future, object]" = {}
        iterator = iter(cells)
        exhausted = False
        try:
            while True:
                while not exhausted and len(pending) < self.max_inflight:
                    try:
                        cell = next(iterator)
                    except StopIteration:
                        exhausted = True
                        break
                    pending[self.submit(cell)] = cell
                if not pending:
                    return
                use_watchdog = (
                    self.watchdog_s is not None and abandon is not None
                )
                done, _running = wait(
                    set(pending),
                    timeout=_WATCHDOG_TICK if use_watchdog else None,
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    cell = pending.pop(future)
                    yield cell, future.result()
                if not use_watchdog:
                    continue
                now = time.monotonic()
                for future in list(pending):
                    started = getattr(future, "repro_started", None)
                    if started is None or future.done():
                        continue  # queued, not running: no budget burned
                    elapsed = now - started
                    if elapsed <= self.watchdog_s:
                        continue
                    cell = pending.pop(future)
                    self.abandoned += 1
                    self._lost.add(future.repro_thread)
                    self._spawn_worker()
                    yield cell, abandon(cell, elapsed)
        finally:
            for future in pending:
                future.cancel()
