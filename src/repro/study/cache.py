"""Content-addressed result cache: overlapping studies re-simulate nothing.

A study cell is a pure function of its parameters: the cell id already
content-addresses the canonical params dict (seed included, see
:func:`~repro.study.compile.cell_hash`), and the per-cell seed derives
from ``(spec_seed, cell_index)`` — never from execution order or wall
clock.  Two specs that share a cell (same axes assignment, same derived
seed) therefore share its *result*, bit for bit.  This module memoizes
that function on disk: each ok record is stored under a key hashed from
``(cell_id, package_version)`` — the cell id carries the plan hash and
the cell seed; the package version guards against code drift — so a
parameter-sweep campaign that re-runs an overlapping spec hits the cache
instead of the simulator.

Storage is a shared directory (``$REPRO_CACHE_DIR``, defaulting to
``~/.cache/repro``), one CRC-guarded JSON file per entry in the exact
``{"crc", "data"}`` envelope the store journal uses: a torn or mangled
entry is *ignored with a warning*, never a crash — the cell simply
re-simulates.  Writes are atomic (temp file + ``os.replace``) so a
``kill -9`` mid-``put`` can tear at most an invisible temp file.

Like ``[execution]`` and ``[parallel]``, the declarative ``[cache]``
table is default-elided: caching off (the default) serialises to
nothing, so every pre-existing ``spec_hash`` — and therefore every
existing store and cell id — stays valid.  The table never enters cell
params: caching changes where results come *from*, never what they
*are*; :meth:`~repro.study.store.RunRecord.same_results` ignores the
``cache_hit`` stamp for the same reason it ignores wall time.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import warnings
from typing import Mapping

try:  # POSIX file locking for the shared stats counters (linux/mac).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX hosts
    fcntl = None

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_KEYS",
    "ResultCache",
    "cache_key",
    "canonical_cache_value",
    "default_cache_dir",
    "encode_cache_value",
    "resolve_cache",
]

#: Canonical key order with default values (mirrors ``POLICY_KEYS``).
CACHE_KEYS = (
    ("enabled", False),
    ("dir", None),
)

#: Environment override for the shared cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_STATS_FILE = "stats.json"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` when set, else ``~/.cache/repro``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def canonical_cache_value(value) -> "dict | None":
    """Normalise a declarative cache value to its canonical dict.

    Accepts ``None``, a bool (on/off with the default directory), a
    string (a directory, which implies ``enabled``), or a mapping with
    any subset of the canonical keys.  For a mapping, a ``dir`` without
    an explicit ``enabled`` implies ``enabled = true`` — naming a
    directory and not wanting it used is not a meaningful spec.  A value
    equal to the all-defaults table (caching off) collapses to ``None``,
    keeping the ``spec_hash`` of every cache-less spec unchanged.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        items = {"enabled": value}
    elif isinstance(value, str):
        items = {"enabled": True, "dir": value}
    else:
        try:
            items = dict(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"cache must be a table, bool, or directory, got {value!r}"
            ) from None
    known = {key for key, _default in CACHE_KEYS}
    unknown = set(items) - known
    if unknown:
        raise KeyError(
            f"unknown cache keys {sorted(unknown)}; known keys are "
            f"{sorted(known)}"
        )
    directory = items.get("dir")
    if directory == "none":
        directory = None
    if directory is not None:
        directory = str(directory)
    enabled = bool(items.get("enabled", directory is not None))
    out = {"enabled": enabled, "dir": directory}
    if out == dict(CACHE_KEYS):
        return None
    return out


def encode_cache_value(value) -> "dict | None":
    """JSON/TOML-friendly form: drop default-valued keys; defaults vanish."""
    value = canonical_cache_value(value)
    if value is None:
        return None
    out = {
        key: value[key]
        for key, default in CACHE_KEYS
        if value[key] != default and value[key] is not None
    }
    if value["dir"] is not None and not value["enabled"]:
        # A bare ``dir`` implies enabled on decode; keep the off switch.
        out["enabled"] = False
    return out


def resolve_cache(override=None, spec_value=None) -> "ResultCache | None":
    """The runner's precedence rule: explicit argument > spec table > off.

    ``override`` is the ``run_study(cache=...)`` / CLI value: ``None``
    defers to the spec, ``False`` (``--no-cache``) forces caching off
    even for a spec that enables it, ``True`` (``--cache``) turns it on
    with the default directory, a string names the directory, and a
    ready :class:`ResultCache` is used as-is.
    """
    if isinstance(override, ResultCache):
        return override
    value = canonical_cache_value(
        override if override is not None else spec_value
    )
    if value is None or not value["enabled"]:
        return None
    return ResultCache(value["dir"])


def cache_key(cell_id: str, package_version: str) -> str:
    """Content address of one cell's result under one code version.

    The cell id is already a content hash of the canonical params (the
    plan) *including* the derived cell seed; folding in the package
    version invalidates every entry when the simulator changes.
    """
    digest = hashlib.sha256(
        f"{cell_id}:{package_version}".encode("utf-8")
    )
    return digest.hexdigest()[:32]


def _wrap_entry(row: dict) -> bytes:
    """CRC-guard an entry exactly like a journal line (see store.py)."""
    from .store import _journal_line

    return _journal_line(row)


def _parse_entry(raw: bytes) -> "dict | None":
    from .store import _parse_journal_line

    return _parse_journal_line(raw.rstrip(b"\n") + b"\n")


class ResultCache:
    """A shared on-disk memo of ok :class:`~repro.study.store.RunRecord`\\ s.

    Entries live two levels deep (``<root>/<key[:2]>/<key>.json``) so a
    large campaign does not pile every file into one directory.  Only
    clean ok records are stored — failures must re-run, and degraded
    records would pin the *fallback* backend's provenance onto a later
    healthy run.  Hit/miss counters accumulate per process and are
    folded into ``<root>/stats.json`` by :meth:`flush`; :meth:`gc`
    resets them, so the reported hit rate is "since last gc".
    """

    def __init__(self, root: "str | None" = None,
                 package_version: "str | None" = None):
        if package_version is None:
            from .. import __version__ as package_version
        self.root = os.path.abspath(root or default_cache_dir())
        self.package_version = str(package_version)
        #: Hits / misses observed by *this* process (see :meth:`flush`).
        self.hits = 0
        self.misses = 0

    # -- entry layout -------------------------------------------------

    def entry_path(self, cell_id: str) -> str:
        key = cache_key(cell_id, self.package_version)
        return os.path.join(self.root, key[:2], f"{key}.json")

    def _entries(self) -> "list[str]":
        """Every entry file currently on disk (stats sidecar excluded)."""
        found = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for name in filenames:
                if name.endswith(".json") and name != _STATS_FILE:
                    found.append(os.path.join(dirpath, name))
        return found

    # -- the memo -----------------------------------------------------

    def get(self, cell_id: str):
        """The cached :class:`RunRecord` for ``cell_id``, or ``None``.

        A corrupt or undecodable entry is removed and reported as a
        :class:`RuntimeWarning` — a poisoned cache degrades to a miss,
        never to a crash.  A hit refreshes the entry's mtime so
        :meth:`gc` evicts least-recently-*used*, not least-recently-
        written.
        """
        from .store import _decode_record

        path = self.entry_path(cell_id)
        try:
            with open(path, "rb") as handle:
                raw = handle.read()
        except OSError:
            self.misses += 1
            return None
        row = _parse_entry(raw)
        record = None
        if row is not None:
            try:
                record = _decode_record(row)
            except (KeyError, TypeError, ValueError):
                record = None
        if record is None or record.cell_id != cell_id:
            warnings.warn(
                f"ignoring corrupt result-cache entry {path}",
                RuntimeWarning,
                stacklevel=2,
            )
            try:
                os.remove(path)
            except OSError:
                pass
            self.misses += 1
            return None
        try:
            os.utime(path)
        except OSError:
            pass
        self.hits += 1
        return record

    def put(self, record) -> bool:
        """Memoize one record; returns whether it was cacheable.

        Only clean ok results enter the cache (no failures, no
        timeouts, no degraded provenance).  The write is atomic — temp
        file then ``os.replace`` — so concurrent writers of the same
        cell last-write-win an identical payload.
        """
        from .store import _encode_record

        if not record.ok or record.degraded_from is not None:
            return False
        row = _encode_record(record)
        row["cache_hit"] = False  # a replayed hit must not re-stamp itself
        path = self.entry_path(record.cell_id)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(_wrap_entry(row))
        os.replace(tmp, path)
        return True

    # -- bookkeeping --------------------------------------------------

    def _stats_path(self) -> str:
        return os.path.join(self.root, _STATS_FILE)

    @contextlib.contextmanager
    def _stats_lock(self):
        """Serialise the counters' read-modify-write across writers.

        Multiple scheduler threads flushing their caches, or a daemon
        plus a foreground CLI run sharing one cache directory, would
        otherwise interleave read → add → replace and silently drop
        increments.  An exclusive ``flock`` on a sidecar lock file makes
        the fold atomic across *processes and threads* (flock locks
        attach to the open file description, so two handles conflict
        even in one process); hosts without :mod:`fcntl` fall back to
        the historical lock-free behaviour.
        """
        os.makedirs(self.root, exist_ok=True)
        if fcntl is None:  # pragma: no cover - non-POSIX hosts
            yield
            return
        with open(os.path.join(self.root, f"{_STATS_FILE}.lock"), "ab") as lock:
            fcntl.flock(lock.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock.fileno(), fcntl.LOCK_UN)

    def _read_counters(self) -> dict:
        """Decode ``stats.json``; damaged or missing counters read as zero.

        The file is CRC-guarded with the same ``{"crc", "data"}``
        envelope as entries and the store journal, so a torn write is
        *detected* (and discarded) rather than half-read; plain legacy
        ``{"hits", "misses"}`` files still decode.
        """
        try:
            with open(self._stats_path(), "rb") as handle:
                raw = handle.read()
        except OSError:
            return {"hits": 0, "misses": 0}
        data = _parse_entry(raw)
        if data is None:  # not enveloped: a pre-envelope (legacy) file?
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                return {"hits": 0, "misses": 0}
        try:
            return {"hits": int(data["hits"]), "misses": int(data["misses"])}
        except (KeyError, TypeError, ValueError):
            return {"hits": 0, "misses": 0}

    def _write_counters(self, counters: Mapping) -> None:
        os.makedirs(self.root, exist_ok=True)
        tmp = f"{self._stats_path()}.tmp.{os.getpid()}"
        with open(tmp, "wb") as handle:
            handle.write(_wrap_entry(dict(counters)))
        os.replace(tmp, self._stats_path())

    def flush(self) -> None:
        """Fold this process's hit/miss counters into ``stats.json``.

        Atomic under concurrent writers: the read-modify-write holds the
        stats lock, the payload is CRC-enveloped, and the file lands via
        ``os.replace`` — the same discipline cache entries use.
        """
        if not (self.hits or self.misses):
            return
        with self._stats_lock():
            counters = self._read_counters()
            counters["hits"] += self.hits
            counters["misses"] += self.misses
            self._write_counters(counters)
        self.hits = 0
        self.misses = 0

    def stats(self) -> dict:
        """Entries, bytes on disk, and the hit rate since the last gc."""
        entries = self._entries()
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += os.path.getsize(path)
            except OSError:
                pass
        counters = self._read_counters()
        hits = counters["hits"] + self.hits
        misses = counters["misses"] + self.misses
        lookups = hits + misses
        return {
            "dir": self.root,
            "entries": len(entries),
            "bytes": total_bytes,
            "hits": hits,
            "misses": misses,
            "hit_rate": (hits / lookups) if lookups else None,
        }

    def gc(self, max_age_s: "float | None" = None,
           max_bytes: "int | None" = None) -> dict:
        """Bound the cache: expire by age, then LRU-evict to a byte budget.

        Age and recency both read the entry mtime, which :meth:`get`
        refreshes on every hit.  Resets the hit/miss counters — the
        advertised rate is "since last gc".
        """
        import time

        now = time.time()
        survivors = []
        removed = 0
        for path in self._entries():
            try:
                stat = os.stat(path)
            except OSError:
                continue
            if max_age_s is not None and now - stat.st_mtime > max_age_s:
                try:
                    os.remove(path)
                    removed += 1
                except OSError:
                    pass
                continue
            survivors.append((stat.st_mtime, stat.st_size, path))
        if max_bytes is not None:
            survivors.sort()  # oldest (least recently used) first
            total = sum(size for _mtime, size, _path in survivors)
            while survivors and total > max_bytes:
                _mtime, size, path = survivors.pop(0)
                try:
                    os.remove(path)
                    removed += 1
                    total -= size
                except OSError:
                    pass
        self.hits = 0
        self.misses = 0
        with self._stats_lock():
            self._write_counters({"hits": 0, "misses": 0})
        kept_bytes = sum(size for _mtime, size, _path in survivors)
        return {"removed": removed, "entries": len(survivors),
                "bytes": kept_bytes}
