"""TOML round-trip for :class:`~repro.study.spec.StudySpec`.

Reading uses the standard library's :mod:`tomllib`; writing is a small
purpose-built emitter (the stdlib has no TOML writer and the container
pins its package set), covering exactly the value shapes a spec dict
contains: strings, ints, floats, booleans, homogeneous-or-mixed arrays,
and one level of sub-tables (``[record]``, ``[execution]``,
``[parallel]``, ``[cache]``, ``[axes]``) whose array
entries may be inline tables.  The contract is round-trip losslessness:

>>> loads_spec(dumps_spec(spec)) == spec   # doctest: +SKIP
True
"""

from __future__ import annotations

import os
import tomllib
from typing import Any, Mapping

from .spec import StudySpec

__all__ = ["dumps_spec", "loads_spec", "save_spec", "load_spec"]

_BARE_KEY = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_-"
)


def _key(key: str) -> str:
    if key and set(key) <= _BARE_KEY:
        return key
    return _string(key)


def _string(value: str) -> str:
    escaped = (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )
    return f'"{escaped}"'


def _value(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        text = repr(value)
        return text if any(c in text for c in ".einf") else f"{text}.0"
    if isinstance(value, str):
        return _string(value)
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_value(item) for item in value) + "]"
    if isinstance(value, Mapping):
        inner = ", ".join(f"{_key(k)} = {_value(v)}" for k, v in value.items())
        return "{ " + inner + " }" if inner else "{}"
    raise TypeError(f"cannot emit {type(value).__name__} as TOML: {value!r}")


def dumps_spec(spec: StudySpec) -> str:
    """Serialise a spec to a TOML document string."""
    payload = spec.to_dict()
    axes = payload.pop("axes")
    tables = [
        (name, payload.pop(name, None))
        for name in ("record", "execution", "parallel", "cache")
    ]
    lines = [f"{_key(k)} = {_value(v)}" for k, v in payload.items()]
    for name, table in tables:
        if table is not None:
            lines.append("")
            lines.append(f"[{name}]")
            lines.extend(f"{_key(k)} = {_value(v)}" for k, v in table.items())
    lines.append("")
    lines.append("[axes]")
    lines.extend(f"{_key(k)} = {_value(v)}" for k, v in axes.items())
    lines.append("")
    return "\n".join(lines)


def loads_spec(text: str) -> StudySpec:
    """Parse a TOML document into a :class:`StudySpec`."""
    try:
        payload = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"invalid study TOML: {exc}") from exc
    return StudySpec.from_dict(payload)


def save_spec(spec: StudySpec, path: str) -> None:
    """Write a spec to ``path`` as TOML (atomically)."""
    tmp_path = f"{path}.tmp"
    with open(tmp_path, "w", encoding="utf-8") as handle:
        handle.write(dumps_spec(spec))
    os.replace(tmp_path, path)


def load_spec(path: str) -> StudySpec:
    """Read a spec previously written by :func:`save_spec` (or by hand)."""
    with open(path, "rb") as handle:
        try:
            payload = tomllib.load(handle)
        except tomllib.TOMLDecodeError as exc:
            raise ValueError(f"invalid study TOML in {path}: {exc}") from exc
    return StudySpec.from_dict(payload)
