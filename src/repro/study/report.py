"""Render a :class:`~repro.study.store.StudyStore` as report tables.

One summary table over all cells (axes, replica counts, first-passage
statistics, resolved backend), plus a power-law fit footnote for every
group of cells that differs only in ``n`` and covers at least three
sizes — the study-level generalisation of the sweep harness's fit row.
"""

from __future__ import annotations

import json

import numpy as np

from ..analysis.statistics import fit_power_law
from ..experiments.reporting import Table
from .compile import describe_axes
from .store import RunRecord, StudyStore

__all__ = ["study_report"]


def _group_key(record: RunRecord, expansion: str) -> str:
    """Cells that differ only in ``n`` (and seed) share a fit group.

    Under ``zip`` expansion the stopping rule and horizon co-vary with
    ``n`` (per-``n`` thresholds are what zip is for), so they are not
    grouping axes; under ``grid`` they are independent axes and distinct
    values measure distinct quantities — pooling them into one fit would
    average incompatible observables.
    """
    dropped = ("n", "seed") + (("stop", "max_rounds") if expansion == "zip" else ())
    params = {k: v for k, v in record.params.items() if k not in dropped}
    return json.dumps(params, sort_keys=True)


def _group_label(record: RunRecord) -> str:
    parts = [record.params["process"]["name"]]
    workload = record.params["workload"]
    if workload["name"] != "singletons":
        parts.append(workload["name"])
    if record.params["scheduler"] != "synchronous":
        parts.append(record.params["scheduler"])
    if record.params["adversary"] is not None:
        parts.append(record.params["adversary"]["name"])
    return " ".join(parts)


def study_report(store: StudyStore) -> Table:
    """The store's cells as one table (stats per cell, fits as footnotes)."""
    spec = store.spec
    total = spec.num_cells()
    broken = store.failed()
    timeouts = [r for r in broken if r.status == "timeout"]
    failed = [r for r in broken if r.status != "timeout"]
    ok_count = len(store) - len(broken)
    title = f"study {spec.name!r} — {ok_count}/{total} cells"
    notes = []
    if failed:
        notes.append(f"{len(failed)} failed")
    if timeouts:
        notes.append(f"{len(timeouts)} timed out")
    if notes:
        title += f" ({', '.join(notes)})"
    elif len(store) < total:
        title += " (incomplete)"
    table = Table(
        title=title,
        columns=[
            "cell", "process", "n", "axes", "unit", "runs", "stopped",
            "mean", "sem", "median", "max", "backend",
        ],
    )
    groups: "dict[str, list[RunRecord]]" = {}
    for record in store.records():
        params = record.params
        if not record.ok:
            # Broken cells report their outcome, not statistics, and are
            # excluded from fit groups (no data to pool).
            table.add_row(
                record.index,
                params["process"]["name"],
                params["n"],
                describe_axes(params) or "-",
                "-", 0, 0, "-", "-", "-", "-",
                record.status,
            )
            continue
        summary = record.summary()
        backend = record.resolved_backend
        if record.degraded_from:
            backend += "*"
        table.add_row(
            record.index,
            params["process"]["name"],
            params["n"],
            describe_axes(params) or "-",
            record.unit,
            int(record.times.size),
            int(record.stopped.sum()),
            summary.mean,
            summary.sem,
            summary.median,
            summary.maximum,
            backend,
        )
        groups.setdefault(_group_key(record, spec.expansion), []).append(record)
    for records in groups.values():
        by_n: "dict[int, list[float]]" = {}
        for record in records:
            by_n.setdefault(int(record.params["n"]), []).append(
                float(record.times.mean())
            )
        if len(by_n) < 3:
            continue
        ns = np.asarray(sorted(by_n), dtype=float)
        means = np.asarray([np.mean(by_n[int(n)]) for n in ns])
        fit = fit_power_law(ns, means)
        table.add_footnote(f"fit [{_group_label(records[0])}]: {fit.summary()}")
    for record in store.records():
        if not record.ok or not record.degraded_from:
            continue
        table.add_footnote(
            f"DEGRADED cell {record.index}: ran on {record.resolved_backend} "
            f"after {record.degraded_from} failed transiently "
            "(results bit-for-bit by the per-replica rng contract)"
        )
    for record in broken:
        error = record.error or {}
        walls = error.get("attempt_walls_s")
        wall_note = (
            " (" + ", ".join(f"{w:.2f}s" for w in walls) + " per attempt)"
            if walls
            else ""
        )
        label = "TIMEOUT" if record.status == "timeout" else "FAILED"
        detail = (
            f"exceeded deadline_s={error.get('deadline_s')}"
            if record.status == "timeout"
            else f"{error.get('type', 'Error')}: {error.get('message', '')}"
        )
        table.add_footnote(
            f"{label} cell {record.index} [{describe_axes(record.params) or '-'}] "
            f"after {error.get('attempts', '?')} attempt(s){wall_note}: "
            f"{detail} (resume the study to retry)"
        )
    if store.salvage:
        table.add_footnote(
            f"SALVAGED journal {store.salvage['journal']}: "
            f"{store.salvage['records_salvaged']} record(s) recovered, "
            f"{store.salvage['bytes_discarded']} torn byte(s) discarded"
        )
    table.add_footnote(
        f"spec {store.spec_hash} · seed {spec.seed} · R={spec.repetitions} "
        f"per cell · repro {store.package_version} · "
        f"wall {sum(store.column('wall_time_s')):.2f}s"
    )
    return table
