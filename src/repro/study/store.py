"""The columnar RunRecord store: study results with full provenance.

Every executed cell lands here as one :class:`RunRecord`; the store
serialises to plain JSON in *columnar* layout (one parallel array per
field) so downstream tooling can slice columns without reassembling
objects.  Provenance travels with the data: the spec itself and its
content hash, the per-cell seed entropy, the backend the runtime's cost
model actually resolved, wall time, and the package version — which is
what makes ``run_study(spec, resume=...)`` able to *prove* a resumed
store completes the same study rather than guessing from file names.

The format is schema-versioned like the sweep JSON
(:mod:`repro.experiments.persistence`): readers accept the current
version (and upgrade version-1 files in memory) and reject unknown
future versions with a clear error.  Version 2 added the failure
bookkeeping columns: every record carries a ``status`` (``"ok"`` or
``"failed"``) and, when failed, an ``error`` table with the exception
type, message, traceback and attempt count — the substrate of the
failure-isolating runner (:func:`repro.study.runner.run_study`).
A truncated or hand-mangled store file surfaces as
:class:`StoreCorruptError` naming the file, never as a bare JSON
traceback.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..engine.batch import BatchSummary, summarize
from .spec import StudySpec, spec_hash

__all__ = [
    "STORE_FORMAT_VERSION",
    "RunRecord",
    "StoreCorruptError",
    "StudyStore",
    "load_study_store",
]

STORE_FORMAT_VERSION = 2

#: Formats this build can read (older versions upgrade in memory).
_READABLE_VERSIONS = (1, 2)

#: Columnar layout: field name → JSON encoder over the in-memory value.
_COLUMNS = (
    "cell_id",
    "index",
    "seed",
    "params",
    "resolved_backend",
    "unit",
    "times",
    "stopped",
    "wall_time_s",
    "trajectory",
    "extras",
    "status",
    "error",
)


class StoreCorruptError(ValueError):
    """A store file exists but cannot be decoded (truncated or mangled).

    Distinct from legitimate refusals (wrong spec hash, future format
    version): this error means the *file itself* is damaged — typically a
    checkpoint truncated by a hard kill — and names the offending path so
    the user can remove or restore it.
    """


@dataclass
class RunRecord:
    """Outcome and provenance of one executed study cell."""

    cell_id: str
    index: int
    seed: int
    params: dict = field(repr=False)
    #: The backend :func:`repro.engine.runtime.resolve_backend` chose.
    resolved_backend: str
    #: Measurement unit: synchronous ``rounds`` or asynchronous ``ticks``.
    unit: str
    #: ``(R,)`` per-replica first-passage times.
    times: np.ndarray = field(repr=False)
    #: ``(R,)`` whether the cell's criterion fired per replica.
    stopped: np.ndarray = field(repr=False)
    wall_time_s: float = 0.0
    #: Recorded per-round metric series (``spec.record``), or ``None``.
    trajectory: "dict | None" = field(default=None, repr=False)
    #: Family-specific extra columns (e.g. §5 winner validity masks).
    extras: "dict | None" = field(default=None, repr=False)
    #: ``"ok"`` or ``"failed"`` (cell raised after every retry attempt).
    status: str = "ok"
    #: Failure detail for ``status="failed"``: ``{"type", "message",
    #: "traceback", "attempts"}``; ``None`` for successful cells.
    error: "dict | None" = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> BatchSummary:
        return summarize(self.times)

    def same_results(self, other: "RunRecord") -> bool:
        """Bit-for-bit result equality, ignoring wall time.

        Failure *outcomes* must match (status), but the error detail —
        tracebacks carry memory addresses and line numbers — is
        execution-environment noise, not a result.
        """
        return (
            self.cell_id == other.cell_id
            and self.index == other.index
            and self.seed == other.seed
            and self.status == other.status
            and self.resolved_backend == other.resolved_backend
            and self.unit == other.unit
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.stopped, other.stopped)
            and _jsonish_equal(self.trajectory, other.trajectory)
            and _jsonish_equal(self.extras, other.extras)
        )


def _jsonish_equal(a, b) -> bool:
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


class StudyStore:
    """An append-only collection of :class:`RunRecord`\\ s for one spec."""

    def __init__(self, spec: StudySpec, package_version: "str | None" = None):
        from .. import __version__

        self.spec = spec
        self.spec_hash = spec_hash(spec)
        self.package_version = package_version or __version__
        self._records: "list[RunRecord]" = []
        self._by_id: "dict[str, RunRecord]" = {}

    # -- collection behaviour ---------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self.records())

    def records(self) -> "list[RunRecord]":
        """Records sorted by cell index (whatever order they completed in)."""
        return sorted(self._records, key=lambda r: r.index)

    def completed_ids(self) -> "frozenset[str]":
        return frozenset(self._by_id)

    def get(self, cell_id: str) -> "RunRecord | None":
        return self._by_id.get(cell_id)

    def add(self, record: RunRecord) -> None:
        existing = self._by_id.get(record.cell_id)
        if existing is not None:
            if existing.ok:
                raise ValueError(f"cell {record.cell_id} is already recorded")
            # A failed record is a placeholder: a retry (resume) replaces
            # it in place, keeping one record per cell.
            self._records[self._records.index(existing)] = record
            self._by_id[record.cell_id] = record
            return
        self._records.append(record)
        self._by_id[record.cell_id] = record

    def failed(self) -> "list[RunRecord]":
        """The failed records, in cell-index order."""
        return [record for record in self.records() if not record.ok]

    def is_complete(self) -> bool:
        """Does the store cover every cell the spec expands to, successfully?"""
        from .compile import compile_study

        return all(
            cell.cell_id in self._by_id and self._by_id[cell.cell_id].ok
            for cell in compile_study(self.spec)
        )

    def column(self, name: str) -> list:
        """One column across all records, in cell-index order."""
        if name not in _COLUMNS:
            raise KeyError(f"unknown column {name!r}; have {_COLUMNS}")
        return [getattr(record, name) for record in self.records()]

    def results_equal(self, other: "StudyStore") -> bool:
        """Bit-for-bit equality of specs and results (wall times ignored).

        This is the resume contract: an interrupted-then-resumed run must
        satisfy ``resumed.results_equal(uninterrupted)`` exactly.
        """
        if self.spec_hash != other.spec_hash or len(self) != len(other):
            return False
        return all(
            a.same_results(b) for a, b in zip(self.records(), other.records())
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        records = self.records()
        return {
            "format_version": STORE_FORMAT_VERSION,
            "kind": "repro-study-store",
            "spec_hash": self.spec_hash,
            "package_version": self.package_version,
            "spec": self.spec.to_dict(),
            "num_records": len(records),
            "columns": {
                "cell_id": [r.cell_id for r in records],
                "index": [int(r.index) for r in records],
                "seed": [int(r.seed) for r in records],
                "params": [r.params for r in records],
                "resolved_backend": [r.resolved_backend for r in records],
                "unit": [r.unit for r in records],
                "times": [[int(v) for v in r.times] for r in records],
                "stopped": [[bool(v) for v in r.stopped] for r in records],
                "wall_time_s": [float(r.wall_time_s) for r in records],
                "trajectory": [r.trajectory for r in records],
                "extras": [r.extras for r in records],
                "status": [r.status for r in records],
                "error": [r.error for r in records],
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StudyStore":
        version = payload.get("format_version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported study-store format version {version!r}; this "
                f"build reads versions {_READABLE_VERSIONS} (a newer repro "
                "probably wrote the file — upgrade to read it)"
            )
        if payload.get("kind") != "repro-study-store":
            raise ValueError(
                f"not a study store payload (kind={payload.get('kind')!r})"
            )
        spec = StudySpec.from_dict(payload["spec"])
        store = cls(spec, package_version=payload.get("package_version"))
        recorded_hash = payload.get("spec_hash")
        if recorded_hash != store.spec_hash:
            raise ValueError(
                f"store spec_hash {recorded_hash!r} does not match its own "
                f"spec ({store.spec_hash!r}); the file was edited inconsistently"
            )
        columns = payload["columns"]
        count = len(columns["cell_id"])
        # Version-1 files predate the failure columns: upgrade in memory
        # (every recorded cell was by definition a success).
        statuses = columns.get("status", ["ok"] * count)
        errors = columns.get("error", [None] * count)
        for i in range(count):
            store.add(
                RunRecord(
                    cell_id=columns["cell_id"][i],
                    index=int(columns["index"][i]),
                    seed=int(columns["seed"][i]),
                    params=columns["params"][i],
                    resolved_backend=columns["resolved_backend"][i],
                    unit=columns["unit"][i],
                    times=np.asarray(columns["times"][i], dtype=np.int64),
                    stopped=np.asarray(columns["stopped"][i], dtype=bool),
                    wall_time_s=float(columns["wall_time_s"][i]),
                    trajectory=columns["trajectory"][i],
                    extras=columns["extras"][i],
                    status=str(statuses[i]),
                    error=errors[i],
                )
            )
        return store

    def save(self, path: str) -> None:
        """Write the store to ``path`` as JSON (atomically)."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)


def load_study_store(path: str) -> StudyStore:
    """Read a store previously written by :meth:`StudyStore.save`.

    A file that exists but cannot be decoded — truncated JSON from a
    hard kill, or a hand-edit that dropped a column — raises
    :class:`StoreCorruptError` naming the path.  Legitimate refusals
    (future format version, spec-hash mismatch) stay plain
    ``ValueError``\\ s: the file is intact, the request is wrong.
    """
    with open(path, encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as exc:
            raise StoreCorruptError(
                f"study store {path} is not valid JSON ({exc}); the file is "
                "corrupt — likely a checkpoint truncated by a hard kill. "
                "Remove it (or restore a backup) and re-run the study."
            ) from exc
    try:
        return StudyStore.from_dict(payload)
    except (KeyError, TypeError, IndexError) as exc:
        raise StoreCorruptError(
            f"study store {path} decodes as JSON but is structurally "
            f"damaged ({type(exc).__name__}: {exc}); remove it (or restore "
            "a backup) and re-run the study."
        ) from exc
