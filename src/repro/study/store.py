"""The columnar RunRecord store: study results with full provenance.

Every executed cell lands here as one :class:`RunRecord`; the store
serialises to plain JSON in *columnar* layout (one parallel array per
field) so downstream tooling can slice columns without reassembling
objects.  Provenance travels with the data: the spec itself and its
content hash, the per-cell seed entropy, the backend the runtime's cost
model actually resolved (and, for cells that survived a pool failure by
degrading, the backend originally resolved in ``degraded_from``), wall
time, and the package version — which is what makes
``run_study(spec, resume=...)`` able to *prove* a resumed store
completes the same study rather than guessing from file names.

The format is schema-versioned like the sweep JSON
(:mod:`repro.experiments.persistence`): readers accept the current
version (and upgrade version-1/2/3 files in memory) and reject unknown
future versions with a clear error.  Version 2 added the failure
bookkeeping columns (``status`` / ``error``); version 3 added
``degraded_from`` and the ``"timeout"`` status; version 4 adds
``cache_hit`` (the record was replayed from the content-addressed
result cache, :mod:`repro.study.cache`).  A truncated or
hand-mangled store file surfaces as :class:`StoreCorruptError` naming
the file, never as a bare JSON traceback.

Crash safety: the journal
-------------------------

Rewriting the whole JSON after every cell is O(cells²) bytes and leaves
a window where a hard kill tears the only copy.  The runner therefore
checkpoints through an append-only sidecar journal
(``<store>.journal.jsonl``): one CRC-guarded, fsync'd JSON line per
record, preceded by a self-contained header (spec + hash), compacted
into the columnar JSON on completion via :meth:`StudyStore.compact`.
``kill -9`` at any byte offset loses at most the record in flight:
:func:`load_study_store` replays the journal's valid prefix on top of
whatever base JSON exists, *salvages* a torn tail (reported via
:attr:`StudyStore.salvage`, never raised), and resume re-runs only the
cells the tear actually lost.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..engine.batch import BatchSummary, summarize
from .spec import StudySpec, spec_hash

__all__ = [
    "STORE_FORMAT_VERSION",
    "JournalReader",
    "RunRecord",
    "StoreCorruptError",
    "StudyStore",
    "journal_path",
    "load_study_store",
]

STORE_FORMAT_VERSION = 4

#: Formats this build can read (older versions upgrade in memory).
_READABLE_VERSIONS = (1, 2, 3, 4)

_JOURNAL_KIND = "repro-study-journal"

#: Columnar layout: the record fields, in serialisation order.
_COLUMNS = (
    "cell_id",
    "index",
    "seed",
    "params",
    "resolved_backend",
    "unit",
    "times",
    "stopped",
    "wall_time_s",
    "trajectory",
    "extras",
    "status",
    "error",
    "degraded_from",
    "cache_hit",
)

#: Statuses a record may carry; everything but ``"ok"`` is re-attempted
#: on resume.
_STATUSES = ("ok", "failed", "timeout")


class StoreCorruptError(ValueError):
    """A store file exists but cannot be decoded (truncated or mangled).

    Distinct from legitimate refusals (wrong spec hash, future format
    version): this error means the *file itself* is damaged — typically a
    checkpoint truncated by a hard kill — and names the offending path so
    the user can remove or restore it.  A torn journal *tail* is never
    this error: the valid prefix is salvaged and the damage reported via
    :attr:`StudyStore.salvage`.
    """


@dataclass
class RunRecord:
    """Outcome and provenance of one executed study cell."""

    cell_id: str
    index: int
    seed: int
    params: dict = field(repr=False)
    #: The backend that actually ran (after any degradation).
    resolved_backend: str
    #: Measurement unit: synchronous ``rounds`` or asynchronous ``ticks``.
    unit: str
    #: ``(R,)`` per-replica first-passage times.
    times: np.ndarray = field(repr=False)
    #: ``(R,)`` whether the cell's criterion fired per replica.
    stopped: np.ndarray = field(repr=False)
    wall_time_s: float = 0.0
    #: Recorded per-round metric series (``spec.record``), or ``None``.
    trajectory: "dict | None" = field(default=None, repr=False)
    #: Family-specific extra columns (e.g. §5 winner validity masks).
    extras: "dict | None" = field(default=None, repr=False)
    #: ``"ok"``, ``"failed"`` (raised after every attempt), or
    #: ``"timeout"`` (killed by the execution policy's deadline).
    status: str = "ok"
    #: Failure detail for non-ok records: ``{"type", "message",
    #: "traceback", "attempts", "attempt_walls_s"}``; ``None`` when ok.
    error: "dict | None" = field(default=None, repr=False)
    #: The backend originally resolved, when transient failures forced
    #: the runner down the degradation ladder; ``None`` otherwise.
    degraded_from: "str | None" = None
    #: The record was replayed from the content-addressed result cache
    #: instead of being simulated (:mod:`repro.study.cache`).
    cache_hit: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def summary(self) -> BatchSummary:
        return summarize(self.times)

    def same_results(self, other: "RunRecord") -> bool:
        """Bit-for-bit result equality, ignoring wall time.

        Failure *outcomes* must match (status), but the error detail —
        tracebacks carry memory addresses and line numbers — is
        execution-environment noise, not a result.  ``degraded_from`` is
        likewise environment history (which pool happened to die), not a
        result: the per-replica rng contract makes the degraded samples
        identical, and this predicate is what proves it.  ``cache_hit``
        is ignored for the same reason — where a result came from is not
        what it is.
        """
        return (
            self.cell_id == other.cell_id
            and self.index == other.index
            and self.seed == other.seed
            and self.status == other.status
            and self.resolved_backend == other.resolved_backend
            and self.unit == other.unit
            and np.array_equal(self.times, other.times)
            and np.array_equal(self.stopped, other.stopped)
            and _jsonish_equal(self.trajectory, other.trajectory)
            and _jsonish_equal(self.extras, other.extras)
        )


def _jsonish_equal(a, b) -> bool:
    return json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)


def _encode_record(record: RunRecord) -> dict:
    """One record as a plain-JSON row (shared by columns and journal)."""
    return {
        "cell_id": record.cell_id,
        "index": int(record.index),
        "seed": int(record.seed),
        "params": record.params,
        "resolved_backend": record.resolved_backend,
        "unit": record.unit,
        "times": [int(v) for v in record.times],
        "stopped": [bool(v) for v in record.stopped],
        "wall_time_s": float(record.wall_time_s),
        "trajectory": record.trajectory,
        "extras": record.extras,
        "status": record.status,
        "error": record.error,
        "degraded_from": record.degraded_from,
        "cache_hit": bool(record.cache_hit),
    }


def _decode_record(row: Mapping) -> RunRecord:
    """Rebuild a record from :func:`_encode_record` output."""
    status = str(row.get("status", "ok"))
    if status not in _STATUSES:
        raise ValueError(f"unknown record status {status!r}; valid: {_STATUSES}")
    return RunRecord(
        cell_id=row["cell_id"],
        index=int(row["index"]),
        seed=int(row["seed"]),
        params=row["params"],
        resolved_backend=row["resolved_backend"],
        unit=row["unit"],
        times=np.asarray(row["times"], dtype=np.int64),
        stopped=np.asarray(row["stopped"], dtype=bool),
        wall_time_s=float(row["wall_time_s"]),
        trajectory=row.get("trajectory"),
        extras=row.get("extras"),
        status=status,
        error=row.get("error"),
        degraded_from=row.get("degraded_from"),
        cache_hit=bool(row.get("cache_hit", False)),
    )


def journal_path(path: str) -> str:
    """The sidecar journal's path for a store at ``path``."""
    return f"{path}.journal.jsonl"


def _journal_line(data: dict) -> bytes:
    """One CRC-guarded journal line: the CRC covers the canonical data."""
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    crc = zlib.crc32(canonical.encode("utf-8"))
    return (
        json.dumps({"crc": crc, "data": data}, sort_keys=True,
                   separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _parse_journal_line(raw: bytes) -> "dict | None":
    """Decode one journal line; ``None`` when torn or CRC-mismatched."""
    try:
        wrapper = json.loads(raw.decode("utf-8"))
        crc = wrapper["crc"]
        data = wrapper["data"]
    except (UnicodeDecodeError, json.JSONDecodeError, KeyError, TypeError):
        return None
    canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(canonical.encode("utf-8")) != crc:
        return None
    return data


def _scan_journal(path: str) -> "tuple[dict | None, list[dict], int, int]":
    """Replay a journal file's valid prefix.

    Returns ``(header, record_rows, valid_bytes, torn_bytes)`` where
    ``valid_bytes`` is the byte length of the intact prefix (safe to
    truncate to before appending) and ``torn_bytes`` how much damaged
    tail follows it.  A torn line stops the scan — everything after a
    tear is unreachable garbage by construction (appends are
    sequential), so salvaging the prefix is lossless up to the record in
    flight when the writer died.
    """
    header = None
    rows: "list[dict]" = []
    valid_bytes = 0
    with open(path, "rb") as handle:
        raw = handle.read()
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # unterminated final line: torn mid-write
        line = raw[offset : newline + 1]
        data = _parse_journal_line(line)
        if data is None:
            break
        if header is None:
            if not isinstance(data, dict) or data.get("kind") != _JOURNAL_KIND:
                break  # not a journal header: treat the file as torn
            header = data
        else:
            rows.append(data)
        offset = newline + 1
        valid_bytes = offset
    return header, rows, valid_bytes, len(raw) - valid_bytes


class JournalReader:
    """Incrementally tail a store journal's valid prefix, while it grows.

    The live counterpart of :func:`_scan_journal`: where the scan reads a
    dead journal once, the reader is *re-pollable* — it remembers the
    byte offset of the last complete, CRC-valid line and each
    :meth:`poll` decodes only what landed since.  An incomplete or
    CRC-failing tail line is treated as *in flight* (the writer may be
    mid-``write``), so the offset never advances past it; the next poll
    retries from the same place.  That is the consistency contract the
    daemon's ``/events`` endpoint leans on: a reader attaching mid-run
    replays the journal's valid prefix first, then streams records as
    their fsync'd lines complete, and never observes a torn record.

    The reader tolerates the journal's whole lifecycle: a file that does
    not exist yet (``poll`` returns nothing), a crashed run's torn tail
    being truncated by ``begin_journal`` on resume (only damaged bytes
    vanish, the valid offset stays valid), and compaction unlinking the
    file (subsequent polls return nothing; a *fresh* journal appearing
    later — a different inode, or shorter than the old offset — resets
    the reader).
    """

    def __init__(self, path: str):
        self.path = path
        self.header: "dict | None" = None
        self._offset = 0
        self._identity: "tuple[int, int] | None" = None

    def poll(self) -> "list[RunRecord]":
        """Decode the records whose journal lines completed since last poll."""
        try:
            with open(self.path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                identity = (stat.st_dev, stat.st_ino)
                if identity != self._identity or stat.st_size < self._offset:
                    # A replaced or shorter file is a *new* journal
                    # (compact + fresh run): start over, header and all.
                    self._offset = 0
                    self.header = None
                self._identity = identity
                handle.seek(self._offset)
                raw = handle.read()
        except OSError:
            return []
        records: "list[RunRecord]" = []
        scanned = 0
        while scanned < len(raw):
            newline = raw.find(b"\n", scanned)
            if newline < 0:
                break  # unterminated: the record in flight, not ours yet
            data = _parse_journal_line(raw[scanned : newline + 1])
            if data is None:
                break  # CRC mismatch: mid-write (or torn) — retry later
            if self.header is None:
                if not isinstance(data, dict) or data.get("kind") != _JOURNAL_KIND:
                    break  # not a journal header: refuse to tail garbage
                self.header = data
            else:
                try:
                    records.append(_decode_record(data["record"]))
                except (KeyError, TypeError, ValueError, IndexError):
                    break  # cannot happen via our writer; stop at damage
            scanned = newline + 1
        self._offset += scanned
        return records


class StudyStore:
    """An append-only collection of :class:`RunRecord`\\ s for one spec."""

    def __init__(self, spec: StudySpec, package_version: "str | None" = None):
        from .. import __version__

        self.spec = spec
        self.spec_hash = spec_hash(spec)
        self.package_version = package_version or __version__
        self._records: "list[RunRecord]" = []
        self._by_id: "dict[str, RunRecord]" = {}
        self._journal = None
        #: Set by :func:`load_study_store` when a torn journal tail was
        #: salvaged: ``{"journal", "records_salvaged", "bytes_discarded"}``.
        self.salvage: "dict | None" = None
        #: Set by :func:`~repro.study.runner.run_study` when the run was
        #: stopped by a graceful interrupt (SIGTERM / SIGINT / a
        #: ``stop_event``) before covering every cell; the store is
        #: checkpointed and ``resume`` completes it bit-for-bit.
        self.interrupted: bool = False

    # -- collection behaviour ---------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self.records())

    def records(self) -> "list[RunRecord]":
        """Records sorted by cell index (whatever order they completed in)."""
        return sorted(self._records, key=lambda r: r.index)

    def completed_ids(self) -> "frozenset[str]":
        return frozenset(self._by_id)

    def get(self, cell_id: str) -> "RunRecord | None":
        return self._by_id.get(cell_id)

    def add(self, record: RunRecord) -> None:
        existing = self._by_id.get(record.cell_id)
        if existing is not None:
            if existing.ok:
                raise ValueError(f"cell {record.cell_id} is already recorded")
            # A non-ok record is a placeholder: a retry (resume) replaces
            # it in place, keeping one record per cell.
            self._records[self._records.index(existing)] = record
            self._by_id[record.cell_id] = record
            return
        self._records.append(record)
        self._by_id[record.cell_id] = record

    def _absorb(self, record: RunRecord) -> None:
        """Journal replay upsert: the journal's view of a cell wins.

        A compaction interrupted between ``save`` and the journal unlink
        leaves the same record in both files; replaying must converge,
        not raise "already recorded".
        """
        existing = self._by_id.get(record.cell_id)
        if existing is None:
            self._records.append(record)
            self._by_id[record.cell_id] = record
            return
        self._records[self._records.index(existing)] = record
        self._by_id[record.cell_id] = record

    def failed(self) -> "list[RunRecord]":
        """The non-ok (failed / timed-out) records, in cell-index order."""
        return [record for record in self.records() if not record.ok]

    def timeouts(self) -> "list[RunRecord]":
        """The deadline-killed records, in cell-index order."""
        return [r for r in self.records() if r.status == "timeout"]

    def is_complete(self) -> bool:
        """Does the store cover every cell the spec expands to, successfully?"""
        from .compile import compile_study

        return all(
            cell.cell_id in self._by_id and self._by_id[cell.cell_id].ok
            for cell in compile_study(self.spec)
        )

    def column(self, name: str) -> list:
        """One column across all records, in cell-index order."""
        if name not in _COLUMNS:
            raise KeyError(f"unknown column {name!r}; have {_COLUMNS}")
        return [getattr(record, name) for record in self.records()]

    def results_equal(self, other: "StudyStore") -> bool:
        """Bit-for-bit equality of specs and results (wall times ignored).

        This is the resume contract: an interrupted-then-resumed run must
        satisfy ``resumed.results_equal(uninterrupted)`` exactly.
        """
        if self.spec_hash != other.spec_hash or len(self) != len(other):
            return False
        return all(
            a.same_results(b) for a, b in zip(self.records(), other.records())
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        rows = [_encode_record(record) for record in self.records()]
        return {
            "format_version": STORE_FORMAT_VERSION,
            "kind": "repro-study-store",
            "spec_hash": self.spec_hash,
            "package_version": self.package_version,
            "spec": self.spec.to_dict(),
            "num_records": len(rows),
            "columns": {
                name: [row[name] for row in rows] for name in _COLUMNS
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StudyStore":
        version = payload.get("format_version")
        if version not in _READABLE_VERSIONS:
            raise ValueError(
                f"unsupported study-store format version {version!r}; this "
                f"build reads versions {_READABLE_VERSIONS} (a newer repro "
                "probably wrote the file — upgrade to read it)"
            )
        if payload.get("kind") != "repro-study-store":
            raise ValueError(
                f"not a study store payload (kind={payload.get('kind')!r})"
            )
        spec = StudySpec.from_dict(payload["spec"])
        store = cls(spec, package_version=payload.get("package_version"))
        recorded_hash = payload.get("spec_hash")
        if recorded_hash != store.spec_hash:
            raise ValueError(
                f"store spec_hash {recorded_hash!r} does not match its own "
                f"spec ({store.spec_hash!r}); the file was edited inconsistently"
            )
        columns = payload["columns"]
        count = len(columns["cell_id"])
        # Version-1 files predate the failure columns, version-2 files
        # the degradation column, version-3 files the cache column:
        # upgrade in memory.
        defaults = {
            "status": ["ok"] * count,
            "error": [None] * count,
            "degraded_from": [None] * count,
            "cache_hit": [False] * count,
        }
        for i in range(count):
            row = {
                name: columns.get(name, defaults.get(name, []))[i]
                for name in _COLUMNS
            }
            store.add(_decode_record(row))
        return store

    def save(self, path: str) -> None:
        """Write the store to ``path`` as JSON (atomically)."""
        tmp_path = f"{path}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp_path, path)

    # -- crash-safe checkpointing (the journal) ----------------------------

    def _journal_header(self) -> dict:
        return {
            "kind": _JOURNAL_KIND,
            "format_version": STORE_FORMAT_VERSION,
            "spec_hash": self.spec_hash,
            "package_version": self.package_version,
            "spec": self.spec.to_dict(),
        }

    def begin_journal(self, path: str) -> None:
        """Open (or adopt) the sidecar journal for a store at ``path``.

        A pre-existing journal — a crashed run's — is truncated to its
        valid byte prefix first, so new appends never glue onto a torn
        half-line (which would lose both records).  A fresh journal gets
        a self-contained header line (spec + hash), making the journal
        alone sufficient to rebuild the store if the kill lands before
        the first compaction.
        """
        jpath = journal_path(path)
        if os.path.exists(jpath):
            header, _rows, valid_bytes, torn = _scan_journal(jpath)
            if header is not None and header.get("spec_hash") != self.spec_hash:
                raise ValueError(
                    f"journal {jpath} belongs to spec_hash "
                    f"{header.get('spec_hash')!r}, not {self.spec_hash!r}; "
                    "remove it to start over"
                )
            with open(jpath, "r+b") as handle:
                if torn:
                    handle.truncate(valid_bytes)
            self._journal = open(jpath, "ab")
            if header is None:
                # Nothing valid survived (torn header): start over.
                self._journal.write(_journal_line(self._journal_header()))
                self._flush_journal()
        else:
            self._journal = open(jpath, "ab")
            self._journal.write(_journal_line(self._journal_header()))
            self._flush_journal()

    def _flush_journal(self) -> None:
        self._journal.flush()
        os.fsync(self._journal.fileno())

    def checkpoint(self, record: RunRecord) -> None:
        """Append one record to the journal, fsync'd (O(record) bytes).

        This is the per-cell durability point: after it returns, a
        ``kill -9`` cannot lose the record.
        """
        if self._journal is None:
            raise RuntimeError("checkpoint() requires begin_journal() first")
        self._journal.write(_journal_line({"record": _encode_record(record)}))
        self._flush_journal()

    def compact(self, path: str) -> None:
        """Fold the journal into the columnar JSON and remove it.

        Crash-window safe: ``save`` lands atomically *before* the unlink,
        so a kill between the two leaves both files agreeing — replay
        converges via :meth:`_absorb`.
        """
        self.save(path)
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        jpath = journal_path(path)
        if os.path.exists(jpath):
            os.remove(jpath)


def load_study_store(path: str) -> StudyStore:
    """Read a store written by :meth:`StudyStore.save` / the journal.

    Loads the base JSON (when present), then replays the sidecar
    journal's valid prefix on top — so a run killed before compaction
    loses at most the record in flight.  A torn journal tail is
    *salvaged*: the intact records load and the damage is reported via
    :attr:`StudyStore.salvage`, never raised.  A base file that exists
    but cannot be decoded — truncated JSON, a hand-edit that dropped a
    column — raises :class:`StoreCorruptError` naming the path.
    Legitimate refusals (future format version, spec-hash mismatch) stay
    plain ``ValueError``\\ s: the file is intact, the request is wrong.
    """
    jpath = journal_path(path)
    store = None
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise StoreCorruptError(
                    f"study store {path} is not valid JSON ({exc}); the file "
                    "is corrupt — likely a checkpoint truncated by a hard "
                    "kill. Remove it (or restore a backup) and re-run the "
                    "study."
                ) from exc
        try:
            store = StudyStore.from_dict(payload)
        except (KeyError, TypeError, IndexError) as exc:
            raise StoreCorruptError(
                f"study store {path} decodes as JSON but is structurally "
                f"damaged ({type(exc).__name__}: {exc}); remove it (or "
                "restore a backup) and re-run the study."
            ) from exc
    if not os.path.exists(jpath):
        if store is None:
            raise FileNotFoundError(path)
        return store
    header, rows, _valid_bytes, torn_bytes = _scan_journal(jpath)
    if header is None:
        # Even the header is torn: the journal carries nothing usable.
        if store is None:
            raise FileNotFoundError(path)
        store.salvage = {
            "journal": jpath,
            "records_salvaged": 0,
            "bytes_discarded": torn_bytes,
        }
        return store
    if store is None:
        try:
            spec = StudySpec.from_dict(header["spec"])
        except (KeyError, TypeError, ValueError) as exc:
            raise StoreCorruptError(
                f"journal {jpath} has an undecodable spec header "
                f"({type(exc).__name__}: {exc}); remove it and re-run."
            ) from exc
        store = StudyStore(spec, package_version=header.get("package_version"))
    if header.get("spec_hash") != store.spec_hash:
        raise ValueError(
            f"journal {jpath} belongs to spec_hash "
            f"{header.get('spec_hash')!r} but the store at {path} hashes to "
            f"{store.spec_hash!r}; refusing to mix two studies"
        )
    salvaged = 0
    for row in rows:
        try:
            record = _decode_record(row["record"])
        except (KeyError, TypeError, ValueError, IndexError):
            # A structurally-broken (but CRC-valid) row cannot happen via
            # our writer; treat it like a tear at this point.
            torn_bytes += 1
            break
        existing = store.get(record.cell_id)
        if existing is not None and existing.ok and existing.same_results(record):
            continue  # compaction-crash duplicate
        store._absorb(record)
        salvaged += 1
    if torn_bytes:
        store.salvage = {
            "journal": jpath,
            "records_salvaged": salvaged,
            "bytes_discarded": torn_bytes,
        }
    return store
