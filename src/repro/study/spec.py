"""The :class:`StudySpec` dataclass — the declarative experiment artifact.

A spec declares *what to measure* over *which axes* without any
imperative plumbing: every field is a plain value (string, int, float,
bool, list, dict), so a spec round-trips losslessly through TOML or JSON
and can be saved, diffed, hashed and shared.  Construction normalises
every axis value to one canonical form (shorthands like a bare process
name expand to ``{"name": ..., "kwargs": {}}``), which is what makes the
round-trip contract an equality: ``StudySpec.from_dict(spec.to_dict())
== spec`` for every valid spec.

Axes and expansion
------------------

``axes`` maps axis names (:data:`AXIS_NAMES`) to lists of values; a
scalar is shorthand for a one-element list.  ``expansion`` chooses how
the lists combine into cells:

* ``"grid"`` — the cartesian product, iterated in :data:`AXIS_NAMES`
  order with the later axes varying fastest;
* ``"zip"`` — parallel iteration: every multi-valued axis must have the
  same length and one-element axes broadcast (the way to express
  per-``n`` stopping thresholds or horizons).

Canonical axis value forms (what the shorthands normalise to):

===========  ==============================================================
axis         canonical value
===========  ==============================================================
process      ``{"name": <registry key>, "kwargs": {...}}``
workload     ``{"name": <WORKLOADS key>, "kwargs": {...}}``
n            ``int``
scheduler    ``"synchronous"`` | ``"asynchronous"``
adversary    ``None`` | ``{"name": ..., "budget": int | None, "kwargs": {}}``
             (``budget None`` = the [BCN+16] recommended scale per cell)
stop         ``"consensus"`` | ``"colors<=K"`` | ``"max-support>K"`` |
             ``"bias>=K"``
max_rounds   ``None`` | ``int`` (scheduler units: rounds or ticks)
backend      a runtime registry name or resolution alias
rng_mode     ``"batched"`` | ``"per-replica"``
faults       ``None`` | ``{"crash": p, "recover": q, "loss": r,
             "start": s, "stop": t}`` (default-valued keys elided; also
             accepts the CLI string form ``"crash:p=0.01,recover=0.1"``)
===========  ==============================================================

``None`` appears in TOML/JSON as the string ``"none"`` (TOML has no
null); the canonical in-memory form is the Python ``None``.

Beyond the axes, a spec may carry three optional *supervision* tables,
all sharing the same contract — elided from :meth:`to_dict` when they
equal the defaults (so pre-existing ``spec_hash``\\ es survive) and
never entering cell params (so cell ids stay independent of them):

* ``[execution]`` — the declarative
  :class:`~repro.study.policy.ExecutionPolicy` (``deadline_s``,
  ``max_attempts``, ``backoff_s``, ``backoff_max_s``, ``jitter``,
  ``degrade``): how cells are supervised;
* ``[parallel]`` — the :mod:`~repro.study.scheduler` knobs
  (``workers``, ``max_inflight``): how cells are scheduled;
* ``[cache]`` — the :mod:`~repro.study.cache` knobs (``enabled``,
  ``dir``): where completed results may be replayed from.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

from ..engine.plan import RNG_MODES, SCHEDULERS
from ..faults import canonical_fault_value, encode_fault_value
from .cache import canonical_cache_value, encode_cache_value
from .policy import canonical_policy_value, encode_policy_value
from .scheduler import canonical_parallel_value, encode_parallel_value

__all__ = ["AXIS_NAMES", "REQUIRED_AXES", "StudySpec", "spec_hash"]

#: Every axis a spec may sweep, in grid-expansion (and cell-id) order.
#: ``faults`` is appended last so pre-fault specs keep their historical
#: grid order (and, via the to_dict default-elision rule, their hashes).
AXIS_NAMES = (
    "process",
    "workload",
    "n",
    "scheduler",
    "adversary",
    "stop",
    "max_rounds",
    "backend",
    "rng_mode",
    "faults",
)

#: Axes a spec must declare; the rest default to one-element lists.
REQUIRED_AXES = ("process", "n")

_AXIS_DEFAULTS = {
    "workload": [{"name": "singletons", "kwargs": {}}],
    "scheduler": ["synchronous"],
    "adversary": [None],
    "stop": ["consensus"],
    "max_rounds": [None],
    "backend": ["auto"],
    "rng_mode": ["per-replica"],
    "faults": [None],
}

_EXPANSIONS = ("grid", "zip")

_RECORD_AGGREGATES = (None, "mean")


def _check_kwargs(kwargs: Any, context: str) -> dict:
    if not isinstance(kwargs, Mapping):
        raise ValueError(f"{context}: kwargs must be a table, got {kwargs!r}")
    for key in kwargs:
        if not isinstance(key, str):
            raise ValueError(f"{context}: kwargs keys must be strings")
    return dict(kwargs)


def _normalize_named(value: Any, axis: str) -> dict:
    """``"name"`` or ``{"name": ..., "kwargs": {...}}`` → canonical dict."""
    if isinstance(value, str):
        return {"name": value, "kwargs": {}}
    if isinstance(value, Mapping):
        extra = set(value) - {"name", "kwargs"}
        if extra or "name" not in value:
            raise ValueError(
                f"axis {axis!r}: expected {{name, kwargs?}}, got {dict(value)!r}"
            )
        return {
            "name": str(value["name"]),
            "kwargs": _check_kwargs(value.get("kwargs", {}), f"axis {axis!r}"),
        }
    raise ValueError(f"axis {axis!r}: expected a name or table, got {value!r}")


def _normalize_adversary(value: Any) -> "dict | None":
    if value is None or value == "none":
        return None
    if isinstance(value, str):
        return {"name": value, "budget": None, "kwargs": {}}
    if isinstance(value, Mapping):
        extra = set(value) - {"name", "budget", "kwargs"}
        if extra or "name" not in value:
            raise ValueError(
                f"axis 'adversary': expected {{name, budget?, kwargs?}}, "
                f"got {dict(value)!r}"
            )
        budget = value.get("budget")
        if budget is not None:
            budget = int(budget)
            if budget < 1:
                raise ValueError("axis 'adversary': budget must be positive")
        return {
            "name": str(value["name"]),
            "budget": budget,
            "kwargs": _check_kwargs(value.get("kwargs", {}), "axis 'adversary'"),
        }
    raise ValueError(f"axis 'adversary': cannot normalise {value!r}")


def _normalize_optional_int(value: Any, axis: str) -> "int | None":
    if value is None or value == "none":
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"axis {axis!r}: expected an int or 'none', got {value!r}")
    if value < 1:
        raise ValueError(f"axis {axis!r}: must be positive, got {value}")
    return int(value)


def _normalize_axis_value(axis: str, value: Any) -> Any:
    if axis in ("process", "workload"):
        return _normalize_named(value, axis)
    if axis == "n":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ValueError(f"axis 'n': expected an int, got {value!r}")
        if value < 2:
            raise ValueError(f"axis 'n': need n >= 2, got {value}")
        return int(value)
    if axis == "scheduler":
        if value not in SCHEDULERS:
            raise ValueError(
                f"axis 'scheduler': {value!r} not in {SCHEDULERS}"
            )
        return str(value)
    if axis == "adversary":
        return _normalize_adversary(value)
    if axis == "stop":
        if not isinstance(value, str) or not value:
            raise ValueError(f"axis 'stop': expected a rule string, got {value!r}")
        return value
    if axis == "max_rounds":
        return _normalize_optional_int(value, axis)
    if axis == "backend":
        if not isinstance(value, str) or not value:
            raise ValueError(f"axis 'backend': expected a name, got {value!r}")
        return value
    if axis == "rng_mode":
        if value not in RNG_MODES:
            raise ValueError(f"axis 'rng_mode': {value!r} not in {RNG_MODES}")
        return str(value)
    if axis == "faults":
        try:
            return canonical_fault_value(value)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"axis 'faults': {exc}") from exc
    raise ValueError(f"unknown axis {axis!r}; valid axes: {AXIS_NAMES}")


def _normalize_axes(axes: Mapping) -> dict:
    unknown = set(axes) - set(AXIS_NAMES)
    if unknown:
        raise ValueError(
            f"unknown axes {sorted(unknown)}; valid axes: {list(AXIS_NAMES)}"
        )
    missing = [name for name in REQUIRED_AXES if name not in axes]
    if missing:
        raise ValueError(f"spec must declare the {missing} axes")
    normalized = {}
    for axis in AXIS_NAMES:
        if axis in axes:
            raw = axes[axis]
            values = list(raw) if isinstance(raw, (list, tuple)) else [raw]
        else:
            values = list(_AXIS_DEFAULTS[axis])
        if not values:
            raise ValueError(f"axis {axis!r} has no values")
        normalized[axis] = [_normalize_axis_value(axis, v) for v in values]
    return normalized


def _normalize_record(value: Any) -> "dict | None":
    """Canonical recorder request: which per-round metrics to keep."""
    if value is None or value == "none":
        return None
    from ..engine.metrics import METRICS

    if isinstance(value, (list, tuple)):
        value = {"metrics": list(value)}
    if not isinstance(value, Mapping):
        raise ValueError(f"record: expected a table or metric list, got {value!r}")
    extra = set(value) - {"metrics", "stride", "aggregate", "replica"}
    if extra:
        raise ValueError(f"record: unknown keys {sorted(extra)}")
    metrics = [str(m) for m in value.get("metrics", ())]
    if not metrics:
        raise ValueError("record: needs at least one metric name")
    unknown = [m for m in metrics if m not in METRICS]
    if unknown:
        raise ValueError(f"record: unknown metrics {unknown}; have {sorted(METRICS)}")
    aggregate = value.get("aggregate")
    if aggregate == "none":
        aggregate = None
    if aggregate not in _RECORD_AGGREGATES:
        raise ValueError(
            f"record: aggregate must be one of {_RECORD_AGGREGATES}, got {aggregate!r}"
        )
    return {
        "metrics": metrics,
        "stride": int(value.get("stride", 1)),
        "aggregate": aggregate,
        "replica": int(value.get("replica", 0)),
    }


@dataclass
class StudySpec:
    """One declarative experiment suite (see the module docstring).

    Scalar fields apply to every cell; ``axes`` holds the swept values.
    Instances normalise on construction, so two specs describing the
    same study compare equal whatever shorthands built them.
    """

    name: str
    axes: dict
    seed: int = 0
    repetitions: int = 5
    expansion: str = "grid"
    workers: "int | None" = None
    check_every: "int | None" = None
    stable_fraction: float = 0.95
    stable_rounds: int = 3
    raise_on_limit: bool = True
    record: "dict | None" = None
    description: str = ""
    #: Declarative execution policy (the ``[execution]`` TOML table);
    #: ``None`` = the all-defaults policy.  Supervision only — elided
    #: when default, never part of cell params or cell ids.
    execution: "dict | None" = None
    #: Declarative scheduling (the ``[parallel]`` TOML table:
    #: ``workers``, ``max_inflight``); ``None`` = sequential.  Same
    #: elision contract as ``execution``.
    parallel: "dict | None" = None
    #: Declarative result caching (the ``[cache]`` TOML table:
    #: ``enabled``, ``dir``); ``None`` = caching off.  Same elision
    #: contract as ``execution``.
    cache: "dict | None" = None

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError("spec needs a non-empty name")
        if self.expansion not in _EXPANSIONS:
            raise ValueError(
                f"unknown expansion {self.expansion!r}; pick one of {_EXPANSIONS}"
            )
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if self.repetitions < 1:
            raise ValueError("repetitions must be positive")
        if self.workers is not None and int(self.workers) < 1:
            raise ValueError("workers must be positive")
        if not 0.5 < self.stable_fraction <= 1.0:
            raise ValueError("stable_fraction must lie in (0.5, 1]")
        if self.stable_rounds < 1:
            raise ValueError("stable_rounds must be positive")
        self.axes = _normalize_axes(self.axes)
        self.record = _normalize_record(self.record)
        try:
            self.execution = canonical_policy_value(self.execution)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"execution: {exc}") from exc
        try:
            self.parallel = canonical_parallel_value(self.parallel)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"parallel: {exc}") from exc
        try:
            self.cache = canonical_cache_value(self.cache)
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"cache: {exc}") from exc
        if self.expansion == "zip":
            lengths = {len(v) for v in self.axes.values() if len(v) > 1}
            if len(lengths) > 1:
                raise ValueError(
                    "zip expansion needs every multi-valued axis to have the "
                    f"same length; got lengths {sorted(lengths)}"
                )

    # -- cell counting -----------------------------------------------------

    def num_cells(self) -> int:
        """How many cells the expansion rule produces."""
        if self.expansion == "zip":
            return max(len(v) for v in self.axes.values())
        product = 1
        for values in self.axes.values():
            product *= len(values)
        return product

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON/TOML-ready plain dict (``None`` encoded as ``"none"``)."""
        out: dict = {
            "name": self.name,
            "seed": int(self.seed),
            "repetitions": int(self.repetitions),
            "expansion": self.expansion,
            "stable_fraction": float(self.stable_fraction),
            "stable_rounds": int(self.stable_rounds),
            "raise_on_limit": bool(self.raise_on_limit),
        }
        if self.description:
            out["description"] = self.description
        if self.workers is not None:
            out["workers"] = int(self.workers)
        if self.check_every is not None:
            out["check_every"] = int(self.check_every)
        if self.record is not None:
            record = {"metrics": list(self.record["metrics"])}
            if self.record["stride"] != 1:
                record["stride"] = self.record["stride"]
            if self.record["aggregate"] is not None:
                record["aggregate"] = self.record["aggregate"]
            if self.record["replica"] != 0:
                record["replica"] = self.record["replica"]
            out["record"] = record
        encoded_execution = encode_policy_value(self.execution)
        if encoded_execution:
            # Elided when default, like the faults axis: adding the
            # policy table must not orphan pre-existing spec hashes.
            out["execution"] = encoded_execution
        encoded_parallel = encode_parallel_value(self.parallel)
        if encoded_parallel:
            out["parallel"] = encoded_parallel
        encoded_cache = encode_cache_value(self.cache)
        if encoded_cache:
            out["cache"] = encoded_cache
        axes: dict = {}
        for axis, values in self.axes.items():
            if axis == "faults" and values == [None]:
                # Elide the default so pre-fault specs keep their hashes
                # (spec_hash anchors resume; adding an axis must not
                # orphan every existing store).
                continue
            axes[axis] = [_encode_axis_value(axis, v) for v in values]
        out["axes"] = axes
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "StudySpec":
        """Rebuild a spec from :meth:`to_dict` output (or hand-written data)."""
        if not isinstance(payload, Mapping):
            raise ValueError(f"spec payload must be a table, got {payload!r}")
        data = dict(payload)
        axes = data.pop("axes", None)
        if axes is None:
            raise ValueError("spec payload has no [axes] table")
        known = {
            "name", "seed", "repetitions", "expansion", "workers",
            "check_every", "stable_fraction", "stable_rounds",
            "raise_on_limit", "record", "description", "execution",
            "parallel", "cache",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown spec fields {sorted(unknown)}; valid: {sorted(known)}"
            )
        if "name" not in data:
            raise ValueError("spec payload has no name")
        return cls(axes=axes, **data)

    def cells_params(self) -> "list[dict]":
        """Resolved axis assignments per cell, in execution order."""
        from .compile import expand_axes  # local import: avoid a cycle

        return expand_axes(self)


def _encode_axis_value(axis: str, value: Any) -> Any:
    """Canonical in-memory value → its serialised (TOML-safe) form."""
    if axis == "faults":
        return encode_fault_value(value)
    if value is None:
        return "none"
    if axis in ("process", "workload"):
        if value["kwargs"]:
            return {"name": value["name"], "kwargs": dict(value["kwargs"])}
        return value["name"]
    if axis == "adversary":
        out = {"name": value["name"]}
        if value["budget"] is not None:
            out["budget"] = value["budget"]
        if value["kwargs"]:
            out["kwargs"] = dict(value["kwargs"])
        return out
    return value


def spec_hash(spec: StudySpec) -> str:
    """A short content hash of the spec (the store's provenance anchor)."""
    canonical = json.dumps(spec.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
