"""Execute compiled study cells through the unified runtime.

``run_study`` is the one loop every experiment suite now goes through:
compile the spec, skip cells an existing store already covers, execute
the rest via :func:`repro.engine.runtime.execute` (which shares the
persistent sharded pool across cells), and checkpoint the store after
every cell so an interrupted run loses at most the cell in flight.

Failure isolation: one exploding cell must not lose a night of results.
With the default ``on_error="record"`` a cell that raises is retried
once on a fresh jittered sub-seed (transient failures — a pool worker
OOM-killed, a flaky recorder — recover without human attention), and a
cell that still fails lands in the store as a ``status="failed"`` record
carrying the exception type, message and traceback.  The run continues
with the next cell; ``repro study report`` summarises the failures, and
``resume=True`` re-attempts exactly the failed/missing cells.

Resume is bit-for-bit by construction: each cell's seed derives from the
spec seed and the cell *index* (never from execution order), so the
records a resumed run adds are exactly the records the uninterrupted run
would have produced — enforced by ``tests/test_study.py`` and the
``study-smoke`` / ``faults-smoke`` steps of ``scripts/check.sh``.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import replace
from typing import Callable, Iterable

import numpy as np

from ..engine.rng import derive_seed
from ..engine.runtime import execute
from .compile import StudyCell, compile_study
from .spec import StudySpec, spec_hash
from .store import RunRecord, StudyStore, load_study_store

__all__ = ["execute_cells", "run_study"]

_ON_ERROR = ("record", "raise")


def _attempt_plan(cell: StudyCell, attempt: int):
    """The plan for retry ``attempt`` (0 = the pristine compiled plan).

    Retries jitter the rng with a sub-seed derived from the cell seed and
    the attempt number — deterministic (a re-run retries with the same
    streams) but decorrelated from the failing attempt, so a failure tied
    to one sample path does not repeat verbatim.
    """
    if attempt == 0:
        return cell.plan
    return replace(cell.plan, rng=derive_seed(cell.params["seed"], attempt))


def _success_record(cell: StudyCell, result, wall_time: float) -> RunRecord:
    trajectory = None
    if cell.plan.recorder is not None:
        trajectory = {
            key: [float(v) for v in series]
            for key, series in cell.plan.recorder.as_dict().items()
        }
    extras = None
    raw = result.raw
    if cell.plan.adversary is not None and hasattr(raw, "winner_is_valid"):
        extras = {
            "winning_color": [int(v) for v in raw.winning_color],
            "winning_fraction": [float(v) for v in raw.winning_fraction],
            "winner_is_valid": [bool(v) for v in raw.winner_is_valid],
            "valid_almost_all_consensus": [
                bool(v) for v in raw.valid_almost_all_consensus
            ],
        }
    return RunRecord(
        cell_id=cell.cell_id,
        index=cell.index,
        seed=int(cell.params["seed"]),
        params=cell.params,
        resolved_backend=result.backend,
        unit=result.unit,
        times=np.asarray(result.times, dtype=np.int64),
        stopped=np.asarray(result.stopped, dtype=bool),
        wall_time_s=wall_time,
        trajectory=trajectory,
        extras=extras,
    )


def _failed_record(
    cell: StudyCell, exc: BaseException, attempts: int, wall_time: float
) -> RunRecord:
    return RunRecord(
        cell_id=cell.cell_id,
        index=cell.index,
        seed=int(cell.params["seed"]),
        params=cell.params,
        resolved_backend="-",
        unit="-",
        times=np.zeros(0, dtype=np.int64),
        stopped=np.zeros(0, dtype=bool),
        wall_time_s=wall_time,
        status="failed",
        error={
            "type": type(exc).__name__,
            "message": str(exc),
            "traceback": "".join(
                traceback.format_exception(type(exc), exc, exc.__traceback__)
            ),
            "attempts": attempts,
        },
    )


def _record_cell(
    cell: StudyCell, on_error: str = "raise", max_attempts: int = 1
) -> RunRecord:
    """Run one cell and capture its outcome plus provenance.

    With ``on_error="record"`` every exception is caught: the cell is
    retried up to ``max_attempts`` total attempts (later attempts on
    jittered sub-seeds) and the final failure becomes a
    ``status="failed"`` record instead of propagating.
    """
    start = time.perf_counter()
    attempts = max(1, int(max_attempts)) if on_error == "record" else 1
    last_exc = None
    for attempt in range(attempts):
        try:
            result = execute(_attempt_plan(cell, attempt))
        except Exception as exc:
            if on_error == "raise":
                raise
            last_exc = exc
            continue
        return _success_record(cell, result, time.perf_counter() - start)
    return _failed_record(cell, last_exc, attempts, time.perf_counter() - start)


def execute_cells(
    cells: Iterable[StudyCell],
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
) -> "list[RunRecord]":
    """Execute cells in order and return their records.

    The imperative core shared by :func:`run_study` and the legacy sweep
    harness (:func:`repro.experiments.harness.sweep_first_passage`), so
    both produce identical records for identical plans.  Errors
    propagate (``on_error="raise"`` semantics): imperative callers want
    the exception, not a record.
    """
    records = []
    for cell in cells:
        record = _record_cell(cell)
        records.append(record)
        if progress is not None:
            progress(cell, record)
    return records


def run_study(
    spec: StudySpec,
    *,
    store_path: "str | None" = None,
    resume: "bool | str" = False,
    max_cells: "int | None" = None,
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
    on_error: str = "record",
    max_attempts: int = 2,
) -> StudyStore:
    """Execute a study spec; optionally checkpoint and resume.

    Parameters
    ----------
    spec:
        The declarative study to run.
    store_path:
        Where to checkpoint the store (JSON).  Written after *every*
        completed cell, atomically, so a killed run loses at most the
        cell in flight.  ``None`` keeps the store in memory only.
    resume:
        ``False`` starts fresh (and refuses to clobber an existing store
        at ``store_path``); ``True`` loads ``store_path`` if present and
        completes only the missing cells — plus any cells previously
        recorded as failed, which are re-attempted and replaced in place;
        a string is a path to resume from (checkpoints still go to
        ``store_path``).  A store whose ``spec_hash`` differs from
        ``spec``'s is rejected — resuming a *different* study is always
        an error, never silent data mixing.
    max_cells:
        Execute at most this many *new* cells, then return (the
        programmatic interruption used by the resume tests and the
        ``--max-cells`` CLI knob for budgeted sessions).
    progress:
        Optional callback invoked after each executed cell.
    on_error:
        ``"record"`` (default) isolates failures: a cell that raises is
        retried and, failing that, recorded as ``status="failed"`` with
        its traceback while the run continues.  ``"raise"`` propagates
        the first error immediately (the pre-v2 behaviour).
    max_attempts:
        Total attempts per cell under ``on_error="record"``; attempts
        after the first use fresh sub-seeds derived from (cell seed,
        attempt), so a re-run retries deterministically.
    """
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be positive")
    if on_error not in _ON_ERROR:
        raise ValueError(f"on_error must be one of {_ON_ERROR}, got {on_error!r}")
    if max_attempts < 1:
        raise ValueError("max_attempts must be positive")
    resume_path = resume if isinstance(resume, str) else store_path
    store = None
    if resume:
        if resume_path is None:
            raise ValueError("resume=True needs a store_path to resume from")
        try:
            store = load_study_store(resume_path)
        except FileNotFoundError:
            store = None
        if store is not None and store.spec_hash != spec_hash(spec):
            raise ValueError(
                f"store at {resume_path} records spec_hash "
                f"{store.spec_hash!r} but this spec hashes to "
                f"{spec_hash(spec)!r}; refusing to resume a different study"
            )
    elif store_path is not None and os.path.exists(store_path):
        raise ValueError(
            f"store {store_path} already exists; pass resume=True to "
            "complete it, or remove the file to start over"
        )
    if store is None:
        store = StudyStore(spec)
    executed = 0
    for cell in compile_study(spec):
        existing = store.get(cell.cell_id)
        if existing is not None and existing.ok:
            continue
        if max_cells is not None and executed >= max_cells:
            break
        record = _record_cell(cell, on_error=on_error, max_attempts=max_attempts)
        store.add(record)
        executed += 1
        if store_path is not None:
            store.save(store_path)
        if progress is not None:
            progress(cell, record)
    if store_path is not None and executed == 0:
        # Nothing ran (fully resumed store): still persist, so `run` on a
        # complete store is idempotent and leaves a fresh checkpoint.
        store.save(store_path)
    return store
