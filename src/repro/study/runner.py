"""Execute compiled study cells through the unified runtime.

``run_study`` is the one loop every experiment suite now goes through:
compile the spec, skip cells an existing store already covers, execute
the rest via :func:`repro.engine.runtime.execute` (which shares the
persistent sharded pool across cells), and checkpoint the store after
every cell so an interrupted run loses at most the cell in flight.

Resume is bit-for-bit by construction: each cell's seed derives from the
spec seed and the cell *index* (never from execution order), so the
records a resumed run adds are exactly the records the uninterrupted run
would have produced — enforced by ``tests/test_study.py`` and the
``study-smoke`` step of ``scripts/check.sh``.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable

import numpy as np

from ..engine.runtime import execute
from .compile import StudyCell, compile_study
from .spec import StudySpec, spec_hash
from .store import RunRecord, StudyStore, load_study_store

__all__ = ["execute_cells", "run_study"]


def _record_cell(cell: StudyCell) -> RunRecord:
    """Run one cell and capture its outcome plus provenance."""
    start = time.perf_counter()
    result = execute(cell.plan)
    wall_time = time.perf_counter() - start
    trajectory = None
    if cell.plan.recorder is not None:
        trajectory = {
            key: [float(v) for v in series]
            for key, series in cell.plan.recorder.as_dict().items()
        }
    extras = None
    raw = result.raw
    if cell.plan.adversary is not None and hasattr(raw, "winner_is_valid"):
        extras = {
            "winning_color": [int(v) for v in raw.winning_color],
            "winning_fraction": [float(v) for v in raw.winning_fraction],
            "winner_is_valid": [bool(v) for v in raw.winner_is_valid],
            "valid_almost_all_consensus": [
                bool(v) for v in raw.valid_almost_all_consensus
            ],
        }
    return RunRecord(
        cell_id=cell.cell_id,
        index=cell.index,
        seed=int(cell.params["seed"]),
        params=cell.params,
        resolved_backend=result.backend,
        unit=result.unit,
        times=np.asarray(result.times, dtype=np.int64),
        stopped=np.asarray(result.stopped, dtype=bool),
        wall_time_s=wall_time,
        trajectory=trajectory,
        extras=extras,
    )


def execute_cells(
    cells: Iterable[StudyCell],
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
) -> "list[RunRecord]":
    """Execute cells in order and return their records.

    The imperative core shared by :func:`run_study` and the legacy sweep
    harness (:func:`repro.experiments.harness.sweep_first_passage`), so
    both produce identical records for identical plans.
    """
    records = []
    for cell in cells:
        record = _record_cell(cell)
        records.append(record)
        if progress is not None:
            progress(cell, record)
    return records


def run_study(
    spec: StudySpec,
    *,
    store_path: "str | None" = None,
    resume: "bool | str" = False,
    max_cells: "int | None" = None,
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
) -> StudyStore:
    """Execute a study spec; optionally checkpoint and resume.

    Parameters
    ----------
    spec:
        The declarative study to run.
    store_path:
        Where to checkpoint the store (JSON).  Written after *every*
        completed cell, atomically, so a killed run loses at most the
        cell in flight.  ``None`` keeps the store in memory only.
    resume:
        ``False`` starts fresh (and refuses to clobber an existing store
        at ``store_path``); ``True`` loads ``store_path`` if present and
        completes only the missing cells;
        a string is a path to resume from (checkpoints still go to
        ``store_path``).  A store whose ``spec_hash`` differs from
        ``spec``'s is rejected — resuming a *different* study is always
        an error, never silent data mixing.
    max_cells:
        Execute at most this many *new* cells, then return (the
        programmatic interruption used by the resume tests and the
        ``--max-cells`` CLI knob for budgeted sessions).
    progress:
        Optional callback invoked after each executed cell.
    """
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be positive")
    resume_path = resume if isinstance(resume, str) else store_path
    store = None
    if resume:
        if resume_path is None:
            raise ValueError("resume=True needs a store_path to resume from")
        try:
            store = load_study_store(resume_path)
        except FileNotFoundError:
            store = None
        if store is not None and store.spec_hash != spec_hash(spec):
            raise ValueError(
                f"store at {resume_path} records spec_hash "
                f"{store.spec_hash!r} but this spec hashes to "
                f"{spec_hash(spec)!r}; refusing to resume a different study"
            )
    elif store_path is not None and os.path.exists(store_path):
        raise ValueError(
            f"store {store_path} already exists; pass resume=True to "
            "complete it, or remove the file to start over"
        )
    if store is None:
        store = StudyStore(spec)
    executed = 0
    for cell in compile_study(spec):
        if store.get(cell.cell_id) is not None:
            continue
        if max_cells is not None and executed >= max_cells:
            break
        record = _record_cell(cell)
        store.add(record)
        executed += 1
        if store_path is not None:
            store.save(store_path)
        if progress is not None:
            progress(cell, record)
    if store_path is not None and executed == 0:
        # Nothing ran (fully resumed store): still persist, so `run` on a
        # complete store is idempotent and leaves a fresh checkpoint.
        store.save(store_path)
    return store
