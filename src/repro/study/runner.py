"""Execute compiled study cells through the unified runtime, supervised.

``run_study`` is the one loop every experiment suite now goes through:
compile the spec, skip cells an existing store already covers, execute
the rest via :func:`repro.engine.runtime.execute` (which shares the
persistent sharded pool across cells), and journal each record the
moment it exists so an interrupted run loses at most the cell in flight.

Supervision (the :class:`~repro.study.policy.ExecutionPolicy`):

* **Deadlines** — a watchdog (:class:`_CellDeadline`) kills any attempt
  that runs past ``deadline_s``: sequential cells via ``SIGALRM``
  (interrupting even a tight numpy loop), pool cells by tearing the
  shared pool down so the blocked ``map`` raises.  The cell lands as
  ``status="timeout"`` and the run moves on; ``resume`` re-attempts it.
* **Classified retries** — a raising cell is retried only when retrying
  can help: *transient* substrate faults (dead pool worker, OOM, OSError)
  back off deterministically (:func:`~repro.study.policy.backoff_delay`)
  and retry on a jittered sub-seed; deterministic *fatal* config errors
  fail fast with a single attempt; everything else keeps the historical
  retry behaviour.
* **Degradation** — when transient retries exhaust on a pool-based
  backend, the plan re-resolves down the capability ladder
  (``sharded-* → ensemble-* → sequential``); the per-replica rng
  contract makes the degraded result bit-for-bit identical, and the
  record's ``degraded_from`` field keeps the provenance honest.

Failure isolation: with the default ``on_error="record"`` a cell that
still fails after all that lands in the store as a ``status="failed"``
record carrying the exception type, message, traceback, attempt count
and per-attempt wall times.  The run continues with the next cell;
``repro study report`` summarises the failures, and ``resume=True``
re-attempts exactly the failed/timed-out/missing cells.

Resume is bit-for-bit by construction: each cell's seed derives from the
spec seed and the cell *index* (never from execution order), so the
records a resumed run adds are exactly the records the uninterrupted run
would have produced — enforced by ``tests/test_study.py`` and the
``study-smoke`` / ``faults-smoke`` / ``supervision-smoke`` steps of
``scripts/check.sh``.

Graceful interruption
---------------------

``run_study`` stops *cleanly* on ``SIGTERM`` / ``SIGINT`` (main thread)
or when a caller-supplied ``stop_event`` is set (any thread — this is
how the ``repro serve`` daemon winds a job down): the cell in flight
finishes and its journal record is checkpointed, no new cell starts, the
journal compacts as usual, and the returned store carries
``interrupted=True`` so callers can exit 0 with a "resume to continue"
message instead of relying on crash-safety for an ordinary Ctrl-C.  A
*second* signal abandons the courtesy and raises ``KeyboardInterrupt``
(the historical behaviour — crash-safety still bounds the damage to the
record in flight).

Parallel scheduling and the result cache
----------------------------------------

Cells are independent by construction (seeds never depend on execution
order, each compiled cell carries its own recorder), so with
``workers > 1`` the pending cells dispatch onto a
:class:`~repro.study.scheduler.CellScheduler` instead of the sequential
loop: records are journaled in completion order the moment each future
lands (the main thread stays the store's single writer), and the store
still satisfies ``results_equal`` bit-for-bit against a sequential run
because record identity is ``cell_id``, not order.  Supervision
survives: each worker thread runs the same ``_record_cell`` loop, whose
deadline automatically takes the timer/pool-teardown path off the main
thread, and the scheduler's watchdog abandons the one shape that path
cannot interrupt (a pure in-process hang).  With a cache enabled
(:mod:`repro.study.cache`), every pending cell is looked up before it is
scheduled — a hit is journaled immediately with ``cache_hit=True`` and
never simulates — and every fresh clean record is memoized for the next
overlapping study.
"""

from __future__ import annotations

import os
import signal
import threading
import time
import traceback
from dataclasses import replace
from typing import Callable, Iterable

import numpy as np

from ..engine.rng import derive_seed
from ..engine.runtime import (
    degradation_ladder,
    execute,
    get_backend,
    resolve_backend,
    shutdown_pools,
)
from .cache import resolve_cache
from .compile import StudyCell, compile_study
from .policy import (
    CellDeadlineExceeded,
    ExecutionPolicy,
    backoff_delay,
    classify_error,
    resolve_policy,
)
from .scheduler import CellScheduler, resolve_parallel
from .spec import StudySpec, spec_hash
from .store import RunRecord, StudyStore, journal_path, load_study_store

__all__ = ["execute_cells", "run_study"]

_ON_ERROR = ("record", "raise")


class _GracefulStop:
    """SIGTERM/SIGINT → a cooperative stop flag, while a study runs.

    Installed only on the main thread (signals are undeliverable
    elsewhere; daemon-driven studies pass a ``stop_event`` instead).  The
    first signal sets the event — the runner checkpoints the in-flight
    record and stops scheduling new cells; a second signal raises
    :class:`KeyboardInterrupt` immediately for users who really mean it.
    The previous handlers are restored on exit, so nested or subsequent
    runs (and pytest) see the interpreter's defaults again.
    """

    def __init__(self, stop_event: threading.Event):
        self._stop = stop_event
        self._previous: "dict[int, object]" = {}

    def _handler(self, signum, _frame):
        if self._stop.is_set():
            raise KeyboardInterrupt(signal.Signals(signum).name)
        self._stop.set()

    def __enter__(self):
        if threading.current_thread() is not threading.main_thread():
            return self
        for name in ("SIGTERM", "SIGINT"):
            signum = getattr(signal, name, None)
            if signum is None:
                continue
            try:
                self._previous[signum] = signal.signal(signum, self._handler)
            except (ValueError, OSError):  # pragma: no cover - exotic hosts
                pass
        return self

    def __exit__(self, _exc_type, _exc, _tb):
        for signum, previous in self._previous.items():
            signal.signal(signum, previous)
        return False


class _CellDeadline:
    """Context manager enforcing one attempt's wall-clock budget.

    On the main thread (the common case) it arms ``SIGALRM`` via
    ``setitimer``, which interrupts *anything* — a numpy inner loop, a
    blocked pool ``map`` — by raising :class:`CellDeadlineExceeded`
    right in the cell's frame.  Off the main thread (studies driven from
    worker threads), signals are unavailable, so a daemon timer tears
    the shared pool down instead: a pool-based cell's ``map`` then dies
    with a pool error, which ``__exit__`` converts to the deadline
    exception.  (A pure-Python sequential cell on a non-main thread is
    the one shape this fallback cannot interrupt mid-attempt.)

    Either way the hung workers are gone afterwards: the caller is
    expected to ``shutdown_pools()`` on timeout so the next cell starts
    against a fresh pool.
    """

    def __init__(self, deadline_s: "float | None"):
        self.deadline_s = deadline_s
        self.expired = False
        self._timer = None
        self._previous = None
        self._use_signal = False

    def _alarm(self, _signum, _frame):
        self.expired = True
        raise CellDeadlineExceeded(self.deadline_s)

    def _expire(self):
        self.expired = True
        shutdown_pools()

    def __enter__(self):
        if self.deadline_s is None:
            return self
        if threading.current_thread() is threading.main_thread() and hasattr(
            signal, "SIGALRM"
        ):
            self._use_signal = True
            self._previous = signal.signal(signal.SIGALRM, self._alarm)
            signal.setitimer(signal.ITIMER_REAL, self.deadline_s)
        else:
            self._timer = threading.Timer(self.deadline_s, self._expire)
            self._timer.daemon = True
            self._timer.start()
        return self

    def __exit__(self, exc_type, exc, _tb):
        if self.deadline_s is None:
            return False
        if self._use_signal:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, self._previous)
        else:
            self._timer.cancel()
        if (
            self.expired
            and exc is not None
            and not isinstance(exc, CellDeadlineExceeded)
        ):
            # Timer path: the teardown surfaced as a pool error inside
            # the cell — report the deadline, not the collateral damage.
            raise CellDeadlineExceeded(self.deadline_s) from exc
        return False


def _attempt_plan(cell: StudyCell, attempt: int):
    """The plan for retry ``attempt`` (0 = the pristine compiled plan).

    Retries jitter the rng with a sub-seed derived from the cell seed and
    the attempt number — deterministic (a re-run retries with the same
    streams) but decorrelated from the failing attempt, so a failure tied
    to one sample path does not repeat verbatim.
    """
    if attempt == 0:
        return cell.plan
    return replace(cell.plan, rng=derive_seed(cell.params["seed"], attempt))


def _success_record(
    cell: StudyCell,
    result,
    wall_time: float,
    degraded_from: "str | None" = None,
) -> RunRecord:
    trajectory = None
    if cell.plan.recorder is not None:
        trajectory = {
            key: [float(v) for v in series]
            for key, series in cell.plan.recorder.as_dict().items()
        }
    extras = None
    raw = result.raw
    if cell.plan.adversary is not None and hasattr(raw, "winner_is_valid"):
        extras = {
            "winning_color": [int(v) for v in raw.winning_color],
            "winning_fraction": [float(v) for v in raw.winning_fraction],
            "winner_is_valid": [bool(v) for v in raw.winner_is_valid],
            "valid_almost_all_consensus": [
                bool(v) for v in raw.valid_almost_all_consensus
            ],
        }
    return RunRecord(
        cell_id=cell.cell_id,
        index=cell.index,
        seed=int(cell.params["seed"]),
        params=cell.params,
        resolved_backend=result.backend,
        unit=result.unit,
        times=np.asarray(result.times, dtype=np.int64),
        stopped=np.asarray(result.stopped, dtype=bool),
        wall_time_s=wall_time,
        trajectory=trajectory,
        extras=extras,
        degraded_from=degraded_from,
    )


def _error_dict(
    exc: BaseException, attempts: int, attempt_walls: "list[float]"
) -> dict:
    return {
        "type": type(exc).__name__,
        "message": str(exc),
        "traceback": "".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
        "attempts": attempts,
        "attempt_walls_s": [float(w) for w in attempt_walls],
    }


def _unrun_record(
    cell: StudyCell, status: str, wall_time: float, error: dict
) -> RunRecord:
    """A record for a cell that produced no results (failed or timed out)."""
    return RunRecord(
        cell_id=cell.cell_id,
        index=cell.index,
        seed=int(cell.params["seed"]),
        params=cell.params,
        resolved_backend="-",
        unit="-",
        times=np.zeros(0, dtype=np.int64),
        stopped=np.zeros(0, dtype=bool),
        wall_time_s=wall_time,
        status=status,
        error=error,
    )


def _timeout_record(
    cell: StudyCell,
    exc: CellDeadlineExceeded,
    attempts: int,
    attempt_walls: "list[float]",
    wall_time: float,
) -> RunRecord:
    error = _error_dict(exc, attempts, attempt_walls)
    error["deadline_s"] = float(exc.deadline_s)
    return _unrun_record(cell, "timeout", wall_time, error)


def _try_degrade(
    cell: StudyCell,
    resolved_name: str,
    policy: ExecutionPolicy,
    attempt_walls: "list[float]",
) -> "RunRecord | None":
    """Walk the capability ladder below ``resolved_name``; None if no rung ran.

    The fallback plan keeps the *pristine* rng (attempt 0) and pins
    ``workers=1``: under the per-replica contract the degraded result is
    bit-for-bit the record the original backend would have produced.
    """
    for fallback in degradation_ladder(resolved_name):
        fb_plan = replace(cell.plan, backend=fallback, workers=1)
        if not get_backend(fallback).supports(fb_plan):
            continue
        start = time.perf_counter()
        try:
            with _CellDeadline(policy.deadline_s):
                result = execute(fb_plan)
        except Exception:
            attempt_walls.append(time.perf_counter() - start)
            continue
        attempt_walls.append(time.perf_counter() - start)
        return _success_record(
            cell, result, sum(attempt_walls), degraded_from=resolved_name
        )
    return None


def _record_cell(
    cell: StudyCell,
    on_error: str = "raise",
    policy: "ExecutionPolicy | None" = None,
) -> RunRecord:
    """Run one cell under the policy and capture its outcome plus provenance.

    With ``on_error="record"`` every exception is caught: transient and
    unknown errors are retried up to ``policy.max_attempts`` total
    attempts (later attempts on jittered sub-seeds, after a deterministic
    backoff), fatal errors are not retried, exhausted transient failures
    try the degradation ladder, and whatever remains becomes a
    ``status="failed"`` (or ``"timeout"``) record instead of propagating.

    ``on_error="raise"`` propagates the first error immediately and never
    retries — but the deadline still applies, so imperative callers get
    hang protection too.
    """
    if policy is None:
        policy = ExecutionPolicy()
    if on_error == "raise":
        start = time.perf_counter()
        with _CellDeadline(policy.deadline_s) as watchdog:
            try:
                result = execute(_attempt_plan(cell, 0))
            except CellDeadlineExceeded:
                shutdown_pools()
                raise
        return _success_record(cell, result, time.perf_counter() - start)

    # Resolve the backend up front: a resolution error is a config error
    # (fail fast), and the name anchors the degradation ladder.
    try:
        resolved_name = resolve_backend(cell.plan).spec.name
    except Exception as exc:
        return _unrun_record(cell, "failed", 0.0, _error_dict(exc, 1, [0.0]))

    attempt_walls: "list[float]" = []
    last_exc = None
    last_kind = None
    attempts = 0
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        start = time.perf_counter()
        try:
            with _CellDeadline(policy.deadline_s):
                result = execute(_attempt_plan(cell, attempt))
        except CellDeadlineExceeded as exc:
            attempt_walls.append(time.perf_counter() - start)
            # A hang would burn the whole budget again: record the
            # timeout now and let `resume` re-attempt it later.
            shutdown_pools()
            return _timeout_record(
                cell, exc, attempts, attempt_walls, sum(attempt_walls)
            )
        except Exception as exc:
            attempt_walls.append(time.perf_counter() - start)
            last_exc = exc
            last_kind = classify_error(exc)
            if last_kind == "fatal":
                break
            if attempt + 1 < policy.max_attempts:
                delay = backoff_delay(
                    policy, int(cell.params["seed"]), attempt + 1
                )
                if delay > 0.0:
                    time.sleep(delay)
            continue
        attempt_walls.append(time.perf_counter() - start)
        return _success_record(cell, result, sum(attempt_walls))

    if last_kind == "transient" and policy.degrade:
        record = _try_degrade(cell, resolved_name, policy, attempt_walls)
        if record is not None:
            return record
    return _unrun_record(
        cell,
        "failed",
        sum(attempt_walls),
        _error_dict(last_exc, attempts, attempt_walls),
    )


def execute_cells(
    cells: Iterable[StudyCell],
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
) -> "list[RunRecord]":
    """Execute cells in order and return their records.

    The imperative core shared by :func:`run_study` and the legacy sweep
    harness (:func:`repro.experiments.harness.sweep_first_passage`), so
    both produce identical records for identical plans.  Errors
    propagate (``on_error="raise"`` semantics): imperative callers want
    the exception, not a record.
    """
    records = []
    policy = ExecutionPolicy()  # resolved once, reused across the run
    for cell in cells:
        record = _record_cell(cell, policy=policy)
        records.append(record)
        if progress is not None:
            progress(cell, record)
    return records


def run_study(
    spec: StudySpec,
    *,
    store_path: "str | None" = None,
    resume: "bool | str" = False,
    max_cells: "int | None" = None,
    progress: "Callable[[StudyCell, RunRecord], None] | None" = None,
    on_error: str = "record",
    max_attempts: "int | None" = None,
    policy: "ExecutionPolicy | None" = None,
    deadline_s: "float | None" = None,
    workers: "int | None" = None,
    max_inflight: "int | None" = None,
    cache=None,
    stop_event: "threading.Event | None" = None,
) -> StudyStore:
    """Execute a study spec; optionally checkpoint and resume.

    Parameters
    ----------
    spec:
        The declarative study to run.
    store_path:
        Where to checkpoint results.  Each completed cell appends one
        fsync'd line to a sidecar journal (``<store_path>.journal.jsonl``)
        — O(record) bytes, crash-safe at any byte offset — and the
        journal compacts into the columnar JSON at ``store_path`` when
        the run finishes (or raises).  ``None`` keeps the store in
        memory only.
    resume:
        ``False`` starts fresh (and refuses to clobber an existing store
        or journal at ``store_path``); ``True`` loads ``store_path`` —
        base JSON, leftover journal, or both — if present and completes
        only the missing cells, plus any cells previously recorded as
        failed or timed out, which are re-attempted and replaced in
        place; a string is a path to resume from (checkpoints still go
        to ``store_path``).  A store whose ``spec_hash`` differs from
        ``spec``'s is rejected — resuming a *different* study is always
        an error, never silent data mixing.
    max_cells:
        Execute at most this many *new* cells, then return (the
        programmatic interruption used by the resume tests and the
        ``--max-cells`` CLI knob for budgeted sessions).
    progress:
        Optional callback invoked after each executed cell.
    on_error:
        ``"record"`` (default) isolates failures: a cell that raises is
        retried per the policy and, failing that, recorded as
        ``status="failed"`` (or ``"timeout"``) with its traceback while
        the run continues.  ``"raise"`` propagates the first error
        immediately (the pre-v2 behaviour).
    max_attempts, deadline_s:
        Convenience overrides patched onto the resolved policy (the CLI
        flags); ``None`` leaves the policy's own values in force.
    policy:
        An explicit :class:`ExecutionPolicy`.  Precedence: this argument,
        else the spec's ``[execution]`` table, else the defaults — then
        the ``max_attempts`` / ``deadline_s`` overrides.
    workers, max_inflight:
        Concurrent cell scheduling (the ``--workers`` CLI knob).
        Precedence: these arguments, else the spec's ``[parallel]``
        table, else sequential.  ``workers > 1`` dispatches pending
        cells onto a :class:`~repro.study.scheduler.CellScheduler` with
        at most ``max_inflight`` (default ``2 * workers``) cells in
        flight; results are identical to the sequential run, bit for
        bit.  Passed as arguments (rather than spec edits) they leave
        the ``spec_hash`` — and therefore resume and ``results_equal``
        against sequential stores — untouched.
    cache:
        The content-addressed result cache
        (:mod:`repro.study.cache`).  ``None`` defers to the spec's
        ``[cache]`` table (default: off); ``False`` (``--no-cache``)
        forces caching off; ``True`` enables it in the shared default
        directory; a string names the directory; a
        :class:`~repro.study.cache.ResultCache` is used as-is.  Hits
        are stamped ``cache_hit=True``; ``results_equal`` ignores the
        stamp.
    stop_event:
        A :class:`threading.Event` that requests a graceful stop: the
        cell in flight completes and is checkpointed, no further cell
        starts, and the returned store has ``interrupted=True`` when
        cells remain.  ``SIGTERM``/``SIGINT`` set the same flag when the
        run owns the main thread (see :class:`_GracefulStop`); the
        ``repro serve`` daemon sets it from its shutdown and cancel
        paths.
    """
    if max_cells is not None and max_cells < 1:
        raise ValueError("max_cells must be positive")
    if on_error not in _ON_ERROR:
        raise ValueError(f"on_error must be one of {_ON_ERROR}, got {on_error!r}")
    if max_attempts is not None and max_attempts < 1:
        raise ValueError("max_attempts must be positive")
    live_policy = resolve_policy(
        policy,
        spec.execution,
        max_attempts=max_attempts,
        deadline_s=deadline_s,
    )
    run_workers, run_inflight = resolve_parallel(
        spec.parallel, workers=workers, max_inflight=max_inflight
    )
    result_cache = resolve_cache(cache, spec.cache)
    resume_path = resume if isinstance(resume, str) else store_path
    store = None
    if resume:
        if resume_path is None:
            raise ValueError("resume=True needs a store_path to resume from")
        try:
            store = load_study_store(resume_path)
        except FileNotFoundError:
            store = None
        if store is not None and store.spec_hash != spec_hash(spec):
            raise ValueError(
                f"store at {resume_path} records spec_hash "
                f"{store.spec_hash!r} but this spec hashes to "
                f"{spec_hash(spec)!r}; refusing to resume a different study"
            )
    elif store_path is not None and (
        os.path.exists(store_path) or os.path.exists(journal_path(store_path))
    ):
        raise ValueError(
            f"store {store_path} (or its journal) already exists; pass "
            "resume=True to complete it, or remove the file(s) to start over"
        )
    if store is None:
        store = StudyStore(spec)
    if store_path is not None:
        store.begin_journal(store_path)
    stop = stop_event if stop_event is not None else threading.Event()
    started = 0

    def finish(cell: StudyCell, record: RunRecord) -> None:
        """Land one record: store, journal, memoize, report.

        Called only on the main thread — whatever the worker count, the
        store (and its journal) has exactly one writer.
        """
        store.add(record)
        if store_path is not None:
            store.checkpoint(record)
        if result_cache is not None and not record.cache_hit:
            result_cache.put(record)
        if progress is not None:
            progress(cell, record)

    def pending_cells():
        """The cells this run must execute, cache hits already landed.

        Skips cells an existing store covers, caps *started* work at
        ``max_cells`` (hits count: they produce new records), and lands
        cache hits inline — a hit re-stamps the current compile's index
        (an overlapping spec may order shared cells differently) and
        never reaches the scheduler.
        """
        nonlocal started
        for cell in compile_study(spec):
            if stop.is_set():
                return
            existing = store.get(cell.cell_id)
            if existing is not None and existing.ok:
                continue
            if max_cells is not None and started >= max_cells:
                return
            if result_cache is not None:
                cached = result_cache.get(cell.cell_id)
                if cached is not None:
                    started += 1
                    finish(
                        cell,
                        replace(cached, index=cell.index, cache_hit=True),
                    )
                    continue
            started += 1
            yield cell

    try:
        with _GracefulStop(stop):
            if run_workers <= 1:
                for cell in pending_cells():
                    record = _record_cell(
                        cell, on_error=on_error, policy=live_policy
                    )
                    finish(cell, record)
            else:
                # Per-cell total budget before a worker the deadline
                # fallback cannot interrupt is written off (CellScheduler).
                watchdog_s = None
                abandon = None
                if live_policy.deadline_s is not None:
                    watchdog_s = (
                        live_policy.deadline_s * live_policy.max_attempts + 1.0
                    )

                    def abandon(cell, elapsed):
                        exc = CellDeadlineExceeded(live_policy.deadline_s)
                        return _timeout_record(cell, exc, 1, [elapsed], elapsed)

                scheduler = CellScheduler(
                    lambda cell: _record_cell(
                        cell, on_error=on_error, policy=live_policy
                    ),
                    run_workers,
                    max_inflight=run_inflight,
                    watchdog_s=watchdog_s,
                )
                try:
                    for cell, record in scheduler.run(
                        pending_cells(), abandon=abandon
                    ):
                        finish(cell, record)
                finally:
                    scheduler.shutdown()
        if stop.is_set():
            # Interrupted *and unfinished*: a stop landing after the last
            # cell checkpointed is a completed run, not an interruption.
            store.interrupted = not store.is_complete()
    finally:
        if result_cache is not None:
            result_cache.flush()
        if store_path is not None:
            # Compaction is atomic (save lands before the journal
            # unlinks), so even an exception path leaves one consistent
            # checkpoint — and a hard kill leaves the journal to replay.
            store.compact(store_path)
    return store
