"""Dynamic adversaries for self-stabilising Byzantine agreement (§5).

The fault model of [BCN+14, BCN+16, EFK+16], which the paper's Section 5
discusses: in every round, after the honest protocol step, an adversary
may *corrupt* the state of a bounded set of at most ``F`` nodes —
rewriting their colors arbitrarily (it cannot change the protocol, only
plant states).  The goal is a stable regime where *almost all* nodes
support one **valid** color (a color initially supported by at least one
non-corrupted node).

Three standard strategies are implemented:

* :class:`RandomNoise` — corrupt ``F`` uniform nodes to uniform colors: a
  sanity baseline;
* :class:`BoostRunnerUp` — move ``F`` nodes onto the strongest color that
  is *not* the current plurality, the classic stalling strategy;
* :class:`PlantInvalid` — push ``F`` nodes to a fresh color outside the
  initial support, attacking validity directly (this is the attack
  2-Median cannot survive, but 3-Majority can: an invalid color fed only
  ``F ≪ √n`` nodes per round cannot out-drift the plurality).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Adversary",
    "RandomNoise",
    "BoostRunnerUp",
    "PlantInvalid",
    "recommended_corruption_budget",
]


def recommended_corruption_budget(n: int, k: int) -> int:
    """The tolerance scale from [BCN+16] quoted in §5: ``O(√n / (k^{5/2} log n))``.

    Returned with constant 1 and floored at 1; the fault-tolerance
    experiment sweeps multiples of it.
    """
    if n < 2 or k < 1:
        raise ValueError("need n >= 2 and k >= 1")
    value = np.sqrt(n) / (k**2.5 * np.log(n))
    return max(1, int(value))


class Adversary(abc.ABC):
    """A round adversary corrupting at most ``budget`` nodes per round."""

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = int(budget)

    @abc.abstractmethod
    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the corrupted color vector (must differ on ≤ budget nodes).

        Implementations must not mutate the input.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(budget={self.budget})"


class RandomNoise(Adversary):
    """Corrupt ``budget`` uniform nodes to uniform colors among ``num_colors``."""

    def __init__(self, budget: int, num_colors: int):
        super().__init__(budget)
        if num_colors < 1:
            raise ValueError("num_colors must be positive")
        self.num_colors = int(num_colors)

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        victims = rng.choice(colors.size, size=min(self.budget, colors.size), replace=False)
        out[victims] = rng.integers(0, self.num_colors, size=victims.size)
        return out


class BoostRunnerUp(Adversary):
    """Move ``budget`` plurality nodes onto the strongest challenger color.

    The canonical stalling adversary: it fights the drift by shrinking the
    bias every round.  Consensus-time degradation under this adversary is
    the quantity experiment E11 tracks.
    """

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        counts = np.bincount(out)
        order = np.argsort(counts)[::-1]
        leader = int(order[0])
        challenger = None
        for candidate in order[1:]:
            if counts[candidate] > 0:
                challenger = int(candidate)
                break
        if challenger is None:
            # Consensus already.  The §5 adversary may write arbitrary
            # states, so it resurrects opposition under a fresh color id
            # (which is *invalid* in the Byzantine-agreement sense — the
            # validity tracker will flag it if it ever wins).
            challenger = leader + 1
        leader_nodes = np.flatnonzero(out == leader)
        take = min(self.budget, leader_nodes.size)
        if take == 0:
            return out
        victims = rng.choice(leader_nodes, size=take, replace=False)
        out[victims] = challenger
        return out


class PlantInvalid(Adversary):
    """Corrupt ``budget`` uniform nodes to a color with no initial support.

    Byzantine agreement's validity condition forbids converging to such a
    color (footnote 5).  3-Majority tolerates this attack for small
    budgets; the E11/E12 benches demonstrate the contrast with 2-Median,
    where planted extreme *values* drag the median to an invalid value.
    """

    def __init__(self, budget: int, invalid_color: int):
        super().__init__(budget)
        if invalid_color < 0:
            raise ValueError("invalid_color must be a valid color id")
        self.invalid_color = int(invalid_color)

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        victims = rng.choice(colors.size, size=min(self.budget, colors.size), replace=False)
        out[victims] = self.invalid_color
        return out


@dataclass(frozen=True)
class AdversarySchedule:
    """Turn an adversary on for a bounded window of rounds.

    Useful for recovery experiments: corrupt during ``[start, stop)`` and
    verify the protocol re-stabilises afterwards (self-stabilisation).
    """

    adversary: Adversary
    start: int = 0
    stop: "int | None" = None

    def active(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.stop is None or round_index < self.stop

    def corrupt(
        self, round_index: int, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if not self.active(round_index):
            return colors
        return self.adversary.corrupt(colors, rng)


__all__.append("AdversarySchedule")
