"""Dynamic adversaries for self-stabilising Byzantine agreement (§5).

The fault model of [BCN+14, BCN+16, EFK+16], which the paper's Section 5
discusses: in every round, after the honest protocol step, an adversary
may *corrupt* the state of a bounded set of at most ``F`` nodes —
rewriting their colors arbitrarily (it cannot change the protocol, only
plant states).  The goal is a stable regime where *almost all* nodes
support one **valid** color (a color initially supported by at least one
non-corrupted node).

Three standard strategies are implemented:

* :class:`RandomNoise` — corrupt ``F`` uniform nodes to uniform colors: a
  sanity baseline;
* :class:`BoostRunnerUp` — move ``F`` nodes onto the strongest color that
  is *not* the current plurality, the classic stalling strategy;
* :class:`PlantInvalid` — push ``F`` nodes to a fresh color outside the
  initial support, attacking validity directly (this is the attack
  2-Median cannot survive, but 3-Majority can: an invalid color fed only
  ``F ≪ √n`` nodes per round cannot out-drift the plurality).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Adversary",
    "RandomNoise",
    "BoostRunnerUp",
    "PlantInvalid",
    "recommended_corruption_budget",
]


def recommended_corruption_budget(n: int, k: int) -> int:
    """The tolerance scale from [BCN+16] quoted in §5: ``O(√n / (k^{5/2} log n))``.

    Returned with constant 1 and floored at 1; the fault-tolerance
    experiment sweeps multiples of it.
    """
    if n < 2 or k < 1:
        raise ValueError("need n >= 2 and k >= 1")
    value = np.sqrt(n) / (k**2.5 * np.log(n))
    return max(1, int(value))


class Adversary(abc.ABC):
    """A round adversary corrupting at most ``budget`` nodes per round."""

    #: True when :meth:`corrupt_counts` implements the same corruption law
    #: directly on count vectors — the hook the count-level adversary
    #: ensemble needs (valid for AC-processes, where node identity carries
    #: no information).
    supports_counts: bool = False

    def __init__(self, budget: int):
        if budget < 0:
            raise ValueError("budget must be non-negative")
        self.budget = int(budget)

    @abc.abstractmethod
    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Return the corrupted color vector (must differ on ≤ budget nodes).

        Implementations must not mutate the input.
        """

    def color_ceiling(self, num_slots: int) -> int:
        """Slot width needed to hold every color this adversary can write.

        The ensemble engines size their count matrices with this so that
        planted/resurrected colors (which may lie outside the honest slot
        range) have somewhere to be counted.
        """
        return int(num_slots)

    def corrupt_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Corrupt an ``(R, n)`` color matrix, each replica independently.

        The base implementation loops :meth:`corrupt` row-wise so every
        adversary works in the ensemble runner day one; adversaries whose
        victim choice is expressible as a per-replica mask override with a
        vectorized version.
        """
        return np.stack(
            [self.corrupt(colors[r], rng) for r in range(colors.shape[0])]
        )

    def corrupt_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """The corruption law applied to an ``(R, k)`` counts matrix.

        Only meaningful against AC-processes, whose anonymity makes the
        node-level corruption distribution a pure function of the counts
        (uniform victim sets become multivariate-hypergeometric draws).
        Adversaries that support it set :attr:`supports_counts`.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no count-level corruption law"
        )

    def __repr__(self) -> str:
        return f"{type(self).__name__}(budget={self.budget})"


def _uniform_victim_masks(
    shape: "tuple[int, int]", budget: int, rng: np.random.Generator
) -> np.ndarray:
    """``(R, n)`` boolean masks with exactly ``min(budget, n)`` True per row.

    Uniform victim sets for every replica in one vectorized step: rank a
    matrix of uniforms per row and take the ``budget`` smallest —
    equivalent to an independent without-replacement draw per replica.
    """
    reps, n = shape
    take = min(budget, n)
    if take == 0:
        return np.zeros(shape, dtype=bool)
    keys = rng.random(size=shape)
    victims = np.argpartition(keys, take - 1, axis=1)[:, :take]
    mask = np.zeros(shape, dtype=bool)
    mask[np.repeat(np.arange(reps), take), victims.ravel()] = True
    return mask


def _victim_color_counts(
    counts: np.ndarray, budget: int, rng: np.random.Generator
) -> np.ndarray:
    """Color counts of ``budget`` uniform victims per replica row.

    Choosing ``F`` victims uniformly without replacement from a population
    with color counts ``c`` makes the victims' color counts multivariate-
    hypergeometric — the count-level image of uniform node corruption.
    """
    out = np.empty_like(counts)
    for r in range(counts.shape[0]):
        row = counts[r]
        take = min(budget, int(row.sum()))
        out[r] = rng.multivariate_hypergeometric(row, take)
    return out


class RandomNoise(Adversary):
    """Corrupt ``budget`` uniform nodes to uniform colors among ``num_colors``."""

    supports_counts = True

    def __init__(self, budget: int, num_colors: int):
        super().__init__(budget)
        if num_colors < 1:
            raise ValueError("num_colors must be positive")
        self.num_colors = int(num_colors)

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        victims = rng.choice(colors.size, size=min(self.budget, colors.size), replace=False)
        out[victims] = rng.integers(0, self.num_colors, size=victims.size)
        return out

    def color_ceiling(self, num_slots: int) -> int:
        return max(num_slots, self.num_colors)

    def corrupt_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        out = colors.copy()
        if self.budget == 0:
            return out
        mask = _uniform_victim_masks(out.shape, self.budget, rng)
        out[mask] = rng.integers(
            0, self.num_colors, size=int(mask.sum())
        ).astype(out.dtype, copy=False)
        return out

    def corrupt_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.budget == 0:
            return counts.copy()
        victims = _victim_color_counts(counts, self.budget, rng)
        replacements = rng.multinomial(
            victims.sum(axis=1), np.full(self.num_colors, 1.0 / self.num_colors)
        )
        out = counts - victims
        out[:, : self.num_colors] += replacements
        return out


class BoostRunnerUp(Adversary):
    """Move ``budget`` plurality nodes onto the strongest challenger color.

    The canonical stalling adversary: it fights the drift by shrinking the
    bias every round.  Consensus-time degradation under this adversary is
    the quantity experiment E11 tracks.
    """

    supports_counts = True

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        counts = np.bincount(out)
        order = np.argsort(counts)[::-1]
        leader = int(order[0])
        challenger = None
        for candidate in order[1:]:
            if counts[candidate] > 0:
                challenger = int(candidate)
                break
        if challenger is None:
            # Consensus already.  The §5 adversary may write arbitrary
            # states, so it resurrects opposition under a fresh color id
            # (which is *invalid* in the Byzantine-agreement sense — the
            # validity tracker will flag it if it ever wins).
            challenger = leader + 1
        leader_nodes = np.flatnonzero(out == leader)
        take = min(self.budget, leader_nodes.size)
        if take == 0:
            return out
        victims = rng.choice(leader_nodes, size=take, replace=False)
        out[victims] = challenger
        return out

    def color_ceiling(self, num_slots: int) -> int:
        # Resurrecting opposition at consensus writes ``leader + 1``.
        return int(num_slots) + 1

    def corrupt_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Count-level image of the boost: move mass leader → challenger.

        Which leader nodes are hit is irrelevant at count level, so the
        corruption is deterministic: ``min(budget, leader support)`` nodes
        leave the plurality color for the strongest remaining challenger
        (or a fresh color id when the replica is already at consensus —
        clamped to the last slot if the matrix has no room above).
        """
        out = counts.copy()
        if self.budget == 0:
            return out
        reps, width = out.shape
        rows = np.arange(reps)
        # Match the sequential tie-break (``argsort(counts)[::-1]``): among
        # tied supports the *highest* color id leads, and the strongest
        # remaining color by the same order is the challenger.  At an exact
        # tie this decides which way the boost tips the replica, so the two
        # backends must agree.
        leader = width - 1 - np.argmax(out[:, ::-1], axis=1)
        masked = out.copy()
        masked[rows, leader] = -1
        challenger = width - 1 - np.argmax(masked[:, ::-1], axis=1)
        no_opposition = masked[rows, challenger] <= 0
        resurrected = np.minimum(leader + 1, width - 1)
        challenger = np.where(no_opposition, resurrected, challenger)
        take = np.minimum(self.budget, out[rows, leader])
        # A consensus replica whose leader occupies the last slot has no
        # spare color id to resurrect; leave it untouched.
        take = np.where(challenger == leader, 0, take)
        out[rows, leader] -= take
        out[rows, challenger] += take
        return out


class PlantInvalid(Adversary):
    """Corrupt ``budget`` uniform nodes to a color with no initial support.

    Byzantine agreement's validity condition forbids converging to such a
    color (footnote 5).  3-Majority tolerates this attack for small
    budgets; the E11/E12 benches demonstrate the contrast with 2-Median,
    where planted extreme *values* drag the median to an invalid value.
    """

    supports_counts = True

    def __init__(self, budget: int, invalid_color: int):
        super().__init__(budget)
        if invalid_color < 0:
            raise ValueError("invalid_color must be a valid color id")
        self.invalid_color = int(invalid_color)

    def corrupt(self, colors: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        if self.budget == 0:
            return colors.copy()
        out = colors.copy()
        victims = rng.choice(colors.size, size=min(self.budget, colors.size), replace=False)
        out[victims] = self.invalid_color
        return out

    def color_ceiling(self, num_slots: int) -> int:
        return max(num_slots, self.invalid_color + 1)

    def corrupt_ensemble(
        self, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        out = colors.copy()
        if self.budget == 0:
            return out
        mask = _uniform_victim_masks(out.shape, self.budget, rng)
        out[mask] = self.invalid_color
        return out

    def corrupt_counts(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.budget == 0:
            return counts.copy()
        victims = _victim_color_counts(counts, self.budget, rng)
        out = counts - victims
        out[:, self.invalid_color] += victims.sum(axis=1)
        return out


@dataclass(frozen=True)
class AdversarySchedule:
    """Turn an adversary on for a bounded window of rounds.

    Useful for recovery experiments: corrupt during ``[start, stop)`` and
    verify the protocol re-stabilises afterwards (self-stabilisation).
    """

    adversary: Adversary
    start: int = 0
    stop: "int | None" = None

    def active(self, round_index: int) -> bool:
        if round_index < self.start:
            return False
        return self.stop is None or round_index < self.stop

    def corrupt(
        self, round_index: int, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if not self.active(round_index):
            return colors
        return self.adversary.corrupt(colors, rng)

    def corrupt_ensemble(
        self, round_index: int, colors: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Window-gated ``(R, n)`` corruption for the ensemble runner."""
        if not self.active(round_index):
            return colors
        return self.adversary.corrupt_ensemble(colors, rng)

    def corrupt_counts(
        self, round_index: int, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Window-gated ``(R, k)`` corruption for the count-level runner."""
        if not self.active(round_index):
            return counts
        return self.adversary.corrupt_counts(counts, rng)


__all__.append("AdversarySchedule")
