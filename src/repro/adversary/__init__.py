"""Dynamic adversaries and robust (Byzantine) consensus runs (§5)."""

from .adversary import (
    Adversary,
    AdversarySchedule,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
)
from .robust_runner import RobustRunResult, run_with_adversary

__all__ = [
    "Adversary",
    "AdversarySchedule",
    "BoostRunnerUp",
    "PlantInvalid",
    "RandomNoise",
    "RobustRunResult",
    "recommended_corruption_budget",
    "run_with_adversary",
]
