"""Dynamic adversaries and robust (Byzantine) consensus runs (§5)."""

from .adversary import (
    Adversary,
    AdversarySchedule,
    BoostRunnerUp,
    PlantInvalid,
    RandomNoise,
    recommended_corruption_budget,
)
from .robust_runner import (
    RobustEnsembleResult,
    RobustRunResult,
    run_with_adversary,
    run_with_adversary_ensemble,
)

__all__ = [
    "Adversary",
    "AdversarySchedule",
    "BoostRunnerUp",
    "PlantInvalid",
    "RandomNoise",
    "RobustEnsembleResult",
    "RobustRunResult",
    "recommended_corruption_budget",
    "run_with_adversary",
    "run_with_adversary_ensemble",
]
